#!/usr/bin/env python
"""Documentation checker: links resolve, referenced paths exist, fenced
doctest examples run.

Checked files: ``README.md``, ``DESIGN.md`` and ``docs/*.md``.  Three
passes:

* **markdown links** -- every relative ``[text](target)`` must point at
  an existing file or directory (external ``http(s)``/``mailto`` targets
  and pure ``#anchors`` are skipped; fragments are stripped first);
* **inline-code paths** -- every single-backtick span that looks like a
  repo path (contains ``/``, starts with a known top-level directory, no
  globs or placeholders) must exist, so prose like ``src/repro/foo.py``
  cannot go stale silently;
* **doctests** -- every fenced ``python`` block containing ``>>>`` runs
  under :mod:`doctest` (the CI job provides ``PYTHONPATH=src``).

Exit status 0 when clean; 1 with one line per problem otherwise.
Run locally:  PYTHONPATH=src python tools/check_docs.py
"""

import doctest
import glob
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Top-level directories whose inline-code mentions are treated as paths.
_PATH_ROOTS = ("src", "docs", "tests", "benchmarks", "examples", "tools",
               ".github")

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_INLINE_CODE_RE = re.compile(r"(?<!`)`([^`\n]+)`(?!`)")
_FENCE_RE = re.compile(r"^```")
_PYTHON_FENCE_RE = re.compile(r"^```python\s*$")


def doc_files(root=REPO_ROOT):
    """The documentation set under check."""
    files = [os.path.join(root, "README.md"), os.path.join(root, "DESIGN.md")]
    files.extend(sorted(glob.glob(os.path.join(root, "docs", "*.md"))))
    return [path for path in files if os.path.exists(path)]


def _strip_fenced_blocks(text):
    """Drop fenced code blocks (path checking applies to prose only)."""
    out, in_fence = [], False
    for line in text.splitlines():
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def _looks_like_repo_path(token):
    if not re.fullmatch(r"[A-Za-z0-9_.\-/]+", token):
        return False
    if "/" not in token or "*" in token or ".." in token:
        return False
    return token.split("/", 1)[0] in _PATH_ROOTS


def check_links(root=REPO_ROOT):
    """Problems with markdown links and inline-code path references."""
    problems = []
    for path in doc_files(root):
        relname = os.path.relpath(path, root)
        with open(path) as handle:
            text = handle.read()
        base = os.path.dirname(path)
        # Both passes check prose only: link syntax or path-like tokens
        # inside fenced example blocks are illustration, not references.
        prose = _strip_fenced_blocks(text)
        for target in _LINK_RE.findall(prose):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = os.path.normpath(
                os.path.join(base, target.split("#", 1)[0]))
            if not os.path.exists(resolved):
                problems.append("%s: broken link -> %s" % (relname, target))
        for token in _INLINE_CODE_RE.findall(prose):
            token = token.strip()
            if not _looks_like_repo_path(token):
                continue
            resolved = os.path.join(root, token.rstrip("/"))
            if not os.path.exists(resolved):
                problems.append("%s: referenced path missing -> %s"
                                % (relname, token))
    return problems


def _fenced_python_blocks(text):
    """Yield (first_line_number, block_text) for ```python fences."""
    lines = text.splitlines()
    block, start, in_block = [], 0, False
    for number, line in enumerate(lines, 1):
        if in_block:
            if _FENCE_RE.match(line.strip()):
                yield start, "\n".join(block)
                block, in_block = [], False
            else:
                block.append(line)
        elif _PYTHON_FENCE_RE.match(line.strip()):
            in_block, start = True, number + 1
    # An unterminated fence is itself a doc bug; surface the content.
    if in_block and block:
        yield start, "\n".join(block)


def run_doctests(root=REPO_ROOT):
    """Problems from executing fenced ``python`` doctest examples."""
    problems = []
    parser = doctest.DocTestParser()
    for path in doc_files(root):
        relname = os.path.relpath(path, root)
        with open(path) as handle:
            text = handle.read()
        for line_number, block in _fenced_python_blocks(text):
            if ">>>" not in block:
                continue
            name = "%s:%d" % (relname, line_number)
            test = parser.get_doctest(block, {}, name, relname, line_number)
            runner = doctest.DocTestRunner(
                verbose=False, optionflags=doctest.ELLIPSIS)
            output = []
            runner.run(test, out=output.append)
            if runner.failures:
                problems.append("%s: %d doctest failure(s)\n%s"
                                % (name, runner.failures, "".join(output)))
    return problems


def main():
    problems = check_links() + run_doctests()
    for problem in problems:
        print(problem)
    files = len(doc_files())
    if problems:
        print("FAIL: %d problem(s) across %d documentation files"
              % (len(problems), files))
        return 1
    print("OK: %d documentation files, links resolve, doctests pass"
          % files)
    return 0


if __name__ == "__main__":
    sys.exit(main())
