"""The superblock tier: formation, codegen, and consumer equivalence.

Formation is tested against hand-built translation blocks (what chains
may and may not fuse); the consumer tests drive the real original-binary
harness and the synthesized-driver runtime with superblocks forced hot
and assert the observations are bit-identical to the per-block tier --
the same claim the validation matrix makes across OSes, applied across
execution tiers.
"""

import pytest

from repro.drivers import build_driver, device_class
from repro.eval.runner import get_cache
from repro.guestos.harness import DriverHarness
from repro.ir import (
    SuperblockConfig,
    SuperblockManager,
    TranslationBlock,
    superblock_counters,
    superblock_source,
)
from repro.ir import nodes as N
from repro.isa.encoding import INSTR_SIZE
from repro.net import UdpWorkload
from repro.targetos import TARGET_OSES
from repro.templates import DmaNicTemplate
from repro.validate.observe import OriginalDut
from repro.validate.scenarios import CATALOG, run_scenario

MAC = b"\x52\x54\x00\xAA\xBB\xCC"
PEER = b"\x02\x00\x00\x00\x00\x01"

_HOT = SuperblockConfig(hot_threshold=1)


def _block(pc, terminator, n_instr=2, reg=1):
    """A synthetic translation block: sets ``r<reg> = pc`` then ends in
    ``terminator`` (``None`` for a terminator-less split-block head)."""
    ops = [N.IrConst(dst=0, value=pc), N.IrSetReg(reg=reg, src=0)]
    if terminator is not None:
        ops.append(terminator)
    return TranslationBlock(
        pc=pc, size=n_instr * INSTR_SIZE,
        instr_addrs=[pc + i * INSTR_SIZE for i in range(n_instr)],
        ops=ops)


def _linear(block_map, start, count, stride=0x40):
    """``count`` blocks chained by direct jumps starting at ``start``."""
    pcs = [start + i * stride for i in range(count)]
    for i, pc in enumerate(pcs):
        term = N.IrJump(target=pcs[i + 1]) if i + 1 < count else N.IrHalt()
        block_map[pc] = _block(pc, term)
    return pcs


class TestFormation:
    @pytest.fixture(autouse=True)
    def _no_code_cache(self, monkeypatch):
        """Chain hints are keyed by head-block content; the synthetic
        blocks here repeat across tests, so a shared persistent cache
        would let one test's hint pre-form another test's chain."""
        from repro.ir.codecache import CODE_CACHE_ENV
        monkeypatch.setenv(CODE_CACHE_ENV, "off")

    def _manager(self, block_map, **config):
        return SuperblockManager(block_map.get, "static",
                                 config=SuperblockConfig(hot_threshold=1,
                                                         **config))

    def test_direct_jump_chain(self):
        block_map = {}
        pcs = _linear(block_map, 0x1000, 3)
        manager = self._manager(block_map)
        sb = manager.lookup(0x1000)
        assert sb is not None
        assert [b.pc for b in sb.blocks] == pcs

    def test_max_members_bounds_chain(self):
        block_map = {}
        pcs = _linear(block_map, 0x1000, 12)
        manager = self._manager(block_map, max_members=4)
        sb = manager.lookup(0x1000)
        assert [b.pc for b in sb.blocks] == pcs[:4]

    def test_back_edge_stops_chain(self):
        block_map = {
            0x1000: _block(0x1000, N.IrJump(target=0x1040)),
            0x1040: _block(0x1040, N.IrJump(target=0x1000)),
        }
        manager = self._manager(block_map)
        sb = manager.lookup(0x1000)
        assert [b.pc for b in sb.blocks] == [0x1000, 0x1040]

    @pytest.mark.parametrize("terminator", [
        N.IrCall(target=0x2000, indirect=False, return_pc=0x1010),
        N.IrRet(addr=1, cleanup=0),
        N.IrHalt(),
        N.IrJump(target=1, indirect=True),
    ])
    def test_chain_never_grows_past(self, terminator):
        """Calls, returns, halts and indirect jumps end a chain: they
        may terminate the last member but never link to another."""
        block_map = {
            0x1000: _block(0x1000, N.IrJump(target=0x1040)),
            0x1040: _block(0x1040, terminator),
            0x2000: _block(0x2000, N.IrHalt()),
        }
        manager = self._manager(block_map)
        sb = manager.lookup(0x1000)
        assert [b.pc for b in sb.blocks] == [0x1000, 0x1040]

    def test_unchainable_head_declined_once(self):
        """A head whose terminator immediately ends the chain is marked
        declined: later lookups return None without refetching."""
        calls = []

        def get_block(pc):
            calls.append(pc)
            return _block(pc, N.IrHalt())

        manager = SuperblockManager(get_block, "static", config=_HOT)
        assert manager.lookup(0x1000) is None
        fetches = len(calls)
        assert manager.lookup(0x1000) is None
        assert len(calls) == fetches, "declined heads must not refetch"

    def test_terminator_less_head_falls_through(self):
        """Split-block heads (no terminator) chain to their end_pc."""
        block_map = {
            0x1000: _block(0x1000, None),
            0x1010: _block(0x1010, N.IrHalt()),
        }
        manager = self._manager(block_map)
        sb = manager.lookup(0x1000)
        assert [b.pc for b in sb.blocks] == [0x1000, 0x1010]

    def test_condjump_follows_hotter_edge(self):
        taken, fallthrough = 0x1200, 0x1040
        block_map = {
            0x1000: _block(0x1000, N.IrCondJump(cond=0, target=taken,
                                                fallthrough=fallthrough)),
            fallthrough: _block(fallthrough, N.IrHalt()),
            taken: _block(taken, N.IrHalt()),
        }
        manager = SuperblockManager(
            block_map.get, "static",
            config=SuperblockConfig(hot_threshold=3))
        # Two observed traversals of the taken edge, none of the other.
        assert manager.lookup(0x1000) is None
        assert manager.lookup(taken) is None
        assert manager.lookup(0x1000) is None
        assert manager.lookup(taken) is None
        sb = manager.lookup(0x1000)
        assert sb is not None
        assert [b.pc for b in sb.blocks] == [0x1000, taken]

    def test_condjump_tie_prefers_fallthrough(self):
        taken, fallthrough = 0x1200, 0x1040
        block_map = {
            0x1000: _block(0x1000, N.IrCondJump(cond=0, target=taken,
                                                fallthrough=fallthrough)),
            fallthrough: _block(fallthrough, N.IrHalt()),
            taken: _block(taken, N.IrHalt()),
        }
        manager = SuperblockManager(
            block_map.get, "static",
            config=SuperblockConfig(hot_threshold=3))
        assert manager.lookup(0x1000) is None
        assert manager.lookup(taken) is None
        assert manager.lookup(0x1000) is None
        assert manager.lookup(fallthrough) is None
        sb = manager.lookup(0x1000)
        assert [b.pc for b in sb.blocks] == [0x1000, fallthrough]

    def test_invalidate_drops_chains_and_profile(self):
        block_map = {}
        _linear(block_map, 0x1000, 3)
        manager = self._manager(block_map)
        assert manager.lookup(0x1000) is not None
        manager.invalidate()
        assert not manager._supers and not manager._counts
        assert manager.lookup(0x1000) is not None

    def test_flavor_validation(self):
        with pytest.raises(ValueError):
            SuperblockManager({}.get, "jit")
        with pytest.raises(ValueError):
            SuperblockManager({}.get, "dynamic")  # needs read_code


class TestCodegen:
    def _blocks(self):
        block_map = {}
        _linear(block_map, 0x1000, 3)
        return [block_map[0x1000 + i * 0x40] for i in range(3)]

    def test_source_is_deterministic(self):
        blocks = self._blocks()
        assert superblock_source(blocks, True) \
            == superblock_source(blocks, True)
        assert superblock_source(blocks, False) \
            == superblock_source(blocks, False)

    def test_static_flavor_has_no_store_guard(self):
        blocks = self._blocks()
        dynamic = superblock_source(blocks, True)
        static = superblock_source(blocks, False)
        assert "_w" in dynamic and "env.cpu.pc" in dynamic
        assert "_w" not in static and "env.cpu.pc" not in static

    def test_counters_flush_in_finally(self):
        source = superblock_source(self._blocks(), False)
        assert "finally:" in source
        assert "env.instrs_retired += _i" in source


class TestHarnessEquivalence:
    """Original binary, full driver lifecycle: superblocks on vs off."""

    def _lifecycle(self, superblocks):
        harness = DriverHarness(build_driver("rtl8029"),
                                device_class("rtl8029"), mac=MAC,
                                exec_backend="compiled",
                                exec_superblocks=superblocks)
        harness.boot()
        workload = UdpWorkload(MAC, PEER, 128)
        statuses = [harness.send(workload.next_frame().to_bytes())
                    for _ in range(4)]
        delivered = harness.inject_rx(
            UdpWorkload(PEER, MAC, 64).next_frame().to_bytes())
        statuses.append(harness.halt())
        cpu = harness.machine.cpu
        return {
            "statuses": statuses,
            "delivered": [f.hex() for f in delivered],
            "wire": [f.hex() for f in harness.medium.transmitted],
            "instret": cpu.instret,
            "io_ops": cpu.io_ops,
            "mem_ops": cpu.mem_ops,
            "irqs": harness.env.irq_count,
        }

    def test_lifecycle_identical_and_chains_ran(self):
        baseline = self._lifecycle(False)
        before = superblock_counters()
        fused = self._lifecycle(_HOT)
        after = superblock_counters()
        assert fused == baseline
        assert after["superblock_runs"] > before["superblock_runs"], \
            "a hot boot+TX+RX lifecycle must actually dispatch chains"

    def test_scenario_observation_identical(self):
        scenario = CATALOG["udp_stream"]
        observations = []
        for superblocks in (False, _HOT):
            dut = OriginalDut("rtl8029", exec_backend="compiled",
                              exec_superblocks=superblocks)
            dut.boot()
            observations.append(run_scenario(dut, scenario).to_dict())
            dut.shutdown()
        assert observations[0] == observations[1]


class TestSynthesizedEquivalence:
    """Synthesized driver in the target-OS template: on vs off."""

    def _lifecycle(self, artifact, superblocks):
        target = TARGET_OSES["winsim"](device_class("rtl8029"), mac=MAC)
        template = DmaNicTemplate(artifact.synthesized, target,
                                  original_image=artifact.image,
                                  exec_backend="compiled",
                                  exec_superblocks=superblocks)
        template.initialize()
        workload = UdpWorkload(MAC, PEER, 96)
        statuses = [template.send(workload.next_frame().to_bytes())
                    for _ in range(3)]
        env = template.runtime.env
        return {
            "statuses": statuses,
            "wire": [f.hex() for f in target.medium.transmitted],
            "instrs": env.instrs_retired,
            "ops": env.ops_retired,
            "io_ops": env.io_ops,
            "irqs": target.irq_count,
        }

    def test_template_identical_and_chains_ran(self):
        artifact = get_cache().run("rtl8029")
        baseline = self._lifecycle(artifact, False)
        before = superblock_counters()
        fused = self._lifecycle(artifact, _HOT)
        after = superblock_counters()
        assert fused == baseline
        assert after["superblock_runs"] > before["superblock_runs"]


class TestChainHintPrefetch:
    """Chain-membership hints prefetch block sources in the symex
    concrete fast path: a warm process imports persisted sources for the
    whole chain the moment it steps the head block, instead of
    regenerating them one miss at a time.  Chains stay *off* during
    symex -- per-block stepping is the artifact byte contract -- so the
    prefetch must leave the artifact bytes untouched."""

    def _fresh_process(self):
        from repro.ir import codecache
        from repro.ir import compile as ircompile
        from repro.ir import superblock as sb
        codecache.forget_stores()
        ircompile._SHARED_PROGRAMS.clear()
        sb._SHARED_CHAINS.clear()

    def test_warm_symex_imports_prefetched_chain_sources(
            self, tmp_path, monkeypatch):
        from repro.ir import codecache
        from repro.net.traffic import ScenarioProgram, ScenarioStep
        from repro.pipeline.artifact import canonical_json
        from repro.pipeline.orchestrator import execute_run

        monkeypatch.setenv(codecache.CODE_CACHE_ENV, str(tmp_path))
        self._fresh_process()

        # Cold reference: no persisted hints to consult.
        cold = canonical_json(execute_run("rtl8029"))

        # Warm the store: a hot superblock run persists block sources
        # *and* dynamic chain-membership hints for the traced heads.
        program = ScenarioProgram(name="hint-warm", seed=0, steps=(
            ScenarioStep("send_burst", {"size": 128, "count": 3}),
            ScenarioStep("inject_burst", {"size": 96, "count": 3}),
            ScenarioStep("service", {}),
        ) * 3, description="persist chain hints")
        dut = OriginalDut("rtl8029", exec_backend="compiled",
                          exec_superblocks=_HOT)
        assert run_scenario(dut, program).ok
        assert codecache.codecache_counters()["persisted"] > 0

        self._fresh_process()
        before = dict(codecache.codecache_counters())
        warm = canonical_json(execute_run("rtl8029"))
        delta = {key: value - before.get(key, 0)
                 for key, value in codecache.codecache_counters().items()}
        assert delta["hints"] > 0, \
            "warm symex never consulted a chain-membership hint"
        assert delta["imported"] > 0, \
            "prefetched chain members must import, not regenerate"
        assert warm == cold, \
            "the prefetch changed the artifact bytes"
