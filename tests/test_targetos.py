"""Unit tests for the target-OS simulators and template machinery."""

import pytest

from repro.drivers import device_class
from repro.errors import TemplateError
from repro.targetos import KitOs, LinSim, TARGET_OSES, UcSim, WinSim


def make(os_cls, device="rtl8029"):
    return os_cls(device_class(device))


class TestAdaptationTables:
    @pytest.mark.parametrize("os_cls", list(TARGET_OSES.values()))
    def test_covers_standard_api(self, os_cls):
        table = make(os_cls).adaptation_table()
        for name in ("NdisAllocateMemory", "NdisMIndicateReceivePacket",
                     "NdisMSendComplete", "NdisMRegisterIoPortRange"):
            assert name in table

    def test_unknown_api_raises(self):
        target = make(WinSim)
        with pytest.raises(TemplateError, match="no adaptation"):
            target.call("NdisBogusCall", lambda i: 0)

    @pytest.mark.parametrize("os_cls", list(TARGET_OSES.values()))
    @pytest.mark.parametrize("name", [
        "NdisMRegisterAdapterShutdownHandler",   # real NDIS, not adapted
        "IoConnectInterrupt",                    # wrong-kernel API
        "netif_rx",                              # target-native name
        "",                                      # degenerate
    ])
    def test_unadapted_api_raises_template_error(self, os_cls, name):
        """An incomplete template surfaces as TemplateError naming the
        OS -- never a bare KeyError from the table lookup."""
        target = make(os_cls)
        with pytest.raises(TemplateError, match=target.TRAITS.name):
            target.call(name, lambda i: 0)

    def test_linsim_reroutes_receive_to_netif_rx(self):
        target = make(LinSim)
        target.machine.memory.write_bytes(0x00600000, b"hello!" + b"\0" * 60)
        args = {0: 0x00600000, 1: 6}
        retval, nargs = target.call("NdisMIndicateReceivePacket",
                                    lambda i: args[i])
        assert nargs == 2
        assert target.received_frames == [b"hello!"]

    def test_linsim_printk(self):
        target = make(LinSim)
        target.call("NdisWriteErrorLogEntry", lambda i: 0xE0000042)
        assert target.printk_log == [0xE0000042]

    def test_ucsim_has_no_dma_api(self):
        target = make(UcSim, device="smc91c111")
        with pytest.raises(TemplateError, match="no DMA"):
            target.call("NdisMAllocateSharedMemory", lambda i: 64)

    def test_kitos_traits(self):
        assert KitOs.TRAITS.stack_cost == 0
        assert not KitOs.TRAITS.has_network_stack


class TestKernelServices:
    def test_alloc_is_monotonic_and_aligned(self):
        target = make(WinSim)
        first = target.alloc(100, align=64)
        second = target.alloc(10, align=64)
        assert second > first
        assert first % 64 == 0 and second % 64 == 0

    def test_shared_alloc_writes_physical(self):
        target = make(WinSim)
        out_ptr = target.alloc(4)
        args = {0: 256, 1: out_ptr}
        virt, nargs = target.call("NdisMAllocateSharedMemory",
                                  lambda i: args[i])
        assert nargs == 2
        assert target.machine.memory.read(out_ptr, 4) == virt

    def test_timer_lifecycle(self):
        target = make(WinSim)
        args = {0: 0x1000, 1: 0x00400500}
        target.call("NdisInitializeTimer", lambda i: args[i])
        assert not target.timers[0x1000]["due"]
        set_args = {0: 0x1000, 1: 50}
        target.call("NdisSetTimer", lambda i: set_args[i])
        assert target.timers[0x1000]["due"]
        target.call("NdisMCancelTimer", lambda i: 0x1000)
        assert not target.timers[0x1000]["due"]

    def test_irq_latching(self):
        target = make(WinSim)
        assert not target.irq_pending
        target.device.irq_callback()
        assert target.irq_pending

    def test_api_call_counter(self):
        target = make(WinSim)
        target.call("NdisStallExecution", lambda i: 10)
        target.call("NdisStallExecution", lambda i: 10)
        assert target.api_call_count == 2


class TestOsTraitsOrdering:
    def test_stack_costs_reflect_paper(self):
        """NDIS heaviest, Linux lighter, embedded lighter still, KitOS
        zero -- the OS-differences behind the figures."""
        assert WinSim.TRAITS.stack_cost > LinSim.TRAITS.stack_cost \
            > UcSim.TRAITS.stack_cost > KitOs.TRAITS.stack_cost


class TestOsTraitsFeedPerfModel:
    """Each OS's OsTraits must be a consistent perf-model input."""

    @pytest.mark.parametrize("name", sorted(TARGET_OSES))
    def test_traits_identity_and_ranges(self, name):
        traits = TARGET_OSES[name].TRAITS
        assert traits.name == name
        assert traits.stack_cost >= 0
        assert traits.irq_cost > 0
        assert traits.syscall_cost > 0
        assert traits.stack_per_byte >= 0.0
        # no network stack <=> no per-packet stack cost
        assert traits.has_network_stack == (traits.stack_cost > 0)
        assert traits.has_network_stack == (traits.stack_per_byte > 0)

    @pytest.mark.parametrize("name", sorted(TARGET_OSES))
    def test_model_point_is_sane_for_every_os(self, name):
        from repro.eval.perfmodel import DriverCost, PLATFORMS, model_point

        traits = TARGET_OSES[name].TRAITS
        cost = DriverCost(instructions=5000.0, io_accesses=40.0,
                          uses_dma=False)
        point = model_point(1000, cost, traits, PLATFORMS["pc"])
        assert point.throughput_mbps > 0
        assert 0.0 < point.cpu_utilization <= 1.0
        assert 0.0 < point.driver_fraction <= 1.0

    def test_stack_cost_orders_modeled_throughput(self):
        """The same measured driver cost must get slower, not faster, on
        an OS with a heavier network stack -- the figures' OS ordering."""
        from repro.eval.perfmodel import DriverCost, PLATFORMS, model_point

        cost = DriverCost(instructions=5000.0, io_accesses=40.0,
                          uses_dma=False)
        throughput = {
            name: model_point(1000, cost, TARGET_OSES[name].TRAITS,
                              PLATFORMS["qemu"]).throughput_mbps
            for name in TARGET_OSES
        }
        assert throughput["kitos"] > throughput["ucsim"] \
            > throughput["linsim"] > throughput["winsim"]
