"""Unit tests for the target-OS simulators and template machinery."""

import pytest

from repro.drivers import device_class
from repro.errors import TemplateError
from repro.targetos import KitOs, LinSim, TARGET_OSES, UcSim, WinSim


def make(os_cls, device="rtl8029"):
    return os_cls(device_class(device))


class TestAdaptationTables:
    @pytest.mark.parametrize("os_cls", list(TARGET_OSES.values()))
    def test_covers_standard_api(self, os_cls):
        table = make(os_cls).adaptation_table()
        for name in ("NdisAllocateMemory", "NdisMIndicateReceivePacket",
                     "NdisMSendComplete", "NdisMRegisterIoPortRange"):
            assert name in table

    def test_unknown_api_raises(self):
        target = make(WinSim)
        with pytest.raises(TemplateError, match="no adaptation"):
            target.call("NdisBogusCall", lambda i: 0)

    def test_linsim_reroutes_receive_to_netif_rx(self):
        target = make(LinSim)
        target.machine.memory.write_bytes(0x00600000, b"hello!" + b"\0" * 60)
        args = {0: 0x00600000, 1: 6}
        retval, nargs = target.call("NdisMIndicateReceivePacket",
                                    lambda i: args[i])
        assert nargs == 2
        assert target.received_frames == [b"hello!"]

    def test_linsim_printk(self):
        target = make(LinSim)
        target.call("NdisWriteErrorLogEntry", lambda i: 0xE0000042)
        assert target.printk_log == [0xE0000042]

    def test_ucsim_has_no_dma_api(self):
        target = make(UcSim, device="smc91c111")
        with pytest.raises(TemplateError, match="no DMA"):
            target.call("NdisMAllocateSharedMemory", lambda i: 64)

    def test_kitos_traits(self):
        assert KitOs.TRAITS.stack_cost == 0
        assert not KitOs.TRAITS.has_network_stack


class TestKernelServices:
    def test_alloc_is_monotonic_and_aligned(self):
        target = make(WinSim)
        first = target.alloc(100, align=64)
        second = target.alloc(10, align=64)
        assert second > first
        assert first % 64 == 0 and second % 64 == 0

    def test_shared_alloc_writes_physical(self):
        target = make(WinSim)
        out_ptr = target.alloc(4)
        args = {0: 256, 1: out_ptr}
        virt, nargs = target.call("NdisMAllocateSharedMemory",
                                  lambda i: args[i])
        assert nargs == 2
        assert target.machine.memory.read(out_ptr, 4) == virt

    def test_timer_lifecycle(self):
        target = make(WinSim)
        args = {0: 0x1000, 1: 0x00400500}
        target.call("NdisInitializeTimer", lambda i: args[i])
        assert not target.timers[0x1000]["due"]
        set_args = {0: 0x1000, 1: 50}
        target.call("NdisSetTimer", lambda i: set_args[i])
        assert target.timers[0x1000]["due"]
        target.call("NdisMCancelTimer", lambda i: 0x1000)
        assert not target.timers[0x1000]["due"]

    def test_irq_latching(self):
        target = make(WinSim)
        assert not target.irq_pending
        target.device.irq_callback()
        assert target.irq_pending

    def test_api_call_counter(self):
        target = make(WinSim)
        target.call("NdisStallExecution", lambda i: 10)
        target.call("NdisStallExecution", lambda i: 10)
        assert target.api_call_count == 2


class TestOsTraitsOrdering:
    def test_stack_costs_reflect_paper(self):
        """NDIS heaviest, Linux lighter, embedded lighter still, KitOS
        zero -- the OS-differences behind the figures."""
        assert WinSim.TRAITS.stack_cost > LinSim.TRAITS.stack_cost \
            > UcSim.TRAITS.stack_cost > KitOs.TRAITS.stack_cost
