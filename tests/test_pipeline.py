"""End-to-end pipeline tests: binary -> RevNIC -> synthesis -> target OS.

These are the Table 2 style functional-equivalence checks as regular
tests, parametrized over the corpus, with I/O-trace comparison between the
original and the synthesized driver.
"""

import pytest

from repro.drivers import DRIVERS, build_driver, device_class
from repro.eval.runner import get_cache
from repro.guestos.harness import DriverHarness
from repro.guestos.structures import NdisStatus
from repro.layout import HEAP_BASE
from repro.net import EthernetFrame, EtherType
from repro.targetos import KitOs, LinSim, WinSim
from repro.templates import NicTemplate

MAC = b"\x52\x54\x00\xAA\xBB\xCC"
ALL = sorted(DRIVERS)


@pytest.fixture(scope="module", params=ALL)
def run(request):
    return get_cache().run(request.param)


def make_template(run, os_cls=WinSim):
    target = os_cls(device_class(run.name), mac=MAC)
    template = NicTemplate(run.synthesized, target, original_image=run.image)
    template.initialize()
    return template, target


def frame(dst=b"\xff" * 6, payload=b"x" * 64):
    return EthernetFrame(dst=dst, src=b"\x02" * 6,
                         ethertype=EtherType.IPV4,
                         payload=payload).to_bytes()


class TestReverseEngineering:
    def test_coverage_above_80_percent(self, run):
        assert run.coverage_fraction > 0.80

    def test_all_entry_points_discovered(self, run):
        expected = {"initialize", "send", "isr", "set_information",
                    "query_information", "reset", "halt"}
        assert expected <= set(run.entry_points)

    def test_entry_points_synthesized(self, run):
        assert set(run.entry_points) \
            <= set(run.synthesized.entry_points)

    def test_c_source_generated(self, run):
        source = run.synthesized.c_source
        assert "goto" in source
        assert "revnic_runtime.h" in source
        # every recovered function appears in the translation unit
        for function in run.synthesized.functions.values():
            assert function.name.split("_")[-1] in source or \
                function.name in source

    def test_report_consistency(self, run):
        report = run.synthesized.report
        assert report.function_count == len(run.synthesized.functions)
        assert report.fully_synthesized_count + report.manual_count \
            == report.function_count
        assert 0.4 < report.automated_fraction <= 1.0


class TestSynthesizedFunctional:
    def test_send_receive_on_winsim(self, run):
        template, target = make_template(run)
        tx = frame()
        assert template.send(tx) == NdisStatus.SUCCESS
        assert target.medium.transmitted == [tx]
        rx = frame(dst=MAC, payload=b"y" * 99)
        assert template.inject_rx(rx) == [rx]

    def test_send_receive_on_linsim(self, run):
        template, target = make_template(run, LinSim)
        tx = frame()
        assert template.send(tx) == NdisStatus.SUCCESS
        rx = frame(dst=MAC)
        assert template.inject_rx(rx) == [rx]

    def test_send_on_kitos(self, run):
        template, target = make_template(run, KitOs)
        tx = frame()
        assert template.send(tx) == NdisStatus.SUCCESS
        assert target.medium.transmitted == [tx]

    def test_error_path_preserved(self, run):
        """The synthesized driver rejects oversized packets just like the
        original (the recovered error paths work)."""
        template, target = make_template(run)
        status = template.send(b"z" * 1600)
        assert status in (NdisStatus.INVALID_LENGTH, NdisStatus.FAILURE)
        assert target.medium.transmitted == []

    def test_shutdown_stops_device(self, run):
        template, target = make_template(run)
        template.shutdown()
        assert not target.device.rx_enabled


def _pointerish(value):
    return isinstance(value, int) and value >= HEAP_BASE


def _device_trace(machine_bus, records):
    machine_bus.observer = lambda *args: records.append(args)


class TestIoTraceEquivalence:
    """The paper's correctness methodology: run original and synthesized
    drivers on the same workload and compare hardware-I/O traces."""

    def test_send_io_sequence_matches(self, run):
        # Original on the source OS.
        original = DriverHarness(build_driver(run.name),
                                 device_class(run.name), mac=MAC)
        original_trace = []
        _device_trace(original.machine.bus, original_trace)
        original.boot()
        tx = frame()
        original.send(tx)

        # Synthesized on the same OS.
        template, target = make_template(run)
        synth_trace = []
        _device_trace(target.machine.bus, synth_trace)
        # re-run init so both traces include it? No: compare only the send.
        synth_trace.clear()
        template.send(tx)

        original_send = original_trace[-len(synth_trace):] \
            if synth_trace else []
        assert len(synth_trace) > 0
        # Compare access kind/address/width/direction exactly; values are
        # compared except where both sides wrote (differing) heap pointers.
        tail = original_trace[len(original_trace) - len(synth_trace):]
        assert len(tail) == len(synth_trace)
        for (k1, a1, w1, v1, d1), (k2, a2, w2, v2, d2) in \
                zip(tail, synth_trace):
            assert (k1, a1, w1, d1) == (k2, a2, w2, d2)
            if not (_pointerish(v1) and _pointerish(v2)):
                assert v1 == v2, (hex(a1), v1, v2)
