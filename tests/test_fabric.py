"""The fleet-scale switched fabric: switch semantics, workloads, fleet
determinism, and the switch-transparency differential.

The switch data path (learning + aging, flood-on-unknown, hairpin
filtering, bounded-queue drops, delivery-order determinism, runt policy)
is tested against hand-built frames; the fleet tests run real
synthesized endpoints from the warm artifact cache and assert the
fabric's core claims: same seed + topology => byte-identical canonical
report (across runs and across scheduler modes), and a driver cannot
tell a switched segment from a dedicated medium (the mirror verdict).
"""

import json
import random
import zlib

import pytest

from repro.eval.runner import get_cache
from repro.net import BROADCAST_MAC, Medium
from repro.net.crc import crc32_ethernet, crc32_ethernet_reference
from repro.net.fabric import (
    EndpointProgram,
    FleetWorkload,
    HostEndpoint,
    SwitchNode,
    WORKLOADS,
    build_workload,
    canonical_fabric_json,
    fabric_key,
    fabric_mac,
    fleet_specs,
    load_fabric_report,
    mirror_verdict,
    run_fleet,
    save_fabric_report,
)
from repro.net.traffic import ScenarioProgram, ScenarioStep
from repro.pipeline import ArtifactStore
from repro.validate.observe import OriginalDut, SynthesizedDut

A, B, C, D = fabric_mac(0), fabric_mac(1), fabric_mac(2), fabric_mac(3)


def _frame(dst, src, payload=b"\x00" * 50):
    return dst + src + b"\x08\x00" + payload


class TestCrcEquivalence:
    def test_zlib_matches_reference_on_random_frames(self):
        rng = random.Random(0xC2C)
        for _ in range(64):
            data = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(1, 1600)))
            assert crc32_ethernet(data) == crc32_ethernet_reference(data)

    def test_edge_lengths(self):
        for data in (b"", b"\x00", b"\xff" * 4, b"123456789"):
            assert crc32_ethernet(data) == crc32_ethernet_reference(data)
        # the classic CRC-32 check value
        assert crc32_ethernet(b"123456789") == 0xCBF43926

    def test_bytearray_and_memoryview_accepted(self):
        data = bytes(range(64))
        want = zlib.crc32(data) & 0xFFFFFFFF
        assert crc32_ethernet(bytearray(data)) == want
        assert crc32_ethernet(memoryview(data)) == want
        assert crc32_ethernet_reference(bytearray(data)) == want


class TestMediumBytearray:
    def test_transmit_normalizes_to_bytes(self):
        medium = Medium()
        medium.transmit(bytearray(b"x" * 60))
        assert medium.transmitted == [b"x" * 60]
        popped = medium.pop_transmitted()
        assert popped == [b"x" * 60]
        assert all(type(f) is bytes for f in popped)
        assert medium.pending_tx() == 0

    def test_inject_normalizes_to_bytes(self):
        medium = Medium()
        sink = []
        medium.attach(type("Nic", (), {
            "receive_frame": staticmethod(sink.append)})())
        medium.inject(bytearray(b"z" * 60))
        assert sink == [b"z" * 60]
        assert type(sink[0]) is bytes


class TestSendToOp:
    def test_send_to_addresses_the_named_station(self):
        dut = OriginalDut("rtl8029")
        dut.boot()
        step = ScenarioStep("send_to", {"dst": C.hex(), "count": 2,
                                        "size": 96})
        step.execute(dut)
        frames = dut.medium.pop_transmitted()
        assert len(frames) == 2
        assert all(frame[0:6] == C for frame in frames)
        assert all(frame[6:12] == dut.mac for frame in frames)

    def test_send_to_round_trips(self):
        step = ScenarioStep("send_to", {"dst": B.hex(), "count": 1,
                                        "size": 64})
        assert ScenarioStep.from_list(step.to_list()) == step


class TestSwitchSemantics:
    def test_learning_and_unicast_forwarding(self):
        switch = SwitchNode(3)
        switch.switch_batch(0, [_frame(B, A)], now=0)      # A unknown -> B
        assert switch.lookup(A, 0) == 0
        assert switch.unknown_floods == 1
        switch.drain(1), switch.drain(2)
        switch.switch_batch(1, [_frame(A, B)], now=1)      # A is known now
        assert switch.lookup(B, 1) == 1
        assert switch.drain(0) == [_frame(A, B)]
        assert switch.drain(2) == []
        assert switch.unknown_floods == 1

    def test_aging_expires_entries(self):
        switch = SwitchNode(2, mac_age=4)
        switch.switch_batch(0, [_frame(B, A)], now=0)
        assert switch.lookup(A, 4) == 0
        assert switch.lookup(A, 5) is None                  # past mac_age
        assert switch.expire(5) == 1
        assert switch.aged_out == 1
        assert A not in switch.table

    def test_stale_relearn_counts_as_aged(self):
        # The batched scheduler only expires on event ticks; a stale entry
        # relearned before expire() ran must still count as aged so both
        # modes report identical aging counters.
        switch = SwitchNode(2, mac_age=4)
        switch.switch_batch(0, [_frame(B, A)], now=0)
        switch.switch_batch(0, [_frame(B, A)], now=9)
        assert switch.aged_out == 1
        assert switch.lookup(A, 9) == 0

    def test_flood_on_unknown_walks_ports_in_order(self):
        switch = SwitchNode(4)
        switch.switch_batch(1, [_frame(D, A)], now=0)
        assert switch.drain(0) == [_frame(D, A)]
        assert switch.drain(2) == [_frame(D, A)]
        assert switch.drain(3) == [_frame(D, A)]
        assert switch.drain(1) == []                        # never hairpins

    def test_hairpin_filtered(self):
        switch = SwitchNode(3)
        switch.switch_batch(0, [_frame(B, A)], now=0)       # learn A@0
        switch.switch_batch(0, [_frame(C, B)], now=0)       # learn B@0 too
        for port in range(3):
            switch.drain(port)
        switch.switch_batch(0, [_frame(A, C)], now=0)       # dst on ingress
        assert switch.filtered == 1
        assert switch.pending() == 0

    def test_bounded_queue_drop_accounting(self):
        switch = SwitchNode(2, queue_depth=2)
        frames = [_frame(BROADCAST_MAC, A, bytes([i]) * 50)
                  for i in range(5)]
        switch.switch_batch(0, frames, now=0)
        assert len(switch.ports[1].queue) == 2
        assert switch.ports[1].drops == 3
        assert switch.stats()["queue_drops"] == 3
        assert switch.drain(1) == frames[:2]                # FIFO survivors

    def test_broadcast_vs_unicast_delivery_order_deterministic(self):
        def run():
            switch = SwitchNode(4)
            switch.switch_batch(2, [_frame(A, C)], now=0)   # learn C@2
            for port in range(4):
                switch.drain(port)
            switch.switch_batch(0, [_frame(BROADCAST_MAC, A),
                                    _frame(C, A),
                                    _frame(BROADCAST_MAC, A)], now=1)
            return [(port, [f.hex() for f in switch.drain(port)])
                    for port in range(4)]
        first, second = run(), run()
        assert first == second
        # port 2 sees broadcast, unicast, broadcast in arrival order
        assert [f[:24] for port, fs in first for f in fs
                if port == 2] == [(BROADCAST_MAC + A).hex(), (C + A).hex(),
                                  (BROADCAST_MAC + A).hex()]

    def test_runt_policy(self):
        switch = SwitchNode(2)
        switch.switch_batch(0, [b"\xff" * 5], now=0)        # no dst: drop
        assert switch.runts_dropped == 1
        assert switch.pending() == 0
        switch.switch_batch(0, [B + b"\xaa" * 2], now=0)    # dst, no src
        assert switch.frames_switched == 1
        assert switch.table == {}                           # not learned
        assert len(switch.drain(1)) == 1
        switch.switch_batch(0, [_frame(B, A)], now=0)       # full header
        assert switch.lookup(A, 0) == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match=">= 2 ports"):
            SwitchNode(1)
        with pytest.raises(ValueError, match="queue_depth"):
            SwitchNode(2, queue_depth=0)
        with pytest.raises(ValueError, match="mac_age"):
            SwitchNode(2, mac_age=0)


class TestWorkloads:
    def test_builders_are_pure_functions_of_count_and_seed(self):
        for name in WORKLOADS:
            one = build_workload(name, 8, 42)
            two = build_workload(name, 8, 42)
            assert one.to_json() == two.to_json(), name
            assert one.digest() == two.digest(), name
            other = build_workload(name, 8, 43)
            assert one.digest() != other.digest(), name

    def test_workload_round_trips(self):
        plan = build_workload("churn", 6, 7)
        again = FleetWorkload.from_dict(json.loads(plan.to_json()))
        assert again.to_json() == plan.to_json()
        assert again.count == 6

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown fleet workload"):
            build_workload("ddos", 4, 0)

    def test_all_pairs_never_self_addresses(self):
        plan = build_workload("all_pairs", 12, 5)
        for index, slot in enumerate(plan.slots):
            own = fabric_mac(index).hex()
            for step in slot.program.steps:
                if step.op == "send_to":
                    assert step.params["dst"] != own


class TestFleetSpecs:
    def test_specs_skip_unsupported_cells(self):
        from repro.validate.matrix import EXPECTED_UNSUPPORTED
        specs = fleet_specs(32)
        assert len(specs) == 32
        for spec in specs:
            assert (spec.driver, spec.os_name) not in EXPECTED_UNSUPPORTED

    def test_specs_cycle_every_supported_cell(self):
        specs = fleet_specs(28)                             # 2 x 14 cells
        cells = {(s.driver, s.os_name) for s in specs}
        assert len(cells) == 14


@pytest.fixture(scope="module")
def cache():
    return get_cache()


class TestFleetRuns:
    def _report(self, cache, plan, **kwargs):
        return run_fleet(plan, orchestrator=cache, **kwargs)

    def test_modes_agree_and_reruns_are_byte_identical(self, cache):
        plan = build_workload("saturation", 4, 1234)
        batched = self._report(cache, plan, mode="batched")
        lockstep = self._report(cache, plan, mode="lockstep")
        again = self._report(cache, plan, mode="batched")
        assert batched["switch"]["frames_switched"] > 0
        assert canonical_fabric_json(batched) \
            == canonical_fabric_json(lockstep)
        assert canonical_fabric_json(batched) \
            == canonical_fabric_json(again)
        assert batched["mode"] == "batched"
        assert lockstep["mode"] == "lockstep"

    def test_link_flap_mid_burst_three_endpoints(self, cache):
        # Endpoint 1 pulls its cable between two bursts from endpoint 0;
        # the fleet keeps running, the drops are accounted, and both
        # schedulers tell the byte-identical story.
        def talk(i, peer):
            return ScenarioStep("send_to", {"dst": fabric_mac(peer).hex(),
                                            "count": 2, "size": 96})
        slots = (
            EndpointProgram(ScenarioProgram(
                name="flap-sender", seed=0,
                steps=(talk(0, 1), talk(0, 1), ScenarioStep("service", {})),
                description="t"), start=0, stride=3),
            EndpointProgram(ScenarioProgram(
                name="flap-victim", seed=0,
                steps=(talk(1, 0),
                       ScenarioStep("link_flap",
                                    {"size": 64, "frames_down": 2}),
                       ScenarioStep("service", {})),
                description="t"), start=1, stride=3),
            EndpointProgram(ScenarioProgram(
                name="flap-bystander", seed=0,
                steps=(talk(2, 0), ScenarioStep("service", {})),
                description="t"), start=2, stride=3),
        )
        plan = FleetWorkload("flap3", 77, slots)
        batched = self._report(cache, plan, mode="batched")
        lockstep = self._report(cache, plan, mode="lockstep")
        assert canonical_fabric_json(batched) \
            == canonical_fabric_json(lockstep)
        assert batched["totals"]["step_errors"] == 0
        assert batched["totals"]["link_drops"] > 0
        assert batched["switch"]["frames_switched"] > 0

    def test_incast_fills_the_victim_queue(self, cache):
        plan = build_workload("incast", 6, 11)
        report = self._report(cache, plan, queue_depth=2)
        assert report["switch"]["queue_drops"] > 0
        assert report["topology"]["queue_depth"] == 2
        assert report["totals"]["step_errors"] == 0

    def test_report_shape_and_per_driver_aggregates(self, cache):
        plan = build_workload("saturation", 4, 9)
        report = self._report(cache, plan)
        assert report["schema_version"] == 1
        assert report["workload"]["digest"] == plan.digest()
        assert report["topology"]["ports"] == 4
        assert len(report["endpoints"]) == 4
        assert sum(cell["endpoints"]
                   for cell in report["per_driver"].values()) == 4
        for record in report["endpoints"]:
            assert record["driver"] in report["per_driver"]
            assert "instrs_retired" in record
            assert "calls" in record
        assert report["packets_per_second"] >= 0.0

    def test_store_round_trip_under_fabric_prefix(self, cache, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = build_workload("saturation", 4, 21)
        report = self._report(cache, plan)
        key = save_fabric_report(store, plan, report)
        assert key.startswith("fabric-")
        assert key == fabric_key(plan, report["topology"])
        loaded = load_fabric_report(store, plan, report["topology"])
        assert loaded is not None
        assert canonical_fabric_json(loaded) == canonical_fabric_json(report)
        assert key in store.keys(prefix="fabric-")
        assert store.keys(prefix="fuzz-") == []

    def test_fabric_soak_entry_point(self, cache, tmp_path):
        from repro.fuzz import run_fabric_soak
        store = ArtifactStore(tmp_path / "store")
        report = run_fabric_soak(orchestrator=cache, endpoints=4, seed=3,
                                 store=store)
        assert report["switch"]["frames_switched"] > 0
        assert len(store.keys(prefix="fabric-")) == 1


MIRROR_PROGRAM = ScenarioProgram(
    name="mirror-transparency", seed=0, steps=(
        ScenarioStep("send_burst", {"size": 128, "count": 2}),
        ScenarioStep("inject_burst", {"size": 96, "count": 2}),
        ScenarioStep("quiet_burst", {"size": 64, "count": 2}),
        ScenarioStep("service", {}),
        ScenarioStep("inject_tagged", {"dst": "station", "tag": 7}),
        ScenarioStep("bidirectional", {"size": 80, "rounds": 2,
                                       "pattern": [1, 2]}),
        ScenarioStep("query_mac", {}),
    ), description="fabric transparency check")


class TestMirrorDifferential:
    @pytest.mark.parametrize("driver", ["rtl8029", "rtl8139"])
    def test_fabric_is_invisible_to_the_driver(self, cache, driver):
        # rtl8029 is the PIO representative, rtl8139 the DMA one.
        artifact = cache.run(driver)

        def make_dut():
            return SynthesizedDut(artifact, "winsim",
                                  exec_backend="compiled")
        verdict, dedicated, mirrored = mirror_verdict(make_dut,
                                                      MIRROR_PROGRAM)
        assert dedicated.ok and mirrored.ok
        assert verdict.verdict == "match", verdict.mismatched_fields

    def test_mirror_reports_driver_errors_like_run_scenario(self, cache):
        artifact = cache.run("rtl8029")

        class Exploding:
            mac = fabric_mac(0)
            peer = fabric_mac(1)

            def boot(self):
                raise RuntimeError("boom")
        from repro.net.fabric import run_mirrored_program
        dut = SynthesizedDut(artifact, "winsim", exec_backend="compiled")
        dut.boot = Exploding().boot
        obs = run_mirrored_program(dut, MIRROR_PROGRAM)
        assert not obs.ok
        assert obs.error == "RuntimeError"


class TestHostEndpoint:
    def test_source_sink_contract(self):
        host = HostEndpoint(1, B)
        assert host.due_tick() is None and host.last_tick() is None
        host.queue(bytearray(_frame(A, B)))
        burst = host.harvest()
        assert burst == [_frame(A, B)]
        assert type(burst[0]) is bytes
        host.deliver([_frame(B, A)])
        assert host.received == [_frame(B, A)]
        counters = host.counters()
        assert counters["host"] and counters["tx_frames"] == 1
