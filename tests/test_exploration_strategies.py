"""Property tests: exploration strategies under frontier partitioning.

Sharded exploration (repro.symex.frontier) rests on one scheduler
invariant: on a fixed fork tree, the *set* of states a strategy explores
does not depend on how the worklist is partitioned -- a single global
queue and per-sub-tree queues below a split depth must visit the same
states.  These tests drive :class:`StateScheduler` over randomized
synthetic fork trees and require identical visit sets for all three
strategies, plus the coverage strategy's deterministic id tie-break that
the invariant relies on.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.revnic.heuristics import CoverageDrivenStrategy, \
    StateScheduler, make_strategy
from repro.symex import frontier
from repro.symex.state import PathStatus


class FakeState:
    """Just enough of SymState for the scheduler: pc/id/depth plus the
    loop-killer fields (left benign so every node gets visited)."""

    def __init__(self, path, pc, ids):
        self.path = path          # tree-node identity, not the id
        self.pc = pc
        self.id = next(ids)
        self.depth = len(path)
        self.status = PathStatus.RUNNING
        self.block_counts = {}
        self.loop_suspects = set()


@st.composite
def fork_trees(draw):
    """A random fork tree as ``{path tuple: pc}``.

    pcs come from a tiny alphabet so coverage counts tie constantly --
    the case where a position-dependent pick would diverge between
    serial and partitioned worklists.
    """
    pcs = {(): draw(st.integers(min_value=0, max_value=4))}
    paths = [()]
    for _ in range(draw(st.integers(min_value=1, max_value=25))):
        parent = draw(st.sampled_from(paths))
        index = sum(1 for path in paths
                    if len(path) == len(parent) + 1
                    and path[:-1] == parent)
        path = parent + (index,)
        pcs[path] = draw(st.integers(min_value=0, max_value=4))
        paths.append(path)
    return pcs


def _children(tree, path):
    return sorted(node for node in tree
                  if len(node) == len(path) + 1 and node[:-1] == path)


def _explore(tree, strategy_name, root, ids, park=None):
    """One scheduler loop over the synthetic tree: visiting a node forks
    its children, which enter the worklist unless parked."""
    scheduler = StateScheduler(strategy=make_strategy(strategy_name))
    scheduler.add(root)
    visited = []
    while True:
        state = scheduler.next_state()
        if state is None:
            break
        visited.append(state.path)
        for child_path in _children(tree, state.path):
            child = FakeState(child_path, tree[child_path], ids)
            if park is not None and park(child):
                continue
            scheduler.add(child)
    return visited


def _run(tree, strategy_name, split_depth):
    """Mirror the engine's partitioned phase: explore the prefix parking
    states at the split depth, then each parked sub-tree in isolation
    with a namespaced id counter (frontier.subtree_id_base)."""
    ids = itertools.count()
    root = FakeState((), tree[()], ids)
    parked = []

    def park(state):
        if split_depth and state.depth >= split_depth:
            parked.append(state)
            return True
        return False

    visited = _explore(tree, strategy_name, root, ids,
                       park if split_depth else None)
    for index, sub_root in enumerate(parked):
        sub_ids = itertools.count(frontier.subtree_id_base(index))
        visited.extend(_explore(tree, strategy_name, sub_root, sub_ids))
    return visited


@given(tree=fork_trees(),
       split=st.integers(min_value=1, max_value=4),
       name=st.sampled_from(["coverage", "dfs", "bfs"]))
@settings(max_examples=60, deadline=None)
def test_partitioning_preserves_visit_set(tree, split, name):
    serial = _run(tree, name, 0)
    sharded = _run(tree, name, split)
    # Exactly one visit per tree node in both modes, and the same set.
    assert len(serial) == len(sharded) == len(tree)
    assert set(serial) == set(sharded) == set(tree)


def test_coverage_tie_breaks_on_state_id():
    """Regression (the sharded-merge prerequisite): equal coverage counts
    must break on the deterministic state id, never on worklist
    position."""
    ids = itertools.count(10)
    strategy = CoverageDrivenStrategy()
    a = FakeState((0,), 7, ids)   # id 10
    b = FakeState((1,), 7, ids)   # id 11
    c = FakeState((2,), 7, ids)   # id 12
    for order in itertools.permutations([a, b, c]):
        states = list(order)
        assert states[strategy.pick(states)] is a
    # A strictly lower block count still beats a lower id.
    strategy.block_counts[7] = 5
    d = FakeState((3,), 9, ids)   # id 13, untouched pc
    for order in itertools.permutations([a, b, d]):
        states = list(order)
        assert states[strategy.pick(states)] is d
