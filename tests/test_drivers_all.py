"""Integration tests: all four binary drivers on their device models.

Parametrized over the driver corpus; feature differences follow Table 2 of
the paper (DMA / Wake-on-LAN / LED availability per chip).
"""

import pytest

from repro.drivers import DRIVERS, build_driver, device_class
from repro.guestos.harness import DriverHarness
from repro.guestos.structures import NdisStatus, PacketFilter
from repro.net import EthernetFrame, EtherType, UdpWorkload

MAC = b"\x52\x54\x00\xAA\xBB\xCC"

ALL_DRIVERS = sorted(DRIVERS)

#: Features testable per driver (mirrors Table 2's check marks).
WOL_DRIVERS = {"rtl8139", "pcnet"}
LED_DRIVERS = {"rtl8139", "smc91c111", "pcnet"}


@pytest.fixture(params=ALL_DRIVERS)
def booted(request):
    name = request.param
    harness = DriverHarness(build_driver(name), device_class(name), mac=MAC)
    harness.boot()
    return name, harness


def make_frame(dst, payload=b"x" * 64):
    return EthernetFrame(dst=dst, src=b"\x02\x00\x00\x00\x00\x01",
                         ethertype=EtherType.IPV4,
                         payload=payload).to_bytes()


class TestLifecycle:
    def test_boot_enables_device(self, booted):
        _name, harness = booted
        assert harness.device.rx_enabled
        assert harness.device.tx_enabled

    def test_halt_disables_device(self, booted):
        _name, harness = booted
        harness.halt()
        assert not harness.device.rx_enabled

    def test_reset_recovers(self, booted):
        _name, harness = booted
        assert harness.reset() == NdisStatus.SUCCESS
        assert harness.device.rx_enabled
        frame = make_frame(b"\xff" * 6)
        assert harness.send(frame) == NdisStatus.SUCCESS
        assert harness.medium.transmitted[-1] == frame


class TestDataPath:
    def test_send_exact_bytes(self, booted):
        _name, harness = booted
        frame = make_frame(b"\xff" * 6)
        assert harness.send(frame) == NdisStatus.SUCCESS
        assert harness.medium.transmitted == [frame]

    def test_send_completion(self, booted):
        _name, harness = booted
        harness.send(make_frame(b"\xff" * 6))
        assert NdisStatus.SUCCESS in harness.env.send_completions

    def test_send_odd_lengths(self, booted):
        _name, harness = booted
        for extra in range(5):
            frame = make_frame(b"\xff" * 6, b"p" * (60 + extra))
            assert harness.send(frame) == NdisStatus.SUCCESS
            assert harness.medium.transmitted[-1] == frame

    def test_send_burst(self, booted):
        _name, harness = booted
        workload = UdpWorkload(MAC, b"\x02" * 6, 400)
        frames = [f.to_bytes() for f in workload.frames(8)]
        for frame in frames:
            assert harness.send(frame) == NdisStatus.SUCCESS
        assert harness.medium.transmitted == frames

    def test_oversize_send_rejected(self, booted):
        _name, harness = booted
        assert harness.send(b"z" * 1600) in (NdisStatus.INVALID_LENGTH,
                                             NdisStatus.FAILURE)
        assert harness.medium.transmitted == []

    def test_unicast_receive(self, booted):
        _name, harness = booted
        frame = make_frame(MAC)
        assert harness.inject_rx(frame) == [frame]

    def test_broadcast_receive(self, booted):
        _name, harness = booted
        frame = make_frame(b"\xff" * 6)
        assert harness.inject_rx(frame) == [frame]

    def test_foreign_unicast_dropped(self, booted):
        _name, harness = booted
        assert harness.inject_rx(make_frame(b"\x02\x99" * 3)) == []

    def test_rx_burst(self, booted):
        # Burst size 4 fits every device's RX resources (the PCNet ring
        # has four descriptors).
        _name, harness = booted
        frames = [make_frame(MAC, bytes([i]) * 80) for i in range(4)]
        for frame in frames:
            harness.medium.inject(frame)
        harness.env.service_interrupts()
        assert harness.env.indicated_frames == frames

    def test_bidirectional_udp(self, booted):
        _name, harness = booted
        tx = UdpWorkload(MAC, b"\x02" * 6, 512)
        for frame in tx.frames(3):
            assert harness.send(frame.to_bytes()) == NdisStatus.SUCCESS
        rx = UdpWorkload(b"\x02" * 6, MAC, 513)
        for frame in rx.frames(3):
            raw = frame.to_bytes()
            assert harness.inject_rx(raw) == [raw]


class TestControlPath:
    def test_query_mac(self, booted):
        _name, harness = booted
        assert harness.query_mac() == MAC

    def test_set_mac_roundtrip(self, booted):
        _name, harness = booted
        new_mac = b"\x52\x54\x00\x01\x02\x03"
        assert harness.set_mac(new_mac) == NdisStatus.SUCCESS
        assert bytes(harness.device.mac) == new_mac
        frame = make_frame(new_mac)
        assert harness.inject_rx(frame) == [frame]

    def test_promiscuous_mode(self, booted):
        _name, harness = booted
        assert harness.enable_promiscuous() == NdisStatus.SUCCESS
        assert harness.device.promiscuous
        frame = make_frame(b"\x02\x99" * 3)
        assert harness.inject_rx(frame) == [frame]

    def test_multicast_filtering(self, booted):
        _name, harness = booted
        group = b"\x01\x00\x5e\x00\x00\x01"
        assert harness.set_multicast_list([group]) == NdisStatus.SUCCESS
        harness.set_packet_filter(PacketFilter.DIRECTED
                                  | PacketFilter.MULTICAST)
        frame = make_frame(group)
        assert harness.inject_rx(frame) == [frame]

    def test_full_duplex_toggle(self, booted):
        _name, harness = booted
        assert harness.set_full_duplex(True) == NdisStatus.SUCCESS
        assert harness.device.full_duplex
        assert harness.set_full_duplex(False) == NdisStatus.SUCCESS
        assert not harness.device.full_duplex

    def test_link_speed_reported(self, booted):
        _name, harness = booted
        status, speed = harness.query_link_speed()
        assert status == NdisStatus.SUCCESS
        assert speed in (10_000_000, 100_000_000)

    def test_wake_on_lan(self, booted):
        name, harness = booted
        status = harness.enable_wake_on_lan()
        if name in WOL_DRIVERS:
            assert status == NdisStatus.SUCCESS
            assert harness.device.wol_enabled
        else:
            assert status == NdisStatus.NOT_SUPPORTED

    def test_led_control(self, booted):
        name, harness = booted
        status = harness.set_led(1)
        if name in LED_DRIVERS:
            assert status == NdisStatus.SUCCESS
            assert harness.device.led_state != 0
        else:
            assert status == NdisStatus.NOT_SUPPORTED

    def test_unknown_oid_rejected(self, booted):
        _name, harness = booted
        status = harness._set_info(0x7777_7777, b"\0\0\0\0")
        assert status == NdisStatus.NOT_SUPPORTED
