"""Direct unit tests for the standalone observation differ.

The matrix and the fuzzer both classify through
:mod:`repro.validate.differ`; these tests exercise the comparison and
verdict rules on synthetic observations, with no pipeline, no drivers
and no harness -- the semantics stand on their own.
"""

import pytest

from repro.validate import Observation
from repro.validate.differ import (COMPARED_FIELDS, DifferentialVerdict,
                                   Divergence, classify_observations,
                                   compare_observations)


def _observation(**overrides):
    base = dict(driver="fake", side="original", scenario="synthetic",
                statuses=[["boot", 0], ["send", 0]],
                wire_frames=["aa" * 60], delivered=["bb" * 60],
                link_drops=0, device_stats={"tx_frames": 1},
                device_state={"mac": "525400aabbcc", "promiscuous": False},
                oids={"mac": [0, "525400aabbcc"]}, irq_count=2,
                error_log=[])
    base.update(overrides)
    return Observation(**base)


class TestCompare:
    def test_identical_observations_have_no_divergence(self):
        assert compare_observations(_observation(), _observation()) == []

    def test_side_and_scenario_are_not_compared(self):
        candidate = _observation(side="synthesized/winsim",
                                 scenario="renamed", driver="other")
        assert compare_observations(_observation(), candidate) == []

    def test_every_compared_field_is_detected(self):
        tampered = _observation(
            ok=False, error="ValueError",
            statuses=[["boot", 1]], wire_frames=[], delivered=["cc" * 60],
            link_drops=3, device_stats={"tx_frames": 9},
            device_state={"mac": "deadbeef0000", "promiscuous": True},
            oids={"mac": [1, "deadbeef0000"]}, irq_count=7,
            error_log=["boom"])
        fields = {d.field for d in
                  compare_observations(_observation(), tampered)}
        assert fields == set(COMPARED_FIELDS)

    def test_list_divergence_names_first_differing_index(self):
        candidate = _observation(statuses=[["boot", 0], ["send", 5]])
        (div,) = compare_observations(_observation(), candidate)
        assert div.field == "statuses"
        assert "statuses[1]" in div.detail

    def test_length_mismatch_reports_counts(self):
        candidate = _observation(wire_frames=["aa" * 60, "dd" * 60])
        (div,) = compare_observations(_observation(), candidate)
        assert div.field == "wire_frames"
        assert "1 wire_frames vs 2" in div.detail

    def test_dict_divergence_names_key(self):
        candidate = _observation(device_stats={"tx_frames": 2})
        (div,) = compare_observations(_observation(), candidate)
        assert "device_stats[tx_frames]" in div.detail
        assert "1" in div.detail and "2" in div.detail

    def test_ignore_suppresses_fields(self):
        candidate = _observation(irq_count=99, link_drops=4)
        fields = {d.field for d in compare_observations(
            _observation(), candidate, ignore=("irq_count",))}
        assert fields == {"link_drops"}

    def test_divergence_round_trips_through_dict(self):
        div = Divergence(field="irq_count", detail="2 vs 7")
        assert Divergence.from_dict(div.to_dict()) == div


class TestClassify:
    def test_match(self):
        outcome = classify_observations(_observation(), _observation())
        assert outcome.verdict == "match"
        assert outcome.matched
        assert outcome.divergences == []

    def test_template_error_is_unsupported(self):
        candidate = _observation(ok=False, error="TemplateError")
        outcome = classify_observations(_observation(), candidate)
        assert outcome.verdict == "unsupported"
        assert not outcome.matched
        assert outcome.candidate_error == "TemplateError"

    def test_other_error_is_divergent(self):
        candidate = _observation(ok=False, error="VmFault")
        outcome = classify_observations(_observation(), candidate)
        assert outcome.verdict == "divergent"
        assert outcome.candidate_error == "VmFault"

    def test_behavioral_mismatch_is_divergent(self):
        candidate = _observation(irq_count=99)
        outcome = classify_observations(_observation(), candidate)
        assert outcome.verdict == "divergent"
        assert [d.field for d in outcome.divergences] == ["irq_count"]

    def test_matching_errors_on_both_sides_is_a_match(self):
        """An exception is behavior: both sides failing identically
        matches (the verified-unsupported discipline relies on this
        *not* being the case only when fields differ)."""
        baseline = _observation(ok=False, error="ValueError")
        candidate = _observation(ok=False, error="ValueError")
        assert classify_observations(baseline, candidate).verdict == "match"

    def test_verdict_round_trips_through_dict(self):
        candidate = _observation(ok=False, error="TemplateError")
        outcome = classify_observations(_observation(), candidate)
        again = DifferentialVerdict.from_dict(outcome.to_dict())
        assert again.verdict == outcome.verdict
        assert again.candidate_error == outcome.candidate_error
        assert [d.to_dict() for d in again.divergences] \
            == [d.to_dict() for d in outcome.divergences]


class TestShim:
    def test_compare_module_reexports_differ(self):
        """repro.validate.compare stays importable (back-compat)."""
        from repro.validate import compare

        assert compare.compare_observations is compare_observations
        assert compare.Divergence is Divergence
        assert compare.COMPARED_FIELDS is COMPARED_FIELDS
