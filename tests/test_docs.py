"""The documentation set stays healthy: links resolve, referenced paths
exist, fenced doctest examples execute (same checks as the CI docs job,
via tools/check_docs.py)."""

import importlib.util
import os

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", os.path.join(_REPO_ROOT, "tools", "check_docs.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docs = _load_check_docs()


def test_doc_set_is_nonempty():
    files = check_docs.doc_files(_REPO_ROOT)
    names = {os.path.relpath(f, _REPO_ROOT) for f in files}
    assert {"README.md", "DESIGN.md", "docs/architecture.md",
            "docs/paper-mapping.md", "docs/validation.md"} <= names


def test_links_and_paths_resolve():
    assert check_docs.check_links(_REPO_ROOT) == []


def test_fenced_doctests_pass():
    assert check_docs.run_doctests(_REPO_ROOT) == []


def test_checker_catches_breakage(tmp_path):
    """The checker itself works: a broken link and a failing doctest in a
    synthetic doc tree are both reported."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "[gone](docs/missing.md) and `src/nope.py`\n\n"
        "```python\n>>> 1 + 1\n3\n```\n")
    (tmp_path / "DESIGN.md").write_text("fine\n")
    link_problems = check_docs.check_links(str(tmp_path))
    assert any("missing.md" in p for p in link_problems)
    assert any("src/nope.py" in p for p in link_problems)
    doc_problems = check_docs.run_doctests(str(tmp_path))
    assert len(doc_problems) == 1 and "doctest failure" in doc_problems[0]
