"""Property-based tests (hypothesis) on core invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.errors import VmFault
from repro.ir.codecache import CODE_CACHE_ENV
from repro.ir.superblock import SuperblockConfig, superblock_counters
from repro.isa import Instruction, Op, decode, encode
from repro.isa.encoding import INSTR_SIZE, NO_REG
from repro.layout import HEAP_BASE, TEXT_BASE, page_align
from repro.net.crc import crc32_ethernet
from repro.net.packet import build_udp_packet, parse_udp_packet
from repro.symex import expr as E
from repro.symex.memory import SymMemory
from repro.symex.solver import Solver
from repro.vm import Machine

reg = st.integers(min_value=0, max_value=15)
u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
u8 = st.integers(min_value=0, max_value=0xFF)


@pytest.fixture(autouse=True)
def _no_persistent_code_cache(monkeypatch):
    """Hypothesis generates unbounded distinct programs; writing each
    compiled source to the persistent code cache would grow it without
    bound and make these tests I/O-heavy.  Scoped here (not globally)
    so cache-hit paths stay exercised elsewhere."""
    monkeypatch.setenv(CODE_CACHE_ENV, "off")


class TestEncodingProperties:
    @given(a=reg, b=reg, c=reg, imm=u32,
           op=st.sampled_from([Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR,
                               Op.MUL, Op.SHL]))
    def test_alu_roundtrip(self, op, a, b, c, imm):
        instr = Instruction(op, a, b, c, imm)
        assert decode(encode(instr)) == instr

    @given(a=reg, b=reg, imm=u32,
           op=st.sampled_from([Op.LD8, Op.LD16, Op.LD32, Op.ST8, Op.ST16,
                               Op.ST32, Op.IN8, Op.OUT32]))
    def test_memory_roundtrip(self, op, a, b, imm):
        instr = Instruction(op, a, b, imm=imm)
        assert decode(encode(instr)) == instr


class TestExprSemantics:
    """Expression builders must agree with direct evaluation."""

    @given(x=u32, y=u32, kind=st.sampled_from(list(E.BINOP_BUILDERS)))
    def test_binop_on_constants_matches_evaluate(self, x, y, kind):
        sym_x, sym_y = E.bv_sym("x"), E.bv_sym("y")
        expr = E.BINOP_BUILDERS[kind](sym_x, sym_y)
        folded = E.BINOP_BUILDERS[kind](x, y)
        assert E.evaluate(expr, {"x": x, "y": y}) == \
            (folded if isinstance(folded, int)
             else E.evaluate(folded, {"x": x, "y": y}))

    @given(x=u32, c=u32, kind=st.sampled_from(
        ["eq", "ne", "ult", "uge", "slt", "sge"]))
    def test_cmp_matches_fold(self, x, c, kind):
        sym = E.bv_sym("x")
        expr = E.bv_cmp(kind, sym, c)
        expected = E.bv_cmp(kind, x, c)
        value = expr if isinstance(expr, int) else \
            E.evaluate(expr, {"x": x})
        assert value == expected

    @given(x=u32, lo=st.integers(min_value=0, max_value=24))
    def test_extract_evaluate(self, x, lo):
        sym = E.bv_sym("x")
        expr = E.bv_extract(sym, lo, 8)
        assert E.evaluate(expr, {"x": x}) == (x >> lo) & 0xFF

    @given(x=u32)
    def test_negation_involution(self, x):
        sym = E.bv_sym("x")
        cond = E.bv_cmp("ult", sym, 100)
        negated = E.bool_not(cond)
        assert E.evaluate(cond, {"x": x}) + E.evaluate(negated, {"x": x}) \
            == 1


class TestSolverSoundness:
    """Any model the solver returns must actually satisfy the query."""

    @settings(max_examples=30)
    @given(bound=u32, mask=u8)
    def test_models_satisfy(self, bound, mask):
        solver = Solver()
        x = E.bv_sym("x")
        constraints = [E.bv_cmp("ult", x, bound)]
        if mask:
            constraints.append(E.bv_cmp("eq", E.bv_and(x, mask), 0))
        model = solver.find_model(constraints)
        if model is not None:
            for constraint in constraints:
                assert E.evaluate(constraint, model) == 1
        else:
            # unsat claims only allowed when the query is truly hard/unsat;
            # bound == 0 makes it genuinely unsatisfiable
            assert bound == 0 or mask


class TestSymMemoryProperties:
    @settings(max_examples=50)
    @given(address=st.integers(min_value=0, max_value=0xFFFF),
           value=u32, width=st.sampled_from([1, 2, 4]))
    def test_write_read_roundtrip(self, address, value, width):
        memory = SymMemory(lambda a, w: 0)
        memory.write(address, width, value)
        assert memory.read(address, width) == \
            value & ((1 << (8 * width)) - 1)

    @settings(max_examples=30)
    @given(address=st.integers(min_value=0, max_value=0xFFFF), value=u32)
    def test_fork_isolation(self, address, value):
        memory = SymMemory(lambda a, w: 0)
        memory.write(address, 4, value)
        child = memory.fork()
        child.write(address, 4, value ^ 0xFFFFFFFF)
        assert memory.read(address, 4) == value
        assert child.read(address, 4) == value ^ 0xFFFFFFFF


class TestChecksumProperties:
    @given(data=st.binary(min_size=0, max_size=64))
    def test_crc_deterministic(self, data):
        assert crc32_ethernet(data) == crc32_ethernet(data)

    @given(data=st.binary(min_size=1, max_size=64), flip=st.integers(0, 7))
    def test_crc_detects_single_bit_flip(self, data, flip):
        corrupted = bytes([data[0] ^ (1 << flip)]) + data[1:]
        assert crc32_ethernet(data) != crc32_ethernet(corrupted)

    @given(payload=st.binary(min_size=0, max_size=200),
           sport=st.integers(1, 65535), dport=st.integers(1, 65535))
    def test_udp_roundtrip(self, payload, sport, dport):
        packet = build_udp_packet(b"\x0a\0\0\x01", b"\x0a\0\0\x02",
                                  sport, dport, payload)
        parsed = parse_udp_packet(packet)
        assert parsed["payload"] == payload
        assert parsed["src_port"] == sport
        assert parsed["dst_port"] == dport


_GEN_REGS = st.integers(min_value=0, max_value=11)  # r12 reserved: mem base
_MEM_BASE_REG = 12
_SCRATCH = HEAP_BASE + 0x800

_ALU = [Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.SAR,
        Op.MUL, Op.DIVU, Op.REMU]


@st.composite
def random_instruction(draw):
    """One R32 instruction from the deterministic concrete subset."""
    shape = draw(st.sampled_from(
        ["alu_rr", "alu_ri", "mov", "movi", "not", "neg", "load", "store"]))
    a, b, c = draw(_GEN_REGS), draw(_GEN_REGS), draw(_GEN_REGS)
    imm = draw(u32)
    if shape == "alu_rr":
        return Instruction(draw(st.sampled_from(_ALU)), a, b, c)
    if shape == "alu_ri":
        return Instruction(draw(st.sampled_from(_ALU)), a, b, imm=imm)
    if shape == "mov":
        return Instruction(Op.MOV, a, b)
    if shape == "movi":
        return Instruction(Op.MOVI, a, imm=imm)
    if shape == "not":
        return Instruction(Op.NOT, a, b)
    if shape == "neg":
        return Instruction(Op.NEG, a, b)
    disp = draw(st.integers(min_value=0, max_value=0xFC))
    if shape == "load":
        op = draw(st.sampled_from([Op.LD8, Op.LD16, Op.LD32]))
        return Instruction(op, a, _MEM_BASE_REG, imm=disp)
    op = draw(st.sampled_from([Op.ST8, Op.ST16, Op.ST32]))
    return Instruction(op, _MEM_BASE_REG, b, imm=disp)


class TestBackendDifferential:
    """Random R32 instruction sequences must produce identical register
    files, memory, and faults across the per-instruction CPU interpreter,
    the tree-walking IR interpreter, and the compiled block backend.

    A forward conditional branch is planted mid-sequence so the program
    splits into several translation blocks; DIVU/REMU with arbitrary
    operands makes genuine divide-by-zero faults part of the property.
    """

    @staticmethod
    def _execute(instrs, exec_backend):
        machine = Machine()
        program = [Instruction(Op.MOVI, _MEM_BASE_REG, imm=_SCRATCH)]
        program.extend(instrs)
        # After inserting the branch and appending HALT the program has
        # len(program) + 2 instructions; the HALT sits on the last one.
        end = TEXT_BASE + (len(program) + 1) * INSTR_SIZE
        # Forward branch over the second half: both sides of the split
        # are exercised depending on the generated register contents.
        program.insert(len(program) // 2,
                       Instruction(Op.BLTU, 0, 1, imm=end))
        program.append(Instruction(Op.HALT))
        code = b"".join(encode(i) for i in program)
        machine.memory.map_region(TEXT_BASE, page_align(len(code)), "text")
        machine.memory.write_bytes(TEXT_BASE, code)
        cpu = machine.cpu
        cpu.exec_backend = exec_backend
        cpu.pc = TEXT_BASE
        fault = None
        try:
            cpu.run(max_steps=10_000)
        except VmFault as exc:
            fault = type(exc).__name__
        return (fault, list(cpu.regs),
                machine.memory.read_bytes(_SCRATCH, 0x100))

    @settings(max_examples=60, deadline=None)
    @given(instrs=st.lists(random_instruction(), min_size=1, max_size=24))
    def test_three_backends_agree(self, instrs):
        step = self._execute(instrs, None)
        interp = self._execute(instrs, "interp")
        compiled = self._execute(instrs, "compiled")
        assert step == interp
        assert step == compiled


class TestSuperblockDifferential:
    """Random hot-trace-shaped programs -- a loop body crossing several
    translation blocks via a conditional fall-through, a direct jump,
    and the loop back-edge -- must be indistinguishable across all four
    execution tiers.  The superblock tier keeps its architectural
    counters in locals and flushes them in ``finally``, so the tuple
    compared here includes ``instret``/``mem_ops``/``io_ops`` to pin
    the counter contract under faults as well as on clean exits.
    """

    _segment = st.lists(random_instruction(), min_size=1, max_size=8)

    @staticmethod
    def _build(seg_a, seg_b, seg_c, trips):
        program = [
            Instruction(Op.MOVI, _MEM_BASE_REG, imm=_SCRATCH),
            Instruction(Op.MOVI, 13, imm=trips),
            Instruction(Op.MOVI, 14, imm=0),
        ]
        loop_start = len(program)
        program.extend(seg_a)
        branch_at = len(program)
        program.append(None)          # bltu r0, r1, <skip seg_b>
        program.extend(seg_b)
        skip_index = len(program)
        program[branch_at] = Instruction(
            Op.BLTU, 0, 1, imm=TEXT_BASE + skip_index * INSTR_SIZE)
        jump_at = len(program)
        program.append(None)          # jmp <next instruction>
        program[jump_at] = Instruction(
            Op.JMP, imm=TEXT_BASE + (jump_at + 1) * INSTR_SIZE)
        program.extend(seg_c)
        program.append(Instruction(Op.ADD, 14, 14, imm=1))
        program.append(Instruction(
            Op.BLTU, 14, 13, imm=TEXT_BASE + loop_start * INSTR_SIZE))
        program.append(Instruction(Op.HALT))
        return program

    @staticmethod
    def _run(program, backend, superblocks=False):
        machine = Machine()
        code = b"".join(encode(i) for i in program)
        machine.memory.map_region(TEXT_BASE, page_align(len(code)), "text")
        machine.memory.write_bytes(TEXT_BASE, code)
        cpu = machine.cpu
        cpu.exec_backend = backend
        cpu.exec_superblocks = superblocks
        cpu.pc = TEXT_BASE
        fault = None
        try:
            cpu.run(max_steps=10_000)
        except VmFault as exc:
            fault = type(exc).__name__
        arch = (fault, list(cpu.regs), cpu.mem_ops, cpu.io_ops,
                machine.memory.read_bytes(_SCRATCH, 0x100))
        return arch, (cpu.pc, cpu.instret)

    @settings(max_examples=40, deadline=None)
    @given(seg_a=_segment, seg_b=_segment, seg_c=_segment,
           trips=st.integers(min_value=2, max_value=4))
    def test_four_tiers_agree(self, seg_a, seg_b, seg_c, trips):
        program = self._build(seg_a, seg_b, seg_c, trips)
        step, _ = self._run(program, None)
        interp, interp_ret = self._run(program, "interp")
        compiled, compiled_ret = self._run(program, "compiled")
        fused, fused_ret = self._run(
            program, "compiled",
            superblocks=SuperblockConfig(hot_threshold=1))
        assert step == interp
        assert step == compiled
        assert step == fused
        # instret is charged at block entry in every DBT tier and a
        # faulting block reports its head pc (the per-step tier counts
        # and reports the exact instruction), so those two fields are
        # compared across the three DBT tiers only -- exactly.
        assert interp_ret == compiled_ret == fused_ret

    @settings(max_examples=20, deadline=None)
    @given(seg_a=_segment, seg_b=_segment, seg_c=_segment,
           trips=st.integers(min_value=2, max_value=4),
           limit=st.integers(min_value=1, max_value=60))
    def test_step_limit_boundaries_agree(self, seg_a, seg_b, seg_c, trips,
                                         limit):
        """Stopping mid-superblock at an arbitrary ``max_steps`` must
        leave exactly the same architectural state as the per-block
        tier stopping at the same instruction."""
        program = self._build(seg_a, seg_b, seg_c, trips)

        def run_limited(superblocks):
            machine = Machine()
            code = b"".join(encode(i) for i in program)
            machine.memory.map_region(TEXT_BASE, page_align(len(code)),
                                      "text")
            machine.memory.write_bytes(TEXT_BASE, code)
            cpu = machine.cpu
            cpu.exec_backend = "compiled"
            cpu.exec_superblocks = superblocks
            cpu.pc = TEXT_BASE
            fault = None
            reason = None
            try:
                reason = cpu.run(max_steps=limit)
            except VmFault as exc:
                fault = type(exc).__name__
            return (reason, fault, list(cpu.regs), cpu.pc, cpu.instret,
                    cpu.mem_ops, machine.memory.read_bytes(_SCRATCH, 0x100))

        assert run_limited(False) == \
            run_limited(SuperblockConfig(hot_threshold=1))


class TestAssemblerProperties:
    @settings(max_examples=25)
    @given(values=st.lists(u32, min_size=1, max_size=8))
    def test_word_data_roundtrip(self, values):
        source = ".export main\nmain:\n halt\n.data\ntable:\n .word " \
            + ", ".join(str(v) for v in values)
        image = assemble(source)
        for i, value in enumerate(values):
            stored = int.from_bytes(image.data[4 * i:4 * i + 4], "little")
            assert stored == value

    @settings(max_examples=25)
    @given(imm=u32, r=reg)
    def test_movi_roundtrip(self, imm, r):
        image = assemble(".export main\nmain:\n movi r%d, %d\n halt"
                         % (r, imm))
        instr = decode(image.text, 0)
        assert instr.op == Op.MOVI and instr.a == r and instr.imm == imm
