"""Unit tests for the differential scenario fuzzer.

Covers the program formalization (steps, serialization, requires), the
seeded generator's determinism, the hypothesis strategies' envelope, the
loop-until-dry engine on a bounded configuration, and the canonical fuzz
artifact: same seed ==> byte-identical serialized campaign.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.errors import ArtifactError
from repro.eval.runner import get_cache
from repro.fuzz import (FuzzConfig, FuzzEngine, ProgramGenerator,
                        canonical_fuzz_json, fuzz_from_dict, fuzz_from_json,
                        fuzz_key, fuzz_to_json, load_fuzz_result,
                        program_features, run_program_column,
                        save_fuzz_result)
from repro.fuzz.strategies import scenario_programs
from repro.net.traffic import (STEP_VOCABULARY, ScenarioProgram,
                               ScenarioStep)
from repro.pipeline import ArtifactStore

#: Roles the synthesized corpus can actually carry (matrix discipline).
KNOWN_ROLES = {"initialize", "send", "isr", "halt", "reset", "timer",
               "query_information", "set_information"}


class TestStepFormalization:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown step op"):
            ScenarioStep(op="warp_core_breach")

    def test_step_round_trips(self):
        step = ScenarioStep(op="send_burst", params={"size": 64, "count": 2})
        assert ScenarioStep.from_list(step.to_list()) == step

    def test_requires_mirror_vocabulary(self):
        assert ScenarioStep(op="reset").requires == ("reset",)
        assert ScenarioStep(op="set_filter", params={"flags": 1}) \
            .requires == ("set_information",)
        assert ScenarioStep(op="send_burst",
                            params={"size": 64, "count": 1}).requires == ()

    def test_all_vocabulary_requires_are_known_roles(self):
        for op, spec in STEP_VOCABULARY.items():
            assert set(spec.requires) <= KNOWN_ROLES, op

    def test_program_requires_is_union_of_steps(self):
        program = ScenarioProgram(name="p", steps=(
            ScenarioStep("reset"),
            ScenarioStep("query_mac"),
            ScenarioStep("send_burst", {"size": 64, "count": 1})))
        assert program.requires == ("query_information", "reset")

    def test_program_json_round_trip_is_canonical(self):
        program = ScenarioProgram(name="p", seed=9, steps=(
            ScenarioStep("inject_tagged", {"dst": "station", "tag": 3}),))
        text = program.to_json()
        again = ScenarioProgram.from_json(text)
        assert again == program
        assert again.to_json() == text


class TestGenerator:
    def test_same_seed_is_byte_identical(self):
        for seed in (0, 7, 12345, 2**31):
            assert ProgramGenerator().program(seed).to_json() \
                == ProgramGenerator().program(seed).to_json()

    def test_distinct_seeds_differ(self):
        texts = {ProgramGenerator().program(seed).to_json()
                 for seed in range(25)}
        assert len(texts) > 20

    def test_step_bounds_respected(self):
        gen = ProgramGenerator(min_steps=2, max_steps=5)
        for seed in range(40):
            # +1 for the possible trailing link-restore step
            assert 2 <= len(gen.program(seed).steps) <= 6

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            ProgramGenerator(min_steps=5, max_steps=2)
        with pytest.raises(ValueError):
            ProgramGenerator(min_steps=0, max_steps=2)

    def test_programs_walks_consecutive_seeds(self):
        gen = ProgramGenerator()
        batch = gen.programs(100, 3)
        assert [p.seed for p in batch] == [100, 101, 102]
        assert batch[1].to_json() == gen.program(101).to_json()

    def test_generated_requires_stay_known(self):
        gen = ProgramGenerator()
        for seed in range(30):
            assert set(gen.program(seed).requires) <= KNOWN_ROLES


class TestHypothesisStrategies:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(program=scenario_programs())
    def test_strategy_programs_serialize_and_stay_in_envelope(self,
                                                              program):
        again = ScenarioProgram.from_json(program.to_json())
        assert again == program
        assert set(program.requires) <= KNOWN_ROLES
        for step in program.steps:
            assert step.op in STEP_VOCABULARY


class TestCoverageFeatures:
    def test_program_features_include_ops_and_bigrams(self):
        program = ScenarioProgram(name="p", steps=(
            ScenarioStep("reset"),
            ScenarioStep("send_burst", {"size": 64, "count": 1})))
        features = program_features(program)
        assert "op:reset" in features
        assert "op:send_burst" in features
        assert "bigram:reset>send_burst" in features


@pytest.fixture(scope="module")
def bounded_campaign():
    """One tiny campaign, shared by the engine tests below."""
    config = FuzzConfig(drivers=("rtl8029",),
                        os_names=("winsim", "kitos"),
                        programs_per_round=2, max_rounds=2, dry_rounds=2,
                        base_seed=4242)
    engine = FuzzEngine(orchestrator=get_cache(), config=config)
    return config, engine.run(parallel=False)


class TestEngine:
    def test_bounded_run_has_no_unexplained_divergence(self,
                                                       bounded_campaign):
        _config, result = bounded_campaign
        assert result.unexplained() == []
        summary = result.summary()
        assert summary["programs"] == 4
        assert summary["runs"] == 8
        assert summary["matched"] == 8
        assert summary["steps"] > 0
        assert summary["coverage"] > 0

    def test_same_seed_campaign_is_byte_identical(self, bounded_campaign):
        """The acceptance bar: same seed -> byte-identical canonical
        fuzz artifact."""
        config, result = bounded_campaign
        again = FuzzEngine(orchestrator=get_cache(),
                           config=config).run(parallel=False)
        assert canonical_fuzz_json(again) == canonical_fuzz_json(result)

    def test_campaign_round_trips_through_json(self, bounded_campaign):
        _config, result = bounded_campaign
        again = fuzz_from_json(fuzz_to_json(result))
        assert canonical_fuzz_json(again) == canonical_fuzz_json(result)

    def test_campaign_store_round_trip(self, bounded_campaign, tmp_path):
        config, result = bounded_campaign
        store = ArtifactStore(str(tmp_path / "fuzz-store"))
        key = save_fuzz_result(store, result)
        assert key == fuzz_key(config)
        loaded = load_fuzz_result(store, config)
        assert canonical_fuzz_json(loaded) == canonical_fuzz_json(result)

    def test_missing_campaign_reads_as_none(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "empty-store"))
        assert load_fuzz_result(store, FuzzConfig()) is None

    def test_schema_mismatch_rejected(self, bounded_campaign):
        _config, result = bounded_campaign
        import json

        data = json.loads(fuzz_to_json(result))
        data["schema"] = 999
        with pytest.raises(ArtifactError, match="schema"):
            fuzz_from_dict(data)

    def test_unsupported_cells_are_explained(self):
        """DMA driver x ucsim: every fuzz run lands unsupported, and none
        of it is unexplained -- identical to the matrix discipline."""
        artifact = get_cache().run("rtl8139")
        programs = ProgramGenerator().programs(555, 2)
        runs, _ = run_program_column(artifact, ("ucsim",), programs)
        assert runs, "programs unexpectedly skipped"
        for run in runs:
            assert run.verdict == "unsupported"
            assert run.expected == "unsupported"
            assert not run.unexplained
            assert run.program is not None   # replayable from the record

    def test_role_gated_programs_are_skipped(self):
        """Reduced-script artifacts carry no set/query_information entry
        points; programs needing them skip instead of diverging."""
        artifact = get_cache().run("rtl8029", script="quick")
        program = ScenarioProgram(name="gated", steps=(
            ScenarioStep("query_mac"),))
        runs, _ = run_program_column(artifact, ("winsim",), [program])
        assert [run.verdict for run in runs] == ["skipped"]
