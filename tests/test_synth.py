"""Unit tests for the synthesis pipeline pieces (CFG, def-use, C gen)."""

import pytest

from repro.drivers import build_driver, device_class
from repro.eval.runner import get_cache
from repro.synth.cfg import CfgBuilder
from repro.synth.defuse import analyze_signatures


@pytest.fixture(scope="module")
def rtl8029():
    return get_cache().run("rtl8029")


class TestCfgReconstruction:
    def test_functions_have_entry_blocks(self, rtl8029):
        for entry, function in rtl8029.synthesized.functions.items():
            assert entry in function.blocks

    def test_edges_point_to_known_or_flagged(self, rtl8029):
        for function in rtl8029.synthesized.functions.values():
            for pc, successors in function.edges.items():
                assert pc in function.blocks
                for successor in successors:
                    in_blocks = successor in function.blocks
                    interior = any(b.contains(successor)
                                   for b in function.blocks.values())
                    flagged = successor in function.unexplored_targets
                    assert in_blocks or interior or flagged, \
                        (function.name, hex(pc), hex(successor))

    def test_entry_points_map_to_functions(self, rtl8029):
        for role, entry in rtl8029.synthesized.entry_points.items():
            function = rtl8029.synthesized.functions[entry]
            assert function.role == role

    def test_blocks_do_not_overlap_within_function(self, rtl8029):
        for function in rtl8029.synthesized.functions.values():
            covered = {}
            for pc, block in function.blocks.items():
                for address in block.instr_addrs:
                    assert covered.get(address, pc) == pc, \
                        ("overlap at", hex(address), function.name)
                    covered[address] = pc

    def test_callees_are_recovered_functions(self, rtl8029):
        functions = rtl8029.synthesized.functions
        for function in functions.values():
            for callee in function.callees:
                assert callee in functions


class TestDefUse:
    def test_known_signatures(self, rtl8029):
        """Ground truth from the (hidden) source: send(ctx,pkt,len)=3,
        isr(ctx)=1, set_information(ctx,oid,buf,len)=4."""
        synthesized = rtl8029.synthesized
        assert synthesized.function_for_role("send").param_count == 3
        assert synthesized.function_for_role("isr").param_count == 1
        assert synthesized.function_for_role(
            "set_information").param_count == 4
        assert synthesized.function_for_role(
            "query_information").param_count == 4

    def test_return_values_detected(self, rtl8029):
        """Entry points returning NTSTATUS must be detected as returning
        (the OS-side script reads r0 after they return)."""
        functions = rtl8029.synthesized.functions
        # The crc-hash helper returns a value its caller consumes.
        returning = [f for f in functions.values() if f.has_return]
        assert returning, "no returning functions detected"


class TestCGeneration:
    def test_c_has_runtime_calls(self, rtl8029):
        source = rtl8029.synthesized.c_source
        assert "read_port8(" in source
        assert "write_port8(" in source
        assert "mem_read32(" in source
        assert "NdisMIndicateReceivePacket" in source

    def test_goto_targets_are_defined(self, rtl8029):
        import re
        for entry, text in rtl8029.synthesized.c_per_function.items():
            labels = set(re.findall(r"^(bb_[0-9a-f]{8}):", text,
                                    re.MULTILINE))
            gotos = set(re.findall(r"goto (bb_[0-9a-f]{8});", text))
            missing = gotos - labels
            assert not missing, (hex(entry), missing)

    def test_unexplored_branches_annotated(self, rtl8029):
        report = rtl8029.synthesized.report
        if report.unexplored_branches:
            assert "REVNIC WARNING" in rtl8029.synthesized.c_source

    def test_runtime_header_contains_helpers(self, rtl8029):
        header = rtl8029.synthesized.runtime_header
        for helper in ("mem_read8", "write_port32", "push32", "pop32"):
            assert helper in header


class TestDbtFallback:
    def test_filled_blocks_recorded(self):
        run = get_cache().run("pcnet")
        # The pcnet multicast path needs DBT-filled blocks (the crc loop's
        # call fall-through is unexplored under the default budget).
        assert run.synthesized.report.dbt_filled_blocks >= 0

    def test_bare_synthesis_block_map_is_subset(self, rtl8029):
        from repro.synth import synthesize

        # Synthesizing from the raw trace (no captured code window) skips
        # the DBT fallback; the artifact's module -- synthesized with the
        # captured code -- is a superset of that bare block map.
        bare = synthesize(rtl8029.trace,
                          import_names=rtl8029.import_names)
        assert set(bare.block_map) <= set(rtl8029.synthesized.block_map)

    def test_missing_block_raises_at_execution(self, rtl8029):
        """Reaching code RevNIC never captured raises the paper's
        "missing basic block" warning."""
        from repro.synth.module import MissingBlockError
        from repro.targetos import WinSim
        from repro.templates import NicTemplate

        target = WinSim(device_class("rtl8029"),
                        mac=b"\x52\x54\x00\xAA\xBB\xCC")
        template = NicTemplate(rtl8029.synthesized, target,
                               original_image=rtl8029.image)
        template.initialize()
        missing = max(rtl8029.synthesized.block_map) + 0x10000
        with pytest.raises(MissingBlockError):
            template.runtime.call_address(missing, [])

    def test_code_window_matches_live_translator(self, rtl8029):
        from repro.synth import synthesize

        # Synthesis from the captured code window is the same pure
        # function as synthesis against a live engine translator.
        redone = synthesize(rtl8029.trace,
                            import_names=rtl8029.import_names,
                            code=rtl8029.code)
        assert redone.c_source == rtl8029.synthesized.c_source
        assert set(redone.block_map) == set(rtl8029.synthesized.block_map)
        assert redone.report.dbt_filled_blocks == \
            rtl8029.synthesized.report.dbt_filled_blocks
