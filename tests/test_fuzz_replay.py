"""Deterministic replay of the pinned fuzz corpus.

Every JSON file under ``tests/fuzz_corpus/`` is a frozen scenario
program plus the driver/OS cells it must stay clean on.  The entries
replay here on every tier-1 run -- a fuzz finding, once pinned, is a
permanent regression test that needs nothing but its serialized form.

Also here: the DMA link-flap-mid-burst regression (pinning the
observation *ordering* on all four target OSes) and the traffic edge
cases the deterministic catalog never reaches, each asserted across
both execution backends.
"""

import json
import os

import pytest

from repro.eval.runner import get_cache
from repro.fuzz import ProgramGenerator, replay_program
from repro.net.traffic import ScenarioProgram, ScenarioStep
from repro.validate.differ import compare_observations
from repro.validate.matrix import OS_ORDER
from repro.validate.observe import OriginalDut, SynthesizedDut
from repro.validate.scenarios import run_scenario

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")
CORPUS_FILES = sorted(name for name in os.listdir(CORPUS_DIR)
                      if name.endswith(".json"))


def _load(name):
    with open(os.path.join(CORPUS_DIR, name)) as fh:
        return json.load(fh)


def test_corpus_is_not_empty():
    assert len(CORPUS_FILES) >= 5


@pytest.mark.parametrize("name", CORPUS_FILES)
def test_corpus_entry_is_well_formed(name):
    entry = _load(name)
    assert entry["schema"] == 1
    assert entry["note"]
    assert entry["drivers"] and entry["os_names"]
    program = ScenarioProgram.from_dict(entry["program"])
    assert program.steps


@pytest.mark.parametrize("name", [n for n in CORPUS_FILES
                                  if n.startswith("seed-")])
def test_seed_entries_regenerate_byte_identically(name):
    """A seed-derived corpus entry must be exactly what the generator
    produces for that seed today -- the replayability guarantee."""
    entry = _load(name)
    seed = entry["program"]["seed"]
    regenerated = ProgramGenerator().program(seed)
    assert regenerated.to_dict() == entry["program"]


@pytest.mark.parametrize("name", CORPUS_FILES)
def test_corpus_replays_clean(name):
    """Replaying every pinned program leaves zero unexplained runs."""
    entry = _load(name)
    cache = get_cache()
    for driver in entry["drivers"]:
        artifact = cache.run(driver)
        runs = replay_program(entry["program"], driver,
                              tuple(entry["os_names"]), artifact)
        unexplained = [(run.target_os, run.verdict, run.candidate_error)
                       for run in runs if run.unexplained]
        assert unexplained == [], \
            "%s: %s replays dirty: %r" % (name, driver, unexplained)


# ---------------------------------------------------------------------------
# Regression: link flap during an in-flight DMA burst
# ---------------------------------------------------------------------------

def _linkflap_program():
    entry = _load("dma-linkflap-midburst.json")
    return ScenarioProgram.from_dict(entry["program"])


#: The pinned observation ordering: the unserviced burst produces no
#: send statuses (frames arrive from the wire), the two frames sent into
#: a down link still report success to the OS (loss is the medium's
#: business, not the driver's), the flap's recovery reset lands *after*
#: them, and the post-flap OID query comes last.
PINNED_STATUSES = [["boot", 0], ["send", 0], ["send", 0], ["reset", 0],
                   ["query_mac", 0]]


@pytest.mark.parametrize("driver", ["rtl8139", "pcnet"])
class TestDmaLinkFlapRegression:
    def test_baseline_observation_ordering_is_pinned(self, driver):
        program = _linkflap_program()
        observation = run_scenario(OriginalDut(driver), program)
        assert observation.ok
        assert observation.statuses == PINNED_STATUSES

    def test_ordering_holds_on_every_target_os(self, driver):
        program = _linkflap_program()
        artifact = get_cache().run(driver)
        runs = replay_program(program, driver, tuple(OS_ORDER), artifact)
        verdicts = {run.target_os: run.verdict for run in runs}
        # ucsim has no shared-memory DMA API: verified-unsupported, the
        # same cell the validation matrix pins.
        assert verdicts == {"winsim": "match", "linsim": "match",
                            "ucsim": "unsupported", "kitos": "match"}
        for run in runs:
            assert not run.unexplained
        # the matching OSes reproduce the ordering byte-for-byte
        for os_name in ("winsim", "linsim", "kitos"):
            observation = run_scenario(
                SynthesizedDut(artifact, os_name), program)
            assert observation.statuses == PINNED_STATUSES


# ---------------------------------------------------------------------------
# Traffic edge cases the deterministic catalog never reaches
# ---------------------------------------------------------------------------

EDGE_PROGRAMS = {
    "zero-length-burst": ScenarioProgram(
        name="edge-zero-length-burst",
        description="a burst of zero frames is a legal no-op",
        steps=(
            ScenarioStep("quiet_burst", {"size": 64, "count": 0}),
            ScenarioStep("service", {}),
            ScenarioStep("send_burst", {"size": 64, "count": 1}),
        )),
    "back-to-back-flaps": ScenarioProgram(
        name="edge-back-to-back-flaps",
        description="two link flaps with no traffic between them",
        steps=(
            ScenarioStep("link_flap", {"size": 128, "frames_down": 1}),
            ScenarioStep("link_flap", {"size": 128, "frames_down": 0}),
            ScenarioStep("send_burst", {"size": 128, "count": 2}),
        )),
    "adversarial-then-reset": ScenarioProgram(
        name="edge-adversarial-then-reset",
        description="bad-FCS and runt frames immediately before a reset",
        steps=(
            ScenarioStep("inject_fcs", {"tag": 7, "corrupt": True}),
            ScenarioStep("inject_runt", {"length": 12, "seed": 9}),
            ScenarioStep("reset", {}),
            ScenarioStep("inject_tagged", {"dst": "station", "tag": 8}),
            ScenarioStep("service", {}),
        )),
}


@pytest.mark.parametrize("edge", sorted(EDGE_PROGRAMS))
@pytest.mark.parametrize("driver", ["rtl8029", "rtl8139"])
class TestTrafficEdgeCases:
    def test_backends_agree_on_baseline(self, driver, edge):
        """compiled and interp original backends observe identically."""
        program = EDGE_PROGRAMS[edge]
        compiled = run_scenario(
            OriginalDut(driver, exec_backend="compiled"), program)
        interp = run_scenario(
            OriginalDut(driver, exec_backend="interp"), program)
        assert compiled.ok
        assert compare_observations(compiled, interp) == []

    def test_synthesized_matches_on_winsim(self, driver, edge):
        program = EDGE_PROGRAMS[edge]
        artifact = get_cache().run(driver)
        runs = replay_program(program, driver, ("winsim",), artifact)
        assert [run.verdict for run in runs] == ["match"]
