"""Unit tests for the concrete VM: memory, bus, CPU."""

import pytest

from repro.errors import BusError, MemoryFault, VmFault
from repro.layout import (
    HEAP_BASE,
    MMIO_BASE,
    RETURN_TO_OS,
    STACK_TOP,
    import_address,
)
from repro.vm import Bus, Cpu, ExitReason, Machine, Memory
from repro.asm import assemble
from repro.isa.registers import REG_SP


class TestMemory:
    def test_read_write_roundtrip(self):
        mem = Memory()
        mem.map_region(0x1000, 0x1000)
        for width, value in ((1, 0xAB), (2, 0xBEEF), (4, 0xDEADBEEF)):
            mem.write(0x1100, width, value)
            assert mem.read(0x1100, width) == value

    def test_width_masking(self):
        mem = Memory()
        mem.map_region(0x1000, 0x1000)
        mem.write(0x1000, 1, 0x1FF)
        assert mem.read(0x1000, 1) == 0xFF

    def test_unmapped_access_faults(self):
        mem = Memory()
        with pytest.raises(MemoryFault):
            mem.read(0x5000, 4)
        with pytest.raises(MemoryFault):
            mem.write(0x5000, 4, 1)

    def test_cross_page_bytes(self):
        mem = Memory()
        mem.map_region(0x0000, 0x3000)
        data = bytes(range(256)) * 20
        mem.write_bytes(0x0F80, data)
        assert mem.read_bytes(0x0F80, len(data)) == data

    def test_zero_fill_default(self):
        mem = Memory()
        mem.map_region(0x1000, 0x1000)
        assert mem.read(0x1800, 4) == 0

    def test_overlapping_region_rejected(self):
        mem = Memory()
        mem.map_region(0x1000, 0x1000)
        with pytest.raises(ValueError):
            mem.map_region(0x1800, 0x1000)

    def test_region_names(self):
        mem = Memory()
        mem.map_region(0x1000, 0x1000, "text")
        assert mem.region_name(0x1234) == "text"
        assert mem.region_name(0x9999) is None

    def test_snapshot_pages(self):
        mem = Memory()
        mem.map_region(0x0000, 0x2000)
        mem.write(0x10, 4, 42)
        pages = mem.snapshot_pages()
        assert 0 in pages
        assert pages[0][0x10] == 42


class FakeDevice:
    def __init__(self):
        self.reg = 0
        self.log = []

    def io_read(self, offset, width):
        self.log.append(("ior", offset, width))
        return self.reg & ((1 << (8 * width)) - 1)

    def io_write(self, offset, width, value):
        self.log.append(("iow", offset, width, value))
        self.reg = value

    def mmio_read(self, offset, width):
        self.log.append(("mr", offset, width))
        return 0x55

    def mmio_write(self, offset, width, value):
        self.log.append(("mw", offset, width, value))


class TestBus:
    def make(self):
        mem = Memory()
        mem.map_region(0x1000, 0x1000)
        return Bus(mem), FakeDevice()

    def test_port_routing(self):
        bus, dev = self.make()
        bus.attach_ports(0x300, 0x20, dev)
        bus.io_write(0x304, 2, 0x1234)
        assert bus.io_read(0x304, 2) == 0x1234
        assert dev.log[0] == ("iow", 4, 2, 0x1234)

    def test_unclaimed_port_faults(self):
        bus, _dev = self.make()
        with pytest.raises(BusError):
            bus.io_read(0x999, 1)

    def test_mmio_routing(self):
        bus, dev = self.make()
        bus.attach_mmio(MMIO_BASE, 0x100, dev)
        assert bus.mem_read(MMIO_BASE + 8, 4) == 0x55
        bus.mem_write(MMIO_BASE + 8, 4, 7)
        assert ("mw", 8, 4, 7) in dev.log

    def test_mmio_window_enforced(self):
        bus, dev = self.make()
        with pytest.raises(ValueError):
            bus.attach_mmio(0x1000, 0x100, dev)

    def test_ram_passthrough(self):
        bus, _dev = self.make()
        bus.mem_write(0x1004, 4, 99)
        assert bus.mem_read(0x1004, 4) == 99

    def test_observer_sees_device_traffic(self):
        bus, dev = self.make()
        bus.attach_ports(0x300, 0x10, dev)
        seen = []
        bus.observer = lambda *args: seen.append(args)
        bus.io_write(0x300, 4, 5)
        bus.io_read(0x300, 4)
        assert seen[0] == ("port", 0x300, 4, 5, True)
        assert seen[1][4] is False

    def test_overlapping_port_ranges_rejected(self):
        bus, dev = self.make()
        bus.attach_ports(0x300, 0x20, dev)
        with pytest.raises(ValueError):
            bus.attach_ports(0x310, 0x20, FakeDevice())


def run_program(source, max_steps=100_000, machine=None, import_handler=None):
    """Assemble, load at a scratch text region and run to completion."""
    from repro.layout import TEXT_BASE, page_align

    image = assemble(source)
    m = machine or Machine()
    text_base = TEXT_BASE
    m.memory.map_region(text_base, page_align(max(len(image.text), 1)), "text")
    # Apply TEXT relocations manually (tests bypass the full loader).
    text = bytearray(image.text)
    for reloc in image.relocs:
        if reloc.kind.name == "TEXT":
            site = reloc.site
            old = int.from_bytes(text[site:site + 4], "little")
            text[site:site + 4] = ((old + text_base) & 0xFFFFFFFF).to_bytes(4, "little")
        elif reloc.kind.name == "IMPORT":
            site = reloc.site
            text[site:site + 4] = import_address(reloc.index).to_bytes(4, "little")
    m.memory.write_bytes(text_base, bytes(text))
    if import_handler is not None:
        m.cpu.import_handler = import_handler
    m.cpu.pc = text_base + image.entry
    m.cpu.regs[REG_SP] = STACK_TOP
    reason = m.cpu.run(max_steps=max_steps)
    return m, reason


class TestCpu:
    def test_arithmetic(self):
        m, reason = run_program("""
        .export main
        main:
            movi r1, 10
            movi r2, 3
            add r3, r1, r2
            sub r4, r1, r2
            mul r5, r1, r2
            divu r6, r1, r2
            remu r7, r1, r2
            halt
        """)
        assert reason == ExitReason.HALT
        regs = m.cpu.regs
        assert regs[3] == 13 and regs[4] == 7 and regs[5] == 30
        assert regs[6] == 3 and regs[7] == 1

    def test_wraparound(self):
        m, _reason = run_program("""
        .export main
        main:
            movi r1, 0xFFFFFFFF
            add r2, r1, 1
            sub r3, r1, 0xFFFFFFFF
            halt
        """)
        assert m.cpu.regs[2] == 0
        assert m.cpu.regs[3] == 0

    def test_shifts(self):
        m, _reason = run_program("""
        .export main
        main:
            movi r1, 0x80000000
            shr r2, r1, 4
            sar r3, r1, 4
            movi r4, 1
            shl r5, r4, 33
            halt
        """)
        assert m.cpu.regs[2] == 0x08000000
        assert m.cpu.regs[3] == 0xF8000000
        # shift amounts are masked to 5 bits: 33 & 31 == 1
        assert m.cpu.regs[5] == 2

    def test_logic_and_unary(self):
        m, _reason = run_program("""
        .export main
        main:
            movi r1, 0xF0F0
            and r2, r1, 0xFF00
            or  r3, r1, 0x000F
            xor r4, r1, 0xFFFF
            not r5, r1
            neg r6, r1
            halt
        """)
        regs = m.cpu.regs
        assert regs[2] == 0xF000 and regs[3] == 0xF0FF and regs[4] == 0x0F0F
        assert regs[5] == 0xFFFF0F0F
        assert regs[6] == (-0xF0F0) & 0xFFFFFFFF

    def test_signed_branches(self):
        m, _reason = run_program("""
        .export main
        main:
            movi r1, 0xFFFFFFFF  ; -1 signed
            movi r2, 1
            movi r9, 0
            bge r1, r2, bad      ; signed: -1 < 1, no branch
            bltu r2, r1, unsigned_ok ; unsigned: 1 < 0xFFFFFFFF
            jmp bad
        unsigned_ok:
            movi r9, 1
            halt
        bad:
            movi r9, 2
            halt
        """)
        assert m.cpu.regs[9] == 1

    def test_loop(self):
        m, _reason = run_program("""
        .export main
        main:
            movi r1, 0
            movi r2, 0
        loop:
            add r2, r2, r1
            add r1, r1, 1
            blt r1, 5, loop
            halt
        """)
        assert m.cpu.regs[2] == 0 + 1 + 2 + 3 + 4

    def test_memory_and_stack(self):
        m, _reason = run_program("""
        .export main
        main:
            movi r1, 0xCAFE
            push r1
            pop r2
            movi r3, 0x00600000
            st32 [r3+4], r1
            ld16 r4, [r3+4]
            ld8 r5, [r3+5]
            halt
        """)
        assert m.cpu.regs[2] == 0xCAFE
        assert m.cpu.regs[4] == 0xCAFE
        assert m.cpu.regs[5] == 0xCA

    def test_call_ret_stdcall(self):
        m, _reason = run_program("""
        .export main
        main:
            movi r1, 7
            push r1
            call double
            mov r9, r0
            halt
        double:
            push fp
            mov fp, sp
            ld32 r1, [fp+8]
            add r0, r1, r1
            pop fp
            ret 4
        """)
        assert m.cpu.regs[9] == 14
        assert m.cpu.sp == STACK_TOP

    def test_divide_by_zero_faults(self):
        with pytest.raises(VmFault):
            run_program("""
            .export main
            main:
                movi r1, 1
                movi r2, 0
                divu r3, r1, r2
                halt
            """)

    def test_step_limit(self):
        _m, reason = run_program("""
        .export main
        main:
            jmp main
        """, max_steps=50)
        assert reason == ExitReason.STEP_LIMIT

    def test_return_to_os(self):
        m = Machine()
        m.memory.write(STACK_TOP - 4, 4, RETURN_TO_OS)
        source = """
        .export main
        main:
            movi r0, 55
            ret
        """
        from repro.layout import TEXT_BASE, page_align
        image = assemble(source)
        m.memory.map_region(TEXT_BASE, page_align(len(image.text)), "text")
        m.memory.write_bytes(TEXT_BASE, image.text)
        m.cpu.pc = TEXT_BASE
        m.cpu.regs[REG_SP] = STACK_TOP - 4
        reason = m.cpu.run()
        assert reason == ExitReason.RETURNED_TO_OS
        assert m.cpu.regs[0] == 55

    def test_import_dispatch(self):
        calls = []

        def handler(cpu, slot):
            calls.append((slot, cpu.read_stack_arg(0)))
            cpu.regs[0] = 0x77
            return 1  # one stack argument

        m, _reason = run_program("""
        .import OsThing
        .export main
        main:
            movi r1, 42
            push r1
            call @OsThing
            mov r9, r0
            halt
        """, import_handler=handler)
        assert calls == [(0, 42)]
        assert m.cpu.regs[9] == 0x77
        assert m.cpu.sp == STACK_TOP

    def test_instret_counts(self):
        m, _reason = run_program("""
        .export main
        main:
            movi r1, 1
            movi r2, 2
            halt
        """)
        assert m.cpu.instret == 3

    def test_indirect_call(self):
        m, _reason = run_program("""
        .export main
        main:
            movi r1, target
            callr r1
            halt
        target:
            movi r9, 0xAB
            ret
        """)
        assert m.cpu.regs[9] == 0xAB


class TestMachineIrqs:
    def test_handler_invoked(self):
        m = Machine()
        fired = []
        m.register_irq_handler(5, lambda: fired.append(5))
        m.raise_irq(5)
        assert fired == [5]
        assert m.irq_count == 1

    def test_latched_when_unregistered(self):
        m = Machine()
        m.raise_irq(3)
        assert m.drain_irqs() == [3]
        assert m.drain_irqs() == []
