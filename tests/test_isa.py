"""Unit tests for the R32 ISA encoding/decoding layer."""

import pytest

from repro.errors import DecodeError
from repro.isa import (
    INSTR_SIZE,
    NO_REG,
    Instruction,
    Op,
    decode,
    decode_stream,
    encode,
    reg_name,
    reg_number,
)


class TestRegisters:
    def test_names_roundtrip(self):
        for i in range(16):
            assert reg_number(reg_name(i)) == i

    def test_aliases(self):
        assert reg_number("sp") == 13
        assert reg_number("fp") == 14
        assert reg_number("at") == 12
        assert reg_number("rv") == 0

    def test_case_insensitive(self):
        assert reg_number("SP") == 13
        assert reg_number("R7") == 7

    def test_unknown_register(self):
        from repro.errors import AsmError
        with pytest.raises(AsmError):
            reg_number("r16")

    def test_bad_number(self):
        with pytest.raises(ValueError):
            reg_name(16)


class TestEncoding:
    def test_roundtrip_all_opcodes(self):
        samples = [
            Instruction(Op.NOP),
            Instruction(Op.MOV, a=1, b=2),
            Instruction(Op.MOVI, a=3, imm=0xDEADBEEF),
            Instruction(Op.LD32, a=4, b=5, imm=0x10),
            Instruction(Op.ST8, a=6, b=7, imm=0xFFFFFFFC),
            Instruction(Op.ADD, a=1, b=2, c=3),
            Instruction(Op.ADD, a=1, b=2, c=NO_REG, imm=42),
            Instruction(Op.BEQ, a=1, b=2, imm=0x400100),
            Instruction(Op.CALL, imm=0x400200),
            Instruction(Op.RET, imm=8),
            Instruction(Op.IN32, a=1, b=2, imm=4),
            Instruction(Op.OUT16, a=3, b=4, imm=0),
            Instruction(Op.HALT),
        ]
        for instr in samples:
            blob = encode(instr)
            assert len(blob) == INSTR_SIZE
            decoded = decode(blob)
            assert decoded.op == instr.op
            assert decoded.imm == instr.imm & 0xFFFFFFFF

    def test_decode_bad_opcode(self):
        with pytest.raises(DecodeError):
            decode(b"\xEE" + b"\0" * 7)

    def test_decode_truncated(self):
        with pytest.raises(DecodeError):
            decode(b"\x01\x00")

    def test_decode_bad_register_field(self):
        blob = encode(Instruction(Op.MOV, a=1, b=2))
        bad = bytes([blob[0], 0x20]) + blob[2:]
        with pytest.raises(DecodeError):
            decode(bad)

    def test_imm_operand_flag(self):
        imm_form = Instruction(Op.ADD, a=1, b=2, c=NO_REG, imm=5)
        reg_form = Instruction(Op.ADD, a=1, b=2, c=3)
        assert imm_form.uses_imm_operand()
        assert not reg_form.uses_imm_operand()
        assert not Instruction(Op.MOVI, a=1, imm=5).uses_imm_operand()

    def test_decode_stream(self):
        blob = encode(Instruction(Op.NOP)) + encode(Instruction(Op.HALT))
        pairs = list(decode_stream(blob, base=0x400000))
        assert [(a, i.op) for a, i in pairs] == [
            (0x400000, Op.NOP), (0x400008, Op.HALT)]

    def test_text_rendering_smoke(self):
        samples = [
            Instruction(Op.MOV, a=1, b=2),
            Instruction(Op.MOVI, a=3, imm=7),
            Instruction(Op.LD16, a=4, b=5, imm=2),
            Instruction(Op.ST32, a=6, b=7, imm=0),
            Instruction(Op.ADD, a=1, b=2, c=NO_REG, imm=9),
            Instruction(Op.SUB, a=1, b=2, c=3),
            Instruction(Op.BNE, a=1, b=2, imm=0x10),
            Instruction(Op.JMP, imm=0x20),
            Instruction(Op.CALLR, a=9),
            Instruction(Op.RET, imm=12),
            Instruction(Op.IN8, a=0, b=1, imm=3),
            Instruction(Op.OUT32, a=2, b=3, imm=1),
            Instruction(Op.PUSH, a=5),
            Instruction(Op.POP, a=6),
            Instruction(Op.NOT, a=1, b=1),
            Instruction(Op.HALT),
        ]
        for instr in samples:
            text = instr.text()
            assert instr.op.name.lower() in text
