"""Crash-consistency and hostile-disk behavior of the artifact store.

The store's hardening contract, exercised directly: checksummed entries
reject truncation and bit flips (quarantined, counted, never served),
orphaned temp files from crashed publishes are swept by the recovery
pass, concurrent writers and maintenance races stay safe, and GC evicts
exactly the unreachable and least-recently-used entries.
"""

import json
import os
import threading
import time

import pytest

from repro.pipeline.store import (ArtifactStore, FOOTER_PREFIX,
                                  code_fingerprint, frame_entry,
                                  unframe_entry)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


def _corrupt(path, mutate):
    with open(path, "rb") as handle:
        raw = handle.read()
    with open(path, "wb") as handle:
        handle.write(mutate(raw))


class TestFraming:
    def test_round_trip(self):
        payload = '{"x": 1}'
        body, meta = unframe_entry(frame_entry(payload))
        assert body == payload
        assert meta["fingerprint"] == code_fingerprint()

    def test_missing_footer_rejected(self):
        with pytest.raises(ValueError):
            unframe_entry('{"x": 1}\n')

    def test_digest_mismatch_rejected(self):
        framed = frame_entry('{"x": 1}')
        tampered = framed.replace('"x": 1', '"x": 2')
        with pytest.raises(ValueError):
            unframe_entry(tampered)

    def test_malformed_footer_rejected(self):
        with pytest.raises(ValueError):
            unframe_entry("body\n%s{not json\n" % FOOTER_PREFIX)

    def test_empty_payload(self):
        body, _meta = unframe_entry(frame_entry(""))
        assert body == ""


class TestCorruptionDetection:
    def test_truncated_entry_quarantined(self, store):
        store.save_json("k", '{"x": 1}')
        path = store.path_for("k")
        _corrupt(path, lambda raw: raw[:len(raw) // 2])
        assert store.load_json("k") is None
        assert store.corrupt == 1 and store.quarantined == 1
        assert not os.path.exists(path)
        assert os.path.exists(os.path.join(store.quarantine_dir,
                                           "k.json"))

    def test_bit_flipped_entry_quarantined(self, store):
        store.save_json("k", '{"x": 1}')

        def flip(raw):
            mutated = bytearray(raw)
            mutated[3] ^= 0x10
            return bytes(mutated)

        _corrupt(store.path_for("k"), flip)
        assert store.load_json("k") is None
        assert store.corrupt == 1 and store.quarantined == 1

    def test_verified_but_undecodable_payload_quarantined(self, store):
        # the frame checks bytes, load_json checks meaning: a correctly
        # checksummed entry holding non-JSON is still corruption
        store.save_json("k", "{not json")
        assert store.load_json("k") is None
        assert store.corrupt == 1 and store.quarantined == 1

    def test_unified_load_contracts(self, store):
        # load() and load_json() classify identically: absent -> miss,
        # corrupt -> quarantined None -- neither ever raises
        assert store.load("absent") is None
        assert store.load_json("absent") is None
        assert store.misses == 2 and store.corrupt == 0

        store.save_json("bad1", "{not json")
        store.save_json("bad2", "{not json")
        assert store.load("bad1") is None
        assert store.load_json("bad2") is None
        assert store.corrupt == 2 and store.quarantined == 2

    def test_counters_partition_outcomes(self, store):
        store.save_json("good", '{"x": 1}')
        assert store.load_json("good") == '{"x": 1}'
        counters = store.counters()
        assert counters["hits"] == 1 and counters["misses"] == 0
        assert set(counters) == {"hits", "misses", "corrupt",
                                 "quarantined", "recovered", "evicted"}


class TestCrashRecovery:
    def test_orphaned_tmp_swept(self, store):
        store.save_json("k", '{"x": 1}')
        orphan = os.path.join(store.root, "dead-writer.tmp")
        with open(orphan, "w") as handle:
            handle.write("partial garbage")
        assert store.recover() == ["dead-writer.tmp"]
        assert store.recovered == 1
        assert not os.path.exists(orphan)
        # the real entry is untouched
        assert store.load_json("k") == '{"x": 1}'

    def test_recover_on_missing_root(self, store):
        assert store.recover() == []

    def test_tmp_never_visible_as_entry(self, store):
        store.save_json("k", '{"x": 1}')
        with open(os.path.join(store.root, "crash.tmp"), "w") as handle:
            handle.write("junk")
        assert store.keys() == ["k"]


class TestRaces:
    def test_concurrent_writers_same_key(self, store):
        # deterministic pipelines write identical bytes; racing writers
        # must never produce a torn entry or an exception
        payload = json.dumps({"value": list(range(200))})
        errors = []

        def write_many():
            try:
                for _ in range(30):
                    store.save_json("shared", payload)
            except Exception as exc:     # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=write_many)
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.load_json("shared") == payload
        assert store.corrupt == 0

    def test_clear_racing_keys(self, store):
        for index in range(40):
            store.save_json("key%02d" % index, '{"i": %d}' % index)
        errors = []

        def clear_all():
            try:
                store.clear()
            except Exception as exc:     # pragma: no cover
                errors.append(exc)

        def list_repeatedly():
            try:
                for _ in range(200):
                    for key in store.keys():
                        assert isinstance(key, str)
            except Exception as exc:     # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=clear_all),
                   threading.Thread(target=list_repeatedly)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.keys() == []

    def test_recover_racing_writer_retries(self, store, monkeypatch):
        # a recovery sweep stealing the in-flight temp file surfaces as
        # FileNotFoundError from os.replace; save_json retries once
        real_replace = os.replace
        calls = {"n": 0}

        def flaky_replace(src, dst):
            calls["n"] += 1
            if calls["n"] == 1:
                os.unlink(src)          # the sweep got there first
                raise FileNotFoundError(src)
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", flaky_replace)
        store.save_json("k", '{"x": 1}')
        assert store.load_json("k") == '{"x": 1}'


class TestGc:
    def test_wrong_fingerprint_always_evicted(self, store):
        store.save_json("current", '{"x": 1}')
        stale_path = store.path_for("stale")
        framed = frame_entry('{"x": 2}')
        body, _sep, footer = framed.rstrip("\n").rpartition("\n")
        meta = json.loads(footer[len(FOOTER_PREFIX):])
        meta["fingerprint"] = "0" * 64
        with open(stale_path, "w") as handle:
            handle.write("%s\n%s%s\n" % (body, FOOTER_PREFIX,
                                         json.dumps(meta,
                                                    sort_keys=True)))
        assert store.gc() == ["stale"]
        assert store.keys() == ["current"]
        assert store.evicted == 1

    def test_lru_eviction_to_byte_budget(self, store):
        store.save_json("old", '{"x": 1}')
        time.sleep(0.02)
        store.save_json("new", '{"y": 2}')
        # a hit refreshes mtime, so touch "old" making "new" the LRU
        time.sleep(0.02)
        assert store.load_json("old") is not None
        budget = os.path.getsize(store.path_for("old"))
        evicted = store.gc(max_bytes=budget)
        assert evicted == ["new"]
        assert store.keys() == ["old"]

    def test_gc_quarantines_corrupt_entries(self, store):
        store.save_json("good", '{"x": 1}')
        store.save_json("bad", '{"y": 2}')
        _corrupt(store.path_for("bad"), lambda raw: raw[:10])
        assert store.gc() == []
        assert store.corrupt == 1 and store.quarantined == 1
        assert store.keys() == ["good"]

    def test_gc_without_budget_keeps_reachable_entries(self, store):
        for index in range(5):
            store.save_json("k%d" % index, '{"i": %d}' % index)
        assert store.gc() == []
        assert len(store.keys()) == 5


# -- the persistent compiled-code cache (repro.ir.codecache) ------------
#
# Generated block and superblock sources ride the same store discipline:
# content-addressed keys, framed+checksummed entries, quarantine on any
# mismatch.  These tests drive a hot loop through the compiled tier
# against a scratch cache directory and simulate process restarts by
# dropping every in-process cache layer.

_HOT_SRC = """
.export main
main:
    movi r1, 0
    movi r3, %d
loop:
    add r1, r1, 1
    bltu r1, r3, cont
cont:
    add r2, r2, 1
    bltu r1, r3, loop
    halt
"""


def _entries(root):
    return sorted(name for name in os.listdir(root)
                  if name.endswith(".json"))


class TestCodeCachePersistence:
    @pytest.fixture()
    def code_cache(self, tmp_path, monkeypatch):
        from repro.ir.codecache import CODE_CACHE_ENV

        root = str(tmp_path / "codegen")
        monkeypatch.setenv(CODE_CACHE_ENV, root)
        self._fresh_process()
        yield root
        self._fresh_process()

    @staticmethod
    def _fresh_process():
        """Drop every in-process cache layer so the next compiled run
        sees only what is on disk -- a warm process, simulated."""
        from repro.ir import codecache
        from repro.ir.compile import _SHARED_PROGRAMS
        from repro.ir.superblock import _SHARED_CHAINS

        codecache.forget_stores()
        _SHARED_PROGRAMS.clear()
        _SHARED_CHAINS.clear()

    @staticmethod
    def _run_hot(trips=30, hot_threshold=1):
        from repro.asm import assemble
        from repro.ir import SuperblockConfig
        from repro.layout import TEXT_BASE, page_align
        from repro.vm import Machine

        image = assemble(_HOT_SRC % trips)
        machine = Machine(
            exec_backend="compiled",
            exec_superblocks=SuperblockConfig(hot_threshold=hot_threshold))
        machine.memory.map_region(TEXT_BASE,
                                  page_align(max(len(image.text), 1)),
                                  "text")
        text = bytearray(image.text)
        for reloc in image.relocs:
            if reloc.kind.name == "TEXT":
                old = int.from_bytes(text[reloc.site:reloc.site + 4],
                                     "little")
                text[reloc.site:reloc.site + 4] = \
                    ((old + TEXT_BASE) & 0xFFFFFFFF).to_bytes(4, "little")
        machine.memory.write_bytes(TEXT_BASE, bytes(text))
        machine.cpu.pc = TEXT_BASE
        machine.cpu.run(max_steps=10_000)
        return (list(machine.cpu.regs), machine.cpu.pc,
                machine.cpu.instret)

    @classmethod
    def _measured_run(cls, **kwargs):
        from repro.ir.codecache import codecache_counters

        before = codecache_counters()
        result = cls._run_hot(**kwargs)
        after = codecache_counters()
        return result, {key: after[key] - before[key] for key in after}

    def test_cold_then_warm_round_trip(self, code_cache):
        cold, cold_delta = self._measured_run()
        assert cold_delta["generated"] > 0
        assert cold_delta["persisted"] > 0
        assert cold_delta["imported"] == 0
        on_disk = {name: open(os.path.join(code_cache, name)).read()
                   for name in _entries(code_cache)}
        assert on_disk

        self._fresh_process()
        warm, warm_delta = self._measured_run()
        assert warm == cold
        assert warm_delta["generated"] == 0, \
            "a warm process must import every source, not regenerate"
        assert warm_delta["imported"] > 0
        assert warm_delta["hints"] > 0
        # Importing must not rewrite entries: byte-identical on disk.
        assert {name: open(os.path.join(code_cache, name)).read()
                for name in _entries(code_cache)} == on_disk

    def test_truncated_entry_quarantined_and_regenerated(self, code_cache):
        cold, _ = self._measured_run()
        victim = os.path.join(code_cache, _entries(code_cache)[0])
        _corrupt(victim, lambda raw: raw[:len(raw) // 2])

        self._fresh_process()
        warm, delta = self._measured_run()
        assert warm == cold
        # The bad entry was rebuilt and re-persisted, and the evidence
        # moved to quarantine rather than being served or deleted.
        assert delta["generated"] >= 1 or delta["persisted"] >= 1
        from repro.ir.codecache import store_counters
        counters = store_counters()
        assert counters["corrupt"] >= 1
        quarantine = os.path.join(code_cache, "quarantine")
        assert os.path.isdir(quarantine) and os.listdir(quarantine)

    def test_stale_fingerprint_rejected_never_served(self, code_cache):
        cold, _ = self._measured_run()
        # Tamper one payload's recorded fingerprint but re-frame it so
        # the store-level digest verifies: only the codecache layer's
        # validation stands between the stale source and the compiler.
        victim = os.path.join(code_cache, _entries(code_cache)[0])
        body, _meta = unframe_entry(open(victim).read())
        payload = json.loads(body)
        payload["fingerprint"] = "0" * 64
        with open(victim, "w") as handle:
            handle.write(frame_entry(json.dumps(payload, sort_keys=True)))

        self._fresh_process()
        from repro.ir.codecache import codecache_counters
        before = codecache_counters()["rejected"]
        warm, _ = self._measured_run()
        assert warm == cold
        assert codecache_counters()["rejected"] > before
        quarantine = os.path.join(code_cache, "quarantine")
        assert os.path.isdir(quarantine) and os.listdir(quarantine)

    def test_chain_hint_reforms_without_reprofiling(self, code_cache):
        from repro.ir import superblock_counters

        cold, _ = self._measured_run(hot_threshold=1)

        # A warm process with an unreachable hot threshold can only get
        # a superblock from the persisted hint, on first dispatch.
        self._fresh_process()
        before = superblock_counters()
        warm, delta = self._measured_run(hot_threshold=1 << 30)
        after = superblock_counters()
        assert warm == cold
        assert delta["hints"] > 0
        assert after["superblocks_formed"] > before["superblocks_formed"]
        assert after["superblock_runs"] > before["superblock_runs"]

    def test_disabled_cache_only_generates(self, tmp_path, monkeypatch):
        from repro.ir.codecache import CODE_CACHE_ENV, store_counters

        monkeypatch.setenv(CODE_CACHE_ENV, "off")
        self._fresh_process()
        _result, delta = self._measured_run()
        assert delta["generated"] > 0
        assert delta["persisted"] == 0 and delta["imported"] == 0
        assert store_counters() == {}
        self._fresh_process()

    def test_quarantine_entry_direct(self, store):
        store.save_json("doomed", '{"x": 1}')
        path = store.path_for("doomed")
        assert store.quarantine_entry("doomed")
        assert not os.path.exists(path)
        assert store.corrupt == 1 and store.quarantined == 1
        # Unknown keys are a no-op, not an error.
        assert not store.quarantine_entry("missing")
        assert store.corrupt == 1
