"""Crash-consistency and hostile-disk behavior of the artifact store.

The store's hardening contract, exercised directly: checksummed entries
reject truncation and bit flips (quarantined, counted, never served),
orphaned temp files from crashed publishes are swept by the recovery
pass, concurrent writers and maintenance races stay safe, and GC evicts
exactly the unreachable and least-recently-used entries.
"""

import json
import os
import threading
import time

import pytest

from repro.pipeline.store import (ArtifactStore, FOOTER_PREFIX,
                                  code_fingerprint, frame_entry,
                                  unframe_entry)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


def _corrupt(path, mutate):
    with open(path, "rb") as handle:
        raw = handle.read()
    with open(path, "wb") as handle:
        handle.write(mutate(raw))


class TestFraming:
    def test_round_trip(self):
        payload = '{"x": 1}'
        body, meta = unframe_entry(frame_entry(payload))
        assert body == payload
        assert meta["fingerprint"] == code_fingerprint()

    def test_missing_footer_rejected(self):
        with pytest.raises(ValueError):
            unframe_entry('{"x": 1}\n')

    def test_digest_mismatch_rejected(self):
        framed = frame_entry('{"x": 1}')
        tampered = framed.replace('"x": 1', '"x": 2')
        with pytest.raises(ValueError):
            unframe_entry(tampered)

    def test_malformed_footer_rejected(self):
        with pytest.raises(ValueError):
            unframe_entry("body\n%s{not json\n" % FOOTER_PREFIX)

    def test_empty_payload(self):
        body, _meta = unframe_entry(frame_entry(""))
        assert body == ""


class TestCorruptionDetection:
    def test_truncated_entry_quarantined(self, store):
        store.save_json("k", '{"x": 1}')
        path = store.path_for("k")
        _corrupt(path, lambda raw: raw[:len(raw) // 2])
        assert store.load_json("k") is None
        assert store.corrupt == 1 and store.quarantined == 1
        assert not os.path.exists(path)
        assert os.path.exists(os.path.join(store.quarantine_dir,
                                           "k.json"))

    def test_bit_flipped_entry_quarantined(self, store):
        store.save_json("k", '{"x": 1}')

        def flip(raw):
            mutated = bytearray(raw)
            mutated[3] ^= 0x10
            return bytes(mutated)

        _corrupt(store.path_for("k"), flip)
        assert store.load_json("k") is None
        assert store.corrupt == 1 and store.quarantined == 1

    def test_verified_but_undecodable_payload_quarantined(self, store):
        # the frame checks bytes, load_json checks meaning: a correctly
        # checksummed entry holding non-JSON is still corruption
        store.save_json("k", "{not json")
        assert store.load_json("k") is None
        assert store.corrupt == 1 and store.quarantined == 1

    def test_unified_load_contracts(self, store):
        # load() and load_json() classify identically: absent -> miss,
        # corrupt -> quarantined None -- neither ever raises
        assert store.load("absent") is None
        assert store.load_json("absent") is None
        assert store.misses == 2 and store.corrupt == 0

        store.save_json("bad1", "{not json")
        store.save_json("bad2", "{not json")
        assert store.load("bad1") is None
        assert store.load_json("bad2") is None
        assert store.corrupt == 2 and store.quarantined == 2

    def test_counters_partition_outcomes(self, store):
        store.save_json("good", '{"x": 1}')
        assert store.load_json("good") == '{"x": 1}'
        counters = store.counters()
        assert counters["hits"] == 1 and counters["misses"] == 0
        assert set(counters) == {"hits", "misses", "corrupt",
                                 "quarantined", "recovered", "evicted"}


class TestCrashRecovery:
    def test_orphaned_tmp_swept(self, store):
        store.save_json("k", '{"x": 1}')
        orphan = os.path.join(store.root, "dead-writer.tmp")
        with open(orphan, "w") as handle:
            handle.write("partial garbage")
        assert store.recover() == ["dead-writer.tmp"]
        assert store.recovered == 1
        assert not os.path.exists(orphan)
        # the real entry is untouched
        assert store.load_json("k") == '{"x": 1}'

    def test_recover_on_missing_root(self, store):
        assert store.recover() == []

    def test_tmp_never_visible_as_entry(self, store):
        store.save_json("k", '{"x": 1}')
        with open(os.path.join(store.root, "crash.tmp"), "w") as handle:
            handle.write("junk")
        assert store.keys() == ["k"]


class TestRaces:
    def test_concurrent_writers_same_key(self, store):
        # deterministic pipelines write identical bytes; racing writers
        # must never produce a torn entry or an exception
        payload = json.dumps({"value": list(range(200))})
        errors = []

        def write_many():
            try:
                for _ in range(30):
                    store.save_json("shared", payload)
            except Exception as exc:     # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=write_many)
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.load_json("shared") == payload
        assert store.corrupt == 0

    def test_clear_racing_keys(self, store):
        for index in range(40):
            store.save_json("key%02d" % index, '{"i": %d}' % index)
        errors = []

        def clear_all():
            try:
                store.clear()
            except Exception as exc:     # pragma: no cover
                errors.append(exc)

        def list_repeatedly():
            try:
                for _ in range(200):
                    for key in store.keys():
                        assert isinstance(key, str)
            except Exception as exc:     # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=clear_all),
                   threading.Thread(target=list_repeatedly)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.keys() == []

    def test_recover_racing_writer_retries(self, store, monkeypatch):
        # a recovery sweep stealing the in-flight temp file surfaces as
        # FileNotFoundError from os.replace; save_json retries once
        real_replace = os.replace
        calls = {"n": 0}

        def flaky_replace(src, dst):
            calls["n"] += 1
            if calls["n"] == 1:
                os.unlink(src)          # the sweep got there first
                raise FileNotFoundError(src)
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", flaky_replace)
        store.save_json("k", '{"x": 1}')
        assert store.load_json("k") == '{"x": 1}'


class TestGc:
    def test_wrong_fingerprint_always_evicted(self, store):
        store.save_json("current", '{"x": 1}')
        stale_path = store.path_for("stale")
        framed = frame_entry('{"x": 2}')
        body, _sep, footer = framed.rstrip("\n").rpartition("\n")
        meta = json.loads(footer[len(FOOTER_PREFIX):])
        meta["fingerprint"] = "0" * 64
        with open(stale_path, "w") as handle:
            handle.write("%s\n%s%s\n" % (body, FOOTER_PREFIX,
                                         json.dumps(meta,
                                                    sort_keys=True)))
        assert store.gc() == ["stale"]
        assert store.keys() == ["current"]
        assert store.evicted == 1

    def test_lru_eviction_to_byte_budget(self, store):
        store.save_json("old", '{"x": 1}')
        time.sleep(0.02)
        store.save_json("new", '{"y": 2}')
        # a hit refreshes mtime, so touch "old" making "new" the LRU
        time.sleep(0.02)
        assert store.load_json("old") is not None
        budget = os.path.getsize(store.path_for("old"))
        evicted = store.gc(max_bytes=budget)
        assert evicted == ["new"]
        assert store.keys() == ["old"]

    def test_gc_quarantines_corrupt_entries(self, store):
        store.save_json("good", '{"x": 1}')
        store.save_json("bad", '{"y": 2}')
        _corrupt(store.path_for("bad"), lambda raw: raw[:10])
        assert store.gc() == []
        assert store.corrupt == 1 and store.quarantined == 1
        assert store.keys() == ["good"]

    def test_gc_without_budget_keeps_reachable_entries(self, store):
        for index in range(5):
            store.save_json("k%d" % index, '{"i": %d}' % index)
        assert store.gc() == []
        assert len(store.keys()) == 5
