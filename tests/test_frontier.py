"""Tests for sharded in-run symbolic exploration (repro.symex.frontier).

The load-bearing property is byte identity: partitioned exploration must
produce a :class:`RunArtifact` whose canonical JSON is identical whether
the sub-trees run serially in-process or sharded across spawned workers.
The engine's compiler/synthesizer/validation stack downstream of the
artifact then needs no re-verification for the parallel mode.
"""

import itertools
import json

import pytest

from repro.drivers import DRIVERS, build_driver, device_class
from repro.pipeline.artifact import _Decoder, _Encoder, build_artifact, \
    canonical_json
from repro.pipeline.store import artifact_key
from repro.revnic import RevNic, RevNicConfig
from repro.revnic.trace import ImportRecord
from repro.symex import expr as E
from repro.symex import frontier
from repro.symex.memory import SymMemory
from repro.symex.state import SymState
from repro.synth import synthesize


# -- env knobs -------------------------------------------------------------

def test_env_knob_parsing(monkeypatch):
    monkeypatch.delenv(frontier.WORKERS_ENV, raising=False)
    monkeypatch.delenv(frontier.SPLIT_DEPTH_ENV, raising=False)
    assert frontier.env_workers() == 0
    assert frontier.env_split_depth() == 0
    monkeypatch.setenv(frontier.WORKERS_ENV, "3")
    monkeypatch.setenv(frontier.SPLIT_DEPTH_ENV, "5")
    assert frontier.env_workers() == 3
    assert frontier.env_split_depth() == 5
    # Garbage and negatives degrade to the serial default, never raise.
    monkeypatch.setenv(frontier.WORKERS_ENV, "many")
    monkeypatch.setenv(frontier.SPLIT_DEPTH_ENV, "-2")
    assert frontier.env_workers() == 0
    assert frontier.env_split_depth() == 0


def test_engine_reads_worker_env(monkeypatch):
    monkeypatch.setenv(frontier.WORKERS_ENV, "2")
    image = build_driver("rtl8029")
    config = RevNicConfig(driver_name="rtl8029",
                          pci=device_class("rtl8029").PCI, script="quick")
    assert RevNic(image, config).explore_workers == 2
    assert RevNic(image, config, explore_workers=0).explore_workers == 0


def test_split_depth_changes_cache_key():
    """The split depth changes exploration semantics, so partitioned and
    legacy artifacts must live under different store keys; the worker
    count must not (it only changes wall time)."""
    from repro.pipeline.orchestrator import build_config

    image = build_driver("rtl8029")
    key0 = artifact_key(image, build_config("rtl8029", "coverage",
                                            "quick", 0))
    key3 = artifact_key(image, build_config("rtl8029", "coverage",
                                            "quick", 3))
    assert key0 != key3


# -- frontier-state codec --------------------------------------------------

def _crafted_state():
    sym = E.bv_sym("s1_mmio_16_0")
    memory = SymMemory(lambda address: 0)
    memory.write_byte(0x2000, 0xAB)
    memory.write_byte(0x2001, sym)
    state = SymState(pc=0x1040, regs=[sym if i == 2 else i * 3
                                      for i in range(16)],
                     memory=memory, id_source=itertools.count(41))
    state.add_constraint(E.bv_cmp("ult", sym, 16),
                         model={"s1_mmio_16_0": 5})
    state.depth = 4
    state.model_hint = {"s1_mmio_16_0": 5}
    state.block_counts = {0x1000: 2, 0x1040: 1}
    state.loop_suspects = {0x1000}
    state.os.heap_next += 0x80
    state.os.dma_regions.append((0x30000, 0x1000))
    state.os.timers[0x5000] = 0x1100
    state.os.indicated = 2
    state.trace_records = [ImportRecord(seq=9, name="NdisMSleep",
                                        args=(100, sym), caller_pc=0x1038)]
    return state


def _wire(state):
    enc = _Encoder()
    payload = frontier.encode_state(state, enc)
    return json.dumps({"payload": payload, "exprs": enc.exprs,
                       "blocks": enc.blocks}, sort_keys=True)


def test_state_codec_round_trip():
    state = _crafted_state()
    wire = _wire(state)
    message = json.loads(wire)
    dec = _Decoder(message["exprs"], message["blocks"])
    restored = frontier.decode_state(message["payload"], dec,
                                     lambda address: 0)
    assert restored.id == state.id
    assert restored.pc == state.pc
    assert restored.depth == state.depth
    assert restored.status == state.status
    assert restored.model_hint == state.model_hint
    assert restored.block_counts == state.block_counts
    assert restored.loop_suspects == state.loop_suspects
    assert restored.os.heap_next == state.os.heap_next
    assert restored.os.dma_regions == state.os.dma_regions
    assert restored.os.timers == state.os.timers
    assert len(restored.path_trace()) == 1
    # The codec is a fixed point: re-encoding the decoded state yields
    # the exact same wire bytes.  Sub-tree outcomes cross the process
    # boundary through this codec, so the merge depends on it.
    assert _wire(restored) == wire


# -- serial vs sharded byte identity ---------------------------------------

def _canonical_run(name, workers, split_depth=3):
    image = build_driver(name)
    config = RevNicConfig(driver_name=name, pci=device_class(name).PCI,
                          script="quick", explore_split_depth=split_depth)
    engine = RevNic(image, config, explore_workers=workers)
    result = engine.run()
    artifact = build_artifact(config, result, synthesize(result))
    return canonical_json(artifact), result.stats


@pytest.mark.parametrize("name", sorted(DRIVERS))
def test_sharded_matches_serial_bytes(name):
    """The acceptance gate: for every driver, a 2-worker sharded run's
    canonical artifact is byte-identical to the serial partitioned run
    (worker count is runtime-only; it must never leak into bytes)."""
    serial, serial_stats = _canonical_run(name, workers=0)
    sharded, stats = _canonical_run(name, workers=2)
    assert sharded == serial
    # The partition actually fanned out and both runs agree on its shape.
    assert stats["frontier"]["subtrees"] > 0
    assert stats["frontier"]["subtrees"] == \
        serial_stats["frontier"]["subtrees"]
    assert stats["frontier"]["split_depth"] == 3
