"""Unit and integration tests for the differential validation matrix."""

import pytest

from repro.eval.runner import get_cache
from repro.eval.tables import validation_matrix_render
from repro.validate import (CATALOG, SCENARIOS, CellResult, MatrixResult,
                            OriginalDut, SynthesizedDut, ValidationMatrix,
                            compare_observations, compute_column,
                            expected_status, run_scenario)


@pytest.fixture(scope="module")
def rtl8029_artifact():
    return get_cache().run("rtl8029")


# ==========================================================================
# Catalog shape


class TestCatalog:
    def test_catalog_size_and_uniqueness(self):
        assert len(SCENARIOS) >= 8
        names = [s.name for s in SCENARIOS]
        assert len(set(names)) == len(names)
        assert all(s.description for s in SCENARIOS)

    def test_adversarial_coverage(self):
        """The catalog goes beyond the paper's UDP sweep."""
        for name in ("runt_oversize_rx", "bad_crc_rx", "rx_overflow",
                     "bidirectional_burst", "filter_mix", "link_flap"):
            assert name in CATALOG

    def test_requires_are_known_roles(self):
        roles = {"initialize", "send", "isr", "halt", "reset", "timer",
                 "query_information", "set_information"}
        for scenario in SCENARIOS:
            assert set(scenario.requires) <= roles, scenario.name


# ==========================================================================
# Observations and comparison


class TestObservations:
    def test_same_side_same_scenario_is_deterministic(self):
        a = run_scenario(OriginalDut("rtl8029"), CATALOG["udp_stream"])
        b = run_scenario(OriginalDut("rtl8029"), CATALOG["udp_stream"])
        assert a.ok and compare_observations(a, b) == []

    def test_observation_round_trips_through_dict(self):
        obs = run_scenario(OriginalDut("rtl8029"), CATALOG["udp_stream"])
        again = type(obs).from_dict(obs.to_dict())
        assert compare_observations(obs, again) == []

    def test_injected_divergence_is_detected(self, rtl8029_artifact):
        baseline = run_scenario(OriginalDut("rtl8029"),
                                CATALOG["udp_stream"])
        candidate = run_scenario(SynthesizedDut(rtl8029_artifact, "winsim"),
                                 CATALOG["udp_stream"])
        assert compare_observations(baseline, candidate) == []
        candidate.device_stats["tx_frames"] += 1
        candidate.wire_frames.pop()
        fields = {d.field for d in
                  compare_observations(baseline, candidate)}
        assert fields == {"device_stats", "wire_frames"}

    def test_scenario_exception_is_an_observation(self, rtl8029_artifact):
        """ucsim refuses DMA drivers via TemplateError -- captured, not
        raised (rtl8029 itself works there, so synthesize a failure)."""
        dut = SynthesizedDut(rtl8029_artifact, "ucsim")

        def boom(_dut):
            raise ValueError("boom")

        scenario = type(SCENARIOS[0])(name="boom", description="x",
                                      run=boom)
        obs = run_scenario(dut, scenario)
        assert not obs.ok and obs.error == "ValueError"


# ==========================================================================
# Matrix cells


class TestMatrix:
    def test_single_column_all_equivalent(self, rtl8029_artifact):
        cells = compute_column(rtl8029_artifact, ("winsim", "kitos"),
                               [s.name for s in SCENARIOS])
        assert [c.status for c in cells] == ["equivalent", "equivalent"]
        assert all(not c.unexplained() for c in cells)

    def test_dma_driver_unsupported_on_ucsim(self):
        artifact = get_cache().run("rtl8139")
        (cell,) = compute_column(artifact, ("ucsim",),
                                 ["udp_stream", "boot_probe"])
        assert cell.status == "unsupported"
        assert cell.expected == "unsupported"
        assert cell.unexplained() == []
        assert all(s.candidate_error == "TemplateError"
                   for s in cell.scenarios)

    def test_expected_status_matrix(self):
        assert expected_status("rtl8139", "ucsim") == "unsupported"
        assert expected_status("pcnet", "ucsim") == "unsupported"
        assert expected_status("rtl8029", "ucsim") == "equivalent"
        assert expected_status("rtl8139", "linsim") == "equivalent"

    def test_cell_round_trips_through_dict(self, rtl8029_artifact):
        (cell,) = compute_column(rtl8029_artifact, ("winsim",),
                                 ["udp_stream"])
        again = CellResult.from_dict(cell.to_dict())
        assert again.to_dict() == cell.to_dict()
        assert again.status == cell.status

    def test_quick_script_artifacts_skip_gated_scenarios(self):
        """Reduced-script artifacts carry no set/query_information entry
        points; scenarios requiring them are skipped, the rest run."""
        artifact = get_cache().run("rtl8029", script="quick")
        (cell,) = compute_column(artifact, ("winsim",),
                                 [s.name for s in SCENARIOS])
        verdicts = {s.name: s.verdict for s in cell.scenarios}
        assert verdicts["control_plane"] == "skipped"
        assert verdicts["filter_mix"] == "skipped"
        assert verdicts["udp_stream"] == "match"
        assert cell.status in ("equivalent", "divergent")

    def test_small_matrix_run_and_render(self, rtl8029_artifact):
        matrix = ValidationMatrix(orchestrator=get_cache(),
                                  drivers=["rtl8029"],
                                  os_names=["winsim", "linsim"],
                                  scenarios=["udp_stream", "link_flap"])
        result = matrix.run(parallel=False)
        assert isinstance(result, MatrixResult)
        assert set(result.cells) == {("rtl8029", "winsim"),
                                     ("rtl8029", "linsim")}
        assert result.unexplained() == []
        summary = result.summary()
        assert summary["cells"] == 2
        assert summary["scenarios_run"] == 4
        text = validation_matrix_render(result)
        assert "rtl8029" in text and "winsim" in text
        assert "UNEXPLAINED" not in text
