"""Unit tests for the assembler and DRV binary format."""

import pytest

from repro.asm import DrvImage, RelocKind, assemble, disassemble_image
from repro.asm.disasm import static_call_targets
from repro.errors import AsmError, BinFmtError
from repro.isa import INSTR_SIZE, Op, decode


def text_ops(image):
    return [decode(image.text, off).op
            for off in range(0, len(image.text), INSTR_SIZE)]


class TestBasicAssembly:
    def test_simple_program(self):
        image = assemble("""
        .export main
        main:
            movi r1, 5
            add r2, r1, 3
            halt
        """)
        assert text_ops(image) == [Op.MOVI, Op.ADD, Op.HALT]
        assert image.entry == 0

    def test_label_and_branch(self):
        image = assemble("""
        .export main
        main:
            movi r1, 0
        loop:
            add r1, r1, 1
            blt r1, 10, loop
            halt
        """)
        ops = text_ops(image)
        # blt with immediate expands to movi at + blt
        assert ops == [Op.MOVI, Op.ADD, Op.MOVI, Op.BLT, Op.HALT]
        branch = decode(image.text, 3 * INSTR_SIZE)
        assert branch.imm == INSTR_SIZE  # target of 'loop' (pre-reloc offset)

    def test_text_reloc_on_branch(self):
        image = assemble("""
        .export main
        main:
            jmp main
        """)
        assert len(image.relocs) == 1
        assert image.relocs[0].kind == RelocKind.TEXT
        assert image.relocs[0].site == 4

    def test_import_call(self):
        image = assemble("""
        .import NdisWriteLog
        .export main
        main:
            call @NdisWriteLog
            ret
        """)
        assert [imp.name for imp in image.imports] == ["NdisWriteLog"]
        reloc = image.relocs[0]
        assert reloc.kind == RelocKind.IMPORT
        assert reloc.index == 0

    def test_data_section(self):
        image = assemble("""
        .export main
        main:
            halt
        .data
        table:
            .word 1, 2, 3
        name:
            .asciz "ok"
        pad:
            .space 5
        bytes:
            .byte 0xAA, 0xBB
        halves:
            .half 0x1234
        """)
        assert image.data[:12] == (b"\x01\x00\x00\x00"
                                   b"\x02\x00\x00\x00"
                                   b"\x03\x00\x00\x00")
        assert image.data[12:15] == b"ok\x00"
        assert image.data[15:20] == b"\x00" * 5
        assert image.data[20:22] == b"\xaa\xbb"
        assert image.data[22:24] == b"\x34\x12"

    def test_data_label_reference(self):
        image = assemble("""
        .export main
        main:
            movi r1, greeting
            halt
        .data
        greeting:
            .asciz "hi"
        """)
        reloc = image.relocs[0]
        assert reloc.kind == RelocKind.DATA
        assert reloc.site == 4

    def test_equ_constants(self):
        image = assemble("""
        .equ BASE, 0x100
        .equ DOUBLED, BASE * 2
        .export main
        main:
            movi r1, DOUBLED + 4
            halt
        """)
        assert decode(image.text, 0).imm == 0x204

    def test_expressions(self):
        image = assemble("""
        .export main
        main:
            movi r1, (1 << 4) | 3
            movi r2, 0xFF & 0x0F
            movi r3, 10 - 2 - 3
            halt
        """)
        assert decode(image.text, 0).imm == 0x13
        assert decode(image.text, 8).imm == 0x0F
        assert decode(image.text, 16).imm == 5

    def test_entry_directive(self):
        image = assemble("""
        .export helper
        .entry main
        helper:
            ret
        main:
            halt
        """)
        assert image.entry == INSTR_SIZE

    def test_absolute_memory_operand(self):
        image = assemble("""
        .export main
        main:
            ld32 r1, [0x1000]
            st32 [0x2000], r1
            halt
        """)
        ops = text_ops(image)
        assert ops == [Op.MOVI, Op.LD32, Op.MOVI, Op.ST32, Op.HALT]

    def test_negative_displacement(self):
        image = assemble("""
        .export main
        main:
            ld32 r1, [fp-8]
            halt
        """)
        load = decode(image.text, 0)
        assert load.imm == 0xFFFFFFF8

    def test_port_operands(self):
        image = assemble("""
        .export main
        main:
            in32 r1, (r2+4)
            out8 (r2+0x10), r3
            halt
        """)
        in_instr = decode(image.text, 0)
        assert in_instr.op == Op.IN32 and in_instr.imm == 4
        out_instr = decode(image.text, 8)
        assert out_instr.op == Op.OUT8 and out_instr.imm == 0x10

    def test_push_pop_multiple(self):
        image = assemble("""
        .export main
        main:
            push r1, r2, r3
            pop r3, r2, r1
            halt
        """)
        assert text_ops(image) == [Op.PUSH] * 3 + [Op.POP] * 3 + [Op.HALT]

    def test_two_operand_alu(self):
        image = assemble("""
        .export main
        main:
            add r1, 4
            sub r1, r2
            halt
        """)
        add = decode(image.text, 0)
        assert add.a == 1 and add.b == 1 and add.imm == 4

    def test_swapped_branches(self):
        image = assemble("""
        .export main
        main:
            bgt r1, r2, main
            ble r1, r2, main
            halt
        """)
        first = decode(image.text, 0)
        assert first.op == Op.BLT and first.a == 2 and first.b == 1

    def test_bz_bnz(self):
        image = assemble("""
        .export main
        main:
            bz r1, main
            bnz r2, main
            halt
        """)
        ops = text_ops(image)
        assert ops == [Op.MOVI, Op.BEQ, Op.MOVI, Op.BNE, Op.HALT]


class TestAssemblyErrors:
    def test_duplicate_label(self):
        with pytest.raises(AsmError):
            assemble("a:\n nop\na:\n nop")

    def test_undefined_symbol(self):
        with pytest.raises(AsmError, match="undefined symbol"):
            assemble("main:\n jmp nowhere")

    def test_undeclared_import(self):
        with pytest.raises(AsmError, match="undeclared import"):
            assemble("main:\n call @Nothing")

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError, match="unknown mnemonic"):
            assemble("main:\n frobnicate r1")

    def test_instruction_in_data_section(self):
        with pytest.raises(AsmError, match="outside .text"):
            assemble(".data\n nop")

    def test_word_in_text_section(self):
        with pytest.raises(AsmError):
            assemble(".text\n .word 5")

    def test_bad_register_count(self):
        with pytest.raises(AsmError):
            assemble("main:\n mov r1")

    def test_error_reports_line(self):
        with pytest.raises(AsmError, match="line 3"):
            assemble("main:\n nop\n frobnicate r1")

    def test_subtract_across_sections(self):
        with pytest.raises(AsmError):
            assemble("""
            main:
                movi r1, main - other
                halt
            .data
            other: .word 0
            """)

    def test_circular_equ(self):
        with pytest.raises(AsmError, match="circular"):
            assemble(".equ A, B\n.equ B, A\nmain:\n movi r1, A")


class TestBinFmt:
    def _sample(self):
        return assemble("""
        .import OsAlloc
        .import OsLog
        .export DriverEntry
        .export helper
        DriverEntry:
            call helper
            call @OsLog
            ret
        helper:
            movi r1, message
            ret
        .data
        message:
            .asciz "hello driver"
        """)

    def test_roundtrip(self):
        image = self._sample()
        blob = image.to_bytes()
        back = DrvImage.from_bytes(blob)
        assert back.text == image.text
        assert back.data == image.data
        assert back.entry == image.entry
        assert [i.name for i in back.imports] == ["OsAlloc", "OsLog"]
        assert back.export_offset("helper") == image.export_offset("helper")
        assert len(back.relocs) == len(image.relocs)

    def test_file_and_code_size(self):
        image = self._sample()
        assert image.code_size == len(image.text)
        assert image.file_size == len(image.to_bytes())
        assert image.file_size > image.code_size

    def test_bad_magic(self):
        blob = bytearray(self._sample().to_bytes())
        blob[:4] = b"XXXX"
        with pytest.raises(BinFmtError, match="magic"):
            DrvImage.from_bytes(bytes(blob))

    def test_truncated(self):
        blob = self._sample().to_bytes()
        with pytest.raises(BinFmtError):
            DrvImage.from_bytes(blob[:20])

    def test_import_lookup(self):
        image = self._sample()
        assert image.import_index("OsLog") == 1
        with pytest.raises(KeyError):
            image.import_index("Missing")

    def test_validation_rejects_bad_reloc(self):
        image = self._sample()
        from repro.asm.binfmt import Reloc
        image.relocs.append(Reloc(RelocKind.IMPORT, 4, 99))
        with pytest.raises(BinFmtError):
            image.validate()


class TestDisasm:
    def test_disassemble_all(self):
        image = assemble("""
        .export main
        main:
            movi r1, 1
            add r2, r1, r1
            halt
        """)
        lines = list(disassemble_image(image))
        assert len(lines) == 3
        assert "main:" in lines[0][2]
        assert "halt" in lines[2][2]

    def test_static_call_targets(self):
        image = assemble("""
        .export DriverEntry
        DriverEntry:
            call helper
            movi r1, handler
            ret
        helper:
            ret
        handler:
            ret
        """)
        targets = static_call_targets(image)
        assert image.export_offset("DriverEntry") in targets
        assert len(targets) == 3
