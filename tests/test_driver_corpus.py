"""Tests for the driver-corpus plumbing in :mod:`repro.drivers`."""

import os

import pytest

import repro.drivers as drivers
from repro.asm import DrvImage
from repro.drivers import DRIVERS, build_driver, device_class, \
    driver_source_path
from repro.guestos.loader import load_image
from repro.guestos.structures import MINIPORT_FIELDS
from repro.hw.base import NicDevice
from repro.vm.machine import Machine


class TestSourcePaths:
    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            driver_source_path("rtl9999")

    def test_build_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            build_driver("rtl9999")

    @pytest.mark.parametrize("name", sorted(DRIVERS))
    def test_source_exists(self, name):
        path = driver_source_path(name)
        assert os.path.exists(path), path
        assert path.endswith("%s.s" % name)


class TestBuildCache:
    def test_build_caches_per_process(self):
        drivers._image_cache.clear()
        first = build_driver("rtl8029")
        second = build_driver("rtl8029")
        assert first is second
        assert drivers._image_cache["rtl8029"] is first

    def test_cache_is_per_driver(self):
        assert build_driver("rtl8029") is not build_driver("pcnet")


@pytest.mark.parametrize("name", sorted(DRIVERS))
class TestCorpusImages:
    def test_assembles_to_drv_image(self, name):
        image = build_driver(name)
        assert isinstance(image, DrvImage)
        image.validate()
        # Binary round trip survives.
        back = DrvImage.from_bytes(image.to_bytes())
        assert back.text == image.text

    def test_image_is_loadable(self, name):
        image = build_driver(name)
        machine = Machine()
        loaded = load_image(machine, image)
        assert loaded.contains_code(loaded.entry_address)
        # Every import slot resolves to a name the loader can dispatch on.
        assert sorted(loaded.import_names) == list(range(len(image.imports)))

    def test_registers_every_miniport_entry(self, name):
        """DriverEntry fills the whole characteristics structure."""
        from repro.guestos.ndis import NdisEnv

        env = NdisEnv(Machine())
        env.load_driver(build_driver(name))
        assert set(env.entry_points) >= set(MINIPORT_FIELDS)

    def test_metadata_matches_device(self, name):
        info = DRIVERS[name]
        cls = device_class(name)
        assert issubclass(cls, NicDevice)
        assert info.link_mbps in (10, 100)
        # DMA-capable chips expose bus-master identity via their model.
        if info.uses_dma:
            assert cls.PCI.vendor_id != 0
