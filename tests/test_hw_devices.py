"""Unit tests for the NIC device models' register interfaces (driving the
hardware directly, no driver involved)."""

import struct

import pytest

from repro.hw import (
    Ne2000Device,
    PcnetDevice,
    Rtl8139Device,
    Smc91c111Device,
)
from repro.hw import ne2000 as NE
from repro.hw import pcnet as PC
from repro.hw import rtl8139 as RT
from repro.hw import smc91c111 as SMC
from repro.net.medium import Medium
from repro.vm import Machine

MAC = b"\x52\x54\x00\x01\x02\x03"


def make(device_cls):
    machine = Machine()
    medium = Medium()
    device = device_cls(MAC, medium=medium, bus=machine.bus)
    medium.attach(device)
    irqs = []
    device.irq_callback = lambda: irqs.append(1)
    return machine, medium, device, irqs


class TestNe2000:
    def test_reset_via_port(self):
        _m, _med, dev, _irqs = make(Ne2000Device)
        dev.io_read(NE.REG_RESET, 1)
        assert dev.isr & 0x80

    def test_mac_in_page1(self):
        _m, _med, dev, _irqs = make(Ne2000Device)
        dev.io_write(NE.REG_CR, 1, 0x40)  # page 1
        mac = bytes(dev.io_read(NE.REG_CR + 1 + i, 1) for i in range(6))
        assert mac == MAC

    def test_remote_dma_roundtrip(self):
        _m, _med, dev, _irqs = make(Ne2000Device)
        address = NE.MEM_START_PAGE * 256
        dev.io_write(0x08, 1, address & 0xFF)
        dev.io_write(0x09, 1, address >> 8)
        dev.io_write(0x0A, 1, 8)
        dev.io_write(0x0B, 1, 0)
        dev.io_write(NE.REG_CR, 1, NE.CR_STA | NE.CR_RD_WRITE)
        dev.io_write(NE.REG_DATA, 4, 0xDDCCBBAA)
        dev.io_write(NE.REG_DATA, 4, 0x44332211)
        # read back
        dev.io_write(0x08, 1, address & 0xFF)
        dev.io_write(0x09, 1, address >> 8)
        dev.io_write(0x0A, 1, 8)
        dev.io_write(0x0B, 1, 0)
        dev.io_write(NE.REG_CR, 1, NE.CR_STA | NE.CR_RD_READ)
        assert dev.io_read(NE.REG_DATA, 4) == 0xDDCCBBAA
        assert dev.io_read(NE.REG_DATA, 4) == 0x44332211

    def test_transmit_from_internal_memory(self):
        _m, medium, dev, irqs = make(Ne2000Device)
        dev.io_write(NE.REG_CR, 1, NE.CR_STA)
        frame = b"\xff" * 6 + MAC + b"\x08\x00" + b"p" * 50
        # remote-DMA the frame to the tx page
        dev.rsar = NE.MEM_START_PAGE * 256
        dev.rbcr = len(frame)
        for byte in frame:
            dev._remote_write(byte, 1)
        dev.io_write(0x04, 1, NE.MEM_START_PAGE)      # TPSR
        dev.io_write(0x05, 1, len(frame) & 0xFF)
        dev.io_write(0x06, 1, len(frame) >> 8)
        dev.io_write(0x0F, 1, NE.ISR_PTX)             # unmask TX
        dev.io_write(NE.REG_CR, 1, NE.CR_STA | NE.CR_TXP)
        assert medium.transmitted == [frame]
        assert dev.isr & NE.ISR_PTX
        assert irqs

    def test_rx_ring_header(self):
        _m, medium, dev, _irqs = make(Ne2000Device)
        dev.io_write(NE.REG_CR, 1, NE.CR_STA)
        dev.io_write(0x0C, 1, NE.RCR_AB)  # accept broadcast
        frame = b"\xff" * 6 + MAC + b"\x08\x00" + b"q" * 50
        medium.inject(frame)
        start = dev.curr  # advanced past the packet
        index = dev._mem_index(NE.MEM_START_PAGE * 256)
        header = bytes(dev.mem[index:index + 4])
        assert header[0] == 0x01                       # RX OK
        total = header[2] | (header[3] << 8)
        assert total == len(frame) + 4


class TestRtl8139:
    def test_mac_readable_writable(self):
        _m, _med, dev, _irqs = make(Rtl8139Device)
        assert dev.io_read(0, 4) == int.from_bytes(MAC[:4], "little")
        dev.io_write(0, 1, 0xAB)
        assert dev.mac[0] == 0xAB

    def test_reset_bit_self_clears(self):
        _m, _med, dev, _irqs = make(Rtl8139Device)
        dev.io_write(0x37, 1, RT.CR_RST)
        assert dev.io_read(0x37, 1) & RT.CR_RST == 0

    def test_dma_transmit(self):
        machine, medium, dev, irqs = make(Rtl8139Device)
        frame = b"\xff" * 6 + MAC + b"\x08\x00" + b"r" * 50
        machine.memory.write_bytes(0x00600000, frame)
        dev.io_write(0x37, 1, RT.CR_TE | RT.CR_RE)
        dev.io_write(0x3C, 2, RT.ISR_TOK)
        dev.io_write(0x20, 4, 0x00600000)  # TSAD0
        dev.io_write(0x10, 4, len(frame))  # TSD0: kick
        assert medium.transmitted == [frame]
        assert dev.io_read(0x10, 4) & RT.TSD_TOK
        assert irqs

    def test_rx_ring_dma_record(self):
        machine, medium, dev, _irqs = make(Rtl8139Device)
        dev.io_write(0x30, 4, 0x00610000)  # RBSTART
        dev.io_write(0x44, 4, RT.RCR_AB | RT.RCR_APM)
        dev.io_write(0x37, 1, RT.CR_RE)
        frame = b"\xff" * 6 + MAC + b"\x08\x00" + b"s" * 50
        medium.inject(frame)
        status, length = struct.unpack_from(
            "<HH", machine.memory.read_bytes(0x00610000, 4))
        assert status & 1
        assert length == len(frame) + 4
        assert machine.memory.read_bytes(0x00610004, len(frame)) == frame
        assert dev.io_read(0x3A, 2) > 0  # CBR advanced

    def test_config_lock(self):
        _m, _med, dev, _irqs = make(Rtl8139Device)
        dev.io_write(0x59, 1, RT.CONFIG3_MAGIC)   # locked: ignored
        assert not dev.wol_enabled
        dev.io_write(0x50, 1, RT.CFG9346_UNLOCK)
        dev.io_write(0x59, 1, RT.CONFIG3_MAGIC)
        assert dev.wol_enabled


class TestPcnet:
    def _init_block(self, machine, base=0x00620000):
        rdra, tdra = 0x00621000, 0x00622000
        block = struct.pack("<HHHH", 0, 2, 2, 0) + MAC + b"\0\0" \
            + b"\0" * 8 + struct.pack("<II", rdra, tdra)
        machine.memory.write_bytes(base, block)
        # one rx descriptor owned by the device
        machine.memory.write_bytes(rdra, struct.pack(
            "<IIII", 0x00623000, 1536, PC.DESC_OWN, 0))
        machine.memory.write_bytes(rdra + 16, struct.pack(
            "<IIII", 0x00624000, 1536, PC.DESC_OWN, 0))
        return base, rdra, tdra

    def test_rap_rdp_indirection(self):
        _m, _med, dev, _irqs = make(PcnetDevice)
        dev.io_write(PC.REG_RAP, 2, 15)
        dev.io_write(PC.REG_RDP, 2, PC.CSR15_PROM)
        assert dev.promiscuous
        dev.io_write(PC.REG_RAP, 2, 0)
        assert dev.io_read(PC.REG_RDP, 2) & PC.CSR0_STOP

    def test_init_block_load(self):
        machine, _med, dev, _irqs = make(PcnetDevice)
        base, rdra, tdra = self._init_block(machine)
        dev.io_write(PC.REG_RAP, 2, 1)
        dev.io_write(PC.REG_RDP, 2, base & 0xFFFF)
        dev.io_write(PC.REG_RAP, 2, 2)
        dev.io_write(PC.REG_RDP, 2, base >> 16)
        dev.io_write(PC.REG_RAP, 2, 0)
        dev.io_write(PC.REG_RDP, 2, PC.CSR0_INIT)
        assert dev.csr[0] & PC.CSR0_IDON
        assert dev.rdra == rdra and dev.tdra == tdra
        assert dev.rlen == 2

    def test_rx_into_descriptor(self):
        machine, medium, dev, irqs = make(PcnetDevice)
        base, rdra, _tdra = self._init_block(machine)
        dev.io_write(PC.REG_RAP, 2, 1)
        dev.io_write(PC.REG_RDP, 2, base & 0xFFFF)
        dev.io_write(PC.REG_RAP, 2, 2)
        dev.io_write(PC.REG_RDP, 2, base >> 16)
        dev.io_write(PC.REG_RAP, 2, 0)
        dev.io_write(PC.REG_RDP, 2,
                     PC.CSR0_INIT | PC.CSR0_STRT | PC.CSR0_IENA)
        frame = b"\xff" * 6 + MAC + b"\x08\x00" + b"t" * 50
        medium.inject(frame)
        buf, _len, status, msg = struct.unpack(
            "<IIII", machine.memory.read_bytes(rdra, 16))
        assert not status & PC.DESC_OWN      # returned to host
        assert msg == len(frame)
        assert machine.memory.read_bytes(buf, len(frame)) == frame
        assert irqs

    def test_multicast_hash_via_csr8_11(self):
        _m, _med, dev, _irqs = make(PcnetDevice)
        dev.io_write(PC.REG_RAP, 2, 8)
        dev.io_write(PC.REG_RDP, 2, 0x1234)
        assert dev.multicast_hash[0] == 0x34
        assert dev.multicast_hash[1] == 0x12


class TestSmc91c111:
    def test_bank_switching(self):
        _m, _med, dev, _irqs = make(Smc91c111Device)
        dev.mmio_write(SMC.REG_BANK_SELECT, 2, 3)
        assert dev.mmio_read(0x0A, 2) == 0x0091   # bank3 REVISION
        dev.mmio_write(SMC.REG_BANK_SELECT, 2, 1)
        assert dev.mmio_read(0x04, 1) == MAC[0]   # bank1 IAR0

    def test_mmu_alloc_and_tx(self):
        _m, medium, dev, irqs = make(Smc91c111Device)
        dev.mmio_write(SMC.REG_BANK_SELECT, 2, 0)
        dev.mmio_write(0x00, 2, SMC.TCR_TXENA)
        dev.mmio_write(SMC.REG_BANK_SELECT, 2, 2)
        dev.mmio_write(0x0D, 1, SMC.INT_TX)
        dev.mmio_write(0x00, 2, SMC.MMU_ALLOC)
        packet = dev.mmio_read(0x03, 1)
        assert not packet & SMC.ARR_FAILED
        dev.mmio_write(0x02, 1, packet)
        dev.mmio_write(0x06, 2, SMC.PTR_AUTO_INCR)
        frame = b"\xff" * 6 + MAC + b"\x08\x00" + b"u" * 48
        dev.mmio_write(0x08, 2, 0)                   # status word
        dev.mmio_write(0x08, 2, len(frame) + 6)      # byte count
        for i in range(0, len(frame), 2):
            dev.mmio_write(0x08, 2,
                           frame[i] | (frame[i + 1] << 8))
        dev.mmio_write(0x00, 2, SMC.MMU_ENQUEUE_TX)
        assert medium.transmitted == [frame]
        assert dev.int_status & SMC.INT_TX
        assert irqs

    def test_rx_fifo_flow(self):
        _m, medium, dev, _irqs = make(Smc91c111Device)
        dev.mmio_write(SMC.REG_BANK_SELECT, 2, 0)
        dev.mmio_write(0x04, 2, SMC.RCR_RXEN)
        frame = b"\xff" * 6 + MAC + b"\x08\x00" + b"v" * 48
        medium.inject(frame)
        dev.mmio_write(SMC.REG_BANK_SELECT, 2, 2)
        head = dev.mmio_read(0x05, 1)
        assert not head & SMC.FIFO_EMPTY
        dev.mmio_write(0x06, 2, SMC.PTR_RCV | SMC.PTR_AUTO_INCR)
        _status = dev.mmio_read(0x08, 2)
        count = dev.mmio_read(0x08, 2)
        assert count == len(frame) + 6
        payload = bytearray()
        for _ in range(len(frame) // 2):
            half = dev.mmio_read(0x08, 2)
            payload += bytes((half & 0xFF, half >> 8))
        assert bytes(payload) == frame
        dev.mmio_write(0x00, 2, SMC.MMU_REMOVE_RELEASE)
        assert dev.mmio_read(0x05, 1) & SMC.FIFO_EMPTY
        assert not dev.int_status & SMC.INT_RCV

    def test_alloc_exhaustion(self):
        _m, _med, dev, _irqs = make(Smc91c111Device)
        dev.mmio_write(SMC.REG_BANK_SELECT, 2, 2)
        for _ in range(SMC.NUM_PACKETS):
            dev.mmio_write(0x00, 2, SMC.MMU_ALLOC)
            assert not dev.mmio_read(0x03, 1) & SMC.ARR_FAILED
        dev.mmio_write(0x00, 2, SMC.MMU_ALLOC)
        assert dev.mmio_read(0x03, 1) & SMC.ARR_FAILED


class TestSharedFilter:
    @pytest.mark.parametrize("device_cls", [Ne2000Device, Rtl8139Device,
                                            PcnetDevice, Smc91c111Device])
    def test_filter_rejects_when_disabled(self, device_cls):
        _m, medium, dev, _irqs = make(device_cls)
        frame = b"\xff" * 6 + MAC + b"\x08\x00" + b"w" * 50
        medium.inject(frame)
        assert dev.stats["rx_frames"] == 0
        assert dev.stats["rx_dropped"] == 1
