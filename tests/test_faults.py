"""The fault-injection plane: plans, supervised pool, chaos invariant.

Three layers under test.  The *plan* layer must be a pure function of
its seed (same discipline as the fuzz program generator: the plan JSON is
the replay key).  The *pool* layer must absorb exactly the hostile
behaviors the plans describe -- killed, hung and garbage-spewing workers
-- through retry, timeout and validation, without ever discarding a
healthy job's result.  And the *campaign* layer must hold the robustness
invariant end to end: every fault schedule ends byte-identical to the
fault-free baseline or fails loudly with a classified, replayable fault
record.
"""

import json

import pytest

from repro.errors import GuestOsError, ReproError, SolverError
from repro.faults import (FaultPlan, FaultPlanGenerator, FaultRecord,
                          FaultSpec, ResilienceReport)
from repro.faults.campaign import ChaosCampaign
from repro.faults.inject import maybe_raise_run_fault
from repro.faults.plan import PERSISTENT
from repro.pipeline.pool import (backoff_delay, default_retries,
                                 default_timeout, run_supervised)

# -- toy workers (top-level: spawn children must import them) -----------

def _double_worker(job, fault=None):
    name, value = job
    if name == "boom":
        raise ValueError("kapow")
    return json.dumps({"name": name, "value": value * 2})


def _validate_json(payload):
    return json.loads(payload)


# ----------------------------------------------------------------------

class TestFaultPlans:
    def test_same_seed_same_bytes(self):
        first = FaultPlanGenerator().plan(1234)
        second = FaultPlanGenerator().plan(1234)
        assert first.to_json() == second.to_json()
        assert FaultPlanGenerator().plan(1235).to_json() \
            != first.to_json()

    def test_plans_sequence_is_deterministic(self):
        generator = FaultPlanGenerator(max_faults=2)
        batch = generator.plans(7, 5)
        assert [plan.seed for plan in batch] == [7, 8, 9, 10, 11]
        again = FaultPlanGenerator(max_faults=2).plans(7, 5)
        assert [p.to_json() for p in batch] \
            == [p.to_json() for p in again]

    def test_round_trip(self):
        plan = FaultPlanGenerator().plan(99)
        assert FaultPlan.from_json(plan.to_json()).to_json() \
            == plan.to_json()

    def test_layer_filter(self):
        plan = FaultPlan(seed=0, faults=(
            FaultSpec(layer="worker", kind="kill"),
            FaultSpec(layer="store", kind="truncate"),
            FaultSpec(layer="run", kind="solver_budget"),
        ))
        assert [f.kind for f in plan.layer("store")] == ["truncate"]
        assert len(plan.layer("worker")) == 1

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(layer="disk", kind="truncate")
        with pytest.raises(ValueError):
            FaultSpec(layer="worker", kind="truncate")

    def test_fires_on_attempts(self):
        transient = FaultSpec(layer="worker", kind="kill", attempts=2)
        assert transient.fires_on(1) and transient.fires_on(2)
        assert not transient.fires_on(3)
        persistent = FaultSpec(layer="run", kind="guest_os_error",
                               attempts=PERSISTENT)
        assert persistent.fires_on(50)

    def test_worker_faults_always_transient(self):
        # the generator never makes a worker fault the retry budget
        # cannot heal -- persistence is reserved for run faults
        generator = FaultPlanGenerator(max_faults=3)
        for seed in range(60):
            for spec in generator.plan(seed).faults:
                if spec.layer == "worker":
                    assert spec.attempts <= 2


class TestRunFaultInjection:
    def test_guest_os_error_at_matching_stage(self):
        spec = FaultSpec(layer="run", kind="guest_os_error",
                         params={"stage": "revnic"})
        with pytest.raises(GuestOsError):
            maybe_raise_run_fault(spec, "revnic")
        maybe_raise_run_fault(spec, "synthesize")   # no-op: wrong stage

    def test_solver_budget(self):
        spec = FaultSpec(layer="run", kind="solver_budget")
        with pytest.raises(SolverError):
            maybe_raise_run_fault(spec, "revnic")

    def test_dict_form_crosses_process_boundary(self):
        spec = FaultSpec(layer="run", kind="guest_os_error")
        with pytest.raises(GuestOsError):
            maybe_raise_run_fault(spec.to_dict(), "revnic")

    def test_non_run_layers_never_raise(self):
        maybe_raise_run_fault(FaultSpec(layer="worker", kind="kill"),
                              "revnic")
        maybe_raise_run_fault(None, "revnic")


class TestSupervisedPool:
    JOBS = [("a", 1), ("b", 2), ("c", 3)]
    LABELS = ["a", "b", "c"]

    def run(self, jobs=None, labels=None, **kwargs):
        report = ResilienceReport()
        kwargs.setdefault("timeout", 60)
        kwargs.setdefault("retries", 2)
        kwargs.setdefault("max_workers", 2)
        results, failures = run_supervised(
            jobs or self.JOBS, _double_worker,
            labels=labels or self.LABELS, validate=_validate_json,
            report=report, **kwargs)
        return results, failures, report

    def test_plain_run_completes_everything(self):
        results, failures, report = self.run()
        assert sorted(results) == [0, 1, 2] and not failures
        assert results[1] == {"name": "b", "value": 4}
        assert all(entry["outcome"] == "pool"
                   for entry in report.jobs.values())

    def test_kill_fault_healed_by_retry(self):
        results, failures, report = self.run(
            faults={0: FaultSpec(layer="worker", kind="kill")})
        assert sorted(results) == [0, 1, 2] and not failures
        assert report.worker_crashes == 1 and report.retries == 1
        assert report.jobs["a"]["attempts"] == 2

    def test_hang_fault_killed_by_timeout(self):
        results, failures, report = self.run(
            faults={1: FaultSpec(layer="worker", kind="hang",
                                 params={"seconds": 600})},
            timeout=5, retries=1, max_workers=3)
        assert sorted(results) == [0, 1, 2] and not failures
        assert report.timeouts == 1

    def test_persistent_garbage_fails_only_its_job(self):
        results, failures, report = self.run(
            faults={2: FaultSpec(layer="worker", kind="garbage",
                                 attempts=PERSISTENT)},
            retries=1)
        # the healthy jobs' results survive the bad job's failure
        assert sorted(results) == [0, 1]
        assert failures == {2: "garbage"}
        assert report.garbage_results == 2       # initial try + 1 retry
        assert report.jobs["c"]["outcome"] == "pool-failed:garbage"

    def test_worker_exception_is_classified(self):
        results, failures, report = self.run(
            jobs=[("a", 1), ("boom", 0)], labels=["a", "boom"],
            retries=1)
        assert sorted(results) == [0]
        assert failures == {1: "error"}
        assert report.run_faults == 2
        assert any("ValueError: kapow" in event
                   for event in report.jobs["boom"]["events"])

    def test_backoff_is_deterministic_and_bounded(self):
        delays = [backoff_delay(n) for n in range(1, 10)]
        assert delays == sorted(delays)
        assert delays[0] == 0.05 and max(delays) == 1.0
        assert delays == [backoff_delay(n) for n in range(1, 10)]

    def test_env_budgets(self, monkeypatch):
        monkeypatch.setenv("REVNIC_JOB_TIMEOUT", "12.5")
        monkeypatch.setenv("REVNIC_JOB_RETRIES", "7")
        assert default_timeout() == 12.5
        assert default_retries() == 7
        monkeypatch.setenv("REVNIC_JOB_TIMEOUT", "bogus")
        monkeypatch.setenv("REVNIC_JOB_RETRIES", "-3")
        assert default_timeout() == 300.0
        assert default_retries() == 0


class TestResilienceReport:
    def test_retry_accounting(self):
        report = ResilienceReport()
        report.record_attempt("job", 1)
        assert report.retries == 0
        report.record_attempt("job", 2, event="crash")
        assert report.retries == 1
        assert report.jobs["job"]["attempts"] == 2
        assert report.jobs["job"]["events"] == ["crash"]

    def test_merge_and_healed(self):
        first = ResilienceReport(timeouts=1)
        first.record_degradation("pool", "unavailable")
        second = ResilienceReport(retries=2)
        second.record_fault(FaultRecord(layer="run", kind="GuestOsError",
                                        job="x"))
        first.merge(second)
        assert first.timeouts == 1 and first.retries == 2
        assert len(first.degradations) == 1
        assert not first.healed()

    def test_scrubbed_dict_drops_wall_clock(self):
        report = ResilienceReport()
        with report.stage_timer("load"):
            pass
        assert report.to_dict()["stage_seconds"]
        assert report.scrubbed_dict()["stage_seconds"] == {}
        # round-trips through JSON (the fuzz artifact embeds it)
        assert json.loads(json.dumps(report.to_dict()))


class TestOrchestratorUnderFault:
    """The pipeline survives its own fault plane (tier-1 chaos slice:
    two quick-script drivers, handcrafted plans, every layer)."""

    DRIVERS = ("rtl8029", "smc91c111")

    @pytest.fixture()
    def campaign(self):
        campaign = ChaosCampaign(drivers=self.DRIVERS, script="quick",
                                 job_timeout=60.0, retries=2)
        yield campaign
        campaign.cleanup()

    def test_worker_kill_heals_byte_identical(self, campaign):
        outcome = campaign.run_schedule(FaultPlan(seed=1, faults=(
            FaultSpec(layer="worker", kind="kill", target=0),)))
        assert outcome.verdict == "identical"
        assert outcome.resilience["worker_crashes"] >= 1
        assert outcome.resilience["retries"] >= 1
        # the faulted job healed in the pool; the healthy job's pooled
        # result was never recomputed serially
        assert outcome.resilience["jobs"]["rtl8029"]["outcome"] == "pool"
        assert outcome.resilience["jobs"]["smc91c111"]["outcome"] \
            == "pool"

    def test_store_corruption_heals_byte_identical(self, campaign):
        outcome = campaign.run_schedule(FaultPlan(seed=2, faults=(
            FaultSpec(layer="store", kind="truncate", target=0,
                      params={"keep_fraction": 0.4}),
            FaultSpec(layer="store", kind="orphan_tmp", target=1,
                      params={"salt": 7}),)))
        assert outcome.verdict == "identical"
        assert outcome.resilience["quarantined"] >= 1
        assert outcome.resilience["recovered_tmp"] >= 1

    def test_persistent_run_fault_fails_loudly(self, campaign):
        outcome = campaign.run_schedule(FaultPlan(seed=3, faults=(
            FaultSpec(layer="run", kind="guest_os_error", target=1,
                      attempts=PERSISTENT),)))
        assert outcome.verdict == "faulted"
        assert "GuestOsError" in outcome.error
        [record] = [r for r in outcome.fault_records
                    if r["layer"] == "run"]
        assert record["job"] == "smc91c111"
        assert record["attempts"] >= 1
        # the healthy driver still completed despite the loud failure
        assert outcome.resilience["jobs"]["rtl8029"]["outcome"] in (
            "pool", "serial-fallback")

    def test_transient_run_fault_heals(self, campaign):
        outcome = campaign.run_schedule(FaultPlan(seed=4, faults=(
            FaultSpec(layer="run", kind="solver_budget", target=0,
                      attempts=1),)))
        assert outcome.verdict == "identical"
        assert outcome.resilience["retries"] >= 1

    def test_unclassified_failure_breaks_the_invariant(self, campaign,
                                                       monkeypatch):
        # a ReproError with no fault record behind it is exactly the
        # silent-ish failure the campaign must refuse to bless
        from repro.faults import campaign as campaign_module

        class _Broken:
            last_resilience = None

            def __init__(self, **kwargs):
                pass

            def warm(self, *args, **kwargs):
                raise ReproError("undocumented explosion")

        campaign.baseline()
        monkeypatch.setattr(campaign_module, "PipelineOrchestrator",
                            _Broken)
        with pytest.raises(campaign_module.ChaosInvariantError):
            campaign.run_schedule(FaultPlan(seed=5, faults=(
                FaultSpec(layer="worker", kind="kill"),)))

    def test_fuzz_composition_is_byte_identical(self, campaign):
        outcome = campaign.fuzz_invariant(
            42, programs_per_round=1, max_rounds=1, dry_rounds=1,
            os_names=("winsim",))
        assert outcome["plan"]["faults"]
        assert outcome["summary"]["runs"] > 0
