"""Unit tests for the symbolic expression language and solver."""

import pytest

from repro.symex import expr as E
from repro.symex.solver import Solver


class TestExprSimplification:
    def test_constant_folding(self):
        assert E.bv_add(2, 3) == 5
        assert E.bv_sub(2, 3) == (2 - 3) & 0xFFFFFFFF
        assert E.bv_mul(4, 5) == 20
        assert E.bv_and(0xFF, 0x0F) == 0x0F
        assert E.bv_xor(0xFF, 0xFF) == 0

    def test_identities(self):
        x = E.bv_sym("x")
        assert E.bv_add(x, 0) is x
        assert E.bv_and(x, 0) == 0
        assert E.bv_and(x, 0xFFFFFFFF) is x
        assert E.bv_or(x, 0) is x
        assert E.bv_xor(x, x) == 0
        assert E.bv_mul(x, 1) is x
        assert E.bv_not(E.bv_not(x)) is x

    def test_add_chain_folding(self):
        x = E.bv_sym("x")
        chained = E.bv_add(E.bv_add(x, 4), 8)
        assert chained.kind == "add"
        assert chained.args[1] == 12

    def test_and_chain_folding(self):
        x = E.bv_sym("x")
        chained = E.bv_and(E.bv_and(x, 0xFF), 0x0F)
        assert chained.args[1] == 0x0F

    def test_extract_concat_roundtrip(self):
        x = E.bv_sym("x", 8)
        y = E.bv_sym("y", 8)
        word = E.bv_concat([x, y])
        assert word.width == 16
        assert E.bv_extract(word, 0, 8) is x
        assert E.bv_extract(word, 8, 8) is y

    def test_extract_of_int(self):
        assert E.bv_extract(0xAABBCCDD, 8, 8) == 0xCC

    def test_zext_passthrough(self):
        x = E.bv_sym("x", 8)
        wide = E.bv_zext(x, 32)
        assert wide.width == 32
        assert E.bv_extract(wide, 0, 8) is x
        assert E.bv_extract(wide, 8, 8) == 0

    def test_cmp_folding(self):
        assert E.bv_cmp("eq", 4, 4) == 1
        assert E.bv_cmp("ult", 3, 4) == 1
        assert E.bv_cmp("slt", 0xFFFFFFFF, 1) == 1  # -1 < 1 signed
        assert E.bv_cmp("uge", 3, 4) == 0
        x = E.bv_sym("x")
        assert E.bv_cmp("eq", x, x) == 1
        assert E.bv_cmp("ne", x, x) == 0

    def test_bool_not(self):
        x = E.bv_sym("x")
        cond = E.bv_cmp("eq", x, 5)
        assert E.bool_not(cond).kind == "ne"
        assert E.bool_not(1) == 0
        assert E.bool_not(0) == 1

    def test_shift_masking(self):
        assert E.bv_shift("shl", 1, 33) == 2
        assert E.bv_shift("sar", 0x80000000, 31) == 0xFFFFFFFF

    def test_symbols_collection(self):
        x, y = E.bv_sym("x"), E.bv_sym("y")
        combined = E.bv_add(E.bv_and(x, 0xFF), y)
        assert combined.symbols() == {"x", "y"}


class TestEvaluate:
    def test_arithmetic(self):
        x = E.bv_sym("x")
        expression = E.bv_add(E.bv_mul(x, 3), 7)
        assert E.evaluate(expression, {"x": 5}) == 22

    def test_extract_concat(self):
        lo = E.bv_sym("lo", 8)
        hi = E.bv_sym("hi", 8)
        word = E.bv_concat([lo, hi])
        assert E.evaluate(word, {"lo": 0x34, "hi": 0x12}) == 0x1234

    def test_unbound_symbol_is_zero(self):
        assert E.evaluate(E.bv_sym("nothing"), {}) == 0

    def test_signed_comparisons(self):
        x = E.bv_sym("x")
        cond = E.bv_cmp("slt", x, 0)
        assert E.evaluate(cond, {"x": 0xFFFFFFFF}) == 1
        assert E.evaluate(cond, {"x": 1}) == 0


class TestSolver:
    def setup_method(self):
        self.solver = Solver()

    def test_simple_equality(self):
        x = E.bv_sym("x")
        model = self.solver.find_model([E.bv_cmp("eq", x, 42)])
        assert model == {"x": 42}

    def test_range_constraint(self):
        x = E.bv_sym("x")
        constraints = [E.bv_cmp("ult", x, 100), E.bv_cmp("uge", x, 90)]
        model = self.solver.find_model(constraints)
        assert 90 <= model["x"] < 100

    def test_mask_constraint(self):
        x = E.bv_sym("x")
        bit_set = E.bv_cmp("ne", E.bv_and(x, 0x10), 0)
        model = self.solver.find_model([bit_set])
        assert model["x"] & 0x10

    def test_arithmetic_chain(self):
        # ((x >> 16) & 0xFFFF) - 4 must exceed 1514 (the driver's
        # rx_bad_frame branch).
        x = E.bv_sym("x")
        length = E.bv_sub(E.bv_and(E.bv_shift("shr", x, 16), 0xFFFF), 4)
        constraints = [E.bv_cmp("ult", 1514, length)]
        model = self.solver.find_model(constraints)
        assert model is not None
        assert E.evaluate(constraints[0], model) == 1

    def test_contradiction(self):
        x = E.bv_sym("x")
        constraints = [E.bv_cmp("eq", x, 1), E.bv_cmp("eq", x, 2)]
        assert self.solver.find_model(constraints) is None

    def test_two_symbols(self):
        x, y = E.bv_sym("x"), E.bv_sym("y")
        constraints = [E.bv_cmp("eq", x, 7), E.bv_cmp("ult", x, y)]
        model = self.solver.find_model(constraints)
        assert model["x"] == 7 and model["y"] > 7

    def test_prefer_hint_respected(self):
        x = E.bv_sym("x")
        constraints = [E.bv_cmp("ult", x, 100)]
        model = self.solver.find_model(constraints, prefer={"x": 55})
        assert model["x"] == 55

    def test_concretize(self):
        x = E.bv_sym("x")
        expression = E.bv_add(x, 10)
        value, model = self.solver.concretize(
            expression, [E.bv_cmp("eq", x, 5)])
        assert value == 15

    def test_empty_constraints_sat(self):
        assert self.solver.find_model([]) == {}

    def test_feasibility_api(self):
        x = E.bv_sym("x")
        assert self.solver.is_feasible([E.bv_cmp("ne", x, 0)])
        assert not self.solver.is_feasible(
            [E.bv_cmp("ult", x, 1), E.bv_cmp("uge", x, 1)])


class TestSymMemory:
    def make(self, backing=None):
        from repro.symex.memory import SymMemory
        backing = backing or {}

        def read(addr, width):
            return backing.get(addr, 0)

        return SymMemory(read)

    def test_concrete_roundtrip(self):
        mem = self.make()
        mem.write(0x100, 4, 0xDEADBEEF)
        assert mem.read(0x100, 4) == 0xDEADBEEF
        assert mem.read(0x101, 2) == 0xADBE

    def test_backing_fallthrough(self):
        mem = self.make(backing={0x50: 0xAB})
        assert mem.read_byte(0x50) == 0xAB

    def test_symbolic_bytes(self):
        mem = self.make()
        x = E.bv_sym("x")
        mem.write(0x200, 4, x)
        value = mem.read(0x200, 4)
        assert not E.is_concrete(value)
        assert E.evaluate(value, {"x": 0x11223344}) == 0x11223344

    def test_partial_symbolic_read(self):
        mem = self.make()
        x = E.bv_sym("x", 8)
        mem.write_byte(0x300, x)
        mem.write_byte(0x301, 0x7F)
        value = mem.read(0x300, 2)
        assert E.evaluate(value, {"x": 0x42}) == 0x7F42

    def test_cow_fork_isolation(self):
        mem = self.make()
        mem.write(0x400, 4, 0x1111)
        child = mem.fork()
        child.write(0x400, 4, 0x2222)
        assert mem.read(0x400, 4) == 0x1111
        assert child.read(0x400, 4) == 0x2222

    def test_fork_shares_unmodified(self):
        mem = self.make()
        mem.write(0x500, 4, 0xABCD)
        child = mem.fork()
        assert child.read(0x500, 4) == 0xABCD

    def test_overlay_iterators(self):
        mem = self.make()
        mem.write_byte(0x600, 5)
        mem.write_byte(0x601, E.bv_sym("s", 8))
        concrete = dict(mem.concrete_delta())
        symbolic = dict(mem.symbolic_addresses())
        assert concrete == {0x600: 5}
        assert 0x601 in symbolic
        assert mem.overlay_size() == 2
