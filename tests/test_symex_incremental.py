"""Tests for expression interning, compiled evaluation, and the
incremental solver context (the PR-2 constraint-solving layers)."""

import pytest

from repro.symex import expr as E
from repro.symex.solver import Solver, SolverContext


class TestInterning:
    def test_structural_equality_is_identity(self):
        x = E.bv_sym("intern_x")
        a = E.bv_add(x, 5)
        b = E.bv_add(x, 5)
        assert a is b

    def test_distinct_structures_distinct_nodes(self):
        x = E.bv_sym("intern_x")
        assert E.bv_add(x, 5) is not E.bv_add(x, 6)

    def test_interning_across_builders(self):
        x = E.bv_sym("intern_x")
        direct = E.Expr("add", 32, args=(x, 5))
        built = E.bv_add(x, 5)
        assert direct is built

    def test_hash_precomputed_and_stable(self):
        x = E.bv_sym("intern_x")
        a = E.bv_and(x, 0xFF)
        assert hash(a) == hash(E.bv_and(x, 0xFF))
        table = {a: "hit"}
        assert table[E.bv_and(x, 0xFF)] == "hit"

    def test_symbols_cached_frozenset(self):
        x, y = E.bv_sym("ix"), E.bv_sym("iy")
        combined = E.bv_add(E.bv_and(x, 0xFF), y)
        first = combined.symbols()
        assert first == frozenset({"ix", "iy"})
        assert combined.symbols() is first

    def test_identity_enables_new_folds(self):
        x = E.bv_sym("intern_x")
        a = E.bv_add(x, 7)
        b = E.bv_add(x, 7)
        assert E.bv_sub(a, b) == 0
        assert E.bv_xor(a, b) == 0

    def test_stable_hash_matches_for_equal_structure(self):
        x = E.bv_sym("intern_x")
        assert E.bv_add(x, 5).stable_hash() == \
            E.Expr("add", 32, args=(x, 5)).stable_hash()


class TestCompiledEvaluation:
    def test_compiled_matches_evaluate(self):
        x, y = E.bv_sym("cx"), E.bv_sym("cy")
        expr = E.bv_add(E.bv_mul(E.bv_and(x, 0xFF), 3), E.bv_shift("shr",
                                                                   y, 4))
        model = {"cx": 0x1234, "cy": 0x80}
        assert E.compiled(expr)(model) == E.evaluate(expr, model)

    def test_compiled_all_kinds(self):
        x = E.bv_sym("ck", 8)
        wide = E.bv_zext(x, 32)
        cases = [
            E.bv_not(wide), E.bv_neg(wide),
            E.bv_concat([x, E.bv_sym("ck2", 8)]),
            E.bv_extract(E.bv_sym("ck3"), 8, 8),
            E.bv_divu(E.bv_sym("ck3"), wide),
            E.bv_remu(E.bv_sym("ck3"), wide),
            E.bv_cmp("slt", E.bv_sym("ck3"), 0),
            E.bv_cmp("sge", E.bv_sym("ck3"), wide),
            E.bv_shift("sar", E.bv_sym("ck3"), wide),
        ]
        for model in ({}, {"ck": 0xAB, "ck2": 0x7F, "ck3": 0xFFFF1234},
                      {"ck": 1, "ck3": 0x80000000}):
            for expr in cases:
                assert E.compiled(expr)(model) == E.evaluate(expr, model), \
                    repr(expr)

    def test_program_cached_on_node(self):
        x = E.bv_sym("cc_x")
        expr = E.bv_add(x, 11)
        assert E.compiled(expr) is E.compiled(expr)

    def test_division_by_zero_yields_zero(self):
        x, y = E.bv_sym("dz_x"), E.bv_sym("dz_y")
        assert E.compiled(E.bv_divu(x, y))({"dz_x": 7, "dz_y": 0}) == 0
        assert E.compiled(E.bv_remu(x, y))({"dz_x": 7, "dz_y": 0}) == 0

    def test_conjunction_bitmask(self):
        x = E.bv_sym("cj_x")
        constraints = (E.bv_cmp("ult", x, 10), E.bv_cmp("uge", x, 5),
                       E.bv_cmp("ne", x, 7))
        program = E.compiled_conjunction(constraints)
        assert program({"cj_x": 6}) == 0b111
        assert program({"cj_x": 7}) == 0b011
        assert program({"cj_x": 20}) == 0b110

    def test_counters_advance(self):
        before = E.eval_counters()
        x = E.bv_sym("ctr_x")
        E.evaluate(E.bv_add(x, 1), {"ctr_x": 2})
        after = E.eval_counters()
        assert after["program_runs"] > before["program_runs"]
        assert after["node_visits"] > before["node_visits"]


class TestSolverContext:
    def make(self):
        return Solver(), SolverContext()

    def test_components_partition_by_symbols(self):
        _, ctx = self.make()
        x, y, z = (E.bv_sym(n) for n in ("sc_x", "sc_y", "sc_z"))
        ctx.add(E.bv_cmp("ult", x, 10))
        ctx.add(E.bv_cmp("ult", y, 10))
        assert len(list(ctx.components())) == 2
        # A constraint linking x and y merges their components.
        ctx.add(E.bv_cmp("eq", x, y))
        assert len(list(ctx.components())) == 1
        ctx.add(E.bv_cmp("ne", z, 0))
        assert len(list(ctx.components())) == 2

    def test_check_context_feasible_and_infeasible(self):
        solver, ctx = self.make()
        x = E.bv_sym("cf_x")
        ctx.add(E.bv_cmp("ult", x, 10))
        assert solver.check_context(ctx) is not None
        assert solver.check_context(ctx, E.bv_cmp("eq", x, 3)) is not None
        assert solver.check_context(ctx, E.bv_cmp("uge", x, 10)) is None
        # The probe did not pollute the context.
        assert solver.check_context(ctx) is not None

    def test_check_matches_find_model_verdicts(self):
        x, y = E.bv_sym("cm_x"), E.bv_sym("cm_y")
        queries = [
            [E.bv_cmp("ult", x, 100), E.bv_cmp("uge", x, 90)],
            [E.bv_cmp("eq", x, 1), E.bv_cmp("eq", x, 2)],
            [E.bv_cmp("eq", x, 7), E.bv_cmp("ult", x, y)],
            [E.bv_cmp("ne", E.bv_and(x, 0x10), 0)],
        ]
        for constraints in queries:
            reference = Solver().find_model(constraints) is not None
            solver, ctx = self.make()
            for constraint in constraints[:-1]:
                ctx.add(constraint)
            verdict = solver.check_context(ctx, constraints[-1]) is not None
            assert verdict == reference, constraints

    def test_fork_isolation(self):
        solver, ctx = self.make()
        x = E.bv_sym("fi_x")
        ctx.add(E.bv_cmp("ult", x, 10))
        child = ctx.fork()
        child.add(E.bv_cmp("uge", x, 5))
        assert len(next(iter(ctx.components())).constraints) == 1
        assert len(next(iter(child.components())).constraints) == 2
        assert solver.check_context(ctx, E.bv_cmp("eq", x, 2)) is not None
        assert solver.check_context(child, E.bv_cmp("eq", x, 2)) is None

    def test_witness_commit_keeps_fast_path(self):
        solver, ctx = self.make()
        x = E.bv_sym("wc_x")
        first = E.bv_cmp("ult", x, 10)
        witness = solver.check_context(ctx, first)
        ctx.add(first, model=witness)
        comp = next(iter(ctx.components()))
        assert comp.model is not None
        before = solver.fast_path_hits
        assert solver.check_context(ctx, E.bv_cmp("ult", x, 11)) is not None
        assert solver.fast_path_hits == before + 1

    def test_model_cache_reused_across_forks(self):
        solver, ctx = self.make()
        x = E.bv_sym("mc_x")
        ctx.add(E.bv_cmp("uge", x, 5))
        constraint = E.bv_cmp("ult", x, 4)   # forces a real (failing) solve
        assert solver.check_context(ctx, constraint) is None
        solves = solver.comp_solves
        sibling = ctx.fork()
        assert solver.check_context(sibling, constraint) is None
        assert solver.comp_solves == solves
        assert solver.cache_hits > 0

    def test_ground_false_context(self):
        solver, ctx = self.make()
        x = E.bv_sym("gf_x", 1)
        # A symbol-free contradiction that escaped constant folding.
        ctx.add(E.Expr("eq", 1, args=(1, 0)))
        assert ctx.ground_false
        assert solver.check_context(ctx, E.bv_cmp("eq", x, 1)) is None

    def test_concretize_context_prefers_hint(self):
        solver, ctx = self.make()
        x = E.bv_sym("cz_x")
        ctx.add(E.bv_cmp("ult", x, 100))
        value, model = solver.concretize_context(ctx, E.bv_add(x, 10),
                                                 prefer={"cz_x": 55})
        assert value == 65
        assert model["cz_x"] == 55

    def test_concretize_context_matches_legacy(self):
        x = E.bv_sym("cl_x")
        constraints = [E.bv_cmp("ult", x, 100), E.bv_cmp("uge", x, 90)]
        legacy_value, legacy_model = Solver().concretize(
            E.bv_add(x, 1), constraints)
        solver, ctx = self.make()
        for constraint in constraints:
            ctx.add(constraint)
        value, model = solver.concretize_context(ctx, E.bv_add(x, 1))
        assert value == legacy_value
        assert model == legacy_model


class TestDeterminism:
    def test_random_fallback_is_per_query_deterministic(self):
        x, y = E.bv_sym("dq_x"), E.bv_sym("dq_y")
        # Equality between two symbols defeats the greedy single-symbol
        # climb often enough to exercise the random fallback.
        constraints = [E.bv_cmp("eq", E.bv_xor(x, y), 0x12345678),
                       E.bv_cmp("uge", x, 3)]
        models = [Solver().find_model(constraints) for _ in range(3)]
        assert models[0] == models[1] == models[2]

    def test_solver_history_does_not_change_verdicts(self):
        x = E.bv_sym("dh_x")
        query = [E.bv_cmp("ult", x, 10), E.bv_cmp("uge", x, 5)]
        fresh = Solver().find_model(query)
        busy = Solver()
        for value in range(40):
            busy.find_model([E.bv_cmp("eq", E.bv_sym("dh_y"), value)])
        assert busy.find_model(query) == fresh
