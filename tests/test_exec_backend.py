"""The unified compiled-execution backend.

Three layers ride :mod:`repro.ir.compile` through the shared
:class:`~repro.ir.backend.ExecutionBackend`: the concrete CPU's DBT mode,
the synthesized-driver runtime, and the symbolic executor's concrete fast
path.  These tests pin the cross-tier equivalences: identical semantics,
identical counters, identical traces.
"""

import json

import pytest

from repro.asm import assemble
from repro.dbt import Translator
from repro.drivers import build_driver, device_class
from repro.errors import VmFault
from repro.eval.runner import get_cache
from repro.guestos.harness import DriverHarness
from repro.ir import (
    BACKENDS,
    IrEnv,
    compile_block,
    exec_counters,
    get_backend,
    run_block,
)
from repro.isa.registers import REG_SP
from repro.layout import HEAP_BASE, STACK_TOP, TEXT_BASE, page_align
from repro.net import UdpWorkload
from repro.targetos import TARGET_OSES
from repro.templates import DmaNicTemplate
from repro.vm import Machine

MAC = b"\x52\x54\x00\xAA\xBB\xCC"
PEER = b"\x02\x00\x00\x00\x00\x01"


def load(source):
    """Assemble + map at TEXT_BASE with relocations applied."""
    image = assemble(source)
    machine = Machine()
    machine.memory.map_region(TEXT_BASE, page_align(max(len(image.text), 1)),
                              "text")
    text = bytearray(image.text)
    for reloc in image.relocs:
        if reloc.kind.name == "TEXT":
            old = int.from_bytes(text[reloc.site:reloc.site + 4], "little")
            text[reloc.site:reloc.site + 4] = \
                ((old + TEXT_BASE) & 0xFFFFFFFF).to_bytes(4, "little")
    machine.memory.write_bytes(TEXT_BASE, bytes(text))
    return machine


EXERCISE_ALL_OPS = """
.export main
main:
    movi r1, 0x80000001
    movi r2, 13
    add r3, r1, r2
    sub r4, r1, r2
    and r5, r1, r2
    or r6, r1, r2
    xor r7, r1, r2
    shl r8, r1, 3
    shr r9, r1, 1
    sar r10, r1, 1
    mul r11, r1, r2
    divu r12, r1, r2
    remu r0, r1, r2
    not r3, r3
    neg r4, r4
    movi r8, 0x%x
    st32 [r8+0], r1
    ld16 r9, [r8+2]
    ld8 r10, [r8+0]
    push r1
    pop r11
    beq r1, r2, main
    halt
""" % HEAP_BASE


def run_ir(machine, backend_name):
    env = IrEnv.for_machine(machine)
    env.regs[REG_SP] = STACK_TOP
    backend = get_backend(backend_name)
    translator = Translator(
        lambda addr, size: machine.memory.read_bytes(addr, size))
    pc = TEXT_BASE
    for _ in range(10_000):
        result = backend.run(translator.get(pc), env)
        if result.kind == "halt":
            return env
        pc = result.target
    pytest.fail("program did not halt")


class TestCompiledBlockSemantics:
    def test_compiled_matches_interp_and_counters(self):
        """Every op kind: identical registers, memory, and env counters."""
        interp_machine = load(EXERCISE_ALL_OPS)
        interp_env = run_ir(interp_machine, "interp")
        compiled_machine = load(EXERCISE_ALL_OPS)
        compiled_env = run_ir(compiled_machine, "compiled")
        assert compiled_env.regs == interp_env.regs
        assert compiled_env.instrs_retired == interp_env.instrs_retired
        assert compiled_env.ops_retired == interp_env.ops_retired
        assert compiled_env.io_ops == interp_env.io_ops
        assert compiled_machine.memory.read_bytes(HEAP_BASE, 8) == \
            interp_machine.memory.read_bytes(HEAP_BASE, 8)

    def test_compiled_function_is_cached_on_block(self):
        machine = load(".export main\nmain:\n halt")
        translator = Translator(
            lambda addr, size: machine.memory.read_bytes(addr, size))
        block = translator.get(TEXT_BASE)
        assert compile_block(block) is compile_block(block)

    def test_shared_program_cache_across_translators(self):
        """Identical code in two translators shares one compiled
        function (content-addressed), so repeated harness construction
        does not recompile the corpus."""
        machine = load(".export main\nmain:\n movi r1, 7\n halt")
        read = lambda addr, size: machine.memory.read_bytes(addr, size)
        block_a = Translator(read).get(TEXT_BASE)
        block_b = Translator(read).get(TEXT_BASE)
        assert block_a is not block_b
        assert compile_block(block_a) is compile_block(block_b)

    def test_divide_by_zero_faults_like_interp(self):
        source = """
        .export main
        main:
            movi r1, 5
            movi r2, 0
            divu r3, r1, r2
            halt
        """
        with pytest.raises(VmFault):
            run_ir(load(source), "interp")
        with pytest.raises(VmFault):
            run_ir(load(source), "compiled")
        # ops_retired counts up to and including the faulting op in both.
        envs = []
        for name in ("interp", "compiled"):
            machine = load(source)
            env = IrEnv.for_machine(machine)
            env.regs[REG_SP] = STACK_TOP
            translator = Translator(
                lambda a, s, m=machine: m.memory.read_bytes(a, s))
            block = translator.get(TEXT_BASE)
            with pytest.raises(VmFault):
                get_backend(name).run(block, env)
            envs.append(env)
        assert envs[0].ops_retired == envs[1].ops_retired
        assert envs[0].regs == envs[1].regs

    def test_exec_counters_advance(self):
        before = exec_counters()
        machine = load(".export main\nmain:\n movi r9, 1\n halt")
        run_ir(machine, "compiled")
        after = exec_counters()
        assert after["block_runs"] > before["block_runs"]

    def test_get_backend_resolution(self):
        assert get_backend(None).name == "compiled"
        assert get_backend("interp").name == "interp"
        assert get_backend(BACKENDS["compiled"]) is BACKENDS["compiled"]
        with pytest.raises(ValueError):
            get_backend("llvm")


class TestCpuDbtMode:
    """The CPU's DBT mode is observation-identical to per-step decode."""

    @pytest.mark.parametrize("backend", ["interp", "compiled"])
    def test_harness_run_matches_step_interpreter(self, backend):
        """Full driver lifecycle on the original binary: same statuses,
        same frames, and the same instret/io_ops/mem_ops accounting."""
        outputs = []
        for tier in ("step", backend):
            harness = DriverHarness(build_driver("rtl8029"),
                                    device_class("rtl8029"), mac=MAC,
                                    exec_backend=tier)
            harness.boot()
            workload = UdpWorkload(MAC, PEER, 128)
            statuses = [harness.send(workload.next_frame().to_bytes())
                        for _ in range(4)]
            delivered = harness.inject_rx(
                UdpWorkload(PEER, MAC, 64).next_frame().to_bytes())
            mac = harness.query_mac()
            statuses.append(harness.halt())
            cpu = harness.machine.cpu
            outputs.append({
                "statuses": statuses,
                "delivered": [f.hex() for f in delivered],
                "mac": mac.hex(),
                "wire": [f.hex() for f in harness.medium.transmitted],
                "instret": cpu.instret,
                "io_ops": cpu.io_ops,
                "mem_ops": cpu.mem_ops,
                "irqs": harness.env.irq_count,
                "api_calls": [(r.name, r.args, r.caller_pc)
                              for r in harness.env.api_calls],
            })
        assert outputs[0] == outputs[1]

    def test_dbt_mode_is_default_for_harness(self):
        harness = DriverHarness(build_driver("rtl8029"),
                                device_class("rtl8029"), mac=MAC)
        assert harness.machine.cpu.exec_backend == "compiled"


class TestSynthesizedRuntimeBackends:
    def test_template_counters_identical_across_backends(self):
        """The synthesized driver produces identical behaviour and perf
        counters through the compiled tier and the tree-walker."""
        artifact = get_cache().run("rtl8029")
        outputs = []
        for backend in ("interp", "compiled"):
            target = TARGET_OSES["winsim"](device_class("rtl8029"), mac=MAC)
            template = DmaNicTemplate(artifact.synthesized, target,
                                      original_image=artifact.image,
                                      exec_backend=backend)
            template.initialize()
            workload = UdpWorkload(MAC, PEER, 96)
            statuses = [template.send(workload.next_frame().to_bytes())
                        for _ in range(3)]
            env = template.runtime.env
            outputs.append({
                "statuses": statuses,
                "wire": [f.hex() for f in target.medium.transmitted],
                "instrs": env.instrs_retired,
                "ops": env.ops_retired,
                "io_ops": env.io_ops,
                "irqs": target.irq_count,
            })
        assert outputs[0] == outputs[1]


class TestSymexConcreteFastPath:
    def test_fast_path_used_by_pipeline(self):
        """Real reverse-engineering runs execute a meaningful share of
        blocks on the compiled concrete tier."""
        stats = get_cache().run("rtl8029").stats
        assert stats["exec_fast_blocks"] > 0
        assert stats["exec_fast_blocks"] < stats["blocks_executed"]

    def test_fast_path_preserves_run_identity(self):
        """A whole engine run with the fast path off is byte-identical
        (minus wall-clock) to one with it on: same trace, same coverage,
        same constraints-derived counters."""
        from repro.pipeline.artifact import artifact_to_dict, build_artifact
        from repro.revnic import RevNic, RevNicConfig
        from repro.synth import synthesize

        def run(fast):
            image = build_driver("pcnet")
            config = RevNicConfig(driver_name="pcnet",
                                  pci=device_class("pcnet").PCI)
            engine = RevNic(image, config)
            engine.executor.concrete_fast_path = fast
            result = engine.run()
            if fast:
                assert engine.executor.fast_blocks > 0
            else:
                assert engine.executor.fast_blocks == 0
            artifact = build_artifact(config, result, synthesize(result))
            data = artifact_to_dict(artifact)
            data["stats"]["wall_seconds"] = 0.0
            data["stats"]["phases"] = None
            data["stats"]["exec_fast_blocks"] = None
            # Cache-warmth provenance, not behaviour: the fast path is
            # the only compile_block caller here, and its chain-hint
            # prefetch imports sources the off-run never touches.  The
            # canonical scrub (pipeline.artifact._scrub_volatile) zeroes
            # these for the same reason.
            data["stats"]["codecache"] = None
            data["coverage"]["timeline"] = [
                [blocks, 0.0, fraction]
                for blocks, _seconds, fraction in
                data["coverage"]["timeline"]]
            return json.dumps(data, sort_keys=True, default=str)

        assert run(True) == run(False)
