"""Unit tests for RevNIC's components: heuristics, shell device, wiretap,
coverage accounting."""

import pytest

from repro.drivers import build_driver
from repro.hw.base import PciDescriptor
from repro.layout import TEXT_BASE
from repro.revnic.coverage import CoverageTracker, static_basic_blocks
from repro.revnic.heuristics import (
    BfsStrategy,
    CoverageDrivenStrategy,
    DfsStrategy,
    StateScheduler,
    make_strategy,
)
from repro.revnic.shell_device import ShellDevice
from repro.symex.state import PathStatus, SymState
from repro.symex.memory import SymMemory


def make_state(pc=0x1000):
    return SymState(pc=pc, regs=[0] * 16,
                    memory=SymMemory(lambda a, w: 0))


class TestStrategies:
    def test_factory(self):
        assert isinstance(make_strategy("coverage"), CoverageDrivenStrategy)
        assert isinstance(make_strategy("dfs"), DfsStrategy)
        assert isinstance(make_strategy("bfs"), BfsStrategy)
        with pytest.raises(ValueError):
            make_strategy("quantum")

    def test_coverage_prefers_unexecuted_block(self):
        strategy = CoverageDrivenStrategy()
        hot, cold = make_state(0xA), make_state(0xB)
        strategy.on_executed(0xA)
        strategy.on_executed(0xA)
        states = [hot, cold]
        assert states[strategy.pick(states)] is cold

    def test_dfs_picks_newest(self):
        strategy = DfsStrategy()
        states = [make_state(1), make_state(2)]
        assert strategy.pick(states) == 1

    def test_bfs_picks_oldest(self):
        strategy = BfsStrategy()
        states = [make_state(1), make_state(2)]
        assert strategy.pick(states) == 0


class TestScheduler:
    def test_add_and_next(self):
        scheduler = StateScheduler()
        state = make_state()
        scheduler.add(state)
        assert len(scheduler) == 1
        assert scheduler.next_state() is state
        assert scheduler.next_state() is None

    def test_loop_killer_only_kills_suspects(self):
        scheduler = StateScheduler(loop_kill_threshold=3)
        # A state that re-executed a block many times but never through a
        # symbolic back edge (a concrete loop) survives.
        concrete = make_state(0x10)
        concrete.block_counts[0x10] = 100
        scheduler.add(concrete)
        assert concrete.status == PathStatus.RUNNING
        # A polling-loop suspect over threshold dies.
        polling = make_state(0x20)
        polling.block_counts[0x20] = 5
        polling.loop_suspects.add(0x20)
        scheduler.add(polling)
        assert polling.status == PathStatus.KILLED
        assert scheduler.killed_loops == 1

    def test_state_cap_evicts_deepest(self):
        scheduler = StateScheduler(max_states=2)
        shallow = make_state(1)
        mid = make_state(2)
        deep = make_state(3)
        deep.depth = 9
        scheduler.add(shallow)
        scheduler.add(deep)
        scheduler.add(mid)
        assert deep.status == PathStatus.KILLED
        assert len(scheduler) == 2

    def test_kill_all_keeps_chosen(self):
        scheduler = StateScheduler()
        keep = make_state(1)
        drop = make_state(2)
        scheduler.add(keep)
        scheduler.add(drop)
        scheduler.kill_all(keep=keep)
        assert keep.status == PathStatus.RUNNING
        assert drop.status == PathStatus.KILLED
        assert len(scheduler) == 1

    def test_non_running_not_queued(self):
        scheduler = StateScheduler()
        state = make_state()
        state.status = PathStatus.ERROR
        scheduler.add(state)
        assert len(scheduler) == 0


class TestShellDevice:
    def test_requires_descriptor(self):
        with pytest.raises(TypeError):
            ShellDevice("not-a-descriptor")

    def test_dma_tracking(self):
        shell = ShellDevice(PciDescriptor(vendor_id=1, device_id=2,
                                          io_base=0x300, io_size=0x20))
        shell.register_dma_region(0x600000, 0x1000)
        assert shell.is_dma_address(0x600000)
        assert shell.is_dma_address(0x600FFF)
        assert not shell.is_dma_address(0x601000)


class TestCoverage:
    def test_static_blocks_of_real_driver(self):
        image = build_driver("rtl8029")
        leaders = static_basic_blocks(image, TEXT_BASE)
        assert leaders[0] >= TEXT_BASE
        assert len(leaders) > 50
        assert all(l % 8 == 0 for l in leaders)
        assert leaders == sorted(set(leaders))

    def test_tracker_fraction(self):
        tracker = CoverageTracker(leaders=[0x0, 0x10, 0x20, 0x30])
        from repro.ir.nodes import TranslationBlock
        tracker.mark_block(TranslationBlock(pc=0, size=16,
                                            instr_addrs=[0x0, 0x8]))
        assert tracker.fraction == 0.25
        tracker.mark_block(TranslationBlock(pc=0x10, size=8,
                                            instr_addrs=[0x10]))
        assert tracker.fraction == 0.5
        tracker.sample(10, 1.0)
        assert tracker.timeline == [(10, 1.0, 0.5)]


class TestStateTraceChains:
    def test_fork_freezes_prefix(self):
        parent = make_state()
        parent.trace_records.append("a")
        child = parent.fork()
        parent.trace_records.append("b")
        child.trace_records.append("c")
        assert parent.path_trace() == ["a", "b"]
        assert child.path_trace() == ["a", "c"]

    def test_nested_forks(self):
        root = make_state()
        root.trace_records.append("r1")
        first = root.fork()
        first.trace_records.append("f1")
        second = first.fork()
        second.trace_records.append("s1")
        first.trace_records.append("f2")
        assert second.path_trace() == ["r1", "f1", "s1"]
        assert first.path_trace() == ["r1", "f1", "f2"]
