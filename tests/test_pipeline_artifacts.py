"""Artifact round-tripping, determinism and orchestration tests.

The contracts under test (see DESIGN.md "Artifact-based orchestration"):

* serialize -> deserialize is lossless for every field downstream
  consumers use, and rendered experiment outputs (Table 4, Figures 8/9)
  are identical between the live-object and deserialized paths;
* serial in-process runs, parallel worker runs and on-disk cache loads
  of the same driver produce byte-identical canonical JSON;
* the on-disk store is content-addressed (config changes miss, corrupt
  entries miss, same inputs hit) and a warm cache makes a session's
  four-driver warm-up loads, not runs.
"""

import json
import os

import pytest

from repro.drivers import DRIVERS, device_class
from repro.eval.runner import get_cache
from repro.net import EthernetFrame, EtherType
from repro.pipeline import (ArtifactStore, PipelineOrchestrator,
                            artifact_key, build_config, canonical_json,
                            execute_run, from_json, to_json)
from repro.targetos import WinSim
from repro.templates import NicTemplate

ALL = sorted(DRIVERS)
MAC = b"\x52\x54\x00\xAA\xBB\xCC"


@pytest.fixture(scope="module")
def artifacts():
    """The session's artifacts for the whole corpus."""
    return {artifact.name: artifact for artifact in
            get_cache().all_drivers()}


class _StubCache:
    """A cache front returning pre-built artifacts (so the eval renderers
    can be pointed at deserialized artifacts)."""

    def __init__(self, artifacts):
        self._artifacts = artifacts

    def run(self, name, strategy="coverage", script="default"):
        return self._artifacts[name]


def _round_tripped(artifacts):
    return {name: from_json(to_json(artifact))
            for name, artifact in artifacts.items()}


# ==========================================================================


class TestRoundTrip:
    def test_json_round_trip_is_stable(self, artifacts):
        for name, artifact in artifacts.items():
            text = to_json(artifact)
            again = to_json(from_json(text))
            assert again == text, name

    def test_canonical_json_survives_round_trip(self, artifacts):
        for name, artifact in artifacts.items():
            assert canonical_json(from_json(to_json(artifact))) \
                == canonical_json(artifact), name

    def test_consumer_fields_survive(self, artifacts):
        for name, artifact in artifacts.items():
            loaded = from_json(to_json(artifact))
            assert loaded.source == "disk-cache"
            assert loaded.driver == name
            assert loaded.stats == artifact.stats
            assert loaded.entry_points == artifact.entry_points
            assert loaded.import_names == artifact.import_names
            assert loaded.coverage_fraction == artifact.coverage_fraction
            assert loaded.coverage.timeline == artifact.coverage.timeline
            assert loaded.code.base == artifact.code.base
            assert loaded.code.data == artifact.code.data
            assert loaded.synthesized.c_source \
                == artifact.synthesized.c_source
            assert set(loaded.synthesized.block_map) \
                == set(artifact.synthesized.block_map)
            assert loaded.report.function_count \
                == artifact.report.function_count

    def test_trace_decodes_lazily_and_completely(self, artifacts):
        artifact = artifacts["rtl8029"]
        loaded = from_json(to_json(artifact))
        assert loaded._trace is None     # not decoded yet
        live = {(s.entry_name, p.path_id, len(p.records))
                for s in artifact.trace.segments for p in s.paths}
        decoded = {(s.entry_name, p.path_id, len(p.records))
                   for s in loaded.trace.segments for p in s.paths}
        assert decoded == live
        assert loaded.trace.executed_block_pcs() \
            == artifact.trace.executed_block_pcs()

    def test_rendered_outputs_identical(self, artifacts):
        """The acceptance check: re-render the table/figure outputs from
        deserialized artifacts and compare against the live path."""
        from repro.eval.figures import (fig8_compute, fig9_compute,
                                        render_fig8, render_fig9)
        from repro.eval.tables import table4_compute, table4_render

        live = _StubCache(artifacts)
        loaded = _StubCache(_round_tripped(artifacts))
        assert table4_render(table4_compute(loaded)) \
            == table4_render(table4_compute(live))
        assert render_fig8(fig8_compute(loaded)) \
            == render_fig8(fig8_compute(live))
        assert render_fig9(fig9_compute(loaded)) \
            == render_fig9(fig9_compute(live))

    def test_deserialized_module_is_functional(self, artifacts):
        """A deserialized synthesized driver must actually run (the
        executable block map, entry points and import table survived)."""
        loaded = from_json(to_json(artifacts["rtl8029"]))
        target = WinSim(device_class("rtl8029"), mac=MAC)
        template = NicTemplate(loaded.synthesized, target,
                               original_image=loaded.image)
        template.initialize()
        frame = EthernetFrame(dst=b"\xff" * 6, src=b"\x02" * 6,
                              ethertype=EtherType.IPV4,
                              payload=b"x" * 64).to_bytes()
        assert template.send(frame) == 0
        assert target.medium.transmitted == [frame]


class TestDeterminism:
    def test_recompute_matches_session_artifact(self, artifacts):
        """A fresh in-process run is canonically byte-identical to the
        session's artifact (which may have come from the disk cache or a
        worker process)."""
        fresh = execute_run("rtl8029")
        assert canonical_json(fresh) == canonical_json(
            artifacts["rtl8029"])

    def test_parallel_fanout_matches_serial(self, artifacts):
        """Artifacts computed by spawn-pool workers are canonically
        byte-identical to the session's, for the whole corpus."""
        orchestrator = PipelineOrchestrator(store=False)
        fresh = orchestrator.warm(parallel=True)
        assert set(fresh) == set(artifacts)
        for name in ALL:
            assert canonical_json(fresh[name]) \
                == canonical_json(artifacts[name]), name
        if orchestrator.last_warm_mode == "parallel":
            assert all(a.source == "worker" for a in fresh.values())


class TestStore:
    def test_cache_round_trip_is_byte_identical(self, tmp_path,
                                                artifacts):
        store = ArtifactStore(str(tmp_path))
        artifact = artifacts["smc91c111"]
        key = artifact_key(artifact.image, build_config("smc91c111"))
        store.save(key, artifact)
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.source == "disk-cache"
        assert canonical_json(loaded) == canonical_json(artifact)
        assert store.hits == 1

    def test_corrupt_entry_is_quarantined(self, tmp_path, artifacts):
        # An entry that verifies but does not decode is corruption, not a
        # miss: counted separately, quarantined as evidence, never served.
        store = ArtifactStore(str(tmp_path))
        key = "0" * 64
        store.save_json(key, "{not json")
        assert store.load(key) is None
        assert store.misses == 0
        assert store.corrupt == 1 and store.quarantined == 1
        assert os.path.exists(os.path.join(store.quarantine_dir,
                                           "%s.json" % key))
        # the entry is gone from the store proper: the next load misses
        assert store.load(key) is None
        assert store.misses == 1

    def test_schema_mismatch_is_a_miss(self, tmp_path, artifacts):
        store = ArtifactStore(str(tmp_path))
        artifact = artifacts["smc91c111"]
        data = json.loads(to_json(artifact))
        data["schema"] = 999_999
        key = "1" * 64
        store.save_json(key, json.dumps(data))
        assert store.load(key) is None

    def test_key_is_content_addressed(self, artifacts):
        image = artifacts["rtl8029"].image
        base = artifact_key(image, build_config("rtl8029"))
        assert base == artifact_key(image, build_config("rtl8029"))
        assert base != artifact_key(image,
                                    build_config("rtl8029",
                                                 strategy="dfs"))
        assert base != artifact_key(image,
                                    build_config("rtl8029",
                                                 script="quick"))
        other = artifacts["pcnet"].image
        assert base != artifact_key(other, build_config("pcnet"))

    def test_warm_session_loads_not_runs(self, tmp_path, artifacts):
        """Second-session behaviour: with a populated store, warm-up is
        cache loads only (measured < 1s on the reference machine; the
        assertion carries slack for loaded CI runners)."""
        store = ArtifactStore(str(tmp_path))
        first = PipelineOrchestrator(store=store)
        for name, artifact in artifacts.items():
            first._store_artifact((name, "coverage", "default"), artifact)
        second = PipelineOrchestrator(store=store)
        warmed = second.warm()
        assert second.last_warm_mode == "cached"
        assert all(a.source == "disk-cache" for a in warmed.values())
        assert second.last_warm_seconds < 3.0
        for name in ALL:
            assert canonical_json(warmed[name]) \
                == canonical_json(artifacts[name]), name


class TestQuickScript:
    def test_quick_run_is_a_supported_scenario(self, tmp_path):
        """The reduced exerciser script is wired through the orchestrator
        (smoke runs: driver_entry, initialize, send, halt)."""
        orchestrator = PipelineOrchestrator(store=ArtifactStore(
            str(tmp_path)), parallel=False)
        artifact = orchestrator.run("rtl8029", script="quick")
        assert artifact.script == "quick"
        assert artifact.config["script"] == "quick"
        assert {"initialize", "send", "isr"} <= set(artifact.entry_points)
        exercised = {s.entry_name for s in artifact.trace.segments}
        assert "query_information" not in exercised
        # Quick artifacts cache independently of full ones.
        assert orchestrator.store.keys()
        # The synthesized module still sends.
        target = WinSim(device_class("rtl8029"), mac=MAC)
        template = NicTemplate(artifact.synthesized, target,
                               original_image=artifact.image)
        template.initialize()
        frame = EthernetFrame(dst=b"\xff" * 6, src=b"\x02" * 6,
                              ethertype=EtherType.IPV4,
                              payload=b"y" * 60).to_bytes()
        assert template.send(frame) == 0

    def test_unknown_script_rejected(self):
        from repro.revnic.exerciser import make_script

        with pytest.raises(ValueError):
            make_script("nope")


class TestSkipFunctions:
    def test_skip_functions_honored(self):
        """The paper's example: OS functions like log writes can be
        configured away.  rtl8029's error path calls
        NdisWriteErrorLogEntry once under the quick script."""
        from repro.drivers import build_driver
        from repro.revnic import RevNic, RevNicConfig

        config = RevNicConfig(
            driver_name="rtl8029", pci=device_class("rtl8029").PCI,
            script="quick",
            skip_functions={"NdisWriteErrorLogEntry": 0})
        engine = RevNic(build_driver("rtl8029"), config)
        result = engine.run()
        assert result.stats["os_calls_skipped"] >= 1
        # Skipping a log write must not cost exploration: the run still
        # discovers the full entry-point set.
        assert {"initialize", "send", "halt"} <= set(result.entry_points)

    def test_skip_unknown_function_requires_explicit_arity(self):
        """Imports without a bridge handler can only be skipped with the
        (retval, nargs) form -- a bare value would leave the bridge
        guessing how many stack arguments to pop."""
        from repro.errors import SymexError
        from repro.revnic.osbridge import SymOsBridge

        bridge = SymOsBridge(None, None,
                             import_names={0: "MysteryApi"},
                             skip_functions={"MysteryApi": 7})
        with pytest.raises(SymexError):
            bridge.handle(None, 0)


class TestHardwarePolicyCounters:
    def test_counters_bounded_by_default(self):
        from repro.symex.executor import HardwarePolicy

        policy = HardwarePolicy()
        for _ in range(5):
            policy.device_read(None, "port", 0x300, 1)
        policy.device_write(None, "mmio", 0xF0000000, 4, 1)
        assert policy.read_counts == {"port": 5}
        assert policy.write_counts == {"mmio": 1}
        assert policy.reads_total == 5 and policy.writes_total == 1
        # No unbounded logs unless asked for.
        assert policy.reads is None and policy.writes is None

    def test_retention_is_opt_in(self):
        from repro.symex.executor import HardwarePolicy

        policy = HardwarePolicy(retain_log=True)
        policy.device_read(None, "dma", 0x100000, 4)
        assert policy.reads == [("dma", 0x100000, 4)]

    def test_counters_exported_in_stats(self, artifacts):
        for name, artifact in artifacts.items():
            assert artifact.stats["hw_reads"] > 0, name
            assert "hw_read_counts" in artifact.stats
            assert sum(artifact.stats["hw_read_counts"].values()) \
                == artifact.stats["hw_reads"]
