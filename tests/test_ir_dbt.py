"""Tests for the IR, the DBT, and differential CPU-vs-IR execution."""

import pytest

from repro.asm import assemble
from repro.dbt import Translator, translate_block
from repro.ir import IrEnv, TranslationBlock, format_block, run_block
from repro.ir import nodes as N
from repro.isa.registers import REG_SP
from repro.layout import RETURN_TO_OS, STACK_TOP, TEXT_BASE, page_align
from repro.vm import Machine


def load(source):
    """Assemble + map at TEXT_BASE with relocations applied; returns machine."""
    image = assemble(source)
    machine = Machine()
    machine.memory.map_region(TEXT_BASE, page_align(max(len(image.text), 1)),
                              "text")
    text = bytearray(image.text)
    for reloc in image.relocs:
        if reloc.kind.name == "TEXT":
            old = int.from_bytes(text[reloc.site:reloc.site + 4], "little")
            text[reloc.site:reloc.site + 4] = \
                ((old + TEXT_BASE) & 0xFFFFFFFF).to_bytes(4, "little")
    machine.memory.write_bytes(TEXT_BASE, bytes(text))
    return machine


def reader(machine):
    return lambda addr, size: machine.memory.read_bytes(addr, size)


class TestTranslation:
    def test_block_ends_at_branch(self):
        machine = load("""
        .export main
        main:
            movi r1, 1
            movi r2, 2
            beq r1, r2, main
            halt
        """)
        block = translate_block(reader(machine), TEXT_BASE)
        assert len(block.instr_addrs) == 3
        assert isinstance(block.terminator, N.IrCondJump)
        assert block.terminator.fallthrough == TEXT_BASE + 24

    def test_block_ends_at_call(self):
        machine = load("""
        .export main
        main:
            movi r1, 1
            call main
        """)
        block = translate_block(reader(machine), TEXT_BASE)
        term = block.terminator
        assert isinstance(term, N.IrCall)
        assert not term.indirect
        assert term.target == TEXT_BASE

    def test_ret_emits_stack_cleanup(self):
        machine = load("""
        .export main
        main:
            ret 8
        """)
        block = translate_block(reader(machine), TEXT_BASE)
        assert isinstance(block.terminator, N.IrRet)
        assert block.terminator.cleanup == 8

    def test_static_successors(self):
        machine = load("""
        .export main
        main:
            movi r1, 0
            bz r1, main
            halt
        """)
        block = translate_block(reader(machine), TEXT_BASE)
        succs = block.static_successors()
        assert TEXT_BASE in succs and len(succs) == 2

    def test_cache_hit(self):
        machine = load(".export main\nmain:\n halt")
        translator = Translator(reader(machine))
        first = translator.get(TEXT_BASE)
        second = translator.get(TEXT_BASE)
        assert first is second

    def test_cache_invalidation_on_code_change(self):
        machine = load(".export main\nmain:\n halt")
        translator = Translator(reader(machine))
        first = translator.get(TEXT_BASE)
        from repro.isa import Instruction, Op, encode
        machine.memory.write_bytes(TEXT_BASE, encode(Instruction(Op.NOP))
                                   + encode(Instruction(Op.HALT)))
        second = translator.get(TEXT_BASE)
        assert second is not first
        assert len(second.instr_addrs) == 2

    def test_cache_invalidation_on_mid_block_patch(self):
        """Code patched *past* the first instruction must retranslate --
        a cache keyed only on the block's first instruction serves a stale
        translation here.  The compiled tier rides the same discipline:
        the fresh block object compiles to a fresh function."""
        machine = load("""
        .export main
        main:
            movi r1, 1
            movi r2, 2
            halt
        """)
        translator = Translator(reader(machine))
        first = translator.get(TEXT_BASE)
        assert len(first.instr_addrs) == 3
        from repro.ir import compile_block
        first_fn = compile_block(first)
        from repro.isa import INSTR_SIZE, Instruction, Op, encode
        # Patch the *second* instruction (movi r2, 2 -> movi r2, 99).
        machine.memory.write_bytes(TEXT_BASE + INSTR_SIZE,
                                   encode(Instruction(Op.MOVI, 2, imm=99)))
        second = translator.get(TEXT_BASE)
        assert second is not first
        patched = [op for op in second.ops
                   if isinstance(op, N.IrConst) and op.value == 99]
        assert patched, "stale translation served for mid-block patch"
        assert compile_block(second) is not first_fn
        # And an unchanged block is still a cache hit afterwards.
        assert translator.get(TEXT_BASE) is second

    def test_code_changed_drops_both_cpu_caches(self):
        """One hook invalidates every code-derived cache: the decode cache
        (per-instruction tier) and the DBT translation cache -- loaders no
        longer have to remember them separately."""
        from repro.isa import INSTR_SIZE, Instruction, Op, encode

        machine = load("""
        .export main
        main:
            movi r1, 1
            movi r2, 2
            halt
        """)
        cpu = machine.cpu
        # Warm the decode cache (per-instruction tier) ...
        cpu.pc = TEXT_BASE
        cpu.run()
        assert cpu._decode_cache
        assert cpu.regs[2] == 2
        # ... and the DBT translation cache (compiled tier).
        cpu.exec_backend = "compiled"
        cpu.pc = TEXT_BASE
        cpu.run()
        assert cpu._translator._cache

        # A mid-block patch followed by the one hook.
        machine.memory.write_bytes(TEXT_BASE + INSTR_SIZE,
                                   encode(Instruction(Op.MOVI, 2, imm=99)))
        cpu.code_changed()
        assert not cpu._decode_cache
        assert not cpu._translator._cache

        # Both tiers observe the patch.
        cpu.pc = TEXT_BASE
        cpu.run()
        assert cpu.regs[2] == 99
        cpu.exec_backend = None
        cpu.regs[2] = 0
        cpu.pc = TEXT_BASE
        cpu.run()
        assert cpu.regs[2] == 99
        # The legacy name remains an alias of the unified hook.
        cpu._decode_cache[0] = None
        cpu.invalidate_decode_cache()
        assert not cpu._decode_cache

    def test_printer_smoke(self):
        machine = load("""
        .export main
        main:
            movi r1, 5
            ld32 r2, [r1+4]
            st8 [r1+0], r2
            in16 r3, (r1+2)
            out32 (r1+0), r3
            push r2
            pop r3
            not r4, r3
            neg r5, r4
            add r6, r5, 1
            bne r6, r1, main
            halt
        """)
        text = format_block(translate_block(reader(machine), TEXT_BASE))
        for keyword in ("const", "load32", "store8", "in16", "out32",
                        "icmp.ne", "condjump"):
            assert keyword in text


DIFFERENTIAL_PROGRAMS = [
    # Each program ends in HALT; register files are compared afterwards.
    """
    .export main
    main:
        movi r1, 0xDEADBEEF
        movi r2, 0x12345678
        add r3, r1, r2
        sub r4, r1, r2
        xor r5, r1, r2
        and r6, r1, r2
        or r7, r1, r2
        mul r8, r1, r2
        halt
    """,
    """
    .export main
    main:
        movi r1, 0x80000001
        shr r2, r1, 1
        sar r3, r1, 1
        shl r4, r1, 3
        not r5, r1
        neg r6, r1
        movi r7, 13
        divu r8, r1, r7
        remu r9, r1, r7
        halt
    """,
    """
    .export main
    main:
        movi r1, 0
        movi r2, 0
    loop:
        add r2, r2, r1
        add r1, r1, 1
        blt r1, 10, loop
        halt
    """,
    """
    .export main
    main:
        movi r1, 0x00600000
        movi r2, 0xCAFEBABE
        st32 [r1+0], r2
        ld8 r3, [r1+0]
        ld16 r4, [r1+2]
        ld32 r5, [r1+0]
        push r5
        push r3
        pop r6
        pop r7
        halt
    """,
    """
    .export main
    main:
        movi r1, 3
        push r1
        call square
        mov r9, r0
        halt
    square:
        push fp
        mov fp, sp
        ld32 r1, [fp+8]
        mul r0, r1, r1
        pop fp
        ret 4
    """,
]


class TestDifferentialExecution:
    """The IR must have exactly the concrete CPU's semantics."""

    @pytest.mark.parametrize("source", DIFFERENTIAL_PROGRAMS)
    def test_cpu_vs_ir(self, source):
        # Run on the concrete CPU.
        cpu_machine = load(source)
        cpu_machine.cpu.pc = TEXT_BASE
        cpu_machine.cpu.regs[REG_SP] = STACK_TOP
        cpu_machine.cpu.run(max_steps=100_000)
        # Run through DBT + IR interpreter.
        ir_machine = load(source)
        env = IrEnv.for_machine(ir_machine)
        env.regs[REG_SP] = STACK_TOP
        translator = Translator(reader(ir_machine))
        pc = TEXT_BASE
        for _ in range(100_000):
            result = run_block(translator.get(pc), env)
            if result.kind == "halt":
                break
            pc = result.target
        else:
            pytest.fail("IR execution did not halt")
        assert env.regs == cpu_machine.cpu.regs

    def test_memory_side_effects_match(self):
        source = DIFFERENTIAL_PROGRAMS[3]
        cpu_machine = load(source)
        cpu_machine.cpu.pc = TEXT_BASE
        cpu_machine.cpu.regs[REG_SP] = STACK_TOP
        cpu_machine.cpu.run(max_steps=10_000)

        ir_machine = load(source)
        env = IrEnv.for_machine(ir_machine)
        env.regs[REG_SP] = STACK_TOP
        translator = Translator(reader(ir_machine))
        pc = TEXT_BASE
        while True:
            result = run_block(translator.get(pc), env)
            if result.kind == "halt":
                break
            pc = result.target
        assert (ir_machine.memory.read_bytes(0x00600000, 8)
                == cpu_machine.memory.read_bytes(0x00600000, 8))


class TestBlockHelpers:
    def test_contains_and_end(self):
        block = TranslationBlock(pc=0x100, size=16,
                                 instr_addrs=[0x100, 0x108])
        assert block.contains(0x108)
        assert not block.contains(0x110)
        assert block.end_pc == 0x110


# A hot loop whose body crosses two translation blocks (the bltu inside
# splits it); every superblock regression below chains it.
_HOT_LOOP = """
.export main
main:
    movi r1, 0
    movi r3, 40
loop:
    add r1, r1, 1
    bltu r1, r3, cont
cont:
    add r2, r2, 1
    bltu r1, r3, loop
    halt
"""

# Same loop, but the final iteration stores a word over the back-edge
# branch -- self-modifying code landing inside the formed chain.
_SELF_PATCH = """
.export main
main:
    movi r1, 0
    movi r3, 30
loop:
    add r1, r1, 1
    movi r7, patchsite
    movi r8, 0x0000003F
    bltu r1, r3, cont
    st32 [r7+0], r8
cont:
    add r2, r2, 1
patchsite:
    bltu r1, r3, loop
    halt
"""

# The loop divides by a counter that reaches zero on the last trip: the
# fault is raised from the middle of a hot, already-chained trace.
_FAULTING_LOOP = """
.export main
main:
    movi r1, 20
loop:
    add r2, r2, 1
    bltu r0, r2, body
body:
    sub r1, r1, 1
    divu r5, r2, r1
    bltu r0, r1, loop
    halt
"""


class TestSuperblockDeopt:
    """Every guarded assumption a superblock makes must deopt back to
    per-block semantics bit-for-bit: self-patching stores, mid-chain
    faults, step-limit boundaries, and ``code_changed()``."""

    @staticmethod
    def _run(source, exec_backend, superblocks=False, max_steps=10_000):
        from repro.errors import VmFault

        machine = load(source)
        cpu = machine.cpu
        cpu.exec_backend = exec_backend
        cpu.exec_superblocks = superblocks
        cpu.pc = TEXT_BASE
        reason = fault = None
        try:
            reason = cpu.run(max_steps=max_steps)
        except VmFault as exc:
            fault = type(exc).__name__
        return (str(reason), fault, list(cpu.regs), cpu.pc, cpu.instret,
                cpu.mem_ops, cpu.io_ops)

    @staticmethod
    def _hot():
        from repro.ir import SuperblockConfig
        return SuperblockConfig(hot_threshold=1)

    def test_self_patch_deopts_identically(self):
        from repro.ir import superblock_counters

        baseline = self._run(_SELF_PATCH, "compiled")
        before = superblock_counters()
        fused = self._run(_SELF_PATCH, "compiled", superblocks=self._hot())
        after = superblock_counters()
        assert fused == baseline
        assert after["superblocks_formed"] > before["superblocks_formed"]
        assert after["superblock_deopts"] > before["superblock_deopts"], \
            "the store into the chain's own code span must deopt"

    def test_fault_mid_chain_flushes_counters(self):
        from repro.ir import superblock_counters

        baseline = self._run(_FAULTING_LOOP, "compiled")
        assert baseline[1] == "VmFault"
        before = superblock_counters()
        fused = self._run(_FAULTING_LOOP, "compiled",
                          superblocks=self._hot())
        after = superblock_counters()
        assert fused == baseline
        assert after["superblock_runs"] > before["superblock_runs"], \
            "the fault must have been raised from inside a chain"

    @pytest.mark.parametrize("limit", [1, 2, 3, 5, 8, 13, 40, 77, 200])
    def test_step_limit_exits_at_same_boundary(self, limit):
        baseline = self._run(_HOT_LOOP, "compiled", max_steps=limit)
        fused = self._run(_HOT_LOOP, "compiled", superblocks=self._hot(),
                          max_steps=limit)
        assert fused == baseline

    def test_interrupted_run_resumes_identically(self):
        """Stop mid-trace (where an interrupt window would open), then
        resume: the two-leg run must land exactly where one uninterrupted
        run does, chained or not."""
        def run_split(superblocks):
            machine = load(_HOT_LOOP)
            cpu = machine.cpu
            cpu.exec_backend = "compiled"
            cpu.exec_superblocks = superblocks
            cpu.pc = TEXT_BASE
            cpu.run(max_steps=37)     # mid-chain on the fused path
            cpu.run(max_steps=10_000)
            return (list(cpu.regs), cpu.pc, cpu.instret)

        whole = self._run(_HOT_LOOP, "compiled", superblocks=self._hot())
        split = run_split(self._hot())
        assert run_split(False) == split
        assert split[0] == whole[2] and split[1] == whole[3] \
            and split[2] == whole[4]

    def test_code_changed_drops_chains(self):
        from repro.isa import INSTR_SIZE, Instruction, Op, encode

        machine = load(_HOT_LOOP)
        cpu = machine.cpu
        cpu.exec_backend = "compiled"
        cpu.exec_superblocks = self._hot()
        cpu.pc = TEXT_BASE
        cpu.run()
        manager = cpu._sb_manager
        assert manager is not None and manager._supers, \
            "the hot loop should have formed a chain"
        # Patch the loop body, signal, and re-run: profile state is gone
        # and the patched code's behavior is observed.
        machine.memory.write_bytes(
            TEXT_BASE + 4 * INSTR_SIZE,
            encode(Instruction(Op.ADD, 2, 2, imm=5)))
        cpu.code_changed()
        assert not manager._supers and not manager._counts
        cpu.regs[1] = cpu.regs[2] = 0
        cpu.pc = TEXT_BASE
        cpu.run()
        expected = self._run(_HOT_LOOP.replace("add r2, r2, 1",
                                               "add r2, r2, 5"),
                             "compiled")
        assert cpu.regs[2] == expected[2][2]

    def test_stale_chain_revalidation_without_signal(self):
        """A patch landing between dispatches without ``code_changed()``
        is caught by per-run byte revalidation: the chain is dropped, the
        translator retranslates, and execution follows the new bytes."""
        from repro.isa import INSTR_SIZE, Instruction, Op, encode

        machine = load(_HOT_LOOP)
        cpu = machine.cpu
        cpu.exec_backend = "compiled"
        cpu.exec_superblocks = self._hot()
        cpu.pc = TEXT_BASE
        cpu.run()
        manager = cpu._sb_manager
        assert any(hasattr(sb, "blocks")
                   for sb in manager._supers.values())
        # Patch inside the chain's span; Superblock.validate notices the
        # stale bytes before the next run, and the translator notices
        # them per block.
        machine.memory.write_bytes(
            TEXT_BASE + 4 * INSTR_SIZE,
            encode(Instruction(Op.ADD, 2, 2, imm=3)))
        cpu.regs[1] = cpu.regs[2] = 0
        cpu.pc = TEXT_BASE
        cpu.run()
        expected = self._run(_HOT_LOOP.replace("add r2, r2, 1",
                                               "add r2, r2, 3"),
                             "compiled")
        assert cpu.regs[2] == expected[2][2]
