"""Integration tests: the rtl8029 binary driver on the NE2000 device model.

These tests establish that the "proprietary" binary actually drives the
hardware correctly -- the precondition for everything RevNIC does.
"""

import pytest

from repro.drivers import build_driver, device_class
from repro.guestos.harness import DriverHarness
from repro.guestos.structures import NdisStatus
from repro.net import EthernetFrame, EtherType, UdpWorkload

MAC = b"\x52\x54\x00\xAA\xBB\xCC"


@pytest.fixture()
def harness():
    h = DriverHarness(build_driver("rtl8029"), device_class("rtl8029"),
                      mac=MAC)
    h.boot()
    return h


def make_frame(dst, payload=b"x" * 64):
    return EthernetFrame(dst=dst, src=b"\x02\x00\x00\x00\x00\x01",
                         ethertype=EtherType.IPV4,
                         payload=payload).to_bytes()


class TestLifecycle:
    def test_boot_succeeds(self, harness):
        assert harness.initialized
        assert harness.device.rx_enabled

    def test_halt_stops_device(self, harness):
        harness.halt()
        assert not harness.device.rx_enabled

    def test_reset_reinitializes(self, harness):
        status = harness.reset()
        assert status == NdisStatus.SUCCESS
        assert harness.device.rx_enabled


class TestSend:
    def test_send_puts_frame_on_wire(self, harness):
        frame = make_frame(b"\xff" * 6)
        assert harness.send(frame) == NdisStatus.SUCCESS
        assert harness.medium.transmitted == [frame]

    def test_send_completion_indicated(self, harness):
        harness.send(make_frame(b"\xff" * 6))
        assert NdisStatus.SUCCESS in harness.env.send_completions

    def test_send_various_sizes(self, harness):
        workload = UdpWorkload(MAC, b"\x02" * 6, 256)
        for frame in workload.frames(5):
            raw = frame.to_bytes()
            assert harness.send(raw) == NdisStatus.SUCCESS
        assert len(harness.medium.transmitted) == 5

    def test_send_odd_sizes(self, harness):
        # exercises the word/half/byte tail paths of the copy loop
        for payload_len in (46, 47, 48, 49, 50):
            frame = make_frame(b"\xff" * 6, b"y" * payload_len)
            assert harness.send(frame) == NdisStatus.SUCCESS
            assert harness.medium.transmitted[-1] == frame

    def test_oversized_send_rejected(self, harness):
        status = harness.send(b"z" * 1600)
        assert status == NdisStatus.INVALID_LENGTH
        assert harness.medium.transmitted == []
        assert harness.env.error_log  # driver logged the error


class TestReceive:
    def test_unicast_receive(self, harness):
        frame = make_frame(MAC)
        indicated = harness.inject_rx(frame)
        assert indicated == [frame]

    def test_broadcast_receive(self, harness):
        frame = make_frame(b"\xff" * 6)
        assert harness.inject_rx(frame) == [frame]

    def test_other_unicast_filtered(self, harness):
        frame = make_frame(b"\x02\x99\x99\x99\x99\x99")
        assert harness.inject_rx(frame) == []
        assert harness.device.stats["rx_dropped"] == 1

    def test_promiscuous_accepts_everything(self, harness):
        harness.enable_promiscuous()
        frame = make_frame(b"\x02\x99\x99\x99\x99\x99")
        assert harness.inject_rx(frame) == [frame]

    def test_multiple_frames_drained(self, harness):
        frames = [make_frame(MAC, bytes([i]) * 64) for i in range(4)]
        # Inject them all, then let one ISR drain the ring.
        for f in frames:
            harness.medium.inject(f)
        harness.env.service_interrupts()
        assert harness.env.indicated_frames == frames


class TestControlOperations:
    def test_query_mac(self, harness):
        assert harness.query_mac() == MAC

    def test_set_mac(self, harness):
        new_mac = b"\x52\x54\x00\x01\x02\x03"
        assert harness.set_mac(new_mac) == NdisStatus.SUCCESS
        assert bytes(harness.device.mac) == new_mac
        assert harness.query_mac() == new_mac

    def test_multicast_list(self, harness):
        from repro.guestos.structures import PacketFilter
        group = b"\x01\x00\x5e\x00\x00\x01"
        assert harness.set_multicast_list([group]) == NdisStatus.SUCCESS
        harness.set_packet_filter(
            PacketFilter.DIRECTED | PacketFilter.MULTICAST)
        frame = make_frame(group)
        assert harness.inject_rx(frame) == [frame]
        other_group = b"\x01\x00\x5e\x7f\x00\x42"
        assert harness.inject_rx(make_frame(other_group)) == []

    def test_full_duplex(self, harness):
        assert harness.set_full_duplex(True) == NdisStatus.SUCCESS
        assert harness.device.full_duplex
        assert harness.set_full_duplex(False) == NdisStatus.SUCCESS
        assert not harness.device.full_duplex

    def test_link_speed(self, harness):
        status, speed = harness.query_link_speed()
        assert status == NdisStatus.SUCCESS
        assert speed == 10_000_000

    def test_unsupported_oid(self, harness):
        assert harness.enable_wake_on_lan() == NdisStatus.NOT_SUPPORTED

    def test_bad_length_rejected(self, harness):
        status = harness._set_info(
            __import__("repro.guestos.structures",
                       fromlist=["Oid"]).Oid.E802_3_STATION_ADDRESS,
            b"\x01\x02")
        assert status == NdisStatus.INVALID_LENGTH


class TestRoundTrip:
    def test_udp_echo_roundtrip(self, harness):
        """Send and receive a realistic UDP workload both ways."""
        tx = UdpWorkload(MAC, b"\x02" * 6, 512)
        for frame in tx.frames(3):
            assert harness.send(frame.to_bytes()) == NdisStatus.SUCCESS
        rx = UdpWorkload(b"\x02" * 6, MAC, 512)
        for frame in rx.frames(3):
            raw = frame.to_bytes()
            assert harness.inject_rx(raw) == [raw]
