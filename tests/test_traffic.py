"""Tests for the workload generators (benchmark + adversarial catalog)."""

import pytest

from repro.net.crc import crc32_ethernet
from repro.net.ethernet import HEADER_LEN, MAX_PAYLOAD, MIN_PAYLOAD
from repro.net.medium import Medium
from repro.net.packet import IP_HEADER_LEN, UDP_HEADER_LEN
from repro.net.traffic import (DEFAULT_SIZES, BidirectionalBurst,
                               UdpWorkload, addressed_frame, frame_with_fcs,
                               overflow_burst, oversize_frame,
                               packet_size_sweep, runt_frame)

MAC = b"\x52\x54\x00\xAA\xBB\xCC"
PEER = b"\x02\x00\x00\x00\x00\x01"

UDP_LIMIT = MAX_PAYLOAD - IP_HEADER_LEN - UDP_HEADER_LEN


class TestPacketSizeSweep:
    def test_default_is_full_sweep(self):
        assert packet_size_sweep() == DEFAULT_SIZES
        assert max(packet_size_sweep()) <= UDP_LIMIT

    def test_cap_clamps(self):
        assert packet_size_sweep(300) == (64, 128, 256)

    def test_zero_is_empty(self):
        assert packet_size_sweep(0) == ()

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="max_payload"):
            packet_size_sweep(-1)
        with pytest.raises(ValueError, match="max_payload"):
            packet_size_sweep(-10_000)

    def test_huge_clamps_to_ethernet_limit(self):
        assert packet_size_sweep(10**9) == packet_size_sweep()
        assert packet_size_sweep(UDP_LIMIT + 1) == packet_size_sweep()


class TestAdversarialFrames:
    def test_runt_is_runt(self):
        frame = runt_frame(MAC, PEER, total_length=24)
        assert len(frame) == 24
        assert frame[0:6] == MAC
        with pytest.raises(ValueError):
            runt_frame(MAC, PEER, total_length=60)   # legal minimum
        with pytest.raises(ValueError):
            runt_frame(MAC, PEER, total_length=5)

    def test_oversize_exceeds_ethernet_max(self):
        frame = oversize_frame(MAC, PEER, payload_length=1600)
        assert len(frame) == HEADER_LEN + 1600
        assert len(frame) > HEADER_LEN + MAX_PAYLOAD
        with pytest.raises(ValueError):
            oversize_frame(MAC, PEER, payload_length=MAX_PAYLOAD)
        with pytest.raises(ValueError):
            oversize_frame(MAC, PEER, payload_length=4000)

    def test_fcs_appends_and_corrupts(self):
        base = addressed_frame(MAC, PEER, tag=7)
        good = frame_with_fcs(base)
        bad = frame_with_fcs(base, corrupt=True)
        assert good[:-4] == base and bad[:-4] == base
        assert int.from_bytes(good[-4:], "little") == crc32_ethernet(base)
        assert good[-4:] != bad[-4:]

    def test_addressed_frame_is_wellformed_and_tagged(self):
        a = addressed_frame(MAC, PEER, tag=1)
        b = addressed_frame(MAC, PEER, tag=2)
        assert len(a) >= HEADER_LEN + MIN_PAYLOAD
        assert a != b
        assert a == addressed_frame(MAC, PEER, tag=1)


class TestBursts:
    def test_overflow_burst_is_deterministic(self):
        one = overflow_burst(PEER, MAC, count=10, payload_size=300)
        two = overflow_burst(PEER, MAC, count=10, payload_size=300)
        assert one == two
        assert len(one) == 10
        assert all(frame[0:6] == MAC for frame in one)

    def test_bidirectional_schedule(self):
        events = list(BidirectionalBurst(MAC, PEER).events())
        kinds = {kind for kind, _f in events}
        assert kinds == {"tx", "rx"}
        # tx frames leave the station, rx frames arrive at it
        for kind, frame in events:
            assert frame[6:12] == (MAC if kind == "tx" else PEER)
            assert frame[0:6] == (PEER if kind == "tx" else MAC)
        again = list(BidirectionalBurst(MAC, PEER).events())
        assert events == again

    def test_bad_pattern_rejected(self):
        with pytest.raises(ValueError):
            BidirectionalBurst(MAC, PEER, pattern=())


class TestMediumLink:
    def test_link_down_drops_both_directions(self):
        medium = Medium()
        sink = []
        medium.attach(type("Nic", (), {
            "receive_frame": staticmethod(sink.append)})())
        medium.transmit(b"x" * 60)
        medium.set_link(False)
        medium.transmit(b"y" * 60)
        medium.inject(b"z" * 60)
        assert medium.transmitted == [b"x" * 60]
        assert sink == []
        assert medium.link_drops == 2
        medium.set_link(True)
        medium.inject(b"w" * 60)
        assert sink == [b"w" * 60]

    def test_udp_workload_still_deterministic(self):
        a = [f.to_bytes() for f in UdpWorkload(MAC, PEER, 128).frames(3)]
        b = [f.to_bytes() for f in UdpWorkload(MAC, PEER, 128).frames(3)]
        assert a == b


class TestScenarioProgramLayer:
    """Traffic-layer edges of the fuzzer's program formalization (the
    differential behavior is covered in test_fuzz / test_fuzz_replay)."""

    def test_overflow_burst_of_zero_frames_is_empty(self):
        assert overflow_burst(PEER, MAC, count=0) == []

    def test_overflow_burst_frames_are_addressed(self):
        frames = overflow_burst(PEER, MAC, count=3, payload_size=64)
        assert len(frames) == 3
        for frame in frames:
            assert frame[0:6] == MAC and frame[6:12] == PEER

    def test_resolve_dst_station_reads_the_dut(self):
        from repro.net.traffic import DST_KINDS, resolve_dst

        dut = type("Dut", (), {"mac": MAC})()
        assert resolve_dst("station", dut) == MAC
        for kind, fixed in DST_KINDS.items():
            if kind != "station":
                assert resolve_dst(kind, dut) == fixed

    def test_step_params_are_defensively_copied(self):
        from repro.net.traffic import ScenarioStep

        params = {"size": 64, "count": 1}
        step = ScenarioStep("send_burst", params)
        params["count"] = 99
        assert step.params["count"] == 1

    def test_program_run_requires_a_boot(self):
        """run() boots the DUT before the first step -- a program never
        executes against an unbooted device."""
        from repro.net.traffic import ScenarioProgram, ScenarioStep

        calls = []

        class Dut:
            mac = MAC
            peer = PEER

            def boot(self):
                calls.append("boot")

            def service(self):
                calls.append("service")

        program = ScenarioProgram(name="p",
                                  steps=(ScenarioStep("service", {}),))
        program.run(Dut())
        assert calls == ["boot", "service"]
