"""Deterministic perf-regression budgets for the symbolic pipeline.

Wall-clock assertions are flaky on shared CI machines, so the perf
trajectory is guarded by *counter* budgets instead: solver queries, actual
model searches (cache/fast-path misses), compiled-evaluation node visits,
and blocks executed for the ``rtl8139`` run -- the heaviest driver, where
PR 2's incremental-solving work concentrated.  The budgets carry ~50%
headroom over the measured values, so they only trip on algorithmic
blow-ups (a regression to per-query re-solving would exceed them by an
order of magnitude), not on noise.

Measured at the time the budgets were set (see BENCH_pipeline.json):
queries=1072 solves=437 node_visits=16.2M blocks=2264.
"""

from repro.eval.runner import get_cache

BUDGETS = {
    "solver_queries": 1700,
    "solver_comp_solves": 700,
    "eval_node_visits": 32_000_000,
    "blocks_executed": 3500,
    "forks": 450,
}


def test_rtl8139_counter_budgets():
    stats = get_cache().run("rtl8139").stats
    for counter, budget in BUDGETS.items():
        assert stats[counter] <= budget, (
            "%s blew its budget: %d > %d -- the incremental solving layer "
            "regressed (see DESIGN.md)" % (counter, stats[counter], budget))


def test_rtl8139_caching_is_effective():
    """Most feasibility work must be absorbed by the witness fast path and
    the model cache; ground-truth searches should stay a minority."""
    stats = get_cache().run("rtl8139").stats
    absorbed = stats["solver_fast_path_hits"] + stats["solver_cache_hits"]
    assert absorbed >= stats["solver_comp_solves"], stats


def test_counters_exported_for_all_drivers():
    from repro.drivers import DRIVERS

    for name in sorted(DRIVERS):
        stats = get_cache().run(name).stats
        for counter in BUDGETS:
            assert counter in stats
        assert stats["eval_node_visits"] > 0
