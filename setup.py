"""Legacy setup shim: lets ``pip install -e . --no-build-isolation`` work
on environments whose setuptools predates PEP 660 editable wheels."""

from setuptools import setup

setup()
