"""Benchmark gate: the chaos fault campaign and its recovery overhead.

Runs handcrafted fault schedules -- a worker kill healed by in-pool
retry, store corruption healed by quarantine + recompute, and a
persistent run fault that must fail loudly -- and lands a
``fault_campaign`` section in ``BENCH_pipeline.json``: the fault-free
baseline warm time next to each schedule's wall clock (recovery
overhead), plus the absorbed-fault counters.  The schedules are explicit
rather than generator-drawn so the bench exercises every fault layer on
every run, deterministically.

The gate is the robustness acceptance bar itself: every schedule ends
loud-or-identical (:class:`ChaosInvariantError` otherwise fails the
test), absorbed faults show up in the resilience report, and a single
faulted job never forces a serial recompute of healthy jobs.
"""

import json
import os

from repro.faults.campaign import ChaosCampaign
from repro.faults.plan import PERSISTENT, FaultPlan, FaultSpec

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Two quick-script drivers keep the cold recomputes affordable while
#: still giving the pool real fan-out to supervise.
DRIVERS = ("rtl8029", "smc91c111")

#: One schedule per fault layer, every parameter pinned.
PLANS = (
    FaultPlan(seed=101, faults=(
        FaultSpec(layer="worker", kind="kill", target=0),)),
    FaultPlan(seed=102, faults=(
        FaultSpec(layer="worker", kind="garbage", target=1,
                  params={"payload": "not json at all"}),)),
    FaultPlan(seed=103, faults=(
        FaultSpec(layer="store", kind="truncate", target=0,
                  params={"keep_fraction": 0.5}),
        FaultSpec(layer="store", kind="partial_publish", target=1,
                  params={"salt": 0xBEEF}),)),
    FaultPlan(seed=104, faults=(
        FaultSpec(layer="run", kind="guest_os_error", target=1,
                  attempts=PERSISTENT),)),
)


def _update_bench(record):
    path = os.path.join(_REPO_ROOT, "BENCH_pipeline.json")
    report = {}
    if os.path.exists(path):
        with open(path) as handle:
            report = json.load(handle)
    report["fault_campaign"] = record
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def test_fault_campaign_recovery_overhead():
    """Every schedule ends loud-or-identical; recovery overhead vs the
    fault-free warm is recorded in the bench report."""
    campaign = ChaosCampaign(drivers=DRIVERS, script="quick",
                             job_timeout=30.0)
    try:
        report = campaign.run(plans=list(PLANS))
    finally:
        campaign.cleanup()
    summary = report.summary()
    outcomes = {o.seed: o for o in report.outcomes}

    # the invariant held on every schedule (run_schedule raises
    # ChaosInvariantError otherwise); the split is exactly as planned
    assert summary["schedules"] == len(PLANS)
    assert summary["identical"] == 3
    assert summary["faulted"] == 1

    # worker kill: healed by an in-pool retry, and the healthy driver's
    # pooled result was kept -- one faulted job never forces a serial
    # recompute of healthy jobs
    kill = outcomes[101]
    assert kill.resilience["worker_crashes"] >= 1
    assert kill.resilience["retries"] >= 1
    assert kill.resilience["jobs"]["smc91c111"]["outcome"] == "pool"

    # garbage payload: caught by result validation, healed by retry
    garbage = outcomes[102]
    assert garbage.resilience["garbage_results"] >= 1
    assert garbage.resilience["jobs"]["rtl8029"]["outcome"] == "pool"

    # store corruption: quarantined (never trusted), orphan swept,
    # corrupted entries recomputed byte-identically
    corrupt = outcomes[103]
    assert corrupt.resilience["quarantined"] >= 1
    assert corrupt.resilience["recovered_tmp"] >= 1

    # persistent run fault: a loud, classified, replayable failure
    faulted = outcomes[104]
    assert faulted.verdict == "faulted"
    assert faulted.fault_records
    record = faulted.fault_records[0]
    assert record["layer"] == "run" and record["job"] == "smc91c111"
    # ...that still left the healthy driver's artifact computed
    assert faulted.resilience["jobs"]["rtl8029"]["outcome"] in (
        "pool", "serial-fallback")

    baseline = summary["baseline_seconds"]
    _update_bench({
        "drivers": list(DRIVERS),
        "script": "quick",
        "baseline_seconds": baseline,
        "schedules": [
            {"seed": o.seed,
             "verdict": o.verdict,
             "wall_seconds": round(o.wall_seconds, 3),
             "overhead_x": round(o.wall_seconds / baseline, 2)
             if baseline else None,
             "retries": o.resilience.get("retries", 0),
             "timeouts": o.resilience.get("timeouts", 0),
             "worker_crashes": o.resilience.get("worker_crashes", 0),
             "garbage_results": o.resilience.get("garbage_results", 0),
             "quarantined": o.resilience.get("quarantined", 0),
             "recovered_tmp": o.resilience.get("recovered_tmp", 0)}
            for o in report.outcomes],
        "summary": summary,
    })
