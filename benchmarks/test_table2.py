"""Bench T2: regenerate Table 2 (functionality coverage matrix)."""

from conftest import run_once

from repro.eval.tables import TABLE2_FEATURES, table2_compute, table2_render


def test_table2(benchmark, cache):
    matrix = run_once(benchmark, table2_compute, cache)
    print()
    print(table2_render(matrix))
    # Every testable feature of every synthesized driver must pass --
    # Table 2's claim is a full check-mark matrix.
    for feature, row in matrix.items():
        for driver, mark in row.items():
            expected = TABLE2_FEATURES[feature][driver]
            assert mark == expected, (feature, driver, mark)
