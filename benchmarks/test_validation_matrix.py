"""Benchmark: the cross-OS differential validation matrix.

Two experiments:

* **equivalence** -- the full 4-driver x 4-OS matrix under the whole
  workload catalog, against the session's shared artifacts: every
  equivalence-expected cell must match the original binary scenario for
  scenario, and the only non-equivalent cells must be the expected
  unsupported ones (DMA drivers on uC/OS-II);
* **cold vs warm** -- the same matrix against a fresh artifact store:
  the cold run pays for reverse engineering (fanned out across workers
  where the host has cores), the warm run rides the store, and must
  finish in under half the cold wall-clock.

Both land in ``BENCH_pipeline.json`` under the ``validation_matrix`` key.
"""

import json
import os

from repro.pipeline import ArtifactStore, PipelineOrchestrator
from repro.validate import ValidationMatrix

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Accumulated across the tests in this module; merged into the bench
#: report as each test completes, so partial runs still record.
_RECORD = {}


def _update_bench():
    path = os.path.join(_REPO_ROOT, "BENCH_pipeline.json")
    report = {}
    if os.path.exists(path):
        with open(path) as handle:
            report = json.load(handle)
    report["validation_matrix"] = dict(_RECORD)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def test_full_matrix_equivalence(cache):
    """Every equivalence-expected cell matches; nothing unexplained."""
    result = ValidationMatrix(orchestrator=cache).run()
    assert len(result.cells) == 16
    assert result.unexplained() == [], \
        "unexplained divergences: %r" % (result.unexplained(),)
    for (driver, os_name), cell in sorted(result.cells.items()):
        assert cell.status == cell.expected, \
            "%s/%s: %s (expected %s)" % (driver, os_name, cell.status,
                                         cell.expected)
    summary = result.summary()
    # 14 hostable cells x the full catalog actually ran and matched.
    assert summary["equivalent"] == 14
    assert summary["unsupported"] == 2
    assert summary["scenarios_run"] >= 14 * 11
    assert summary["scenarios_matched"] == summary["scenarios_run"] \
        - sum(len(result.cell(d, o).ran)
              for d in result.drivers for o in result.os_names
              if result.cell(d, o).status == "unsupported")
    _RECORD["summary"] = summary
    _update_bench()


def test_cold_vs_warm_matrix(tmp_path):
    """A warm (artifact-cached) matrix run costs well under half a cold
    one: reverse engineering dominates, and the matrix never re-runs it."""
    store_root = str(tmp_path / "matrix-store")

    cold = ValidationMatrix(
        orchestrator=PipelineOrchestrator(store=ArtifactStore(store_root)))
    cold_result = cold.run()
    assert cold_result.unexplained() == []

    warm = ValidationMatrix(
        orchestrator=PipelineOrchestrator(store=ArtifactStore(store_root)))
    warm_result = warm.run()
    assert warm_result.unexplained() == []
    assert len(warm_result.cells) == 16

    _RECORD["cold_wall_seconds"] = round(cold_result.wall_seconds, 3)
    _RECORD["cold_mode"] = cold_result.mode
    _RECORD["warm_wall_seconds"] = round(warm_result.wall_seconds, 3)
    _RECORD["warm_mode"] = warm_result.mode
    _update_bench()

    assert warm_result.wall_seconds < 0.5 * cold_result.wall_seconds, \
        "warm %.2fs vs cold %.2fs" % (warm_result.wall_seconds,
                                      cold_result.wall_seconds)
