"""Bench T1: regenerate Table 1 (driver-binary characteristics)."""

from conftest import run_once

from repro.eval.tables import table1_compute, table1_render


def test_table1(benchmark):
    rows = run_once(benchmark, table1_compute)
    print()
    print(table1_render(rows))
    assert len(rows) == 4
    for row in rows:
        # Shape of Table 1: NIC-driver-sized binaries with a code segment
        # smaller than the file and a double-digit function count.
        assert row.code_segment_size < row.driver_size
        assert row.implemented_functions >= 10
        assert row.imported_functions >= 8
