"""Shared fixtures for the benchmark harness.

The pipeline cache is warmed once per session so the per-table/figure
benches measure their experiment, not redundant RevNIC re-runs.  The
warm-up also emits ``BENCH_pipeline.json`` at the repo root -- per-driver
pipeline wall seconds plus solver/executor counters -- which CI uploads as
an artifact; ``benchmarks/BENCH_pipeline.baseline.json`` is the committed
baseline the perf trajectory is tracked against.
"""

import json
import os

import pytest

from repro.eval.runner import get_cache

_BENCH_COUNTERS = ("wall_seconds", "blocks_executed", "forks",
                   "solver_queries", "solver_comp_solves",
                   "solver_cache_hits", "solver_fast_path_hits",
                   "eval_program_runs", "eval_node_visits")

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _emit_bench_json(runs):
    report = {"drivers": {}, "total_wall_seconds": 0.0}
    for run in runs:
        stats = run.result.stats
        entry = {key: stats[key] for key in _BENCH_COUNTERS}
        entry["coverage"] = run.result.coverage_fraction
        report["drivers"][run.name] = entry
        report["total_wall_seconds"] += stats["wall_seconds"]
    report["total_wall_seconds"] = round(report["total_wall_seconds"], 3)
    path = os.path.join(_REPO_ROOT, "BENCH_pipeline.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture(scope="session")
def cache():
    """Process-wide pipeline cache, pre-warmed for all four drivers."""
    shared = get_cache()
    runs = shared.all_drivers()
    _emit_bench_json(runs)
    return shared


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a whole-experiment function with a single round (these
    are end-to-end experiment regenerations, not microbenchmarks)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
