"""Shared fixtures for the benchmark harness.

The artifact cache is warmed once per session -- cold runs fan out across
worker processes through :mod:`repro.pipeline`, warm sessions load
artifacts from the on-disk store -- so the per-table/figure benches
measure their experiment, not redundant RevNIC re-runs.  The warm-up also
emits ``BENCH_pipeline.json`` at the repo root: per-driver pipeline wall
seconds plus solver/executor counters, the serial sum, and the measured
wall-clock of this session's (possibly parallel or cached) warm-up --
which CI uploads as an artifact; ``benchmarks/BENCH_pipeline.baseline.json``
is the committed baseline the perf trajectory is tracked against.
"""

import json
import os

import pytest

from repro.eval.runner import get_cache

_BENCH_COUNTERS = ("wall_seconds", "blocks_executed", "exec_fast_blocks",
                   "forks", "solver_queries", "solver_comp_solves",
                   "solver_cache_hits", "solver_fast_path_hits",
                   "eval_program_runs", "eval_node_visits",
                   "hw_reads", "hw_writes")

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _emit_bench_json(orchestrator, artifacts):
    report = {"drivers": {}, "total_wall_seconds": 0.0}
    for artifact in artifacts:
        stats = artifact.stats
        entry = {key: stats[key] for key in _BENCH_COUNTERS}
        entry["coverage"] = artifact.coverage_fraction
        entry["source"] = artifact.source
        frontier = stats.get("frontier")
        if frontier:
            # Partitioned-exploration rows: how the frontier was sharded
            # and what the merge cost, so scaling regressions show up per
            # driver rather than only in the aggregate wall clock.
            entry["frontier"] = {
                key: frontier.get(key)
                for key in ("split_depth", "subtrees", "max_depth",
                            "workers", "states_per_worker", "steals",
                            "merge_wall_seconds")}
        report["drivers"][artifact.name] = entry
        report["total_wall_seconds"] += stats["wall_seconds"]
    report["total_wall_seconds"] = round(report["total_wall_seconds"], 3)
    # The orchestration numbers: how long *this* session's warm-up took
    # (parallel fan-out or cache loads) next to the summed per-driver
    # pipeline seconds it replaces.
    report["warm_wall_seconds"] = round(
        orchestrator.last_warm_seconds or 0.0, 3)
    report["warm_mode"] = orchestrator.last_warm_mode
    # Split the measured warm-up wall by what it actually paid for:
    # "cached" sessions only load artifacts from disk, anything else
    # recomputed at least one driver.  Scaling gates must compare
    # cold-compute against cold-compute -- a disk-cache hit would make
    # any parallelism look infinitely fast.
    wall = report["warm_wall_seconds"]
    if orchestrator.last_warm_mode == "cached":
        report["warm_load_wall_seconds"] = wall
        report["cold_compute_wall_seconds"] = None
    else:
        report["warm_load_wall_seconds"] = None
        report["cold_compute_wall_seconds"] = wall
    path = os.path.join(_REPO_ROOT, "BENCH_pipeline.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture(scope="session")
def cache():
    """Process-wide pipeline orchestrator, pre-warmed for all drivers."""
    shared = get_cache()
    artifacts = shared.all_drivers()
    _emit_bench_json(shared, artifacts)
    return shared


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a whole-experiment function with a single round (these
    are end-to-end experiment regenerations, not microbenchmarks)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
