"""Shared fixtures for the benchmark harness.

The pipeline cache is warmed once per session so the per-table/figure
benches measure their experiment, not redundant RevNIC re-runs.
"""

import pytest

from repro.eval.runner import get_cache


@pytest.fixture(scope="session")
def cache():
    """Process-wide pipeline cache, pre-warmed for all four drivers."""
    shared = get_cache()
    shared.all_drivers()
    return shared


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a whole-experiment function with a single round (these
    are end-to-end experiment regenerations, not microbenchmarks)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
