"""Bench F8: basic-block coverage vs RevNIC running time (Figure 8)."""

from conftest import run_once

from repro.eval.figures import fig8_compute, render_fig8


def test_fig8(benchmark, cache):
    timelines = run_once(benchmark, fig8_compute, cache=cache)
    print()
    print(render_fig8(timelines))
    for name, samples in timelines.items():
        assert samples, name
        fractions = [f for _b, _s, f in samples]
        # Coverage is monotonically non-decreasing and ends above the
        # paper's "most tested drivers reach over 80%" threshold.
        assert all(a <= b + 1e-9 for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] > 0.80, (name, fractions[-1])
        # The curve rises fast: half of the final coverage is reached in
        # the first half of the run (paper: <20 minutes of a one-hour run).
        halfway = fractions[len(fractions) // 2]
        assert halfway > 0.4 * fractions[-1]
