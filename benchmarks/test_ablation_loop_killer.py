"""Ablation bench: the polling-loop killer (DESIGN.md ablation).

Without killing states that re-execute polling-loop iterations, symbolic
execution floods the scheduler with near-identical states (paper section
3.2).  This bench compares state churn with the killer on vs (effectively)
off.
"""

from conftest import run_once

from repro.drivers import build_driver, device_class
from repro.revnic import RevNic, RevNicConfig
from repro.revnic.exerciser import quick_script


def explore(loop_kill_threshold):
    image = build_driver("rtl8029")
    config = RevNicConfig(driver_name="rtl8029",
                          pci=device_class("rtl8029").PCI,
                          loop_kill_threshold=loop_kill_threshold,
                          max_blocks_per_phase=700)
    engine = RevNic(image, config, script=quick_script())
    result = engine.run()
    return result


def test_loop_killer_bounds_state_growth(benchmark):
    def compare():
        with_killer = explore(loop_kill_threshold=8)
        without_killer = explore(loop_kill_threshold=10_000)
        return with_killer, without_killer

    with_killer, without_killer = run_once(benchmark, compare)
    blocks_with = with_killer.stats["blocks_executed"]
    blocks_without = without_killer.stats["blocks_executed"]
    print("\nblocks: killer=%d, no-killer=%d; coverage: %.1f%% vs %.1f%%"
          % (blocks_with, blocks_without,
             100 * with_killer.coverage_fraction,
             100 * without_killer.coverage_fraction))
    # Same budget: with the killer, coverage must not be worse -- the
    # killed states were re-executing already-covered loop bodies.
    assert with_killer.coverage_fraction >= \
        without_killer.coverage_fraction - 0.02
