"""Bench F4: 91C111 throughput ported Windows -> uC/OS-II FPGA (Fig 4)."""

from conftest import run_once

from repro.eval.figures import fig4_compute, render_throughput


def test_fig4(benchmark, cache):
    series = run_once(benchmark, fig4_compute, cache=cache)
    print()
    print(render_throughput(series, "Figure 4: 91C111 on the FPGA"))
    original = [p.throughput_mbps for p in series["uC/OSII Original"]]
    ported = [p.throughput_mbps for p in series["Windows->uC/OSII"]]
    # Paper: ported throughput within 10% of the hand-optimized original
    # (the gap is the synthesized code's larger cache footprint).
    for a, b in zip(original, ported):
        assert b <= a
        assert (a - b) / a < 0.10
    # Absolute range: tens of Mbps, bounded by the FPGA's shared bus.
    assert 15.0 < original[-1] < 35.0
