"""Bench F6: RTL8029 throughput on the QEMU testbed (Figure 6)."""

from conftest import run_once

from repro.eval.figures import fig6_compute, render_throughput


def test_fig6(benchmark, cache):
    series = run_once(benchmark, fig6_compute, cache=cache)
    print()
    print(render_throughput(series, "Figure 6: RTL8029 throughput (QEMU)"))

    def curve(name):
        return [p.throughput_mbps for p in series[name]]

    original = curve("Windows Original")
    synthesized = curve("Windows->Windows")
    ported_linux = curve("Windows->Linux")
    linux_native = curve("Linux Original")
    kitos = curve("Windows->KitOS")
    # No rated-speed cap on the virtual NIC: throughput exceeds the chip's
    # physical 10 Mbps by an order of magnitude.
    assert original[-1] > 50.0
    # Ported-to-Linux is on par with the native Linux driver.
    for a, b in zip(linux_native, ported_linux):
        assert abs(a - b) / a < 0.05
    # The lean KitOS driver has the highest throughput.
    for k, o in zip(kitos, original):
        assert k > o
    # Synthesized == original within a few percent.
    for a, b in zip(original, synthesized):
        assert abs(a - b) / a < 0.05


def test_fig6_cpu_bound(benchmark, cache):
    """CPU utilization is ~100% in the VM (no DMA, no wire time)."""
    series = run_once(benchmark, fig6_compute, cache=cache)
    for name, points in series.items():
        for point in points:
            assert point.cpu_utilization > 0.99, (name, point)
