"""Benchmark gate: the compiled execution tier beats the interpreters.

Two experiments, both landing under ``exec_backend`` in
``BENCH_pipeline.json``:

* **original-binary matrix column** -- one driver's full workload catalog
  on the source-OS harness (the baseline side of a validation-matrix
  column), run once on the per-instruction interpreter (``"step"``, the
  seed behaviour) and once on the compiled DBT tier.  Observations must
  be identical; compiled must be strictly faster;
* **synthesized-driver run** -- the rtl8139 artifact's driver pasted into
  the winsim template, driving a send+receive workload through the
  tree-walking IR interpreter and through compiled blocks.  Same
  behaviour and perf counters; compiled strictly faster.

Wall-clock gates are deliberately coarse (strictly-faster, not a ratio):
the observed margins are ~1.5x on the binary column and ~3x on the
synthesized run, so the assertion only trips when the compiled tier stops
paying for itself.
"""

import json
import os
import time

from repro.drivers import device_class
from repro.net import UdpWorkload
from repro.targetos import TARGET_OSES
from repro.templates import DmaNicTemplate
from repro.validate.observe import OriginalDut
from repro.validate.scenarios import SCENARIOS, run_scenario

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MAC = b"\x52\x54\x00\xAA\xBB\xCC"
PEER = b"\x02\x00\x00\x00\x00\x01"

#: Accumulated across the tests in this module; merged into the bench
#: report as each test completes, so partial runs still record.
_RECORD = {}


def _update_bench():
    path = os.path.join(_REPO_ROOT, "BENCH_pipeline.json")
    report = {}
    if os.path.exists(path):
        with open(path) as handle:
            report = json.load(handle)
    report["exec_backend"] = dict(_RECORD)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def _best_of(runs, fn):
    """Best wall-clock of ``runs`` attempts (damps scheduler noise
    without hiding a real regression) plus the last result."""
    best, result = None, None
    for _ in range(runs):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _run_column(backend):
    """The original rtl8029 binary through the whole workload catalog."""
    observations = []
    for scenario in SCENARIOS:
        dut = OriginalDut("rtl8029", exec_backend=backend)
        observations.append(run_scenario(dut, scenario).to_dict())
    return observations


def test_original_binary_column_compiled_faster(cache):
    interpreted, obs_step = _best_of(2, lambda: _run_column("step"))
    compiled, obs_compiled = _best_of(2, lambda: _run_column("compiled"))
    assert obs_step == obs_compiled, \
        "execution tier changed observable behaviour"
    _RECORD["matrix_column"] = {
        "driver": "rtl8029",
        "side": "original-binary",
        "scenarios": len(SCENARIOS),
        "interpreted_seconds": round(interpreted, 3),
        "compiled_seconds": round(compiled, 3),
        "speedup": round(interpreted / compiled, 2),
    }
    _update_bench()
    assert compiled < interpreted, \
        "compiled DBT tier (%.3fs) not faster than per-step decode " \
        "(%.3fs)" % (compiled, interpreted)


def _run_synthesized(artifact, backend, packets=60):
    target = TARGET_OSES["winsim"](device_class(artifact.name), mac=MAC)
    template = DmaNicTemplate(artifact.synthesized, target,
                              original_image=artifact.image,
                              exec_backend=backend)
    template.initialize()
    tx = UdpWorkload(MAC, PEER, 256)
    statuses = [template.send(tx.next_frame().to_bytes())
                for _ in range(packets)]
    rx = UdpWorkload(PEER, MAC, 128)
    delivered = []
    for _ in range(8):
        delivered.extend(template.inject_rx(rx.next_frame().to_bytes()))
    env = template.runtime.env
    return {
        "statuses": statuses,
        "wire": [f.hex() for f in target.medium.transmitted],
        "delivered": [f.hex() for f in delivered],
        "instrs_retired": env.instrs_retired,
        "ops_retired": env.ops_retired,
        "io_ops": env.io_ops,
        "irq_count": target.irq_count,
    }


def test_synthesized_rtl8139_run_compiled_faster(cache):
    artifact = cache.run("rtl8139")
    interpreted, out_interp = _best_of(
        2, lambda: _run_synthesized(artifact, "interp"))
    compiled, out_compiled = _best_of(
        2, lambda: _run_synthesized(artifact, "compiled"))
    assert out_interp == out_compiled, \
        "execution tier changed synthesized-driver behaviour or counters"
    _RECORD["synthesized_run"] = {
        "driver": "rtl8139",
        "target_os": "winsim",
        "packets": 60,
        "interpreted_seconds": round(interpreted, 3),
        "compiled_seconds": round(compiled, 3),
        "speedup": round(interpreted / compiled, 2),
    }
    _update_bench()
    assert compiled < interpreted, \
        "compiled blocks (%.3fs) not faster than the tree-walker " \
        "(%.3fs)" % (compiled, interpreted)


def test_symex_fast_path_share_recorded(cache):
    """The concrete fast path carries a meaningful share of symbolic-phase
    blocks for every driver; record the shares next to the gate."""
    shares = {}
    for artifact in cache.all_drivers():
        stats = artifact.stats
        shares[artifact.name] = {
            "fast_blocks": stats["exec_fast_blocks"],
            "blocks_executed": stats["blocks_executed"],
        }
        assert 0 < stats["exec_fast_blocks"] < stats["blocks_executed"]
    _RECORD["symex_fast_path"] = shares
    _update_bench()
