"""Bench F7: AMD PCNet throughput on the VMware testbed (Figure 7)."""

from conftest import run_once

from repro.eval.figures import fig7_compute, render_throughput


def test_fig7(benchmark, cache):
    series = run_once(benchmark, fig7_compute, cache=cache)
    print()
    print(render_throughput(series, "Figure 7: AMD PCNet (VMware)"))

    def curve(name):
        return [p.throughput_mbps for p in series[name]]

    original = curve("Windows Original")
    synthesized = curve("Windows->Windows")
    kitos = curve("Windows->KitOS")
    # DMA + uncapped virtual NIC: throughput far beyond 100 Mbps at large
    # packet sizes (the paper reaches ~1 Gbps).
    assert original[-1] > 300.0
    assert kitos[-1] > original[-1]
    for a, b in zip(original, synthesized):
        assert abs(a - b) / a < 0.05
    # Monotone growth with packet size.
    assert all(a < b for a, b in zip(original, original[1:]))
