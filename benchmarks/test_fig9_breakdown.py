"""Bench F9: automatically recovered vs manual functions (Figure 9)."""

from conftest import run_once

from repro.eval.figures import fig9_compute, render_fig9


def test_fig9(benchmark, cache):
    breakdown = run_once(benchmark, fig9_compute, cache=cache)
    print()
    print(render_fig9(breakdown))
    fractions = [row["fraction"] for row in breakdown.values()]
    # Paper: "about 70% of the functions are fully synthesized"; per-driver
    # values cluster around that.
    assert all(0.5 <= f <= 0.9 for f in fractions), fractions
    average = sum(fractions) / len(fractions)
    assert 0.60 <= average <= 0.80, average
