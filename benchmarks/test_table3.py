"""Bench T3: regenerate Table 3 (template-writing effort)."""

from conftest import run_once

from repro.eval.tables import table3_compute, table3_render


def test_table3(benchmark):
    rows = run_once(benchmark, table3_compute)
    print()
    print(table3_render(rows))
    by_os = {row["target_os"]: row for row in rows}
    # Shape: effort ordering Windows > Linux > uC/OS-II > KitOS holds for
    # the paper's person-days and for our boilerplate/API proxies.
    assert by_os["winsim"]["person_days_paper"] \
        > by_os["linsim"]["person_days_paper"] \
        > by_os["ucsim"]["person_days_paper"] \
        > by_os["kitos"]["person_days_paper"]
    assert by_os["kitos"]["boilerplate_loc"] <= by_os["winsim"]["boilerplate_loc"] + 200
