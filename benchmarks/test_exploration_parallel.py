"""Benchmark gate: sharded exploration pays for itself on multi-core.

One cold RevNIC engine run (no artifact store involved -- both sides
compute) on the heaviest driver, serial vs 2-worker sharded at the same
split depth.  The gate lands under ``exploration_parallel`` in
``BENCH_pipeline.json``:

* canonical artifact bytes must be identical between the two runs
  (worker count is runtime-only; tier-1 asserts this per driver, the
  gate re-checks it on the exact runs it times);
* on hosts with 2+ cores the sharded run must be at least
  ``MIN_SPEEDUP`` faster than serial;
* on single-core runners the speedup assertion is *skipped* -- never
  simulated -- and the report records the skip with the core count, so
  a missing gate is distinguishable from a green one.
"""

import json
import os
import time

import pytest

from repro.drivers import build_driver, device_class
from repro.pipeline.artifact import build_artifact, canonical_json
from repro.revnic import RevNic, RevNicConfig
from repro.synth import synthesize

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: rtl8139 has the largest eval/solver volume in the corpus -- the run
#: long enough for fan-out to amortize worker spawn.
GATE_DRIVER = "rtl8139"
SPLIT_DEPTH = 3
WORKERS = 2
MIN_SPEEDUP = 1.5

_RECORD = {}


def _update_bench():
    path = os.path.join(_REPO_ROOT, "BENCH_pipeline.json")
    report = {}
    if os.path.exists(path):
        with open(path) as handle:
            report = json.load(handle)
    report["exploration_parallel"] = dict(_RECORD)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def _cold_run(workers):
    image = build_driver(GATE_DRIVER)
    config = RevNicConfig(driver_name=GATE_DRIVER,
                          pci=device_class(GATE_DRIVER).PCI,
                          explore_split_depth=SPLIT_DEPTH)
    engine = RevNic(image, config, explore_workers=workers)
    started = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - started
    artifact = build_artifact(config, result, synthesize(result))
    return elapsed, canonical_json(artifact), result.stats


def test_exploration_parallel_gate(cache):
    cores = os.cpu_count() or 1
    _RECORD["scaling"] = {
        "driver": GATE_DRIVER,
        "split_depth": SPLIT_DEPTH,
        "workers": WORKERS,
        "min_speedup": MIN_SPEEDUP,
        "cores": cores,
    }
    if cores < 2:
        _RECORD["scaling"]["skipped"] = \
            "single-core runner (os.cpu_count()=%d): sharded and " \
            "serial would time the same CPU" % cores
        _update_bench()
        pytest.skip("exploration scaling gate needs 2+ cores, have %d"
                    % cores)

    serial_seconds, serial_bytes, serial_stats = _cold_run(workers=0)
    sharded_seconds, sharded_bytes, stats = _cold_run(workers=WORKERS)
    front = stats["frontier"]
    speedup = serial_seconds / sharded_seconds
    _RECORD["scaling"].update({
        "serial_seconds": round(serial_seconds, 3),
        "sharded_seconds": round(sharded_seconds, 3),
        "speedup": round(speedup, 2),
        "bytes_identical": sharded_bytes == serial_bytes,
        "subtrees": front["subtrees"],
        "max_depth": front["max_depth"],
        "states_per_worker": front["states_per_worker"],
        "steals": front["steals"],
        "fallbacks": front["fallbacks"],
        "merge_wall_seconds": front["merge_wall_seconds"],
        "serial_blocks": serial_stats["blocks_executed"],
        "sharded_blocks": stats["blocks_executed"],
    })
    _update_bench()
    assert sharded_bytes == serial_bytes, \
        "sharded exploration changed artifact bytes"
    assert front["fallbacks"] == 0, \
        "worker pool degraded to in-process fallback; not a scaling run"
    assert speedup >= MIN_SPEEDUP, \
        "sharded exploration (%.3fs) under %.1fx vs serial (%.3fs)" \
        % (sharded_seconds, MIN_SPEEDUP, serial_seconds)
