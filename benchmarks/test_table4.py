"""Bench T4: regenerate Table 4 (developer effort / automation)."""

from conftest import run_once

from repro.eval.tables import table4_compute, table4_render


def test_table4(benchmark, cache):
    rows = run_once(benchmark, table4_compute, cache)
    print()
    print(table4_render(rows))
    for row in rows:
        # RevNIC's mechanical phase is minutes, not person-years: most
        # recovered functions need no manual template integration.
        assert row["functions_automatic"] > row["manual_integration"]
        assert row["wall_seconds"] < 600
