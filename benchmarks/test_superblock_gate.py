"""Benchmark gate: the superblock tier beats per-block compiled dispatch.

Three experiments, landing under ``superblocks`` in
``BENCH_pipeline.json``:

* **original-binary matrix column** -- the rtl8029 workload catalog on
  the source-OS harness, compiled per-block vs compiled+superblocks
  (and the per-step interpreter for the overall-tier ratio).  Same
  observations; superblocks strictly faster than compiled-only and at
  least 1.5x over per-step decode;
* **synthesized-driver run** -- the rtl8139 artifact in the winsim
  template, compiled-only vs compiled+superblocks.  Same behaviour and
  perf counters; superblocks strictly faster;
* **cold vs warm start** -- the same synthesized run against a scratch
  persistent code cache: a cold process generates and persists every
  source, a warm one imports instead of regenerating (gated on the
  codecache counters, recorded as the wall-clock delta).

Both steady-state timings warm the chains up before the measured runs:
formation and compile cost is a one-time cold-start cost, measured
separately by the third experiment rather than smeared into the
steady-state gate.
"""

import json
import os
import time

from repro.drivers import device_class
from repro.ir import codecache
from repro.ir import compile as ircompile
from repro.ir import superblock
from repro.net import UdpWorkload
from repro.targetos import TARGET_OSES
from repro.templates import DmaNicTemplate
from repro.validate.observe import OriginalDut
from repro.validate.scenarios import SCENARIOS, run_scenario

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MAC = b"\x52\x54\x00\xAA\xBB\xCC"
PEER = b"\x02\x00\x00\x00\x00\x01"

#: Accumulated across the tests in this module; merged into the bench
#: report as each test completes, so partial runs still record.
_RECORD = {}


def _update_bench():
    path = os.path.join(_REPO_ROOT, "BENCH_pipeline.json")
    report = {}
    if os.path.exists(path):
        with open(path) as handle:
            report = json.load(handle)
    report["superblocks"] = dict(_RECORD)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def _best_of(runs, fn):
    """Best wall-clock of ``runs`` attempts (damps scheduler noise
    without hiding a real regression) plus the last result."""
    best, result = None, None
    for _ in range(runs):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _race(rounds, contenders):
    """Best wall-clock per contender over interleaved rounds.

    The two sides of a thin-margin gate must sample the same load
    conditions: timing all of one side then all of the other lets a
    scheduler spike during either phase flip the verdict.  Alternating
    them round by round and keeping each side's minimum cancels drift.
    Returns ``({name: seconds}, {name: last result})``.
    """
    best = {name: None for name in contenders}
    results = {}
    for _ in range(rounds):
        for name, fn in contenders.items():
            started = time.perf_counter()
            results[name] = fn()
            elapsed = time.perf_counter() - started
            if best[name] is None or elapsed < best[name]:
                best[name] = elapsed
    return best, results


def _run_column(backend, superblocks=False):
    """The original rtl8029 binary through the whole workload catalog."""
    observations = []
    for scenario in SCENARIOS:
        dut = OriginalDut("rtl8029", exec_backend=backend,
                          exec_superblocks=superblocks)
        observations.append(run_scenario(dut, scenario).to_dict())
    return observations


def test_matrix_column_superblocks_faster(cache):
    # Warm-up: form chains, compile and persist every source once, so
    # the timed runs measure steady-state dispatch only.
    _run_column("compiled", superblocks=True)
    _run_column("compiled", superblocks=False)
    stepped, obs_step = _best_of(2, lambda: _run_column("step"))
    timings, outputs = _race(5, {
        "off": lambda: _run_column("compiled", superblocks=False),
        "on": lambda: _run_column("compiled", superblocks=True),
    })
    compiled, fused = timings["off"], timings["on"]
    obs_off, obs_on = outputs["off"], outputs["on"]
    assert obs_off == obs_on, \
        "superblock tier changed observable behaviour"
    assert obs_step == obs_on, \
        "DBT tiers diverged from the per-step interpreter"
    _RECORD["matrix_column"] = {
        "driver": "rtl8029",
        "side": "original-binary",
        "scenarios": len(SCENARIOS),
        "step_seconds": round(stepped, 3),
        "compiled_seconds": round(compiled, 3),
        "superblock_seconds": round(fused, 3),
        "speedup_vs_step": round(stepped / fused, 2),
        "speedup_vs_compiled": round(compiled / fused, 2),
    }
    _update_bench()
    assert fused < compiled, \
        "compiled+superblocks (%.3fs) not faster than compiled-only " \
        "(%.3fs)" % (fused, compiled)
    assert stepped / fused >= 1.5, \
        "superblock tier (%.3fs) below 1.5x over per-step decode " \
        "(%.3fs)" % (fused, stepped)


def _run_synthesized(artifact, superblocks, packets=60):
    target = TARGET_OSES["winsim"](device_class(artifact.name), mac=MAC)
    template = DmaNicTemplate(artifact.synthesized, target,
                              original_image=artifact.image,
                              exec_backend="compiled",
                              exec_superblocks=superblocks)
    template.initialize()
    tx = UdpWorkload(MAC, PEER, 256)
    statuses = [template.send(tx.next_frame().to_bytes())
                for _ in range(packets)]
    rx = UdpWorkload(PEER, MAC, 128)
    delivered = []
    for _ in range(8):
        delivered.extend(template.inject_rx(rx.next_frame().to_bytes()))
    env = template.runtime.env
    return {
        "statuses": statuses,
        "wire": [f.hex() for f in target.medium.transmitted],
        "delivered": [f.hex() for f in delivered],
        "instrs_retired": env.instrs_retired,
        "ops_retired": env.ops_retired,
        "io_ops": env.io_ops,
        "irq_count": target.irq_count,
    }


def test_synthesized_rtl8139_run_superblocks_faster(cache):
    artifact = cache.run("rtl8139")
    _run_synthesized(artifact, True)
    _run_synthesized(artifact, False)
    timings, outputs = _race(7, {
        "off": lambda: _run_synthesized(artifact, False),
        "on": lambda: _run_synthesized(artifact, True),
    })
    compiled, fused = timings["off"], timings["on"]
    out_off, out_on = outputs["off"], outputs["on"]
    assert out_off == out_on, \
        "superblock tier changed synthesized-driver behaviour or counters"
    _RECORD["synthesized_run"] = {
        "driver": "rtl8139",
        "target_os": "winsim",
        "packets": 60,
        "compiled_seconds": round(compiled, 3),
        "superblock_seconds": round(fused, 3),
        "speedup_vs_compiled": round(compiled / fused, 2),
    }
    _update_bench()
    assert fused < compiled, \
        "compiled+superblocks (%.3fs) not faster than compiled-only " \
        "(%.3fs)" % (fused, compiled)


def _fresh_process():
    """Drop every in-process code cache, as a new python process would:
    the persistent store handles (and hint memo) plus the shared
    compiled-program and chain caches."""
    codecache.forget_stores()
    ircompile._SHARED_PROGRAMS.clear()
    superblock._SHARED_CHAINS.clear()


def test_cold_start_warm_import(cache, tmp_path, monkeypatch):
    """A warm process imports persisted sources instead of regenerating;
    chain hints re-form superblocks without re-profiling.  Measured on
    the matrix column -- the biggest codegen surface (hundreds of block
    and chain sources), where the cold-start delta is visible."""
    monkeypatch.setenv(codecache.CODE_CACHE_ENV,
                       str(tmp_path / "codegen"))

    _fresh_process()
    before = codecache.codecache_counters()
    started = time.perf_counter()
    out_cold = _run_column("compiled", superblocks=True)
    cold_seconds = time.perf_counter() - started
    mid = codecache.codecache_counters()
    cold = {key: mid[key] - before[key] for key in mid}
    assert cold["generated"] > 0 and cold["persisted"] > 0
    assert cold["imported"] == 0

    _fresh_process()
    started = time.perf_counter()
    out_warm = _run_column("compiled", superblocks=True)
    warm_seconds = time.perf_counter() - started
    after = codecache.codecache_counters()
    warm = {key: after[key] - mid[key] for key in after}
    assert out_cold == out_warm, \
        "a warm import changed observable behaviour"
    assert warm["generated"] < cold["generated"], \
        "warm process regenerated as much as the cold one"
    assert warm["imported"] > 0 and warm["hints"] > 0, \
        "warm process did not import persisted sources or chain hints"

    _RECORD["cold_start"] = {
        "driver": "rtl8029",
        "side": "original-binary",
        "scenarios": len(SCENARIOS),
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "cold_start_reduction": round(cold_seconds / warm_seconds, 2),
        "cold_generated": cold["generated"],
        "cold_persisted": cold["persisted"],
        "warm_generated": warm["generated"],
        "warm_imported": warm["imported"],
        "warm_hints": warm["hints"],
    }
    _update_bench()
