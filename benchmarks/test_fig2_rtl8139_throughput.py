"""Bench F2: RTL8139 throughput on x86 (Figure 2)."""

from conftest import run_once

from repro.eval.figures import fig2_compute, render_throughput


def test_fig2(benchmark, cache):
    series = run_once(benchmark, fig2_compute, cache=cache)
    print()
    print(render_throughput(series, "Figure 2: RTL8139 throughput on x86"))

    def curve(name):
        return [p.throughput_mbps for p in series[name]]

    original = curve("Windows Original")
    synthesized = curve("Windows->Windows")
    linux_native = curve("Linux Original")
    ported_linux = curve("Windows->Linux")
    kitos = curve("Windows->KitOS")

    # Shape checks from the paper: throughput grows with packet size and
    # approaches (but respects) the 100 Mbps rated link.
    assert all(a < b for a, b in zip(original, original[1:]))
    assert original[-1] < 100.0
    assert original[-1] > 70.0
    # Synthesized drivers have negligible overhead vs the original.
    for a, b in zip(original, synthesized):
        assert abs(a - b) / a < 0.05
    # The ported Linux driver is on par with the native one.
    for a, b in zip(linux_native, ported_linux):
        assert abs(a - b) / a < 0.05
    # KitOS (no TCP/IP stack) is the fastest series.
    for k, o in zip(kitos, original):
        assert k > o
