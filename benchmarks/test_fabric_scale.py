"""Benchmark gate: the fabric's batched event-driven scheduler.

Three experiments, all landing under ``fabric`` in
``BENCH_pipeline.json``:

* **scheduler gate** -- a 16-endpoint saturation fleet on a wide-spread
  (mostly idle) schedule, batched vs the lockstep polling reference,
  interleaved round by round.  Batched must win by >= 1.3x on the run
  loop (boot is mode-invariant and excluded), and both modes must emit
  byte-identical canonical reports;
* **determinism** -- the same seed + topology replayed across runs and
  across ``REVNIC_PARALLEL`` settings produces byte-identical canonical
  report bytes;
* **scale sweep** -- 16 / 64 / 256 endpoints per execution backend,
  recording aggregate and per-driver packets/sec through the switch.

``benchmarks/BENCH_pipeline.baseline.json`` carries the committed
baseline for trajectory tracking.
"""

import json
import os
import time

from repro.net.fabric import (FabricRun, build_fleet, build_report,
                              build_workload, canonical_fabric_json,
                              run_fleet)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Fixed seed for every fabric bench: the reports are replayable records.
SEED = 0xFAB51

#: Schedule stretch for the scheduler gate: at spread 512 the fleet is
#: idle at almost every tick -- the shape event-driven scheduling is for.
GATE_SPREAD = 512

#: Accumulated across the tests in this module; merged into the bench
#: report as each test completes, so partial runs still record.
_RECORD = {}


def _update_bench():
    path = os.path.join(_REPO_ROOT, "BENCH_pipeline.json")
    report = {}
    if os.path.exists(path):
        with open(path) as handle:
            report = json.load(handle)
    report["fabric"] = dict(_RECORD)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def _timed_run(cache, plan, mode):
    """Build, boot, then time the run loop alone; returns
    ``(seconds, canonical_report_bytes, run)``."""
    endpoints = build_fleet(plan, orchestrator=cache)
    run = FabricRun(endpoints, mode=mode)
    for ep in run.endpoints:
        ep.boot()
    run.run(booted=True)
    report = build_report(plan, endpoints, run)
    return run.wall_seconds, canonical_fabric_json(report), run


def test_batched_beats_lockstep(cache):
    plan = build_workload("saturation", 16, SEED, spread=GATE_SPREAD)
    # Warm-up: compile/import every block source once so the race
    # measures scheduling, not first-touch codegen.
    _timed_run(cache, plan, "batched")
    _timed_run(cache, plan, "lockstep")
    best, canon, runs = {}, {}, {}
    for _ in range(5):
        # Interleaved rounds: both schedulers sample the same host load.
        for mode in ("batched", "lockstep"):
            seconds, report, run = _timed_run(cache, plan, mode)
            canon[mode] = report
            runs[mode] = run
            if best.get(mode) is None or seconds < best[mode]:
                best[mode] = seconds
    assert canon["batched"] == canon["lockstep"], \
        "scheduler modes disagree on the canonical fabric report"
    speedup = best["lockstep"] / best["batched"]
    _RECORD["scheduler_gate"] = {
        "workload": "saturation",
        "endpoints": 16,
        "seed": SEED,
        "spread": GATE_SPREAD,
        "ticks": runs["batched"].ticks,
        "batched_seconds": round(best["batched"], 3),
        "lockstep_seconds": round(best["lockstep"], 3),
        "speedup": round(speedup, 2),
        "batched_polls": runs["batched"].polls,
        "lockstep_polls": runs["lockstep"].polls,
    }
    _update_bench()
    assert best["batched"] < best["lockstep"], \
        "batched (%.3fs) not faster than lockstep (%.3fs)" \
        % (best["batched"], best["lockstep"])
    assert speedup >= 1.3, \
        "batched scheduler %.2fx over lockstep, below the 1.3x gate" \
        % speedup


def test_report_bytes_stable_across_runs_and_parallel(cache, monkeypatch):
    plan = build_workload("saturation", 16, SEED)
    canons = []
    for parallel in ("0", "1", "0"):
        monkeypatch.setenv("REVNIC_PARALLEL", parallel)
        report = run_fleet(plan, orchestrator=cache)
        canons.append(canonical_fabric_json(report))
    assert canons[0] == canons[1] == canons[2], \
        "canonical fabric report bytes drift across runs or " \
        "REVNIC_PARALLEL settings"
    _RECORD["determinism"] = {
        "workload": "saturation",
        "endpoints": 16,
        "seed": SEED,
        "runs": len(canons),
        "byte_identical": True,
    }
    _update_bench()


def test_scale_sweep(cache):
    sweep = {}
    for backend in ("compiled", "interp"):
        sweep[backend] = {}
        for count in (16, 64, 256):
            plan = build_workload("saturation", count, SEED)
            started = time.perf_counter()
            report = run_fleet(plan, orchestrator=cache,
                               backends=(backend,))
            wall = time.perf_counter() - started
            run_wall = report["wall_seconds"]
            assert report["switch"]["frames_switched"] > 0, \
                "a %d-endpoint sweep cell switched nothing" % count
            assert report["totals"]["step_errors"] == 0
            per_driver = {
                driver: round((cell["tx_frames"] + cell["rx_frames"])
                              / run_wall, 1)
                for driver, cell in sorted(report["per_driver"].items())}
            sweep[backend][str(count)] = {
                "frames_switched": report["switch"]["frames_switched"],
                "packets_per_second": report["packets_per_second"],
                "per_driver_pps": per_driver,
                "run_seconds": round(run_wall, 3),
                "total_seconds": round(wall, 3),
                "ticks": report["ticks"],
            }
    _RECORD["scale_sweep"] = sweep
    _update_bench()
    # Scaling sanity: 16x the fleet must move more than 2x the frames.
    for backend in sweep:
        small = sweep[backend]["16"]["frames_switched"]
        large = sweep[backend]["256"]["frames_switched"]
        assert large > 2 * small, backend
