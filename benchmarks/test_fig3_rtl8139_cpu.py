"""Bench F3: RTL8139 CPU utilization on x86 (Figure 3)."""

from conftest import run_once

from repro.eval.figures import fig3_compute, render_utilization


def test_fig3(benchmark, cache):
    series = run_once(benchmark, fig3_compute, cache=cache)
    print()
    print(render_utilization(series,
                             "Figure 3: CPU utilization for RTL8139"))

    def curve(name):
        return [p.cpu_utilization for p in series[name]]

    original = curve("Windows Original")
    synthesized = curve("Windows->Windows")
    linux = curve("Windows->Linux")
    # Utilization decreases with packet size (wire time grows faster than
    # CPU time) -- the paper's dominant trend.
    assert original[0] > original[-1]
    # The synthesized Windows driver's utilization tracks the original.
    for a, b in zip(original, synthesized):
        assert abs(a - b) < 0.05
    # Linux's leaner stack burns slightly less CPU than NDIS.
    assert sum(linux) <= sum(original) + 1e-9
