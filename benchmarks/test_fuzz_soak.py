"""Benchmark gate: the differential fuzzer and the soak engine.

Two experiments, both landing under ``fuzz_soak`` in
``BENCH_pipeline.json``:

* **bounded fuzz campaign** -- the default corpus (4 drivers x 4 target
  OSes) under a fixed seed and a small round budget.  The gate is the
  acceptance bar: the campaign completes with **zero unexplained
  divergences** (the only non-matching cells are the verified-unsupported
  DMA-on-ucsim ones, plus role-gated skips), and the canonical serialized
  campaign is byte-deterministic -- the recorded store key replays it;
* **soak** -- sustained saturation traffic per driver on both execution
  backends, recording packets/sec and divergence-free step counts; every
  soaked step must be divergence-free.

``benchmarks/BENCH_pipeline.baseline.json`` carries the committed
baseline for trajectory tracking.
"""

import json
import os

from repro.fuzz import (FuzzConfig, FuzzEngine, canonical_fuzz_json,
                        fuzz_key, run_soak, save_fuzz_result)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Accumulated across the tests in this module; merged into the bench
#: report as each test completes, so partial runs still record.
_RECORD = {}

#: The bounded default campaign: every driver, every target OS, a fixed
#: seed and a round budget sized for CI (~30s serial on one core).
BOUNDED = dict(base_seed=0xC0FFEE, programs_per_round=3, max_rounds=5,
               dry_rounds=2)


def _update_bench():
    path = os.path.join(_REPO_ROOT, "BENCH_pipeline.json")
    report = {}
    if os.path.exists(path):
        with open(path) as handle:
            report = json.load(handle)
    report["fuzz_soak"] = dict(_RECORD)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def test_bounded_fuzz_campaign(cache):
    """4 drivers x 4 OSes under the fixed default seed: zero unexplained
    divergences, recorded and persisted for replay."""
    config = FuzzConfig(**BOUNDED)
    result = FuzzEngine(orchestrator=cache, config=config).run()

    unexplained = result.unexplained()
    assert unexplained == [], \
        "unexplained fuzz divergences: %r" % (
            [(r.driver, r.target_os, r.program_name, r.verdict)
             for r in unexplained],)
    summary = result.summary()
    assert summary["matched"] > 0
    assert summary["divergent"] == 0
    assert summary["coverage"] > 0
    # every non-match is the verified-unsupported ucsim/DMA cell
    for run in result.runs:
        if run.verdict == "unsupported":
            assert run.expected == "unsupported", \
                "%s/%s unsupported but equivalence expected" \
                % (run.driver, run.target_os)

    record = {"base_seed": BOUNDED["base_seed"], "summary": summary}
    store = cache.store
    if store:
        record["store_key"] = save_fuzz_result(store, result)
        assert record["store_key"] == fuzz_key(config)
    _RECORD["fuzz"] = record
    _update_bench()

    # the determinism bar: re-running the identical campaign serializes
    # byte-identically (wall-clock and pool mode scrubbed)
    again = FuzzEngine(orchestrator=cache, config=FuzzConfig(**BOUNDED)) \
        .run()
    assert canonical_fuzz_json(again) == canonical_fuzz_json(result)


def test_soak_packets_per_second(cache):
    """Sustained saturation per driver x backend: every step stays
    divergence-free, and the throughput lands in the bench report."""
    soak = run_soak(orchestrator=cache)

    assert soak["totals"]["divergences"] == 0
    assert soak["totals"]["packets"] > 0
    assert soak["totals"]["packets_per_sec"] > 0
    for driver, backends in sorted(soak["drivers"].items()):
        for backend, record in sorted(backends.items()):
            assert record["divergence_free_steps"] == record["steps"], \
                "%s/%s soaked dirty" % (driver, backend)
            assert record["packets_per_sec"] > 0

    _RECORD["soak"] = soak
    _update_bench()
