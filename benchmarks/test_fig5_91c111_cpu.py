"""Bench F5: CPU fraction spent inside the 91C111 driver (Figure 5)."""

from conftest import run_once

from repro.eval.figures import fig5_compute, render_fraction_series


def test_fig5(benchmark, cache):
    series = run_once(benchmark, fig5_compute, cache=cache)
    print()
    print(render_fraction_series(
        series, "Figure 5: CPU fraction spent inside the 91C111 driver"))
    for name, points in series.items():
        fractions = [fraction for _size, fraction in points]
        # Paper: roughly 20%-30% of CPU time inside the driver for both
        # the original and the synthesized driver.
        assert all(0.15 < f < 0.40 for f in fractions), (name, fractions)
    original = dict(series["uC/OSII Original"])
    ported = dict(series["Windows->uC/OSII"])
    for size in original:
        assert abs(original[size] - ported[size]) < 0.10
