"""Ablation bench: exploration-strategy comparison (DESIGN.md ablation).

The paper (section 3.2) claims its coverage-driven state selection "speeds
up exploration, compared to depth-first search (which can get stuck in
polling loops) or breadth-first search (which can take a long time to
complete a complex entry point)".  This bench runs RevNIC under all three
strategies with the same block budget and compares final coverage.
"""

import pytest
from conftest import run_once

from repro.drivers import build_driver, device_class
from repro.revnic import RevNic, RevNicConfig
from repro.revnic.exerciser import quick_script

BUDGET = 900


def explore(strategy):
    image = build_driver("rtl8029")
    config = RevNicConfig(driver_name="rtl8029",
                          pci=device_class("rtl8029").PCI,
                          strategy=strategy,
                          max_blocks_per_phase=BUDGET // 4)
    engine = RevNic(image, config, script=quick_script())
    result = engine.run()
    return result.coverage_fraction, result.stats


@pytest.mark.parametrize("strategy", ["coverage", "dfs", "bfs"])
def test_strategy(benchmark, strategy):
    fraction, stats = run_once(benchmark, explore, strategy)
    print("\n%s: %.1f%% coverage, %d blocks, %d solver queries"
          % (strategy, 100 * fraction, stats["blocks_executed"],
             stats["solver_queries"]))
    assert fraction > 0.20


def test_coverage_strategy_wins(benchmark):
    def compare():
        return {s: explore(s)[0] for s in ("coverage", "dfs", "bfs")}

    results = run_once(benchmark, compare)
    print("\nfinal coverage under equal budget:", {
        k: "%.1f%%" % (100 * v) for k, v in results.items()})
    # The paper's heuristic should match or beat both baselines under the
    # same exploration budget.
    assert results["coverage"] >= results["dfs"] - 0.02
    assert results["coverage"] >= results["bfs"] - 0.02
