#!/usr/bin/env python
"""Port the whole driver corpus to every target OS (the paper's Table 1
"RevNIC ported from Windows to ..." column, live).

For each of the four proprietary binaries, reverse engineer once -- the
pipeline orchestrator fans the four runs out across worker processes (and
serves them from the on-disk artifact cache on a second invocation) --
then instantiate the synthesized driver on each applicable target OS and
verify the data path (send one frame, receive one frame).
"""

from repro.drivers import DRIVERS, device_class
from repro.net import EthernetFrame, EtherType
from repro.pipeline import PipelineOrchestrator
from repro.targetos import TARGET_OSES
from repro.templates import NicTemplate

MAC = b"\x52\x54\x00\xAA\xBB\xCC"

#: Ports performed in the paper (Table 1); ucsim only hosts the 91C111.
PORTS = {
    "pcnet": ("winsim", "linsim", "kitos"),
    "rtl8139": ("winsim", "linsim", "kitos"),
    "smc91c111": ("ucsim", "kitos"),
    "rtl8029": ("winsim", "linsim", "kitos"),
}


def frame_bytes(payload=b"x" * 64):
    return EthernetFrame(dst=b"\xff" * 6, src=MAC,
                         ethertype=EtherType.IPV4,
                         payload=payload).to_bytes()


def main():
    total = 0
    orchestrator = PipelineOrchestrator()
    artifacts = orchestrator.warm()
    print("warm-up: %.1fs (%s)\n" % (orchestrator.last_warm_seconds,
                                     orchestrator.last_warm_mode))
    for name in sorted(DRIVERS):
        artifact = artifacts[name]
        print("%s: coverage %.1f%%, %d functions recovered [%s]"
              % (name, 100 * artifact.coverage_fraction,
                 artifact.report.function_count, artifact.source))
        for os_name in PORTS[name]:
            target = TARGET_OSES[os_name](device_class(name), mac=MAC)
            template = NicTemplate(artifact.synthesized, target,
                                   original_image=artifact.image)
            template.initialize()
            frame = frame_bytes()
            template.send(frame)
            rx = EthernetFrame(dst=MAC, src=b"\x02" * 6,
                               ethertype=EtherType.IPV4,
                               payload=b"y" * 64).to_bytes()
            indicated = template.inject_rx(rx)
            ok = target.medium.transmitted == [frame] and indicated == [rx]
            total += 1
            print("   -> %-7s %s" % (os_name, "OK" if ok else "BROKEN"))
    print("\n%d driver/OS combinations ported" % total)


if __name__ == "__main__":
    main()
