#!/usr/bin/env python
"""Port the whole driver corpus to every target OS (the paper's Table 1
"RevNIC ported from Windows to ..." column, live).

For each of the four proprietary binaries, reverse engineer once, then
instantiate the synthesized driver on each applicable target OS and verify
the data path (send one frame, receive one frame).
"""

from repro.drivers import DRIVERS, build_driver, device_class
from repro.net import EthernetFrame, EtherType
from repro.revnic import RevNic, RevNicConfig
from repro.synth import synthesize
from repro.targetos import TARGET_OSES
from repro.templates import NicTemplate

MAC = b"\x52\x54\x00\xAA\xBB\xCC"

#: Ports performed in the paper (Table 1); ucsim only hosts the 91C111.
PORTS = {
    "pcnet": ("winsim", "linsim", "kitos"),
    "rtl8139": ("winsim", "linsim", "kitos"),
    "smc91c111": ("ucsim", "kitos"),
    "rtl8029": ("winsim", "linsim", "kitos"),
}


def frame_bytes(payload=b"x" * 64):
    return EthernetFrame(dst=b"\xff" * 6, src=MAC,
                         ethertype=EtherType.IPV4,
                         payload=payload).to_bytes()


def main():
    total = 0
    for name in sorted(DRIVERS):
        image = build_driver(name)
        engine = RevNic(image, RevNicConfig(
            driver_name=name, pci=device_class(name).PCI))
        result = engine.run()
        synthesized = synthesize(result,
                                 import_names=engine.loaded.import_names,
                                 translator=engine.translator)
        print("%s: coverage %.1f%%, %d functions recovered"
              % (name, 100 * result.coverage_fraction,
                 synthesized.report.function_count))
        for os_name in PORTS[name]:
            target = TARGET_OSES[os_name](device_class(name), mac=MAC)
            template = NicTemplate(synthesized, target,
                                   original_image=image)
            template.initialize()
            frame = frame_bytes()
            template.send(frame)
            rx = EthernetFrame(dst=MAC, src=b"\x02" * 6,
                               ethertype=EtherType.IPV4,
                               payload=b"y" * 64).to_bytes()
            indicated = template.inject_rx(rx)
            ok = target.medium.transmitted == [frame] and indicated == [rx]
            total += 1
            print("   -> %-7s %s" % (os_name, "OK" if ok else "BROKEN"))
    print("\n%d driver/OS combinations ported" % total)


if __name__ == "__main__":
    main()
