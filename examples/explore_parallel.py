#!/usr/bin/env python
"""Run one driver's symbolic exploration serial and sharded, diff bytes.

The sharded-exploration contract (``repro.symex.frontier``): partitioning
the state frontier across worker processes changes wall time only --
the merged :class:`RunArtifact`'s canonical JSON must be byte-identical
to the serial run of the same partition.  This script runs both modes
cold and diffs the bytes; any divergence prints the first differing
canonical path and exits 1, and CI runs it with a fixed configuration so
a merge-determinism regression fails the build with both artifacts
preserved.

Usage:
    PYTHONPATH=src python examples/explore_parallel.py [options]

Options:
    --driver NAME     driver to explore              (default rtl8139)
    --script NAME     exercise script                (default quick)
    --split-depth N   frontier split depth           (default 3)
    --workers N       sharded-side worker processes  (default 2)
    --out-serial P    write the serial canonical JSON here
    --out-sharded P   write the sharded canonical JSON here
"""

import argparse
import json
import sys
import time

from repro.drivers import DRIVERS, build_driver, device_class
from repro.pipeline.artifact import build_artifact, canonical_json
from repro.revnic import RevNic, RevNicConfig
from repro.synth import synthesize


def run_once(name, script, split_depth, workers):
    image = build_driver(name)
    config = RevNicConfig(driver_name=name, pci=device_class(name).PCI,
                          script=script, explore_split_depth=split_depth)
    engine = RevNic(image, config, explore_workers=workers)
    started = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - started
    text = canonical_json(build_artifact(config, result,
                                         synthesize(result)))
    return text, result.stats, elapsed


def first_divergence(serial_text, sharded_text):
    """Walk both canonical trees to the first differing path."""
    def walk(a, b, path):
        if type(a) is not type(b):
            return path or "/", a, b
        if isinstance(a, dict):
            for key in sorted(set(a) | set(b)):
                if key not in a or key not in b:
                    return "%s/%s" % (path, key), a.get(key), b.get(key)
                found = walk(a[key], b[key], "%s/%s" % (path, key))
                if found:
                    return found
            return None
        if isinstance(a, list):
            if len(a) != len(b):
                return path or "/", "len=%d" % len(a), "len=%d" % len(b)
            for index, (left, right) in enumerate(zip(a, b)):
                found = walk(left, right, "%s[%d]" % (path, index))
                if found:
                    return found
            return None
        if a != b:
            return path or "/", a, b
        return None

    return walk(json.loads(serial_text), json.loads(sharded_text), "")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="serial-vs-sharded exploration byte diff")
    parser.add_argument("--driver", default="rtl8139",
                        choices=sorted(DRIVERS))
    parser.add_argument("--script", default="quick")
    parser.add_argument("--split-depth", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--out-serial")
    parser.add_argument("--out-sharded")
    args = parser.parse_args(argv)

    serial_text, _, serial_seconds = run_once(
        args.driver, args.script, args.split_depth, workers=0)
    sharded_text, stats, sharded_seconds = run_once(
        args.driver, args.script, args.split_depth, workers=args.workers)
    for path, text in ((args.out_serial, serial_text),
                       (args.out_sharded, sharded_text)):
        if path:
            with open(path, "w") as handle:
                handle.write(text)

    front = stats.get("frontier", {})
    print("driver=%s script=%s split_depth=%d" %
          (args.driver, args.script, args.split_depth))
    print("serial   %.3fs" % serial_seconds)
    print("sharded  %.3fs  workers=%s subtrees=%s per-worker=%s "
          "steals=%s fallbacks=%s" %
          (sharded_seconds, front.get("workers"), front.get("subtrees"),
           front.get("states_per_worker"), front.get("steals"),
           front.get("fallbacks")))
    if sharded_text == serial_text:
        print("artifacts byte-identical (%d bytes)" % len(serial_text))
        return 0
    divergence = first_divergence(serial_text, sharded_text)
    print("BYTE DIVERGENCE at %s:\n  serial : %r\n  sharded: %r"
          % divergence, file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
