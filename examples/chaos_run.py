#!/usr/bin/env python
"""Run a seeded chaos campaign and report how the pipeline survived.

Each schedule derives a deterministic fault plan from its seed -- worker
kills/hangs/garbage, store corruption (truncation, bit flips, orphaned
temp files, crashed publishes), induced run-layer failures -- and runs
the driver pipeline under it.  The campaign asserts the robustness
invariant: every schedule must end **byte-identical** to the fault-free
baseline or **fail loudly** with a classified, replayable fault record.
A silent wrong answer exits non-zero with the offending plan's JSON, so
the exact schedule can be replayed from the report alone.

Usage:
    PYTHONPATH=src python examples/chaos_run.py [options]

Options:
    --base-seed N     first schedule seed               (default 0xFA0175)
    --schedules N     number of fault schedules         (default 3)
    --drivers a,b     driver subset                     (default: all)
    --script NAME     exercise script                   (default: quick)
    --job-timeout S   per-job supervision budget        (default 20.0)
    --fuzz-seed N     also check the fuzz-composition invariant with
                      this fault-plan seed              (default: off)
    --out PATH        write the full campaign JSON here

Exit status is 1 when the invariant breaks -- CI runs this with fixed
seeds and uploads the report as an artifact on failure.
"""

import argparse
import json
import sys

from repro.faults.campaign import ChaosCampaign, ChaosInvariantError


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="seeded chaos campaign against the pipeline")
    parser.add_argument("--base-seed", type=int, default=0xFA0175)
    parser.add_argument("--schedules", type=int, default=3)
    parser.add_argument("--drivers", default="")
    parser.add_argument("--script", default="quick")
    parser.add_argument("--job-timeout", type=float, default=20.0)
    parser.add_argument("--fuzz-seed", type=int, default=None)
    parser.add_argument("--out", default="")
    args = parser.parse_args(argv)

    drivers = tuple(args.drivers.split(",")) if args.drivers else None
    campaign = ChaosCampaign(drivers=drivers, script=args.script,
                             job_timeout=args.job_timeout)
    status = 0
    payload = {}
    try:
        report = campaign.run(base_seed=args.base_seed,
                              schedules=args.schedules)
        payload = report.to_dict()
        summary = report.summary()
        print("chaos campaign: %(schedules)d schedules -- "
              "%(identical)d byte-identical, %(faulted)d loud classified "
              "failures" % summary)
        print("absorbed: %(retries)d retries, %(timeouts)d timeouts, "
              "%(quarantined)d quarantined entries, %(recovered_tmp)d "
              "recovered temp files" % summary)
        print("baseline %(baseline_seconds).1fs, campaign "
              "%(wall_seconds).1fs" % summary)
        for outcome in report.outcomes:
            line = "  seed %d: %s" % (outcome.seed, outcome.verdict)
            if outcome.verdict == "faulted":
                line += " (%s)" % outcome.error
            print(line)
        if args.fuzz_seed is not None:
            fuzz = campaign.fuzz_invariant(args.fuzz_seed)
            payload["fuzz_invariant"] = fuzz
            resilience = fuzz["resilience"]
            print("fuzz composition: byte-identical under plan seed %d "
                  "(absorbed %d crashes, %d garbage results, %d "
                  "timeouts via %d retries)"
                  % (args.fuzz_seed,
                     resilience.get("worker_crashes", 0),
                     resilience.get("garbage_results", 0),
                     resilience.get("timeouts", 0),
                     resilience.get("retries", 0)))
        print("\ninvariant holds: loud-or-identical on every schedule")
    except ChaosInvariantError as exc:
        print("\nINVARIANT VIOLATION: %s" % exc, file=sys.stderr)
        payload = {"violation": str(exc)}
        status = 1
    finally:
        campaign.cleanup()

    if args.out and payload:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("campaign report written to %s" % args.out)
    return status


if __name__ == "__main__":
    sys.exit(main())
