#!/usr/bin/env python
"""Run a fleet-scale fabric soak and report it.

N synthesized-driver endpoints (driver x target-OS x backend mix drawn
from the validation matrix) share one learning Ethernet switch and
exchange a seeded, replayable traffic workload under the batched
event-driven scheduler.  The run emits the canonical fabric report --
same seed + topology means byte-identical report bytes, so the printed
digest is a replay check.

Usage:
    PYTHONPATH=src python examples/fabric_soak.py [options]

Options:
    --endpoints N     fleet size                     (default 16)
    --seed N          workload seed                  (default 0xFAB1C)
    --workload NAME   all_pairs | broadcast_storm | incast | churn |
                      saturation                     (default saturation)
    --backend NAME    execution backend for every endpoint
                      (default compiled)
    --mode NAME       batched | lockstep             (default batched)
    --queue-depth N   per-port egress queue depth    (default 64)
    --out PATH        write the full fabric report JSON here

Exit status is 1 when the fabric switched zero frames -- a vacuous soak
is a failure, and CI byte-diffs two cold runs of this script's canonical
report to gate fleet determinism.
"""

import argparse
import hashlib
import sys

from repro.fuzz import run_fabric_soak
from repro.net.fabric import canonical_fabric_json, fabric_to_json
from repro.pipeline import PipelineOrchestrator


def main(argv=None):
    parser = argparse.ArgumentParser(description="fleet-scale fabric soak")
    parser.add_argument("--endpoints", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0xFAB1C)
    parser.add_argument("--workload", default="saturation")
    parser.add_argument("--backend", default="compiled")
    parser.add_argument("--mode", default=None)
    parser.add_argument("--queue-depth", type=int, default=None)
    parser.add_argument("--out", default="")
    args = parser.parse_args(argv)

    report = run_fabric_soak(orchestrator=PipelineOrchestrator(),
                             endpoints=args.endpoints, seed=args.seed,
                             workload=args.workload,
                             backends=(args.backend,), mode=args.mode,
                             queue_depth=args.queue_depth)

    switch = report["switch"]
    totals = report["totals"]
    print("fabric soak: %d endpoints, workload %s, seed %#x (%s mode)"
          % (args.endpoints, args.workload, args.seed, report["mode"]))
    print("switch: %d frames switched, %d flooded, %d unknown floods, "
          "%d filtered, %d queue drops, %d aged out"
          % (switch["frames_switched"], switch["flooded"],
             switch["unknown_floods"], switch["filtered"],
             switch["queue_drops"], switch["aged_out"]))
    print("fleet: %d steps, %d tx, %d rx frames, %d irqs, "
          "%d step errors over %d ticks"
          % (totals["steps"], totals["tx_frames"], totals["rx_frames"],
             totals["irq_count"], totals["step_errors"], report["ticks"]))
    print("throughput: %.1f packets/sec (%.3fs run loop)"
          % (report["packets_per_second"], report["wall_seconds"]))
    canonical = canonical_fabric_json(report)
    print("canonical report digest: %s"
          % hashlib.sha256(canonical.encode()).hexdigest()[:16])

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(fabric_to_json(report))
            handle.write("\n")
        print("fabric report written to %s" % args.out)

    if switch["frames_switched"] == 0:
        print("\nVACUOUS SOAK: the fabric switched zero frames")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
