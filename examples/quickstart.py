#!/usr/bin/env python
"""Quickstart: reverse engineer a binary NIC driver end to end.

Loads the closed-source rtl8029 binary, runs RevNIC's selective symbolic
execution against symbolic hardware (no device model involved), synthesizes
a new driver, and runs the synthesized driver on a different OS against the
real device model -- the full pipeline of the paper in one script.
"""

from repro.drivers import build_driver, device_class
from repro.net import EthernetFrame, EtherType
from repro.revnic import RevNic, RevNicConfig
from repro.synth import synthesize
from repro.targetos import LinSim
from repro.templates import NicTemplate

MAC = b"\x52\x54\x00\xAA\xBB\xCC"


def main():
    # 1. The input: an opaque binary image (think rtl8029.sys) and the PCI
    #    identity from the device manager.  No source, no device.
    image = build_driver("rtl8029")
    pci = device_class("rtl8029").PCI
    print("input binary: %d bytes, %d imports, entry 0x%x"
          % (image.file_size, len(image.imports), image.entry))

    # 2. Reverse engineer: exercise every entry point symbolically.
    engine = RevNic(image, RevNicConfig(driver_name="rtl8029", pci=pci))
    result = engine.run()
    print("explored %d blocks, %.1f%% basic-block coverage, %d entry points"
          % (result.stats["blocks_executed"],
             100 * result.coverage_fraction, len(result.entry_points)))

    # 3. Synthesize: traces -> CFG -> C code + executable module.  The
    #    result is self-contained (captured code window + import names),
    #    so synthesis needs nothing from the live engine.
    driver = synthesize(result)
    print(driver.report.describe())
    print("\n--- first lines of generated C ---")
    print("\n".join(driver.c_source.splitlines()[:20]))

    # 4. Port: drop the synthesized functions into the Linux template and
    #    run them against the real NE2000 device model.
    target = LinSim(device_class("rtl8029"), mac=MAC)
    template = NicTemplate(driver, target, original_image=image)
    template.initialize()
    frame = EthernetFrame(dst=b"\xff" * 6, src=MAC,
                          ethertype=EtherType.IPV4,
                          payload=b"hello from the synthesized driver"
                          + b"\0" * 13).to_bytes()
    template.send(frame)
    print("\nsynthesized driver on LinSim sent %d frame(s); MAC = %s"
          % (len(target.medium.transmitted),
             template.query_mac().hex(":")))


if __name__ == "__main__":
    main()
