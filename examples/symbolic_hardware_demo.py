#!/usr/bin/env python
"""Demonstrate *symbolic hardware*: reverse engineering without any device.

The paper's section 3.4 point: since every hardware read returns a symbolic
value, "the actual device is never needed", and the interrupt handler's
branches are all explored without crafting workloads.  This script runs only
the ISR entry point of the rtl8029 binary and shows how many distinct paths
(interrupt causes) symbolic hardware uncovers, and which OS APIs each path
ends up calling.
"""

from repro.drivers import build_driver, device_class
from repro.revnic import RevNic, RevNicConfig
from repro.revnic.exerciser import Phase
from repro.revnic.trace import ImportRecord


def main():
    image = build_driver("rtl8029")
    script = [
        Phase("driver_entry"),
        Phase("initialize"),
        Phase("isr"),
    ]
    # Keep the full access log for the demo printout (the default policy
    # only keeps bounded counters).
    from repro.symex.executor import HardwarePolicy

    engine = RevNic(image, RevNicConfig(driver_name="rtl8029",
                                        pci=device_class("rtl8029").PCI),
                    script=script,
                    hardware=HardwarePolicy(retain_log=True))
    result = engine.run()

    isr_segments = [s for s in result.trace.segments
                    if s.entry_name == "isr"]
    paths = [p for s in isr_segments for p in s.paths]
    print("ISR exploration: %d paths from a single invocation" % len(paths))
    for path in paths:
        api_calls = [r.name for r in path.records
                     if isinstance(r, ImportRecord)]
        blocks = sum(1 for r in path.records
                     if not isinstance(r, ImportRecord))
        print("  path %3d: %2d blocks, status=%-9s OS calls: %s"
              % (path.path_id, blocks, path.status,
                 ", ".join(api_calls) or "(none)"))
    print("\nhardware reads answered symbolically: %d"
          % len(engine.hardware.reads))
    print("no device model was attached at any point.")


if __name__ == "__main__":
    main()
