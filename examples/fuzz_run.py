#!/usr/bin/env python
"""Run a bounded differential fuzz campaign and report it.

Seeded scenario programs (bursts, runts, oversize/bad-FCS frames, link
flaps, OID queries, resets, interleaved bidirectional traffic) run
through the DriverUnderTest facade on both the original binary and every
synthesized target-OS driver, loop-until-dry.  Any non-matching run
carries its serialized program, so a single JSON file reproduces it.

Usage:
    PYTHONPATH=src python examples/fuzz_run.py [options]

Options:
    --base-seed N           first program seed        (default 0xC0FFEE)
    --programs-per-round N  programs per fuzz round   (default 3)
    --max-rounds N          round budget              (default 5)
    --dry-rounds N          dry rounds before stop    (default 2)
    --drivers a,b           driver subset             (default: all)
    --os-names a,b          target OS subset          (default: all)
    --out PATH              write the full campaign JSON here
    --divergences PATH      write unexplained runs (with their replayable
                            programs) here; only written when non-empty

Exit status is 1 when any unexplained divergence survives -- CI runs
this with fixed seeds and uploads the divergence file as an artifact.
"""

import argparse
import json
import sys

from repro.fuzz import FuzzConfig, FuzzEngine, fuzz_to_json
from repro.pipeline import PipelineOrchestrator


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="bounded differential fuzz campaign")
    parser.add_argument("--base-seed", type=int, default=0xC0FFEE)
    parser.add_argument("--programs-per-round", type=int, default=3)
    parser.add_argument("--max-rounds", type=int, default=5)
    parser.add_argument("--dry-rounds", type=int, default=2)
    parser.add_argument("--drivers", default="")
    parser.add_argument("--os-names", default="")
    parser.add_argument("--out", default="")
    parser.add_argument("--divergences", default="")
    args = parser.parse_args(argv)

    kwargs = dict(base_seed=args.base_seed,
                  programs_per_round=args.programs_per_round,
                  max_rounds=args.max_rounds, dry_rounds=args.dry_rounds)
    if args.drivers:
        kwargs["drivers"] = tuple(args.drivers.split(","))
    if args.os_names:
        kwargs["os_names"] = tuple(args.os_names.split(","))

    engine = FuzzEngine(orchestrator=PipelineOrchestrator(),
                        config=FuzzConfig(**kwargs))
    result = engine.run()

    summary = result.summary()
    print("fuzz campaign: %(programs)d programs, %(runs)d runs, "
          "%(steps)d steps, %(rounds)d rounds (stopped: %(stopped)s)"
          % summary)
    print("verdicts: %(matched)d matched, %(unsupported)d unsupported, "
          "%(divergent)d divergent, %(skipped)d skipped" % summary)
    print("coverage: %(coverage)d features, %(wall_seconds).1fs "
          "(%(mode)s)" % summary)

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(fuzz_to_json(result))
        print("campaign written to %s" % args.out)

    unexplained = result.unexplained()
    if unexplained:
        print("\n%d UNEXPLAINED divergence(s):" % len(unexplained))
        for run in unexplained:
            print("  %s on %s: %s (program %s, seed %d)"
                  % (run.driver, run.target_os, run.verdict,
                     run.program_name, run.seed))
        if args.divergences:
            payload = [run.to_dict() for run in unexplained]
            with open(args.divergences, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print("replayable divergence report written to %s"
                  % args.divergences)
        return 1
    print("\nno unexplained divergences")
    return 0


if __name__ == "__main__":
    sys.exit(main())
