#!/usr/bin/env python
"""Time one synthesized driver entry point on both execution backends.

Loads the rtl8029 artifact from the pipeline cache (reverse engineering
runs once, then comes from disk), pastes the synthesized driver into the
winsim template twice -- once over the tree-walking IR interpreter, once
over the compiled block tier (``repro.ir.compile``) -- and drives the
same send workload through both.  Behaviour and perf counters are
identical by construction; only the wall-clock differs, which is the
whole point of the compiled tier.

Usage:
    PYTHONPATH=src python examples/compiled_exec.py [packets]
"""

import sys
import time

from repro.drivers import device_class
from repro.eval.runner import get_cache
from repro.ir import exec_counters
from repro.net import UdpWorkload
from repro.targetos import TARGET_OSES
from repro.templates import DmaNicTemplate

MAC = b"\x52\x54\x00\xAA\xBB\xCC"
PEER = b"\x02\x00\x00\x00\x00\x01"


def drive(artifact, backend, packets):
    """Boot the synthesized driver and push ``packets`` frames through
    its send entry point; returns (seconds, observable summary)."""
    target = TARGET_OSES["winsim"](device_class(artifact.name), mac=MAC)
    template = DmaNicTemplate(artifact.synthesized, target,
                              original_image=artifact.image,
                              exec_backend=backend)
    started = time.perf_counter()
    template.initialize()
    workload = UdpWorkload(MAC, PEER, 256)
    for _ in range(packets):
        template.send(workload.next_frame().to_bytes())
    elapsed = time.perf_counter() - started
    env = template.runtime.env
    summary = {
        "frames on wire": len(target.medium.transmitted),
        "guest instructions": env.instrs_retired,
        "IR ops": env.ops_retired,
        "device accesses": env.io_ops,
    }
    return elapsed, summary


def main():
    packets = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    artifact = get_cache().run("rtl8029")
    print("driver: %s (coverage %.1f%%), %d packets through winsim"
          % (artifact.name, 100 * artifact.coverage_fraction, packets))

    results = {}
    for backend in ("interp", "compiled"):
        seconds, summary = drive(artifact, backend, packets)
        results[backend] = (seconds, summary)
        print("\n%-8s  %.3fs" % (backend, seconds))
        for key, value in summary.items():
            print("  %-20s %s" % (key, value))

    interp_summary, compiled_summary = (results[n][1]
                                        for n in ("interp", "compiled"))
    assert interp_summary == compiled_summary, "backends diverged!"
    counters = exec_counters()
    print("\nidentical behaviour and counters; compiled tier %.1fx faster"
          % (results["interp"][0] / results["compiled"][0]))
    print("(%d blocks compiled this process, %d compiled-block executions)"
          % (counters["blocks_compiled"], counters["block_runs"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
