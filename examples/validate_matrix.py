#!/usr/bin/env python
"""Run the cross-OS differential validation matrix and print it.

Every synthesized driver runs on every target OS under the full workload
catalog (UDP streams, bidirectional bursts, runts, oversize frames, bad
FCS, RX-ring overflow, filter mixes, link flaps, control plane) and is
compared observation-for-observation against the original binary on the
source OS.  Artifacts come from the on-disk pipeline cache; a second
invocation skips reverse engineering entirely.

Usage:
    PYTHONPATH=src python examples/validate_matrix.py [--quick]

``--quick`` uses the reduced exercise script's artifacts: scenarios that
need entry points the quick script never explores are skipped, which is
the gating behavior docs/validation.md describes.
"""

import sys

from repro.eval.tables import validation_matrix_render
from repro.pipeline import PipelineOrchestrator
from repro.validate import ValidationMatrix


def main():
    script = "quick" if "--quick" in sys.argv[1:] else "default"
    orchestrator = PipelineOrchestrator()
    matrix = ValidationMatrix(orchestrator=orchestrator, script=script)
    result = matrix.run()
    print(validation_matrix_render(result))
    unexplained = result.unexplained()
    if unexplained:
        print("\n%d UNEXPLAINED divergence(s)" % len(unexplained))
        return 1
    print("\nno unexplained divergences")
    return 0


if __name__ == "__main__":
    sys.exit(main())
