#!/usr/bin/env python
"""Run one driver cold with superblocks off and on, diff all the bytes.

The superblock-tier contract (``repro.ir.superblock``): fusing hot block
chains changes wall time only.  This script builds, twice -- once with
``REVNIC_SUPERBLOCKS=off``, once ``on`` -- a canonical JSON document
covering every consumer of the execution tiers:

* the **pipeline artifact** -- a cold reverse-engineering run's
  :class:`RunArtifact` canonical JSON (the symex concrete fast path
  rides the persistent code cache; superblocks never fuse pipeline
  blocks, so this must be bit-for-bit stable);
* the **matrix column** -- the original binary's observations over the
  whole workload catalog on the compiled DBT tier, where hot chains
  actually dispatch;
* the **synthesized run** -- the recovered driver in the winsim
  template, the static-flavour consumer.

Any divergence prints the first differing canonical path and exits 1;
a run where the on-side never dispatched a chain is vacuous and also
fails.  CI runs this with a fixed configuration and uploads both
documents on mismatch, same shape as the sharded-exploration diff job.

Usage:
    PYTHONPATH=src python examples/superblocks_diff.py [options]

Options:
    --driver NAME   driver to run                    (default rtl8139)
    --script NAME   exercise script                  (default quick)
    --out-off P     write the superblocks-off canonical JSON here
    --out-on P      write the superblocks-on canonical JSON here
"""

import argparse
import json
import os
import sys
import time

from repro.drivers import DRIVERS, build_driver, device_class
from repro.ir.superblock import SUPERBLOCKS_ENV, superblock_counters
from repro.net import UdpWorkload
from repro.pipeline.artifact import build_artifact, canonical_json
from repro.revnic import RevNic, RevNicConfig
from repro.synth import synthesize
from repro.targetos import TARGET_OSES
from repro.templates import DmaNicTemplate
from repro.validate.observe import OriginalDut
from repro.validate.scenarios import SCENARIOS, run_scenario

MAC = b"\x52\x54\x00\xAA\xBB\xCC"
PEER = b"\x02\x00\x00\x00\x00\x01"


def run_matrix_column(name):
    """The original binary through the workload catalog (compiled tier,
    superblocks following the environment default)."""
    observations = []
    for scenario in SCENARIOS:
        dut = OriginalDut(name, exec_backend="compiled")
        observations.append(run_scenario(dut, scenario).to_dict())
    return observations


def run_synthesized(artifact, packets=20):
    """The synthesized driver in the winsim template (static flavour)."""
    target = TARGET_OSES["winsim"](device_class(artifact.name), mac=MAC)
    template = DmaNicTemplate(artifact.synthesized, target,
                              original_image=artifact.image,
                              exec_backend="compiled")
    template.initialize()
    tx = UdpWorkload(MAC, PEER, 256)
    statuses = [template.send(tx.next_frame().to_bytes())
                for _ in range(packets)]
    rx = UdpWorkload(PEER, MAC, 128)
    delivered = []
    for _ in range(4):
        delivered.extend(template.inject_rx(rx.next_frame().to_bytes()))
    env = template.runtime.env
    return {
        "statuses": statuses,
        "wire": [f.hex() for f in target.medium.transmitted],
        "delivered": [f.hex() for f in delivered],
        "instrs_retired": env.instrs_retired,
        "ops_retired": env.ops_retired,
        "io_ops": env.io_ops,
        "irq_count": target.irq_count,
    }


def run_once(name, script, superblocks):
    os.environ[SUPERBLOCKS_ENV] = "on" if superblocks else "off"
    image = build_driver(name)
    config = RevNicConfig(driver_name=name, pci=device_class(name).PCI,
                          script=script)
    engine = RevNic(image, config)
    started = time.perf_counter()
    result = engine.run()
    artifact = build_artifact(config, result, synthesize(result))
    document = {
        "artifact": json.loads(canonical_json(artifact)),
        "matrix_column": run_matrix_column(name),
        "synthesized_run": run_synthesized(artifact),
    }
    elapsed = time.perf_counter() - started
    return json.dumps(document, indent=1, sort_keys=True), elapsed


def first_divergence(off_text, on_text):
    """Walk both canonical trees to the first differing path."""
    def walk(a, b, path):
        if type(a) is not type(b):
            return path or "/", a, b
        if isinstance(a, dict):
            for key in sorted(set(a) | set(b)):
                if key not in a or key not in b:
                    return "%s/%s" % (path, key), a.get(key), b.get(key)
                found = walk(a[key], b[key], "%s/%s" % (path, key))
                if found:
                    return found
            return None
        if isinstance(a, list):
            if len(a) != len(b):
                return path or "/", "len=%d" % len(a), "len=%d" % len(b)
            for index, (left, right) in enumerate(zip(a, b)):
                found = walk(left, right, "%s[%d]" % (path, index))
                if found:
                    return found
            return None
        if a != b:
            return path or "/", a, b
        return None

    return walk(json.loads(off_text), json.loads(on_text), "")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="superblocks-off vs -on cold artifact byte diff")
    parser.add_argument("--driver", default="rtl8139",
                        choices=sorted(DRIVERS))
    parser.add_argument("--script", default="quick")
    parser.add_argument("--out-off")
    parser.add_argument("--out-on")
    args = parser.parse_args(argv)

    off_text, off_seconds = run_once(args.driver, args.script, False)
    before = superblock_counters()
    on_text, on_seconds = run_once(args.driver, args.script, True)
    after = superblock_counters()
    for path, text in ((args.out_off, off_text), (args.out_on, on_text)):
        if path:
            with open(path, "w") as handle:
                handle.write(text)

    chain_runs = after["superblock_runs"] - before["superblock_runs"]
    print("driver=%s script=%s" % (args.driver, args.script))
    print("superblocks off  %.3fs" % off_seconds)
    print("superblocks on   %.3fs  chains formed=%d runs=%d blocks=%d "
          "deopts=%d" %
          (on_seconds,
           after["superblocks_formed"] - before["superblocks_formed"],
           chain_runs,
           after["superblock_blocks"] - before["superblock_blocks"],
           after["superblock_deopts"] - before["superblock_deopts"]))
    if chain_runs == 0:
        print("VACUOUS: the on-side run never dispatched a superblock",
              file=sys.stderr)
        return 1
    if on_text == off_text:
        print("documents byte-identical (%d bytes)" % len(off_text))
        return 0
    divergence = first_divergence(off_text, on_text)
    print("BYTE DIVERGENCE at %s:\n  off: %r\n  on : %r"
          % divergence, file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
