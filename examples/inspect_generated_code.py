#!/usr/bin/env python
"""Inspect RevNIC's developer-facing artifacts for one driver.

Shows what the paper's developer works with when instantiating a template:
the generated C (goto control flow, preserved pointer arithmetic), the
per-function automation classification (Figure 9's input), and the flagged
unexplored branches.
"""

import sys


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "rtl8139"
    # The orchestrator serves the run from the on-disk artifact cache
    # when one is warm, so re-inspection is instant.
    from repro.pipeline import get_orchestrator

    artifact = get_orchestrator().run(name)
    driver = artifact.synthesized

    print(driver.report.describe())

    print("\n=== runtime header the generated C compiles against ===")
    print(driver.runtime_header)

    send_fn = driver.function_for_role("send")
    if send_fn is not None:
        print("=== generated C for the send entry point ===")
        print(driver.c_per_function[send_fn.entry])

    flagged = [(f.name, sorted(hex(t) for t in f.unexplored_targets))
               for f in driver.functions.values() if f.unexplored_targets]
    print("=== branches flagged for the developer (never explored) ===")
    for fname, targets in flagged:
        print("  %-24s %s" % (fname, ", ".join(targets)))
    print("\n(%d blocks auto-filled by the DBT fallback)"
          % driver.report.dbt_filled_blocks)


if __name__ == "__main__":
    main()
