"""The synthesized driver: an executable module of recovered functions.

The paper pastes generated C into per-OS templates and compiles.  Here the
equivalent executable artifact is an IR module: the recovered basic blocks,
runnable against any target machine through an
:class:`~repro.ir.backend.ExecutionBackend` (generated-source compiled
blocks by default, the :mod:`repro.ir.interp` tree-walker on request).  The
target-OS simulators (:mod:`repro.targetos`) provide the template
boilerplate around it and an ``os_interface`` that answers the driver's OS
API calls -- the "pasting into the template" step.

:func:`synthesize` needs no live engine: it consumes a
:class:`~repro.revnic.engine.RevNicResult` (or a deserialized
:class:`~repro.pipeline.artifact.RunArtifact`'s view of one) carrying the
trace, the import-slot names and a captured
:class:`~repro.dbt.translator.CodeWindow` of driver text, which also
powers the DBT fallback that fills flagged unexplored blocks.  Because
the module is otherwise built *only* from the wiretap trace of the
original binary, running it is a genuine end-to-end test of the
reverse-engineering pipeline: any block RevNIC failed to capture raises
:class:`MissingBlockError` when reached (the paper's "missing basic
blocks" developer warning).
"""

from dataclasses import dataclass, field

from repro.errors import SynthesisError
from repro.ir.backend import get_backend
from repro.isa.registers import REG_SP
from repro.layout import RETURN_TO_OS, import_index
from repro.revnic.trace import Trace
from repro.synth.cfg import CfgBuilder
from repro.synth.cgen import RUNTIME_HEADER, generate_c
from repro.synth.defuse import analyze_signatures
from repro.synth.report import build_report


#: Instruction budget handed to superblocks by the synthesized runtime:
#: its budget unit is *blocks*, so the instruction guard never binds.
_NO_INSTR_BUDGET = 1 << 62

#: Absent-key sentinel for the superblock dispatch fast path (``None``
#: in that dict means a declined head, so it cannot double as "miss").
_SB_MISS = object()


class MissingBlockError(SynthesisError):
    """The synthesized driver reached code RevNIC never captured."""

    def __init__(self, address):
        self.address = address
        super().__init__("reached unsynthesized block 0x%08x" % address)


@dataclass
class SynthesizedDriver:
    """The complete synthesis output for one driver."""

    name: str
    functions: dict                 # entry pc -> RecoveredFunction
    entry_points: dict              # role name -> entry pc
    c_source: str
    c_per_function: dict
    report: object
    import_names: dict              # slot -> OS API name
    #: every recovered basic block: pc -> TranslationBlock
    block_map: dict = field(default_factory=dict)

    runtime_header = RUNTIME_HEADER

    def has_block(self, address):
        return address in self.block_map

    def function_for_role(self, role):
        entry = self.entry_points.get(role)
        return self.functions.get(entry) if entry is not None else None

    # ------------------------------------------------------------------

    def run_entry(self, role, env, args, os_interface, max_blocks=200_000,
                  backend=None, superblocks=None):
        """Execute entry point ``role`` with stack ``args`` in ``env``.

        ``env`` is an :class:`~repro.ir.interp.IrEnv` over the *target*
        machine; ``os_interface.call(name, arg_reader) -> (retval, nargs)``
        answers OS API calls (the template's adaptation layer).
        ``backend`` selects the execution tier (compiled blocks by
        default; ``"interp"`` tree-walks); ``superblocks`` gates the
        superblock tier on the compiled backend (``None`` follows the
        ``REVNIC_SUPERBLOCKS`` environment default).  Returns r0.
        """
        entry = self.entry_points.get(role)
        if entry is None:
            raise SynthesisError("no synthesized entry point %r" % role)
        return self.run_function(entry, env, args, os_interface, max_blocks,
                                 backend=backend, superblocks=superblocks)

    def _superblock_manager(self, superblocks):
        """The lazily built static-flavour superblock manager (shared by
        every run over this driver's immutable block map), or ``None``
        when the tier is off."""
        from repro.ir.superblock import (SuperblockConfig,
                                         SuperblockManager,
                                         superblocks_enabled)

        if superblocks is None:
            if not superblocks_enabled():
                return None
            config = None
        elif superblocks is False:
            return None
        elif superblocks is True:
            config = None
        elif isinstance(superblocks, SuperblockConfig):
            config = superblocks
        else:
            return None
        manager = getattr(self, "_sb_manager", None)
        if manager is None:
            manager = SuperblockManager(self.block_map.get, "static",
                                        config=config)
            self._sb_manager = manager
        return manager

    def run_function(self, entry, env, args, os_interface,
                     max_blocks=200_000, backend=None, superblocks=None):
        """Call a recovered function at ``entry`` (stdcall protocol)."""
        backend = get_backend(backend)
        run = backend.run
        manager = self._superblock_manager(superblocks) \
            if backend.name == "compiled" else None
        sp = env.regs[REG_SP]
        for value in reversed(args):
            sp -= 4
            env.mem_write(sp, 4, value)
        sp -= 4
        env.mem_write(sp, 4, RETURN_TO_OS)
        env.regs[REG_SP] = sp
        # Steady-state fast path: the manager's static-flavour dispatch
        # dict resolves hot heads (and declined ones) with one dict
        # probe; only cold pcs pay the profiling lookup() call.
        dispatch = manager.dispatch if manager is not None else None
        pc = entry
        blocks_run = 0
        while blocks_run < max_blocks:
            if dispatch is None:
                sb = None
            else:
                sb = dispatch.get(pc, _SB_MISS)
                if sb is _SB_MISS:
                    sb = manager.lookup(pc)
            if sb is not None:
                # Fused hot chain: exits at exactly the block boundary
                # (and block count) the per-block loop would reach, so
                # the block budget below stays an exact contract.
                result, members, _instrs = sb.fn(
                    env, _NO_INSTR_BUDGET, max_blocks - blocks_run)
                blocks_run += members
            else:
                block = self.block_map.get(pc)
                if block is None:
                    raise MissingBlockError(pc)
                result = run(block, env)
                blocks_run += 1
            if result.kind == "halt":
                raise SynthesisError("synthesized driver executed HALT")
            if result.kind == "call":
                slot = import_index(result.target)
                if slot is not None:
                    pc = self._os_call(slot, env, os_interface)
                    if pc == RETURN_TO_OS:
                        break
                    continue
                pc = result.target
                continue
            if result.kind == "ret":
                if result.target == RETURN_TO_OS:
                    break
                pc = result.target
                continue
            pc = result.target
        else:
            raise SynthesisError("synthesized driver exceeded block budget")
        return env.regs[0]

    def _os_call(self, slot, env, os_interface):
        name = self.import_names.get(slot)
        if name is None:
            raise SynthesisError("call to unknown import slot %d" % slot)
        sp = env.regs[REG_SP]

        def arg_reader(index):
            return env.mem_read(sp + 4 + 4 * index, 4)

        retval, nargs = os_interface.call(name, arg_reader)
        env.regs[0] = retval & 0xFFFFFFFF
        return_addr = env.mem_read(sp, 4)
        env.regs[REG_SP] = sp + 4 + 4 * nargs
        return return_addr


def synthesize(result_or_trace, driver_name=None, import_names=None,
               translator=None, code=None):
    """Run the full synthesis pipeline on a RevNIC result (or raw Trace).

    When a code source is available, flagged unexplored branch targets are
    filled by forcing translation at those addresses -- the paper's
    fallback for missing basic blocks ("the developer can request QEMU's
    DBT to generate the missing translation blocks by forcing the program
    counter to take the address of the unexplored block", section 4.1).
    The blocks remain flagged in the report; only the executable module is
    completed.

    The preferred code source is ``code``, a captured
    :class:`~repro.dbt.translator.CodeWindow` -- a :class:`RevNicResult`
    carries one, so synthesis needs no live engine and works on
    deserialized run artifacts.  ``import_names`` likewise defaults to the
    ones recorded on the result.  Passing a live engine ``translator``
    still works for ad-hoc use.

    Returns a :class:`SynthesizedDriver`.
    """
    is_result = hasattr(result_or_trace, "trace")
    trace = result_or_trace.trace if is_result else result_or_trace
    if not isinstance(trace, Trace):
        raise SynthesisError("synthesize() needs a Trace or RevNicResult")
    name = driver_name or trace.driver_name
    if is_result:
        if code is None:
            code = getattr(result_or_trace, "code", None)
        if import_names is None:
            import_names = getattr(result_or_trace, "import_names", None)
    if translator is None and code is not None:
        translator = code.translator()

    builder = CfgBuilder(trace)
    functions = builder.build()
    analyze_signatures(functions, builder)

    block_map = {}
    for function in functions.values():
        for pc, block in function.blocks.items():
            existing = block_map.get(pc)
            if existing is None or len(block.instr_addrs) > \
                    len(existing.instr_addrs):
                block_map[pc] = block

    entry_points = {}
    for role, address in trace.entry_points.items():
        if address in functions:
            entry_points[role] = address

    filled = 0
    if translator is not None:
        filled = _fill_unexplored(block_map, functions, trace, translator)

    import_names = dict(import_names or {})
    c_source, per_function = generate_c(functions, name, import_names)
    report = build_report(name, trace, functions)
    report.dbt_filled_blocks = filled

    return SynthesizedDriver(
        name=name,
        functions=functions,
        entry_points=entry_points,
        c_source=c_source,
        c_per_function=per_function,
        report=report,
        import_names=import_names,
        block_map=block_map,
    )


def _fill_unexplored(block_map, functions, trace, translator,
                     max_blocks=512):
    """Translate flagged unexplored targets (and what they reach) into the
    executable block map.  Bounded breadth-first closure over driver text."""
    text_base = trace.text_base
    text_end = text_base + trace.text_size

    def in_text(address):
        return text_base <= address < text_end

    worklist = []
    for function in functions.values():
        worklist.extend(t for t in function.unexplored_targets if in_text(t))
    # Call fall-throughs whose callee never returned during exploration.
    for block in list(block_map.values()):
        term = block.terminator
        if term.__class__.__name__ == "IrCall" \
                and block.end_pc not in block_map and in_text(block.end_pc):
            worklist.append(block.end_pc)
    filled = 0
    while worklist and filled < max_blocks:
        address = worklist.pop()
        if address in block_map or not in_text(address):
            continue
        # Skip addresses interior to an already-recovered block (execution
        # never enters them at a block boundary).
        block = translator.get(address)
        block_map[address] = block
        filled += 1
        for successor in block.static_successors():
            if in_text(successor) and successor not in block_map:
                worklist.append(successor)
        # Fall-through after calls continues at end_pc.
        term = block.terminator
        if term.__class__.__name__ == "IrCall":
            if block.end_pc not in block_map and in_text(block.end_pc):
                worklist.append(block.end_pc)
    return filled
