"""CFG reconstruction from merged activity traces (paper section 4.1).

"Building is done in two steps: First, RevNIC identifies function
boundaries by looking for call-return instruction pairs.  Second, the
translation blocks between call-return pairs are chained together to
reproduce the original CFG of the function.  RevNIC splits translation
blocks into basic blocks in the process."
"""

from dataclasses import dataclass, field

from repro.revnic.trace import BlockRecord, ImportRecord


@dataclass
class RecoveredFunction:
    """One function recovered from the traces."""

    entry: int
    name: str
    #: basic blocks: start pc -> TranslationBlock (possibly split)
    blocks: dict = field(default_factory=dict)
    #: observed intra-function edges: pc -> set of successor pcs
    edges: dict = field(default_factory=dict)
    #: direct callees (guest addresses)
    callees: set = field(default_factory=set)
    #: OS API functions called (import names) -- Figure 9 classification
    imports_called: set = field(default_factory=set)
    #: statically known successors never seen in any trace ("RevNIC flags
    #: such branches to warn the developer")
    unexplored_targets: set = field(default_factory=set)
    #: filled by def-use analysis
    param_count: int = 0
    has_return: bool = False
    #: entry-point role if registered ('send', 'isr', ...) else None
    role: str = None

    @property
    def is_fully_synthesized(self):
        """Hardware-only / pure functions need no template integration;
        functions that call the OS require manual pasting (Figure 9)."""
        return not self.imports_called

    def sorted_blocks(self):
        return [self.blocks[pc] for pc in sorted(self.blocks)]


@dataclass
class _Invocation:
    """A live function activation while replaying one path."""

    function: object
    entry_sp: int       # sp at function entry (points at return address)


class CfgBuilder:
    """Merges all traced paths into per-function CFGs."""

    def __init__(self, trace):
        self.trace = trace
        self.functions = {}
        self._roles = {address: name
                       for name, address in trace.entry_points.items()}
        #: (function_entry, path_id, record list, is_reopen) per activation
        #: -- consumed by def-use analysis; re-opened activations (records
        #: after an inner call returned) start mid-function and cannot
        #: anchor the parameter-slot base.
        self.invocations = []

    # ------------------------------------------------------------------

    def build(self):
        """Replay every path, attributing blocks to functions; then split
        translation blocks whose interior is a branch target."""
        for segment in self.trace.segments:
            for path in segment.paths:
                self._replay_path(segment, path)
        self._merge_edges_from_terminators()
        self._split_blocks()
        self._flag_unexplored()
        return self.functions

    # ------------------------------------------------------------------

    def _function(self, entry):
        function = self.functions.get(entry)
        if function is None:
            role = self._roles.get(entry)
            name = role if role is not None else "fn_%08x" % entry
            function = RecoveredFunction(entry=entry, name=name, role=role)
            self.functions[entry] = function
        return function

    @staticmethod
    def _sp_of(record, reg_index=13):
        value = record.regs_after[reg_index]
        return value if isinstance(value, int) else None

    def _replay_path(self, segment, path):
        """Walk one path's records, maintaining the call stack."""
        stack = []
        records = path.records
        current_records = []

        def open_invocation(function, sp):
            stack.append(_Invocation(function, sp))
            self.invocations.append((function.entry, path.path_id, [],
                                     False))

        # The path starts inside the exercised entry point.
        root = self._function(segment.entry_address)
        open_invocation(root, None)

        previous_block = None
        for index, record in enumerate(records):
            if isinstance(record, ImportRecord):
                if stack:
                    stack[-1].function.imports_called.add(record.name)
                # r0 is redefined by the OS call; note it for def-use.
                if self.invocations:
                    self.invocations[-1][2].append(record)
                continue
            if not isinstance(record, BlockRecord):
                continue
            current = stack[-1] if stack else None
            if current is None:
                break

            function = current.function
            function.blocks.setdefault(record.pc, record.block)
            if self.invocations:
                self.invocations[-1][2].append(record)

            if previous_block is not None and \
                    previous_block[0] is function:
                function.edges.setdefault(previous_block[1], set()) \
                    .add(record.pc)

            if record.terminator == "call":
                next_record = self._next_block(records, index)
                target = record.target
                if target is None and next_record is not None:
                    target = next_record.pc
                if target is not None and \
                        self._is_driver_code(target):
                    function.callees.add(target)
                    callee = self._function(target)
                    open_invocation(callee, self._sp_of(record))
                    previous_block = None
                    continue
                # Import call (or unresolved): stay in this function.
                previous_block = None
                continue
            if record.terminator == "ret":
                stack.pop()
                previous_block = None
                # Find the caller's invocation record list to keep appending.
                if stack:
                    self._reopen_invocation(stack[-1].function,
                                            path.path_id)
                continue
            previous_block = (function, record.pc)

    def _reopen_invocation(self, function, path_id):
        """After a return, subsequent records belong to the caller again;
        start a fresh record list for it so def-use sees post-call reads."""
        self.invocations.append((function.entry, path_id, [], True))

    @staticmethod
    def _next_block(records, index):
        for record in records[index + 1:]:
            if isinstance(record, BlockRecord):
                return record
        return None

    def _is_driver_code(self, address):
        base = self.trace.text_base
        return base <= address < base + self.trace.text_size

    # ------------------------------------------------------------------

    def _merge_edges_from_terminators(self):
        """Add the statically-known successor edges of every recorded
        conditional branch (both arms are part of the CFG even if only one
        was traversed -- the untraversed one is flagged separately)."""
        for function in self.functions.values():
            for pc, block in function.blocks.items():
                for successor in block.static_successors():
                    if block.terminator.__class__.__name__ == "IrCall":
                        continue
                    if self._is_driver_code(successor):
                        function.edges.setdefault(pc, set()).add(successor)

    def _split_blocks(self):
        """Split translation blocks containing interior branch targets."""
        for function in self.functions.values():
            changed = True
            while changed:
                changed = False
                targets = set(function.blocks)
                for target_pc in list(targets):
                    for pc, block in list(function.blocks.items()):
                        if pc != target_pc and block.contains(target_pc):
                            head = block.split_at(target_pc)
                            function.blocks[pc] = head
                            function.edges.setdefault(pc, set()).clear()
                            function.edges[pc].add(target_pc)
                            changed = True
                # Also split at targets referenced by edges but interior to
                # an existing block.
                edge_targets = set()
                for successors in function.edges.values():
                    edge_targets |= successors
                for target_pc in edge_targets:
                    for pc, block in list(function.blocks.items()):
                        if pc != target_pc and block.contains(target_pc) \
                                and target_pc not in function.blocks:
                            # Target interior but never executed as a block
                            # start: synthesize the tail by re-slicing.
                            head = block.split_at(target_pc)
                            tail = _tail_of(block, target_pc)
                            function.blocks[pc] = head
                            function.blocks[target_pc] = tail
                            function.edges.setdefault(pc, set()).add(
                                target_pc)
                            changed = True

    def _flag_unexplored(self):
        """Record statically known but never executed branch targets.

        Targets interior to an executed block are flagged too: execution
        entered the containing block only from its start, so entering at
        the interior address is still an unexercised path.
        """
        for function in self.functions.values():
            executed = set(function.blocks)
            for pc, block in function.blocks.items():
                term = block.terminator
                if term.__class__.__name__ == "IrCondJump":
                    for successor in (term.target, term.fallthrough):
                        if successor not in executed \
                                and self._is_driver_code(successor):
                            function.unexplored_targets.add(successor)


def _tail_of(block, address):
    """The tail piece of ``block`` from instruction ``address`` onward."""
    index = block.instr_addrs.index(address)
    op_cut = block.instr_spans[index][0]
    from repro.ir.nodes import TranslationBlock

    return TranslationBlock(
        pc=address,
        size=block.end_pc - address,
        instr_addrs=block.instr_addrs[index:],
        ops=block.ops[op_cut:],
        instr_spans=[(a - op_cut, b - op_cut)
                     for a, b in block.instr_spans[index:]],
    )
