"""C code generation from recovered CFGs (paper section 4.1, Listing 1).

The emitted C mirrors the paper's output style: control flow is encoded
with ``goto``, the driver's state layout is preserved through raw pointer
arithmetic, hardware I/O goes through ``read_port*``/``write_port*``
helpers, and function calls are preserved.  Unexplored branch targets are
flagged with a warning comment for the developer.
"""

from repro.ir import nodes as N

_PROLOGUE = """\
/*
 * Synthesized by RevNIC-repro from the binary driver %(name)s.
 * Control flow uses goto; the original driver's state layout and pointer
 * arithmetic are preserved.  Stack-passed arguments use the emulated
 * stack helpers push32()/pop32(); r0 carries return values.
 */
#include "revnic_runtime.h"
"""

RUNTIME_HEADER = """\
/* revnic_runtime.h -- helpers assumed by RevNIC-synthesized code. */
#ifndef REVNIC_RUNTIME_H
#define REVNIC_RUNTIME_H
#include <stdint.h>

uint32_t mem_read8(uint32_t addr);
uint32_t mem_read16(uint32_t addr);
uint32_t mem_read32(uint32_t addr);
void mem_write8(uint32_t addr, uint32_t value);
void mem_write16(uint32_t addr, uint32_t value);
void mem_write32(uint32_t addr, uint32_t value);
uint32_t read_port8(uint32_t port);
uint32_t read_port16(uint32_t port);
uint32_t read_port32(uint32_t port);
void write_port8(uint32_t port, uint32_t value);
void write_port16(uint32_t port, uint32_t value);
void write_port32(uint32_t port, uint32_t value);
void push32(uint32_t value);
uint32_t pop32(void);

#endif
"""

_CMP_C = {
    N.CmpKind.EQ: ("==", False),
    N.CmpKind.NE: ("!=", False),
    N.CmpKind.ULT: ("<", False),
    N.CmpKind.UGE: (">=", False),
    N.CmpKind.SLT: ("<", True),
    N.CmpKind.SGE: (">=", True),
}

_BIN_C = {
    N.BinKind.ADD: "+", N.BinKind.SUB: "-", N.BinKind.AND: "&",
    N.BinKind.OR: "|", N.BinKind.XOR: "^", N.BinKind.SHL: "<<",
    N.BinKind.SHR: ">>", N.BinKind.MUL: "*", N.BinKind.DIVU: "/",
    N.BinKind.REMU: "%",
}


def generate_c(functions, driver_name="driver", import_names=None):
    """Generate the full C translation unit for ``functions``.

    Returns ``(source_text, per_function_texts)``.
    """
    import_names = import_names or {}
    chunks = [_PROLOGUE % {"name": driver_name}]
    per_function = {}
    for entry in sorted(functions):
        function = functions[entry]
        text = _generate_function(function, functions, import_names)
        per_function[entry] = text
        chunks.append(text)
    return "\n".join(chunks), per_function


def _c_name(function):
    return function.name if function.role is None else \
        "%s_%08x" % (function.role, function.entry)


def _generate_function(function, functions, import_names):
    lines = []
    params = ", ".join("uint32_t arg%d" % i
                       for i in range(function.param_count)) or "void"
    return_type = "uint32_t" if function.has_return else "void"
    lines.append("%s %s(%s)" % (return_type, _c_name(function), params))
    lines.append("{")
    lines.append("    /* guest register file (locals of the original "
                 "function) */")
    lines.append("    uint32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0, "
                 "r5 = 0, r6 = 0, r7 = 0;")
    lines.append("    uint32_t r8 = 0, r9 = 0, r10 = 0, r11 = 0, r12 = 0, "
                 "r13 = 0, r14 = 0, r15 = 0;")
    if function.param_count:
        lines.append("    /* stdcall arguments repushed onto the emulated "
                     "stack */")
        for i in reversed(range(function.param_count)):
            lines.append("    push32(arg%d);" % i)

    blocks = function.sorted_blocks()
    multi = len(blocks) > 1
    for block in blocks:
        if multi or block.pc != function.entry:
            lines.append("bb_%08x:" % block.pc)
        lines.extend(_generate_block(block, function, functions,
                                     import_names))
    if function.unexplored_targets:
        lines.append("    /* REVNIC WARNING: branches to unexercised code "
                     "below */")
        for target in sorted(function.unexplored_targets):
            lines.append("bb_%08x:" % target)
            lines.append("    /* REVNIC: block 0x%08x was never explored; "
                         "insert manually (see section 4.1) */" % target)
            lines.append("    %s" % ("return r0;" if function.has_return
                                     else "return;"))
    lines.append("}")
    lines.append("")
    return "\n".join(lines)


def _generate_block(block, function, functions, import_names):
    out = []
    env = _TempNames(block.ops)
    for op in block.ops:
        stmt = _op_to_c(op, env, function, functions, import_names)
        if stmt:
            out.extend("    " + line for line in stmt)
        env.advance()
    if block.terminator is None or not isinstance(block.terminator,
                                                  N.TERMINATOR_TYPES):
        out.append("    goto bb_%08x;" % block.end_pc)
    return out


class _TempNames:
    """Maps temp indices to C expressions.

    Pure expressions are inlined at their use sites -- but only when no
    register they read is reassigned between definition and use; otherwise
    the temp is materialized as a named local at definition time (emitted
    by :meth:`set`'s return value).  This preserves the IR's
    read-at-definition semantics in the flattened C.
    """

    def __init__(self, ops):
        self.exprs = {}
        self.index = 0
        self._materialize = self._analyze(ops)
        self._pending = []

    @staticmethod
    def _analyze(ops):
        """Temp indices that must be materialized: their expression reads a
        register that is reassigned before the temp's last use."""
        def_index = {}
        regs_read = {}
        uses = {}
        reg_version = {}
        def_version = {}
        for i, op in enumerate(ops):
            for temp in _op_uses(op):
                uses.setdefault(temp, []).append(i)
            dst = getattr(op, "dst", None)
            if isinstance(op, N.IrGetReg):
                def_index[op.dst] = i
                regs_read[op.dst] = {op.reg}
                def_version[op.dst] = {op.reg: reg_version.get(op.reg, 0)}
            elif dst is not None:
                parents = set()
                for temp in _op_uses(op):
                    parents |= regs_read.get(temp, set())
                def_index[dst] = i
                regs_read[dst] = parents
                def_version[dst] = {r: reg_version.get(r, 0)
                                    for r in parents}
            if isinstance(op, N.IrSetReg):
                reg_version[op.reg] = reg_version.get(op.reg, 0) + 1

        materialize = set()
        reg_version = {}
        version_at = []
        for i, op in enumerate(ops):
            version_at.append(dict(reg_version))
            if isinstance(op, N.IrSetReg):
                reg_version[op.reg] = reg_version.get(op.reg, 0) + 1
        for temp, use_indices in uses.items():
            versions = def_version.get(temp)
            if versions is None:
                continue
            for use in use_indices:
                for reg, version in versions.items():
                    if version_at[use].get(reg, 0) != version:
                        materialize.add(temp)
        return materialize

    def advance(self):
        self.index += 1

    def set(self, temp, expr):
        """Record ``temp``'s expression; returns a statement list when the
        temp must be materialized."""
        if temp in self._materialize:
            name = "t%d" % temp
            self.exprs[temp] = name
            return ["uint32_t %s = %s;" % (name, expr)]
        self.exprs[temp] = expr
        return []

    def force(self, temp, name):
        """Bind ``temp`` to an already-materialized local name."""
        self.exprs[temp] = name

    def get(self, temp):
        return self.exprs.get(temp, "t%d" % temp)


def _op_uses(op):
    """Temp indices read by ``op``."""
    out = []
    for attr in ("a", "b", "src", "addr", "port", "cond"):
        value = getattr(op, attr, None)
        if isinstance(value, int):
            out.append(value)
    if isinstance(op, (N.IrJump, N.IrCall)) and op.indirect:
        out.append(op.target)
    return out


def _op_to_c(op, env, function, functions, import_names):
    if isinstance(op, N.IrConst):
        return env.set(op.dst, "0x%xu" % op.value)
    if isinstance(op, N.IrGetReg):
        return env.set(op.dst, "r%d" % op.reg)
    if isinstance(op, N.IrSetReg):
        return ["r%d = %s;" % (op.reg, env.get(op.src))]
    if isinstance(op, N.IrBin):
        a, b = env.get(op.a), env.get(op.b)
        if op.kind in (N.BinKind.SHL, N.BinKind.SHR):
            expr = "(%s %s (%s & 31))" % (a, _BIN_C[op.kind], b)
        elif op.kind == N.BinKind.SAR:
            expr = "((uint32_t)((int32_t)%s >> (%s & 31)))" % (a, b)
        else:
            expr = "(%s %s %s)" % (a, _BIN_C[op.kind], b)
        return env.set(op.dst, expr)
    if isinstance(op, N.IrNot):
        return env.set(op.dst, "(~%s)" % env.get(op.a))
    if isinstance(op, N.IrNeg):
        return env.set(op.dst, "(0u - %s)" % env.get(op.a))
    if isinstance(op, N.IrCmp):
        operator, signed = _CMP_C[op.kind]
        cast = "(int32_t)" if signed else ""
        return env.set(op.dst, "(%s%s %s %s%s)"
                       % (cast, env.get(op.a), operator, cast,
                          env.get(op.b)))
    if isinstance(op, N.IrLoad):
        # Loads are effects: always materialize so ordering is preserved.
        name = "t%d" % op.dst
        stmt = "uint32_t %s = mem_read%d(%s);" % (name, op.width * 8,
                                                  env.get(op.addr))
        env.force(op.dst, name)
        return [stmt]
    if isinstance(op, N.IrStore):
        return ["mem_write%d(%s, %s);" % (op.width * 8, env.get(op.addr),
                                          env.get(op.src))]
    if isinstance(op, N.IrIn):
        name = "t%d" % op.dst
        stmt = "uint32_t %s = read_port%d(%s);" % (name, op.width * 8,
                                                   env.get(op.port))
        env.force(op.dst, name)
        return [stmt]
    if isinstance(op, N.IrOut):
        return ["write_port%d(%s, %s);" % (op.width * 8, env.get(op.port),
                                           env.get(op.src))]
    if isinstance(op, N.IrJump):
        if op.indirect:
            return ["/* indirect jump */ revnic_indirect_jump(%s);"
                    % env.get(op.target)]
        return ["goto bb_%08x;" % op.target]
    if isinstance(op, N.IrCondJump):
        return ["if (%s) goto bb_%08x;" % (env.get(op.cond), op.target),
                "goto bb_%08x;" % op.fallthrough]
    if isinstance(op, N.IrCall):
        return _call_to_c(op, env, functions, import_names)
    if isinstance(op, N.IrRet):
        if function.has_return:
            return ["return r0;"]
        return ["return;"]
    if isinstance(op, N.IrHalt):
        return ["/* halt */ for (;;) {}"]
    raise TypeError("unknown IR op %r" % (op,))  # pragma: no cover


def _call_to_c(op, env, functions, import_names):
    if op.indirect:
        return ["r0 = revnic_indirect_call(%s);" % env.get(op.target)]
    from repro.layout import import_index

    slot = import_index(op.target)
    if slot is not None:
        name = import_names.get(slot, "os_import_%d" % slot)
        return ["r0 = %s(); /* OS API, stack-passed args */" % name]
    callee = functions.get(op.target)
    if callee is not None:
        return ["r0 = %s(); /* args on emulated stack */" % _c_name(callee)]
    return ["r0 = fn_%08x(); /* callee not recovered */" % op.target]
