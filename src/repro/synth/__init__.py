"""Driver synthesis: activity traces -> C code + executable driver module.

Implements paper section 4: rebuild the control flow graph of the original
driver by merging execution paths (identifying function boundaries from
call/return pairs, splitting translation blocks into basic blocks,
separating asynchronous-event traces), recover parameter counts and return
values with def-use analysis over the recorded memory accesses, and emit
both C source (the developer-facing artifact) and an executable IR module
(which the target-OS simulators run through the driver templates).
"""

from repro.synth.cfg import CfgBuilder, RecoveredFunction
from repro.synth.defuse import analyze_signatures
from repro.synth.cgen import generate_c
from repro.synth.module import SynthesizedDriver, synthesize
from repro.synth.report import SynthesisReport, build_report

__all__ = [
    "CfgBuilder",
    "RecoveredFunction",
    "analyze_signatures",
    "generate_c",
    "SynthesizedDriver",
    "synthesize",
    "SynthesisReport",
    "build_report",
]
