"""Synthesis report: the developer-facing summary and the data behind
Figure 9 (automatic vs manual function breakdown) and Table 2's coverage
claims."""

from dataclasses import dataclass, field


@dataclass
class FunctionSummary:
    entry: int
    name: str
    role: str
    blocks: int
    instructions: int
    param_count: int
    has_return: bool
    imports_called: tuple
    unexplored: int

    @property
    def fully_synthesized(self):
        return not self.imports_called


@dataclass
class SynthesisReport:
    """Aggregate statistics of one synthesis run."""

    driver_name: str
    functions: list = field(default_factory=list)
    covered_instructions: int = 0
    total_trace_blocks: int = 0
    #: blocks filled by the DBT fallback for flagged unexplored targets
    dbt_filled_blocks: int = 0

    @property
    def function_count(self):
        return len(self.functions)

    @property
    def fully_synthesized_count(self):
        return sum(1 for f in self.functions if f.fully_synthesized)

    @property
    def manual_count(self):
        return self.function_count - self.fully_synthesized_count

    @property
    def automated_fraction(self):
        """Fraction of recovered functions needing no template work
        (Figure 9: ~70% across the paper's four drivers)."""
        if not self.functions:
            return 0.0
        return self.fully_synthesized_count / self.function_count

    @property
    def unexplored_branches(self):
        return sum(f.unexplored for f in self.functions)

    def describe(self):
        lines = ["Synthesis report for %s" % self.driver_name,
                 "  functions recovered: %d" % self.function_count,
                 "  fully synthesized (hardware-only): %d (%.0f%%)"
                 % (self.fully_synthesized_count,
                    100 * self.automated_fraction),
                 "  needing template integration: %d" % self.manual_count,
                 "  unexplored branch targets flagged: %d"
                 % self.unexplored_branches]
        for summary in sorted(self.functions, key=lambda f: f.entry):
            role = " [%s]" % summary.role if summary.role else ""
            kind = "auto" if summary.fully_synthesized else "manual"
            lines.append("    %-28s%s %2d blocks, %d params%s, %s"
                         % (summary.name, role, summary.blocks,
                            summary.param_count,
                            ", returns" if summary.has_return else "",
                            kind))
        return "\n".join(lines)


def build_report(driver_name, trace, functions):
    """Build the report from the recovered function set."""
    report = SynthesisReport(driver_name=driver_name)
    for entry in sorted(functions):
        function = functions[entry]
        instructions = sum(len(b.instr_addrs)
                           for b in function.blocks.values())
        report.functions.append(FunctionSummary(
            entry=entry,
            name=function.name,
            role=function.role,
            blocks=len(function.blocks),
            instructions=instructions,
            param_count=function.param_count,
            has_return=function.has_return,
            imports_called=tuple(sorted(function.imports_called)),
            unexplored=len(function.unexplored_targets),
        ))
        report.covered_instructions += instructions
    report.total_trace_blocks = len(list(trace.all_records()))
    return report
