"""Def-use analysis over recorded traces (paper section 4.1).

"RevNIC determines the number of function parameters and return values
using standard def-use analysis on the collected memory traces.  Since the
traces contain the actual memory access locations and data, it is possible
to trace back the definition of the parameters and the use of the possible
return values."

Parameters: stack loads whose concrete address falls at ``entry_sp + 4 +
4k`` (an access into the caller's frame) mark parameter ``k``.  Return
values: after a function returns, if the caller reads ``r0`` before
redefining it, the function has a return value.
"""

from repro.ir import nodes as N
from repro.isa.registers import REG_SP
from repro.revnic.trace import BlockRecord, ImportRecord

#: Registers whose post-return read does NOT indicate a return value
RETURN_REG = 0

MAX_PARAMS = 8


def analyze_signatures(functions, builder):
    """Fill ``param_count`` / ``has_return`` on every recovered function.

    ``builder`` is the :class:`~repro.synth.cfg.CfgBuilder` whose
    ``invocations`` list provides per-activation record groups.
    """
    entry_sps = _entry_sp_per_invocation(builder)
    for (entry, _path, records, is_reopen), entry_sp in \
            zip(builder.invocations, entry_sps):
        function = functions.get(entry)
        if function is None or is_reopen:
            continue
        if entry_sp is not None:
            count = _scan_param_accesses(records, entry_sp)
            function.param_count = max(function.param_count, count)
    _detect_return_values(functions, builder)
    return functions


def _entry_sp_per_invocation(builder):
    """sp at each activation's entry: from the first block's regs_before."""
    out = []
    for _entry, _path, records, _is_reopen in builder.invocations:
        sp = None
        for record in records:
            if isinstance(record, BlockRecord):
                value = record.regs_before[REG_SP]
                if isinstance(value, int):
                    sp = value
                break
        out.append(sp)
    return out


def _scan_param_accesses(records, entry_sp):
    """Count distinct parameter slots loaded from the caller's frame."""
    slots = set()
    for record in records:
        if not isinstance(record, BlockRecord):
            continue
        for access in record.accesses:
            if access.is_write or access.kind != "ram":
                continue
            offset = access.address - (entry_sp + 4)
            if 0 <= offset < MAX_PARAMS * 4 and offset % 4 == 0:
                slots.add(offset // 4)
    if not slots:
        return 0
    return max(slots) + 1


def _detect_return_values(functions, builder):
    """Check every call site: does the caller read r0 after the return,
    before redefining it?"""
    for segment in builder.trace.segments:
        for path in segment.paths:
            _scan_path_returns(functions, path.records)


def _scan_path_returns(functions, records):
    call_stack = []
    for index, record in enumerate(records):
        if isinstance(record, ImportRecord):
            continue
        if not isinstance(record, BlockRecord):
            continue
        if record.terminator == "call":
            next_block = _next_block(records, index)
            if next_block is not None and record.target != next_block.pc \
                    and record.target is not None:
                continue  # import call, no driver callee
            if next_block is not None:
                call_stack.append(next_block.pc)
            continue
        if record.terminator == "ret":
            if not call_stack:
                continue
            callee_entry = call_stack.pop()
            # Find the function whose blocks include the callee entry.
            function = _owner(functions, callee_entry)
            if function is None or function.has_return:
                continue
            next_block = _next_block(records, index)
            if next_block is not None and _reads_r0_first(next_block.block):
                function.has_return = True


def _next_block(records, index):
    for record in records[index + 1:]:
        if isinstance(record, BlockRecord):
            return record
    return None


def _owner(functions, entry):
    function = functions.get(entry)
    if function is not None:
        return function
    for candidate in functions.values():
        if entry in candidate.blocks:
            return candidate
    return None


def _reads_r0_first(block):
    """True when the block reads r0 before any write to it."""
    for op in block.ops:
        if isinstance(op, N.IrGetReg) and op.reg == RETURN_REG:
            return True
        if isinstance(op, N.IrSetReg) and op.reg == RETURN_REG:
            return False
    return False
