"""Reproduction of *Reverse Engineering of Binary Device Drivers with RevNIC*.

RevNIC (Chipounov & Candea, EuroSys 2010) reverse engineers closed-source
binary network drivers by exercising them with selective symbolic execution
inside a virtual machine, wiretapping every instruction / memory access /
hardware I/O, and synthesizing portable C code that implements the same
hardware protocol.

This package contains the full reproduction stack:

* :mod:`repro.isa`, :mod:`repro.asm` -- the R32 instruction set and assembler
  used to build the *binary* drivers being reverse engineered.
* :mod:`repro.vm`, :mod:`repro.hw`, :mod:`repro.net` -- the virtual machine,
  NIC device models and packet substrate.
* :mod:`repro.guestos` -- the source-OS (NDIS-like) environment that loads
  and drives the binary driver.
* :mod:`repro.ir`, :mod:`repro.dbt` -- the intermediate representation and
  the dynamic binary translator (the paper's QEMU->LLVM pipeline analog).
* :mod:`repro.symex` -- the symbolic execution engine (KLEE analog).
* :mod:`repro.revnic` -- the core contribution: shell symbolic hardware,
  wiretap, exploration heuristics and the top-level engine.
* :mod:`repro.synth` -- trace-to-C/IR driver synthesis.
* :mod:`repro.templates`, :mod:`repro.targetos` -- driver templates and the
  four target operating system simulators.
* :mod:`repro.drivers` -- the four proprietary driver binaries (R32 assembly)
  and native baselines.
* :mod:`repro.eval` -- the evaluation harness reproducing every table and
  figure of the paper.
"""

__version__ = "1.0.0"


def _load_engine():
    from repro.revnic.engine import RevNic, RevNicConfig, RevNicResult

    return RevNic, RevNicConfig, RevNicResult


def __getattr__(name):
    if name in ("RevNic", "RevNicConfig", "RevNicResult"):
        engine = _load_engine()
        mapping = dict(zip(("RevNic", "RevNicConfig", "RevNicResult"), engine))
        return mapping[name]
    raise AttributeError(name)


__all__ = ["RevNic", "RevNicConfig", "RevNicResult"]
