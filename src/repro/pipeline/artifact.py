"""Serializable run artifacts: the pipeline's cross-process interface.

A :class:`RunArtifact` captures everything downstream consumers (tables,
figures, the performance model, functional tests) actually use from one
reverse-engineering run -- the activity trace with its translated-block
IR, the coverage timeline, discovered entry points, run statistics, DMA
regions, import names, the captured code window, and the complete
synthesis output (recovered functions, C source, report, executable block
map).  No consumer ever touches a live :class:`~repro.revnic.engine.RevNic`
engine.

The JSON codec is versioned and *canonical*: encoding is a deterministic
function of the run's outputs (interned expression DAGs and shared
translation blocks are emitted once, in traversal order; all sets are
sorted), so a serial in-process run, a ``multiprocessing`` worker run and
a cache round-trip of the same driver produce byte-identical canonical
JSON.  The only non-deterministic fields are wall-clock timings, which
:func:`canonical_json` scrubs; :func:`to_json` keeps them for the
benchmark reports.
"""

import json

from repro.dbt.translator import CodeWindow
from repro.errors import ArtifactError
from repro.ir import nodes as N
from repro.revnic.coverage import CoverageTracker
from repro.revnic.engine import RevNicResult
from repro.revnic.trace import (BlockRecord, ImportRecord, PathTrace, Trace,
                                TraceSegment)
from repro.symex.expr import Expr
from repro.symex.executor import MemAccess
from repro.synth.cfg import RecoveredFunction
from repro.synth.module import SynthesizedDriver
from repro.synth.report import FunctionSummary, SynthesisReport

#: Bump on any incompatible change to the encoding below.  Loads of a
#: different version are rejected (the on-disk cache treats them as
#: misses), never migrated.  v2: run stats gained the volatile
#: ``codecache`` section (persistent compiled-code cache outcomes).
SCHEMA_VERSION = 2


class RunArtifact:
    """One driver's reverse-engineering run and synthesis output.

    ``trace`` may be constructed lazily (deserialized artifacts defer
    decoding the activity trace -- by far the codec's largest section --
    until a consumer actually walks it; tables, figures and the
    functional tests mostly need only ``synthesized``, ``coverage`` and
    ``stats``, which keeps a warm cache load fast).
    """

    def __init__(self, driver, strategy, script, config, trace, coverage,
                 entry_points, stats, dma_regions, import_names, code,
                 synthesized, schema=SCHEMA_VERSION, source="computed"):
        self.driver = driver
        self.strategy = strategy
        self.script = script
        #: canonical RevNicConfig dict (part of the cache key)
        self.config = config
        if callable(trace):
            self._trace = None
            self._trace_thunk = trace
        else:
            self._trace = trace
            self._trace_thunk = None
        self.coverage = coverage
        self.entry_points = entry_points
        self.stats = stats
        self.dma_regions = dma_regions
        self.import_names = import_names
        self.code = code
        self.synthesized = synthesized
        self.schema = schema
        #: where this artifact came from: 'computed', 'disk-cache',
        #: 'worker'
        self.source = source

    # -- consumer conveniences -----------------------------------------

    @property
    def trace(self):
        if self._trace is None:
            self._trace = self._trace_thunk()
            self._trace_thunk = None
        return self._trace

    @property
    def name(self):
        return self.driver

    @property
    def coverage_fraction(self):
        return self.coverage.fraction

    @property
    def report(self):
        return self.synthesized.report

    @property
    def image(self):
        """The (deterministically rebuilt) original driver binary."""
        from repro.drivers import build_driver

        return build_driver(self.driver)

    @property
    def result(self):
        """A :class:`RevNicResult` view over the artifact's run data."""
        return RevNicResult(trace=self.trace, coverage=self.coverage,
                            entry_points=self.entry_points,
                            stats=self.stats, dma_regions=self.dma_regions,
                            import_names=self.import_names, code=self.code)


def build_artifact(config, result, synthesized, source="computed"):
    """Assemble a :class:`RunArtifact` from live pipeline outputs."""
    from dataclasses import asdict

    config_dict = asdict(config)
    return RunArtifact(
        driver=config.driver_name,
        strategy=config.strategy,
        script=config.script,
        config=config_dict,
        trace=result.trace,
        coverage=result.coverage,
        entry_points=dict(result.entry_points),
        stats=result.stats,
        dma_regions=[tuple(r) for r in result.dma_regions],
        import_names=dict(result.import_names),
        code=result.code,
        synthesized=synthesized,
        source=source,
    )


# ==========================================================================
# Encoding

_OP_ENCODERS = {
    N.IrConst: lambda op: ["const", op.dst, op.value],
    N.IrGetReg: lambda op: ["getreg", op.dst, op.reg],
    N.IrSetReg: lambda op: ["setreg", op.reg, op.src],
    N.IrBin: lambda op: ["bin", op.dst, op.kind.value, op.a, op.b],
    N.IrNot: lambda op: ["not", op.dst, op.a],
    N.IrNeg: lambda op: ["neg", op.dst, op.a],
    N.IrCmp: lambda op: ["cmp", op.dst, op.kind.value, op.a, op.b],
    N.IrLoad: lambda op: ["load", op.dst, op.addr, op.width],
    N.IrStore: lambda op: ["store", op.addr, op.src, op.width],
    N.IrIn: lambda op: ["in", op.dst, op.port, op.width],
    N.IrOut: lambda op: ["out", op.port, op.src, op.width],
    N.IrJump: lambda op: ["jump", op.target, 1 if op.indirect else 0],
    N.IrCondJump: lambda op: ["condjump", op.cond, op.target,
                              op.fallthrough],
    N.IrCall: lambda op: ["call", op.target, 1 if op.indirect else 0,
                          op.return_pc],
    N.IrRet: lambda op: ["ret", op.addr, op.cleanup],
    N.IrHalt: lambda op: ["halt"],
}

_OP_DECODERS = {
    "const": lambda f: N.IrConst(f[0], f[1]),
    "getreg": lambda f: N.IrGetReg(f[0], f[1]),
    "setreg": lambda f: N.IrSetReg(f[0], f[1]),
    "bin": lambda f: N.IrBin(f[0], N.BinKind(f[1]), f[2], f[3]),
    "not": lambda f: N.IrNot(f[0], f[1]),
    "neg": lambda f: N.IrNeg(f[0], f[1]),
    "cmp": lambda f: N.IrCmp(f[0], N.CmpKind(f[1]), f[2], f[3]),
    "load": lambda f: N.IrLoad(f[0], f[1], f[2]),
    "store": lambda f: N.IrStore(f[0], f[1], f[2]),
    "in": lambda f: N.IrIn(f[0], f[1], f[2]),
    "out": lambda f: N.IrOut(f[0], f[1], f[2]),
    "jump": lambda f: N.IrJump(f[0], bool(f[1])),
    "condjump": lambda f: N.IrCondJump(f[0], f[1], f[2]),
    "call": lambda f: N.IrCall(f[0], bool(f[1]), f[2]),
    "ret": lambda f: N.IrRet(f[0], f[1]),
    "halt": lambda f: N.IrHalt(),
}


class _Encoder:
    """Shared-structure encoder: expression DAG nodes and translation
    blocks are interned into tables and referenced by index, preserving
    sharing and keeping artifacts compact."""

    def __init__(self):
        self.exprs = []
        self._expr_index = {}
        self.blocks = []
        self._block_index = {}
        self._block_content = {}

    # -- expressions ---------------------------------------------------

    def expr_ref(self, expr):
        """Index of ``expr`` in the expression table (emitting the DAG
        bottom-up on first encounter)."""
        index = self._expr_index.get(id(expr))
        if index is not None:
            return index
        stack = [expr]
        while stack:
            node = stack[-1]
            if id(node) in self._expr_index:
                stack.pop()
                continue
            pending = [a for a in node.args if isinstance(a, Expr)
                       and id(a) not in self._expr_index]
            if pending:
                stack.extend(pending)
                continue
            args = []
            for arg in node.args:
                if isinstance(arg, Expr):
                    args.append([1, self._expr_index[id(arg)]])
                else:
                    args.append([0, arg])
            self._expr_index[id(node)] = len(self.exprs)
            self.exprs.append([node.kind, node.width, args, node.name,
                               node.lo])
            stack.pop()
        return self._expr_index[id(expr)]

    def value(self, value):
        """Encode an int / None / Expr value slot."""
        if value is None or isinstance(value, int):
            return value
        if isinstance(value, Expr):
            return ["e", self.expr_ref(value)]
        raise ArtifactError("unencodable value %r" % (value,))

    # -- blocks --------------------------------------------------------

    def block_ref(self, block):
        index = self._block_index.get(id(block))
        if index is not None:
            return index
        encoded = {
            "pc": block.pc,
            "size": block.size,
            "instr_addrs": list(block.instr_addrs),
            "instr_spans": [list(span) for span in block.instr_spans],
            "ops": [self._op(op) for op in block.ops],
        }
        # Interning is keyed on *content*, with the id() map as a fast
        # path: sharded exploration decodes sub-tree records in the
        # parent, so one translation block can reach the encoder as
        # several distinct objects -- they must still share one table
        # entry or merged artifacts would not be byte-identical to the
        # in-process run's.
        content = (encoded["pc"], encoded["size"],
                   tuple(encoded["instr_addrs"]),
                   tuple(tuple(span) for span in encoded["instr_spans"]),
                   tuple(tuple(op) for op in encoded["ops"]))
        index = self._block_content.get(content)
        if index is None:
            index = len(self.blocks)
            self._block_content[content] = index
            self.blocks.append(encoded)
        self._block_index[id(block)] = index
        return index

    def _op(self, op):
        encoder = _OP_ENCODERS.get(type(op))
        if encoder is None:
            raise ArtifactError("unencodable IR op %r" % (op,))
        return encoder(op)


class _Decoder:
    def __init__(self, exprs, blocks):
        # The table is topologically ordered (children first), so each
        # node only references already-decoded entries.
        self._exprs = []
        for node in exprs:
            self._exprs.append(self._decode_expr(node))
        self._blocks = [self._decode_block(b) for b in blocks]

    def _decode_expr(self, node):
        kind, width, args, name, lo = node
        decoded_args = []
        for tag, payload in args:
            if tag == 1:
                decoded_args.append(self._exprs[payload])
            else:
                decoded_args.append(payload)
        # The raw constructor interns; smart-constructor simplification
        # already happened before the artifact was written.
        return Expr(kind, width, tuple(decoded_args), name, lo)

    def _decode_block(self, encoded):
        ops = []
        for op in encoded["ops"]:
            decoder = _OP_DECODERS.get(op[0])
            if decoder is None:
                raise ArtifactError("unknown IR op tag %r" % (op[0],))
            ops.append(decoder(op[1:]))
        return N.TranslationBlock(
            pc=encoded["pc"], size=encoded["size"],
            instr_addrs=list(encoded["instr_addrs"]),
            ops=ops,
            instr_spans=[tuple(span) for span in encoded["instr_spans"]])

    def expr(self, index):
        return self._exprs[index]

    def block(self, index):
        return self._blocks[index]

    def value(self, encoded):
        if encoded is None or isinstance(encoded, int):
            return encoded
        if isinstance(encoded, list) and len(encoded) == 2 \
                and encoded[0] == "e":
            return self.expr(encoded[1])
        raise ArtifactError("undecodable value %r" % (encoded,))


# -- trace -----------------------------------------------------------------

def _encode_record(record, enc):
    # Register slots and access values are overwhelmingly plain ints (or
    # None); only genuine Expr values take the slow interning path.  This
    # is the hottest loop of the codec.
    value = enc.value
    if isinstance(record, BlockRecord):
        return ["B", record.seq, record.pc, enc.block_ref(record.block),
                [r if not isinstance(r, Expr) else value(r)
                 for r in record.regs_before],
                [r if not isinstance(r, Expr) else value(r)
                 for r in record.regs_after],
                [[a.kind, a.address, a.width,
                  a.value if not isinstance(a.value, Expr)
                  else value(a.value),
                  1 if a.is_write else 0] for a in record.accesses],
                record.terminator, record.target]
    if isinstance(record, ImportRecord):
        return ["I", record.seq, record.name,
                [value(a) for a in record.args], record.caller_pc]
    raise ArtifactError("unencodable trace record %r" % (record,))


def _decode_record(encoded, dec):
    # Mirror of _encode_record's fast path: anything list-shaped is an
    # expression reference, everything else decodes to itself.
    tag = encoded[0]
    value = dec.value
    if tag == "B":
        _, seq, pc, block_ref, before, after, accesses, term, target = \
            encoded
        return BlockRecord(
            seq=seq, pc=pc, block=dec.block(block_ref),
            regs_before=[r if type(r) is not list else value(r)
                         for r in before],
            regs_after=[r if type(r) is not list else value(r)
                        for r in after],
            accesses=[MemAccess(a[0], a[1], a[2],
                                a[3] if type(a[3]) is not list
                                else value(a[3]),
                                bool(a[4])) for a in accesses],
            terminator=term, target=target)
    if tag == "I":
        _, seq, name, args, caller_pc = encoded
        return ImportRecord(seq=seq, name=name,
                            args=tuple(value(a) for a in args),
                            caller_pc=caller_pc)
    raise ArtifactError("unknown trace record tag %r" % (tag,))


def _encode_trace(trace, enc):
    return {
        "driver_name": trace.driver_name,
        "text_base": trace.text_base,
        "text_size": trace.text_size,
        "entry_points": {name: addr for name, addr
                         in sorted(trace.entry_points.items())},
        "segments": [{
            "entry_name": segment.entry_name,
            "entry_address": segment.entry_address,
            "paths": [{
                "path_id": path.path_id,
                "status": path.status,
                "return_value": enc.value(path.return_value),
                "records": [_encode_record(r, enc) for r in path.records],
            } for path in segment.paths],
        } for segment in trace.segments],
    }


def _decode_trace(encoded, dec):
    trace = Trace(driver_name=encoded["driver_name"],
                  text_base=encoded["text_base"],
                  text_size=encoded["text_size"])
    trace.entry_points = dict(encoded["entry_points"])
    for seg in encoded["segments"]:
        segment = TraceSegment(entry_name=seg["entry_name"],
                               entry_address=seg["entry_address"])
        for p in seg["paths"]:
            segment.paths.append(PathTrace(
                path_id=p["path_id"],
                records=[_decode_record(r, dec) for r in p["records"]],
                status=p["status"],
                return_value=dec.value(p["return_value"])))
        trace.segments.append(segment)
    return trace


# -- synthesized driver ----------------------------------------------------

def _encode_function(function, enc):
    return {
        "entry": function.entry,
        "name": function.name,
        "role": function.role,
        "blocks": {str(pc): enc.block_ref(block)
                   for pc, block in sorted(function.blocks.items())},
        "edges": {str(pc): sorted(successors)
                  for pc, successors in sorted(function.edges.items())},
        "callees": sorted(function.callees),
        "imports_called": sorted(function.imports_called),
        "unexplored_targets": sorted(function.unexplored_targets),
        "param_count": function.param_count,
        "has_return": function.has_return,
    }


def _decode_function(encoded, dec):
    return RecoveredFunction(
        entry=encoded["entry"],
        name=encoded["name"],
        role=encoded["role"],
        blocks={int(pc): dec.block(ref)
                for pc, ref in encoded["blocks"].items()},
        edges={int(pc): set(successors)
               for pc, successors in encoded["edges"].items()},
        callees=set(encoded["callees"]),
        imports_called=set(encoded["imports_called"]),
        unexplored_targets=set(encoded["unexplored_targets"]),
        param_count=encoded["param_count"],
        has_return=encoded["has_return"],
    )


def _encode_report(report):
    return {
        "driver_name": report.driver_name,
        "covered_instructions": report.covered_instructions,
        "total_trace_blocks": report.total_trace_blocks,
        "dbt_filled_blocks": report.dbt_filled_blocks,
        "functions": [{
            "entry": f.entry, "name": f.name, "role": f.role,
            "blocks": f.blocks, "instructions": f.instructions,
            "param_count": f.param_count, "has_return": f.has_return,
            "imports_called": list(f.imports_called),
            "unexplored": f.unexplored,
        } for f in report.functions],
    }


def _decode_report(encoded):
    report = SynthesisReport(
        driver_name=encoded["driver_name"],
        covered_instructions=encoded["covered_instructions"],
        total_trace_blocks=encoded["total_trace_blocks"],
        dbt_filled_blocks=encoded["dbt_filled_blocks"])
    for f in encoded["functions"]:
        report.functions.append(FunctionSummary(
            entry=f["entry"], name=f["name"], role=f["role"],
            blocks=f["blocks"], instructions=f["instructions"],
            param_count=f["param_count"], has_return=f["has_return"],
            imports_called=tuple(f["imports_called"]),
            unexplored=f["unexplored"]))
    return report


def _encode_synthesized(synth, enc):
    return {
        "name": synth.name,
        "entry_points": {name: addr for name, addr
                         in sorted(synth.entry_points.items())},
        "import_names": {str(slot): name for slot, name
                         in sorted(synth.import_names.items())},
        "c_source": synth.c_source,
        "c_per_function": {str(entry): text for entry, text
                           in sorted(synth.c_per_function.items())},
        "functions": [_encode_function(synth.functions[entry], enc)
                      for entry in sorted(synth.functions)],
        "block_map": {str(pc): enc.block_ref(block)
                      for pc, block in sorted(synth.block_map.items())},
        "report": _encode_report(synth.report),
    }


def _decode_synthesized(encoded, dec):
    functions = {}
    for f in encoded["functions"]:
        function = _decode_function(f, dec)
        functions[function.entry] = function
    return SynthesizedDriver(
        name=encoded["name"],
        functions=functions,
        entry_points=dict(encoded["entry_points"]),
        c_source=encoded["c_source"],
        c_per_function={int(entry): text for entry, text
                        in encoded["c_per_function"].items()},
        report=_decode_report(encoded["report"]),
        import_names={int(slot): name for slot, name
                      in encoded["import_names"].items()},
        block_map={int(pc): dec.block(ref)
                   for pc, ref in encoded["block_map"].items()},
    )


# -- top level -------------------------------------------------------------

def artifact_to_dict(artifact):
    """Encode ``artifact`` as a JSON-serializable dict (full fidelity,
    including wall-clock timings)."""
    enc = _Encoder()
    trace = _encode_trace(artifact.trace, enc)
    synthesized = _encode_synthesized(artifact.synthesized, enc)
    return {
        "schema": SCHEMA_VERSION,
        "driver": artifact.driver,
        "strategy": artifact.strategy,
        "script": artifact.script,
        "config": _encode_config(artifact.config),
        "entry_points": {name: addr for name, addr
                         in sorted(artifact.entry_points.items())},
        "stats": artifact.stats,
        "dma_regions": [list(region) for region in artifact.dma_regions],
        "import_names": {str(slot): name for slot, name
                         in sorted(artifact.import_names.items())},
        "code": {"base": artifact.code.base,
                 "data": artifact.code.data.hex()},
        "coverage": {
            "leaders": list(artifact.coverage.leaders),
            "executed": sorted(artifact.coverage.executed),
            "timeline": [list(sample)
                         for sample in artifact.coverage.timeline],
        },
        "trace": trace,
        "synthesized": synthesized,
        # The tables last: they were filled while encoding the above.
        "exprs": enc.exprs,
        "blocks": enc.blocks,
    }


def _encode_config(config_dict):
    """RevNicConfig as JSON-safe canonical dict (the pci descriptor is a
    nested dataclass dict already; skip_functions values may be tuples)."""
    out = {}
    for key, value in sorted(config_dict.items()):
        if key == "skip_functions":
            out[key] = {name: list(v) if isinstance(v, tuple) else v
                        for name, v in sorted(value.items())}
        else:
            out[key] = value
    return out


def artifact_from_dict(data, source="disk-cache"):
    """Decode a dict produced by :func:`artifact_to_dict`."""
    try:
        schema = data["schema"]
        if schema != SCHEMA_VERSION:
            raise ArtifactError("artifact schema %r, expected %r"
                                % (schema, SCHEMA_VERSION))
        dec = _Decoder(data["exprs"], data["blocks"])
        # Bind only the trace section: closing over `data` itself would
        # pin the whole parsed JSON (code hex, tables, synthesis) in
        # memory for artifacts whose trace is never walked.
        trace_data = data["trace"]
        coverage = CoverageTracker(
            leaders=list(data["coverage"]["leaders"]),
            executed=set(data["coverage"]["executed"]),
            timeline=[tuple(sample)
                      for sample in data["coverage"]["timeline"]])
        return RunArtifact(
            driver=data["driver"],
            strategy=data["strategy"],
            script=data["script"],
            config=data["config"],
            trace=lambda: _decode_trace(trace_data, dec),
            coverage=coverage,
            entry_points=dict(data["entry_points"]),
            stats=data["stats"],
            dma_regions=[tuple(region) for region in data["dma_regions"]],
            import_names={int(slot): name for slot, name
                          in data["import_names"].items()},
            code=CodeWindow(data["code"]["base"],
                            bytes.fromhex(data["code"]["data"])),
            synthesized=_decode_synthesized(data["synthesized"], dec),
            source=source,
        )
    except ArtifactError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise ArtifactError("malformed artifact: %s" % (exc,)) from exc


def canonical_dumps(data):
    """Canonical JSON encoding: sorted keys, no whitespace.

    The one serialization every byte-compared document in the repo uses
    (run artifacts, fuzz campaigns, fabric reports): two equal values
    always encode to identical bytes.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def to_json(artifact):
    """Full-fidelity deterministic JSON (timings included)."""
    return canonical_dumps(artifact_to_dict(artifact))


def from_json(text, source="disk-cache"):
    return artifact_from_dict(json.loads(text), source=source)


#: Frontier-stat keys that depend on scheduling accidents (worker count,
#: steal timing, wall clocks) rather than on (image, config, code) --
#: scrubbed from canonical JSON, kept by to_json for benchmark reports.
_VOLATILE_FRONTIER = {"mode": "any", "workers": 0, "steals": 0,
                      "merge_wall_seconds": 0.0, "states_per_worker": [],
                      "chunk_retries": 0, "fallbacks": 0}


def _scrub_volatile(data):
    """Zero the wall-clock fields -- the only run outputs that are not a
    deterministic function of (driver image, config, code)."""
    stats = dict(data["stats"])
    stats["wall_seconds"] = 0.0
    codecache = stats.get("codecache")
    if isinstance(codecache, dict):
        # Persistent code-cache outcomes flip with on-disk warmth (a
        # warm cache turns "generated" into "imported") without ever
        # changing what the generated code computes -- runtime-only, so
        # canonical bytes neutralize them.
        stats["codecache"] = {key: 0 for key in codecache}
    frontier = stats.get("frontier")
    if isinstance(frontier, dict):
        frontier = dict(frontier)
        for key, neutral in _VOLATILE_FRONTIER.items():
            if key in frontier:
                frontier[key] = neutral
        stats["frontier"] = frontier
    data["stats"] = stats
    coverage = dict(data["coverage"])
    coverage["timeline"] = [[blocks, 0.0, fraction]
                            for blocks, _seconds, fraction
                            in coverage["timeline"]]
    data["coverage"] = coverage
    return data


def canonical_json(artifact):
    """Deterministic JSON with volatile timing fields scrubbed.

    Byte-equality of canonical JSON is the artifact-equivalence relation
    the determinism tests (serial vs parallel vs cached) assert on.
    """
    return canonical_dumps(_scrub_volatile(artifact_to_dict(artifact)))
