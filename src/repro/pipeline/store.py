"""Content-addressed on-disk artifact cache.

Artifacts are keyed by everything that determines their bytes: the
assembled driver image, the canonical :class:`RevNicConfig`, the artifact
schema version, and a fingerprint of the pipeline's own source tree (any
code change invalidates every cached run -- the same discipline as a
compiler cache).  Repeated pytest or benchmark sessions and CI reruns
load artifacts in milliseconds instead of re-running symbolic execution.

The store is plain files: ``<root>/<key>.json`` written atomically
(temp file + rename), safe against concurrent writers producing the same
deterministic bytes.  Corrupt or schema-incompatible entries read as
misses.
"""

import hashlib
import json
import os
import tempfile

from repro.pipeline.artifact import SCHEMA_VERSION, from_json, to_json

#: Environment variable overriding the cache directory; the value
#: ``off`` disables on-disk caching entirely.
CACHE_ENV = "REVNIC_ARTIFACT_CACHE"

_FINGERPRINT_SUFFIXES = (".py", ".s")


def _repo_root():
    # src/repro/pipeline/store.py -> repo root three levels up from repro/.
    here = os.path.abspath(os.path.dirname(__file__))
    return os.path.dirname(os.path.dirname(os.path.dirname(here)))


def default_cache_dir():
    """The configured cache directory, or ``None`` when disabled."""
    configured = os.environ.get(CACHE_ENV)
    if configured == "off":
        return None
    if configured:
        return configured
    return os.path.join(_repo_root(), ".revnic-cache")


_code_fingerprint = None


def code_fingerprint():
    """Digest of the pipeline's own source tree (``src/repro``).

    Part of every cache key: a stale artifact produced by different code
    must never be served.  Computed once per process.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        package_root = os.path.dirname(os.path.abspath(
            os.path.dirname(__file__)))
        digest = hashlib.sha256()
        entries = []
        for directory, _subdirs, files in os.walk(package_root):
            for filename in files:
                if not filename.endswith(_FINGERPRINT_SUFFIXES):
                    continue
                path = os.path.join(directory, filename)
                entries.append((os.path.relpath(path, package_root), path))
        for relpath, path in sorted(entries):
            digest.update(relpath.encode())
            with open(path, "rb") as handle:
                digest.update(hashlib.sha256(handle.read()).digest())
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def artifact_key(image, config):
    """Cache key for a run of ``config`` over driver ``image``."""
    from dataclasses import asdict

    from repro.pipeline.artifact import _encode_config

    config_json = json.dumps(_encode_config(asdict(config)), sort_keys=True)
    digest = hashlib.sha256()
    digest.update(b"schema:%d|" % SCHEMA_VERSION)
    digest.update(hashlib.sha256(image.to_bytes()).digest())
    digest.update(config_json.encode())
    digest.update(code_fingerprint().encode())
    return digest.hexdigest()


class ArtifactStore:
    """File-per-artifact store under one root directory."""

    def __init__(self, root):
        self.root = root
        self.hits = 0
        self.misses = 0

    def path_for(self, key):
        return os.path.join(self.root, "%s.json" % key)

    def load(self, key):
        """The cached :class:`RunArtifact` for ``key``, or ``None``."""
        path = self.path_for(key)
        try:
            with open(path, "r") as handle:
                text = handle.read()
            artifact = from_json(text, source="disk-cache")
        except Exception:
            # Missing, unreadable, corrupt or schema-mismatched entries
            # are all misses; a miss only costs a re-run.
            self.misses += 1
            return None
        self.hits += 1
        return artifact

    def save(self, key, artifact):
        """Serialize and store ``artifact``; returns the file path."""
        return self.save_json(key, to_json(artifact))

    def load_json(self, key):
        """Raw JSON text stored under ``key``, or ``None``.

        The generic counterpart of :meth:`save_json` for non-RunArtifact
        entries (the fuzzer's corpus and divergence records share the
        store); schema validation is the caller's business.
        """
        try:
            with open(self.path_for(key), "r") as handle:
                text = handle.read()
        except OSError:
            self.misses += 1
            return None
        self.hits += 1
        return text

    def save_json(self, key, text):
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(key)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    def contains(self, key):
        return os.path.exists(self.path_for(key))

    def keys(self):
        if not os.path.isdir(self.root):
            return []
        return sorted(name[:-5] for name in os.listdir(self.root)
                      if name.endswith(".json"))

    def clear(self):
        for key in self.keys():
            try:
                os.unlink(self.path_for(key))
            except OSError:
                pass


def default_store():
    """The process-default store, or ``None`` when caching is disabled."""
    root = default_cache_dir()
    return ArtifactStore(root) if root else None
