"""Content-addressed on-disk artifact cache.

Artifacts are keyed by everything that determines their bytes: the
assembled driver image, the canonical :class:`RevNicConfig`, the artifact
schema version, and a fingerprint of the pipeline's own source tree (any
code change invalidates every cached run -- the same discipline as a
compiler cache).  Repeated pytest or benchmark sessions and CI reruns
load artifacts in milliseconds instead of re-running symbolic execution.

The store is plain files under one root, hardened for concurrent and
hostile conditions:

* **checksummed entries** -- every file carries a digest footer
  (payload SHA-256 plus the writing schema/code fingerprint); loads
  verify it, so truncation and bit rot are *detected*, never silently
  decoded;
* **quarantine** -- corrupt files are moved to ``<root>/quarantine/``
  and counted (``corrupt``/``quarantined`` beside ``hits``/``misses``),
  so a bad entry costs one recompute and leaves evidence;
* **crash-consistent publish** -- temp file + atomic ``os.replace``;
  a writer that dies mid-publish leaves only an orphaned ``*.tmp``,
  which :meth:`ArtifactStore.recover` sweeps;
* **GC** -- :meth:`ArtifactStore.gc` evicts entries written by a
  different schema or code fingerprint (unreachable by construction),
  then least-recently-used entries down to a byte budget.
"""

import hashlib
import json
import os
import tempfile

from repro.pipeline.artifact import SCHEMA_VERSION, artifact_from_dict, to_json

#: Environment variable overriding the cache directory; the value
#: ``off`` disables on-disk caching entirely.
CACHE_ENV = "REVNIC_ARTIFACT_CACHE"

_FINGERPRINT_SUFFIXES = (".py", ".s")

#: Last line of every store file: ``#revnic-store:{...meta json...}``.
FOOTER_PREFIX = "#revnic-store:"


def _repo_root():
    # src/repro/pipeline/store.py -> repo root three levels up from repro/.
    here = os.path.abspath(os.path.dirname(__file__))
    return os.path.dirname(os.path.dirname(os.path.dirname(here)))


def default_cache_dir():
    """The configured cache directory, or ``None`` when disabled."""
    configured = os.environ.get(CACHE_ENV)
    if configured == "off":
        return None
    if configured:
        return configured
    return os.path.join(_repo_root(), ".revnic-cache")


_code_fingerprint = None


def code_fingerprint():
    """Digest of the pipeline's own source tree (``src/repro``).

    Part of every cache key: a stale artifact produced by different code
    must never be served.  Computed once per process.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        package_root = os.path.dirname(os.path.abspath(
            os.path.dirname(__file__)))
        digest = hashlib.sha256()
        entries = []
        for directory, _subdirs, files in os.walk(package_root):
            for filename in files:
                if not filename.endswith(_FINGERPRINT_SUFFIXES):
                    continue
                path = os.path.join(directory, filename)
                entries.append((os.path.relpath(path, package_root), path))
        for relpath, path in sorted(entries):
            digest.update(relpath.encode())
            with open(path, "rb") as handle:
                digest.update(hashlib.sha256(handle.read()).digest())
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def artifact_key(image, config):
    """Cache key for a run of ``config`` over driver ``image``."""
    from dataclasses import asdict

    from repro.pipeline.artifact import _encode_config

    config_json = json.dumps(_encode_config(asdict(config)), sort_keys=True)
    digest = hashlib.sha256()
    digest.update(b"schema:%d|" % SCHEMA_VERSION)
    digest.update(hashlib.sha256(image.to_bytes()).digest())
    digest.update(config_json.encode())
    digest.update(code_fingerprint().encode())
    return digest.hexdigest()


def frame_entry(payload):
    """``payload`` plus the digest footer: the on-disk byte format."""
    meta = {"sha256": hashlib.sha256(payload.encode()).hexdigest(),
            "schema": SCHEMA_VERSION,
            "fingerprint": code_fingerprint()}
    return "%s\n%s%s\n" % (payload, FOOTER_PREFIX,
                           json.dumps(meta, sort_keys=True,
                                      separators=(",", ":")))


def unframe_entry(raw):
    """``(payload, meta)`` for on-disk bytes ``raw``.

    Raises ``ValueError`` on any corruption: missing or malformed footer,
    or a payload whose digest does not match the recorded one.
    """
    body, _newline, last = raw.rstrip("\n").rpartition("\n")
    if not last.startswith(FOOTER_PREFIX):
        raise ValueError("missing digest footer")
    try:
        meta = json.loads(last[len(FOOTER_PREFIX):])
        recorded = meta["sha256"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ValueError("malformed digest footer: %s" % (exc,)) from exc
    actual = hashlib.sha256(body.encode()).hexdigest()
    if actual != recorded:
        raise ValueError("digest mismatch: entry is corrupt")
    return body, meta


class ArtifactStore:
    """File-per-artifact store under one root directory.

    Outcome counters partition every load: ``hits`` (verified and
    decoded), ``misses`` (absent, or present under a different schema),
    ``corrupt`` (failed verification or decoding -- quarantined).
    ``quarantined``/``recovered``/``evicted`` count the corresponding
    maintenance actions.
    """

    def __init__(self, root):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.quarantined = 0
        self.recovered = 0
        self.evicted = 0

    def path_for(self, key):
        return os.path.join(self.root, "%s.json" % key)

    @property
    def quarantine_dir(self):
        return os.path.join(self.root, "quarantine")

    # -- reads ---------------------------------------------------------

    def _read_verified(self, key):
        """``(payload, status)``: status is 'hit', 'miss' or 'corrupt'.

        Does not touch the counters -- :meth:`load` and :meth:`load_json`
        classify the final outcome (a verified payload can still fail to
        decode).  Corrupt files are quarantined here.
        """
        path = self.path_for(key)
        try:
            with open(path, "r") as handle:
                raw = handle.read()
        except OSError:
            return None, "miss"
        try:
            payload, _meta = unframe_entry(raw)
        except ValueError:
            self._quarantine(path)
            return None, "corrupt"
        # Touch for LRU: recently used entries survive gc() longest.
        try:
            os.utime(path)
        except OSError:
            pass
        return payload, "hit"

    def load(self, key):
        """The cached :class:`RunArtifact` for ``key``, or ``None``.

        Error contract (shared with :meth:`load_json`): a missing entry
        or one written under a different artifact schema is a **miss**; a
        file that fails digest verification or decoding is **corrupt** --
        quarantined and counted, never raised and never silently served.
        """
        payload, status = self._read_verified(key)
        if status == "miss":
            self.misses += 1
            return None
        if status == "corrupt":
            self.corrupt += 1
            return None
        try:
            data = json.loads(payload)
            if isinstance(data, dict) and data.get("schema") \
                    != SCHEMA_VERSION:
                # A well-formed entry from another schema era: a plain
                # miss (gc() reclaims these), not corruption.
                self.misses += 1
                return None
            artifact = artifact_from_dict(data, source="disk-cache")
        except Exception:
            self.corrupt += 1
            self._quarantine(self.path_for(key))
            return None
        self.hits += 1
        return artifact

    def load_json(self, key):
        """Raw JSON text stored under ``key``, or ``None``.

        The generic counterpart of :meth:`save_json` for non-RunArtifact
        entries (the fuzzer's corpus and campaign records share the
        store).  Same error contract as :meth:`load`: corrupt or
        undecodable entries are quarantined, counted and reported as
        ``None`` -- they never propagate into consumers.
        """
        payload, status = self._read_verified(key)
        if status == "miss":
            self.misses += 1
            return None
        if status == "corrupt":
            self.corrupt += 1
            return None
        try:
            json.loads(payload)
        except json.JSONDecodeError:
            self.corrupt += 1
            self._quarantine(self.path_for(key))
            return None
        self.hits += 1
        return payload

    # -- writes --------------------------------------------------------

    def save(self, key, artifact):
        """Serialize and store ``artifact``; returns the file path."""
        return self.save_json(key, to_json(artifact))

    def save_json(self, key, text):
        """Atomically publish ``text`` (plus digest footer) under ``key``.

        Crash-consistent: a writer that dies leaves only an orphaned
        ``*.tmp`` for :meth:`recover` to sweep, never a partial entry
        under the real name.  Concurrent writers of the same key are safe
        (deterministic pipelines write identical bytes; ``os.replace`` is
        atomic either way).  If a recovery sweep races this publish and
        steals the temp file, the write is retried once.
        """
        framed = frame_entry(text)
        path = self.path_for(key)
        for attempt in (1, 2):
            os.makedirs(self.root, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(framed)
                os.replace(tmp_path, path)
                return path
            except FileNotFoundError:
                # recover() swept our in-flight temp file; retry once.
                if attempt == 2:
                    raise
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        return path

    # -- maintenance ---------------------------------------------------

    def _quarantine(self, path):
        """Move a corrupt file aside (best-effort) and count it."""
        try:
            os.makedirs(self.quarantine_dir, exist_ok=True)
            os.replace(path, os.path.join(self.quarantine_dir,
                                          os.path.basename(path)))
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                return
        self.quarantined += 1

    def quarantine_entry(self, key):
        """Quarantine ``key`` explicitly and count it as corrupt.

        For layered consumers (the code cache) whose payloads carry
        validation the store cannot check itself -- a digest-valid entry
        whose inner schema or fingerprint is stale gets the same
        move-aside-and-count treatment as a corrupt one.  Returns
        whether an entry existed to quarantine.
        """
        path = self.path_for(key)
        if not os.path.exists(path):
            return False
        self.corrupt += 1
        self._quarantine(path)
        return True

    def recover(self):
        """Sweep orphaned ``*.tmp`` files (writers that died mid-publish).

        Returns the swept file names.  Run this before fanning out
        writers, not concurrently with them: an in-flight writer whose
        temp file is stolen retries its publish, but the window is better
        avoided.
        """
        if not os.path.isdir(self.root):
            return []
        swept = []
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".tmp"):
                continue
            try:
                os.unlink(os.path.join(self.root, name))
            except OSError:
                continue
            swept.append(name)
        self.recovered += len(swept)
        return swept

    def gc(self, max_bytes=None):
        """Evict unreachable and least-recently-used entries.

        Entries whose footer records a different schema version or code
        fingerprint can never be hit again (keys hash both) and are
        always evicted; then, if ``max_bytes`` is given, oldest-used
        entries go until the store fits.  Returns the evicted keys.
        """
        current = code_fingerprint()
        survivors = []
        evicted = []
        for key in self.keys():
            path = self.path_for(key)
            try:
                with open(path, "r") as handle:
                    raw = handle.read()
                stat = os.stat(path)
            except OSError:
                continue
            try:
                _payload, meta = unframe_entry(raw)
            except ValueError:
                self._quarantine(path)
                self.corrupt += 1
                continue
            if meta.get("schema") != SCHEMA_VERSION \
                    or meta.get("fingerprint") != current:
                evicted.append(key)
                continue
            survivors.append((stat.st_mtime, stat.st_size, key))
        if max_bytes is not None:
            total = sum(size for _mtime, size, _key in survivors)
            for _mtime, size, key in sorted(survivors):
                if total <= max_bytes:
                    break
                evicted.append(key)
                total -= size
        for key in evicted:
            try:
                os.unlink(self.path_for(key))
            except OSError:
                pass
        self.evicted += len(evicted)
        return evicted

    # -- listing -------------------------------------------------------

    def contains(self, key):
        return os.path.exists(self.path_for(key))

    def keys(self, prefix=None):
        """Stored keys in sorted order; ``prefix`` filters by namespace
        (``"fabric-"``, ``"fuzz-"``, ...) -- the store is shared, so
        consumers enumerate only their own entries."""
        if not os.path.isdir(self.root):
            return []
        names = sorted(name[:-5] for name in os.listdir(self.root)
                       if name.endswith(".json"))
        if prefix:
            names = [name for name in names if name.startswith(prefix)]
        return names

    def clear(self):
        for key in self.keys():
            try:
                os.unlink(self.path_for(key))
            except OSError:
                pass

    def counters(self):
        """The outcome/maintenance counters as a dict (for reports)."""
        return {"hits": self.hits, "misses": self.misses,
                "corrupt": self.corrupt, "quarantined": self.quarantined,
                "recovered": self.recovered, "evicted": self.evicted}


def default_store():
    """The process-default store, or ``None`` when caching is disabled."""
    root = default_cache_dir()
    return ArtifactStore(root) if root else None
