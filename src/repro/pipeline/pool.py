"""Supervised spawn-process fan-out.

``pool.map`` over a :class:`ProcessPoolExecutor` has exactly the failure
modes RevNIC's own drivers are hardened against: one crashed worker
abandons the whole pool, one hung worker blocks ``map`` forever, and a
garbage result propagates as a parse error far from its cause.  This
module replaces it with an explicit supervisor: every job runs in its own
spawned process with a private pipe, gets a **per-job timeout**, a
**bounded retry budget with deterministic backoff**, and classified
failure accounting in a :class:`~repro.faults.report.ResilienceReport`.
Jobs that exhaust the budget are returned to the caller for **per-job**
serial fallback -- a single bad job never forces healthy jobs to
recompute.

The supervisor is also the worker-layer fault-injection point: a
:class:`~repro.faults.plan.FaultSpec` mapped to a job index is delivered
to the child, which kills itself, hangs, or substitutes garbage -- the
exact hostile behaviors the retry/timeout/validation path must absorb.
"""

import multiprocessing
import multiprocessing.connection
import os
import time

#: Environment variable: per-job wall-clock budget in seconds.
TIMEOUT_ENV = "REVNIC_JOB_TIMEOUT"
DEFAULT_TIMEOUT = 300.0

#: Environment variable: retry budget (re-launches after the first try).
RETRIES_ENV = "REVNIC_JOB_RETRIES"
DEFAULT_RETRIES = 2

#: Deterministic backoff before re-launching attempt N+1 after attempt N
#: failed: BASE * 2**(N-1), capped.  No jitter -- chaos replay depends on
#: the schedule being a pure function of the fault plan.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 1.0

_POLL_SECONDS = 0.05


class PoolUnavailable(Exception):
    """Process/pipe machinery could not start at all (restricted
    environments); callers degrade to serial execution."""


def backoff_delay(attempt):
    """Seconds to wait before re-launching after 1-based ``attempt``."""
    return min(BACKOFF_BASE * (2 ** (attempt - 1)), BACKOFF_CAP)


def default_timeout():
    value = os.environ.get(TIMEOUT_ENV)
    if value:
        try:
            parsed = float(value)
            return parsed if parsed > 0 else None
        except ValueError:
            pass
    return DEFAULT_TIMEOUT


def default_retries():
    value = os.environ.get(RETRIES_ENV)
    if value:
        try:
            return max(0, int(value))
        except ValueError:
            pass
    return DEFAULT_RETRIES


def _child_main(conn, worker, job, fault):
    """Process target: apply any worker-layer fault, run the worker, send
    one ``("ok", payload)`` or ``("error", info)`` message, exit."""
    try:
        if fault is not None:
            from repro.faults.inject import apply_worker_fault

            if apply_worker_fault(conn, fault):
                return      # fault consumed the attempt (garbage sent)
        payload = worker(job, fault)
        conn.send(("ok", payload))
    except BaseException as exc:
        try:
            conn.send(("error", {"type": type(exc).__name__,
                                 "message": str(exc)}))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class _Active:
    __slots__ = ("index", "attempt", "process", "conn", "deadline")

    def __init__(self, index, attempt, process, conn, deadline):
        self.index = index
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.deadline = deadline


def run_supervised(jobs, worker, labels=None, max_workers=None,
                   timeout=None, retries=None, faults=None, validate=None,
                   report=None):
    """Run ``worker(job, fault)`` for every job in supervised processes.

    ``validate`` (payload -> value, raising on garbage) gates every
    result; ``faults`` maps job index -> :class:`FaultSpec` for
    injection.  Returns ``(results, failures)``: ``results`` maps job
    index to the validated value, ``failures`` maps indices that
    exhausted the retry budget to a classification string -- the caller
    owns their per-job serial fallback.  Raises :class:`PoolUnavailable`
    when processes cannot be spawned at all.
    """
    from repro.faults.report import ResilienceReport

    if report is None:
        report = ResilienceReport()
    labels = list(labels) if labels else [str(i) for i in range(len(jobs))]
    timeout = default_timeout() if timeout is None else (timeout or None)
    retries = default_retries() if retries is None else retries
    faults = faults or {}
    max_attempts = retries + 1

    try:
        context = multiprocessing.get_context("spawn")
    except ValueError as exc:
        raise PoolUnavailable(str(exc))
    slots = max_workers or min(len(jobs), os.cpu_count() or 1)
    slots = max(1, slots)

    results = {}
    failures = {}
    #: (index, attempt, not_before) -- retries wait out their backoff
    pending = [(i, 1, 0.0) for i in range(len(jobs))]
    active = {}
    spawned_any = False

    def launch(index, attempt):
        nonlocal spawned_any
        fault = None
        spec = faults.get(index)
        if spec is not None and spec.fires_on(attempt):
            fault = spec.to_dict()
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_child_main, args=(child_conn, worker, jobs[index],
                                      fault),
            daemon=True)
        process.start()
        child_conn.close()
        spawned_any = True
        deadline = (time.monotonic() + timeout) if timeout else None
        active[index] = _Active(index, attempt, process, parent_conn,
                                deadline)

    def reap(entry):
        try:
            entry.conn.close()
        except Exception:
            pass
        entry.process.join(timeout=5)
        if entry.process.is_alive():
            entry.process.kill()
            entry.process.join(timeout=5)

    def fail_attempt(entry, kind, detail):
        label = labels[entry.index]
        report.record_attempt(label, entry.attempt,
                              event="%s (attempt %d): %s"
                              % (kind, entry.attempt, detail))
        if entry.attempt < max_attempts:
            pending.append((entry.index, entry.attempt + 1,
                            time.monotonic()
                            + backoff_delay(entry.attempt)))
        else:
            failures[entry.index] = kind
            report.record_outcome(label, "pool-failed:%s" % kind)

    def succeed(entry, value):
        label = labels[entry.index]
        results[entry.index] = value
        report.record_attempt(label, entry.attempt)
        report.record_outcome(label, "pool")

    try:
        while pending or active:
            # Fill free slots with launchable work (backoff respected).
            now = time.monotonic()
            deferred = []
            while pending and len(active) < slots:
                index, attempt, not_before = pending.pop(0)
                if not_before > now:
                    deferred.append((index, attempt, not_before))
                    continue
                try:
                    launch(index, attempt)
                except Exception as exc:
                    if not spawned_any:
                        raise PoolUnavailable(str(exc))
                    fail_attempt(_Active(index, attempt, None, None, None),
                                 "spawn", str(exc))
            pending.extend(deferred)

            if not active:
                if pending:
                    next_ready = min(entry[2] for entry in pending)
                    time.sleep(max(0.0, min(next_ready
                                            - time.monotonic(),
                                            BACKOFF_CAP)))
                continue

            multiprocessing.connection.wait(
                [entry.conn for entry in active.values()],
                timeout=_POLL_SECONDS)
            now = time.monotonic()
            for entry in list(active.values()):
                message = None
                received = False
                if entry.conn.poll():
                    try:
                        message = entry.conn.recv()
                        received = True
                    except (EOFError, OSError):
                        received = False
                    del active[entry.index]
                    reap(entry)
                    if not received:
                        report.worker_crashes += 1
                        fail_attempt(entry, "crash",
                                     "worker closed pipe without result")
                        continue
                    kind, payload = message
                    if kind == "error":
                        report.run_faults += 1
                        fail_attempt(entry, "error", "%s: %s"
                                     % (payload.get("type"),
                                        payload.get("message")))
                        continue
                    try:
                        value = validate(payload) if validate else payload
                    except Exception as exc:
                        report.garbage_results += 1
                        fail_attempt(entry, "garbage", str(exc))
                        continue
                    succeed(entry, value)
                elif not entry.process.is_alive():
                    del active[entry.index]
                    reap(entry)
                    report.worker_crashes += 1
                    fail_attempt(entry, "crash", "worker died (exit %r)"
                                 % (entry.process.exitcode,))
                elif entry.deadline is not None and now > entry.deadline:
                    del active[entry.index]
                    entry.process.kill()
                    reap(entry)
                    report.timeouts += 1
                    fail_attempt(entry, "timeout",
                                 "exceeded %.1fs job budget" % timeout)
    finally:
        for entry in active.values():
            try:
                entry.process.kill()
            except Exception:
                pass
            reap(entry)
    return results, failures
