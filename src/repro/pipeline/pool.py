"""Supervised spawn-process fan-out.

``pool.map`` over a :class:`ProcessPoolExecutor` has exactly the failure
modes RevNIC's own drivers are hardened against: one crashed worker
abandons the whole pool, one hung worker blocks ``map`` forever, and a
garbage result propagates as a parse error far from its cause.  This
module replaces it with an explicit supervisor: every job runs in its own
spawned process with a private pipe, gets a **per-job timeout**, a
**bounded retry budget with deterministic backoff**, and classified
failure accounting in a :class:`~repro.faults.report.ResilienceReport`.
Jobs that exhaust the budget are returned to the caller for **per-job**
serial fallback -- a single bad job never forces healthy jobs to
recompute.

The supervisor is also the worker-layer fault-injection point: a
:class:`~repro.faults.plan.FaultSpec` mapped to a job index is delivered
to the child, which kills itself, hangs, or substitutes garbage -- the
exact hostile behaviors the retry/timeout/validation path must absorb.
"""

import multiprocessing
import multiprocessing.connection
import os
import time
from collections import deque

#: Environment variable: per-job wall-clock budget in seconds.
TIMEOUT_ENV = "REVNIC_JOB_TIMEOUT"
DEFAULT_TIMEOUT = 300.0

#: Environment variable: retry budget (re-launches after the first try).
RETRIES_ENV = "REVNIC_JOB_RETRIES"
DEFAULT_RETRIES = 2

#: Deterministic backoff before re-launching attempt N+1 after attempt N
#: failed: BASE * 2**(N-1), capped.  No jitter -- chaos replay depends on
#: the schedule being a pure function of the fault plan.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 1.0

_POLL_SECONDS = 0.05


class PoolUnavailable(Exception):
    """Process/pipe machinery could not start at all (restricted
    environments); callers degrade to serial execution."""


def backoff_delay(attempt):
    """Seconds to wait before re-launching after 1-based ``attempt``."""
    return min(BACKOFF_BASE * (2 ** (attempt - 1)), BACKOFF_CAP)


def default_timeout():
    value = os.environ.get(TIMEOUT_ENV)
    if value:
        try:
            parsed = float(value)
            return parsed if parsed > 0 else None
        except ValueError:
            pass
    return DEFAULT_TIMEOUT


def default_retries():
    value = os.environ.get(RETRIES_ENV)
    if value:
        try:
            return max(0, int(value))
        except ValueError:
            pass
    return DEFAULT_RETRIES


def _child_main(conn, worker, job, fault):
    """Process target: apply any worker-layer fault, run the worker, send
    one ``("ok", payload)`` or ``("error", info)`` message, exit."""
    try:
        if fault is not None:
            from repro.faults.inject import apply_worker_fault

            if apply_worker_fault(conn, fault):
                return      # fault consumed the attempt (garbage sent)
        payload = worker(job, fault)
        conn.send(("ok", payload))
    except BaseException as exc:
        try:
            conn.send(("error", {"type": type(exc).__name__,
                                 "message": str(exc)}))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class _Active:
    __slots__ = ("index", "attempt", "process", "conn", "deadline")

    def __init__(self, index, attempt, process, conn, deadline):
        self.index = index
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.deadline = deadline


def run_supervised(jobs, worker, labels=None, max_workers=None,
                   timeout=None, retries=None, faults=None, validate=None,
                   report=None):
    """Run ``worker(job, fault)`` for every job in supervised processes.

    ``validate`` (payload -> value, raising on garbage) gates every
    result; ``faults`` maps job index -> :class:`FaultSpec` for
    injection.  Returns ``(results, failures)``: ``results`` maps job
    index to the validated value, ``failures`` maps indices that
    exhausted the retry budget to a classification string -- the caller
    owns their per-job serial fallback.  Raises :class:`PoolUnavailable`
    when processes cannot be spawned at all.
    """
    from repro.faults.report import ResilienceReport

    if report is None:
        report = ResilienceReport()
    labels = list(labels) if labels else [str(i) for i in range(len(jobs))]
    timeout = default_timeout() if timeout is None else (timeout or None)
    retries = default_retries() if retries is None else retries
    faults = faults or {}
    max_attempts = retries + 1

    try:
        context = multiprocessing.get_context("spawn")
    except ValueError as exc:
        raise PoolUnavailable(str(exc))
    slots = max_workers or min(len(jobs), os.cpu_count() or 1)
    slots = max(1, slots)

    results = {}
    failures = {}
    #: (index, attempt, not_before) -- retries wait out their backoff
    pending = [(i, 1, 0.0) for i in range(len(jobs))]
    active = {}
    spawned_any = False

    def launch(index, attempt):
        nonlocal spawned_any
        fault = None
        spec = faults.get(index)
        if spec is not None and spec.fires_on(attempt):
            fault = spec.to_dict()
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_child_main, args=(child_conn, worker, jobs[index],
                                      fault),
            daemon=True)
        process.start()
        child_conn.close()
        spawned_any = True
        deadline = (time.monotonic() + timeout) if timeout else None
        active[index] = _Active(index, attempt, process, parent_conn,
                                deadline)

    def reap(entry):
        try:
            entry.conn.close()
        except Exception:
            pass
        entry.process.join(timeout=5)
        if entry.process.is_alive():
            entry.process.kill()
            entry.process.join(timeout=5)

    def fail_attempt(entry, kind, detail):
        label = labels[entry.index]
        report.record_attempt(label, entry.attempt,
                              event="%s (attempt %d): %s"
                              % (kind, entry.attempt, detail))
        if entry.attempt < max_attempts:
            pending.append((entry.index, entry.attempt + 1,
                            time.monotonic()
                            + backoff_delay(entry.attempt)))
        else:
            failures[entry.index] = kind
            report.record_outcome(label, "pool-failed:%s" % kind)

    def succeed(entry, value):
        label = labels[entry.index]
        results[entry.index] = value
        report.record_attempt(label, entry.attempt)
        report.record_outcome(label, "pool")

    try:
        while pending or active:
            # Fill free slots with launchable work (backoff respected).
            now = time.monotonic()
            deferred = []
            while pending and len(active) < slots:
                index, attempt, not_before = pending.pop(0)
                if not_before > now:
                    deferred.append((index, attempt, not_before))
                    continue
                try:
                    launch(index, attempt)
                except Exception as exc:
                    if not spawned_any:
                        raise PoolUnavailable(str(exc))
                    fail_attempt(_Active(index, attempt, None, None, None),
                                 "spawn", str(exc))
            pending.extend(deferred)

            if not active:
                if pending:
                    next_ready = min(entry[2] for entry in pending)
                    time.sleep(max(0.0, min(next_ready
                                            - time.monotonic(),
                                            BACKOFF_CAP)))
                continue

            multiprocessing.connection.wait(
                [entry.conn for entry in active.values()],
                timeout=_POLL_SECONDS)
            now = time.monotonic()
            for entry in list(active.values()):
                message = None
                received = False
                if entry.conn.poll():
                    try:
                        message = entry.conn.recv()
                        received = True
                    except (EOFError, OSError):
                        received = False
                    del active[entry.index]
                    reap(entry)
                    if not received:
                        report.worker_crashes += 1
                        fail_attempt(entry, "crash",
                                     "worker closed pipe without result")
                        continue
                    kind, payload = message
                    if kind == "error":
                        report.run_faults += 1
                        fail_attempt(entry, "error", "%s: %s"
                                     % (payload.get("type"),
                                        payload.get("message")))
                        continue
                    try:
                        value = validate(payload) if validate else payload
                    except Exception as exc:
                        report.garbage_results += 1
                        fail_attempt(entry, "garbage", str(exc))
                        continue
                    succeed(entry, value)
                elif not entry.process.is_alive():
                    del active[entry.index]
                    reap(entry)
                    report.worker_crashes += 1
                    fail_attempt(entry, "crash", "worker died (exit %r)"
                                 % (entry.process.exitcode,))
                elif entry.deadline is not None and now > entry.deadline:
                    del active[entry.index]
                    entry.process.kill()
                    reap(entry)
                    report.timeouts += 1
                    fail_attempt(entry, "timeout",
                                 "exceeded %.1fs job budget" % timeout)
    finally:
        for entry in active.values():
            try:
                entry.process.kill()
            except Exception:
                pass
            reap(entry)
    return results, failures


# ==========================================================================
# Persistent chunk pool (sharded frontier exploration)

def _chunk_child_main(conn, setup, bootstrap):
    """Persistent worker: run ``setup(bootstrap)`` once, then serve
    ``("chunk", index, payload)`` messages until ``("stop",)`` or EOF,
    answering ``("ok", index, result)`` / ``("error", index, info)``."""
    try:
        run_chunk = setup(bootstrap)
    except BaseException as exc:
        try:
            conn.send(("fatal", {"type": type(exc).__name__,
                                 "message": str(exc)}))
        except Exception:
            pass
        try:
            conn.close()
        except Exception:
            pass
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if not isinstance(message, tuple) or not message \
                or message[0] == "stop":
            break
        _, index, payload = message
        try:
            result = run_chunk(payload)
        except BaseException as exc:
            try:
                conn.send(("error", index, {"type": type(exc).__name__,
                                            "message": str(exc)}))
            except Exception:
                break
        else:
            try:
                conn.send(("ok", index, result))
            except Exception:
                break
    try:
        conn.close()
    except Exception:
        pass


class ChunkPool:
    """Persistent spawn-process pool with contiguous partitioning and
    work stealing.

    :func:`run_supervised` pays one process spawn per job -- fine for a
    handful of driver runs, ruinous for sharded frontier exploration
    where every phase fans out sub-tree chunks.  Here each worker runs
    ``setup(bootstrap)`` exactly once (rebuilding the read-only engine
    context from picklable bootstrap data) and then serves chunk after
    chunk over a duplex pipe, across every phase of a run.

    Each batch is partitioned contiguously across workers; an idle
    worker first drains its own span, then steals from the *tail* of the
    longest remaining backlog (ties to the lowest worker index), so one
    deep sub-tree does not serialize the phase.  Failures (crash, error,
    timeout) retry with the supervisor's deterministic backoff; chunks
    that exhaust the budget come back as ``None`` and the caller re-runs
    them in-process -- sharding can only change wall time, never
    results.
    """

    def __init__(self, setup, bootstrap, workers, timeout=None,
                 retries=None):
        self._setup = setup
        self._bootstrap = bootstrap
        self.workers = max(1, int(workers))
        self.timeout = default_timeout() if timeout is None \
            else (timeout or None)
        self.retries = default_retries() if retries is None else retries
        self.steals = 0
        self.chunk_retries = 0
        self.chunks_failed = 0
        #: chunks served per worker slot (engine frontier stats)
        self.served = [0] * self.workers
        try:
            self._context = multiprocessing.get_context("spawn")
        except ValueError as exc:
            raise PoolUnavailable(str(exc))
        self._procs = [None] * self.workers
        self._conns = [None] * self.workers
        started = 0
        for slot in range(self.workers):
            if self._spawn(slot):
                started += 1
        if not started:
            raise PoolUnavailable("no chunk worker could be spawned")

    # -- worker lifecycle ----------------------------------------------

    def _spawn(self, slot):
        try:
            parent_conn, child_conn = self._context.Pipe(duplex=True)
            process = self._context.Process(
                target=_chunk_child_main,
                args=(child_conn, self._setup, self._bootstrap),
                daemon=True)
            process.start()
            child_conn.close()
        except Exception:
            self._procs[slot] = None
            self._conns[slot] = None
            return False
        self._procs[slot] = process
        self._conns[slot] = parent_conn
        return True

    def _retire(self, slot, kill=False):
        process = self._procs[slot]
        conn = self._conns[slot]
        self._procs[slot] = None
        self._conns[slot] = None
        if conn is not None:
            try:
                conn.close()
            except Exception:
                pass
        if process is not None:
            if kill:
                try:
                    process.kill()
                except Exception:
                    pass
            process.join(timeout=5)
            if process.is_alive():
                try:
                    process.kill()
                except Exception:
                    pass
                process.join(timeout=5)

    def close(self):
        for slot in range(self.workers):
            conn = self._conns[slot]
            if conn is not None:
                try:
                    conn.send(("stop",))
                except Exception:
                    pass
        for slot in range(self.workers):
            self._retire(slot)

    # -- batch execution -----------------------------------------------

    def run(self, messages):
        """Run every chunk; returns results aligned with ``messages``
        (``None`` where the retry budget was exhausted)."""
        count = len(messages)
        results = [None] * count
        resolved = [False] * count
        unresolved = count
        attempts = [0] * count
        retry_pending = []      # (not_before, index)
        busy = {}               # slot -> (index, deadline)

        share, extra = divmod(count, self.workers)
        queues = []
        cursor = 0
        for slot in range(self.workers):
            size = share + (1 if slot < extra else 0)
            queues.append(deque(range(cursor, cursor + size)))
            cursor += size

        def take_chunk(slot):
            if queues[slot]:
                return queues[slot].popleft()
            donor = None
            for other in range(self.workers):
                if other == slot or not queues[other]:
                    continue
                if donor is None or len(queues[other]) > len(queues[donor]):
                    donor = other
            if donor is not None:
                self.steals += 1
                return queues[donor].pop()
            now = time.monotonic()
            ready = [item for item in retry_pending if item[0] <= now]
            if ready:
                item = min(ready)
                retry_pending.remove(item)
                return item[1]
            return None

        def fail_attempt(index):
            nonlocal unresolved
            if attempts[index] <= self.retries:
                self.chunk_retries += 1
                retry_pending.append(
                    (time.monotonic() + backoff_delay(attempts[index]),
                     index))
            else:
                self.chunks_failed += 1
                resolved[index] = True
                unresolved -= 1

        def dispatch():
            for slot in range(self.workers):
                if slot in busy:
                    continue
                if self._conns[slot] is None and not self._spawn(slot):
                    continue
                index = take_chunk(slot)
                if index is None:
                    continue
                attempts[index] += 1
                try:
                    self._conns[slot].send(("chunk", index,
                                            messages[index]))
                except Exception:
                    self._retire(slot, kill=True)
                    fail_attempt(index)
                    continue
                deadline = (time.monotonic() + self.timeout) \
                    if self.timeout else None
                busy[slot] = (index, deadline)
                self.served[slot] += 1

        while unresolved:
            dispatch()
            if not busy:
                if any(conn is not None for conn in self._conns):
                    if retry_pending:
                        next_ready = min(item[0] for item in retry_pending)
                        time.sleep(max(0.0, min(next_ready
                                                - time.monotonic(),
                                                BACKOFF_CAP)))
                    continue
                # Every worker is dead and none respawned: give up on
                # whatever is left (the caller runs it in-process).
                for index in range(count):
                    if not resolved[index]:
                        self.chunks_failed += 1
                        resolved[index] = True
                        unresolved -= 1
                break

            multiprocessing.connection.wait(
                [self._conns[slot] for slot in busy], timeout=_POLL_SECONDS)
            now = time.monotonic()
            for slot, (index, deadline) in list(busy.items()):
                conn = self._conns[slot]
                if conn.poll():
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        del busy[slot]
                        self._retire(slot)
                        fail_attempt(index)
                        continue
                    kind = message[0] if isinstance(message, tuple) \
                        and message else None
                    if kind == "ok":
                        del busy[slot]
                        results[message[1]] = message[2]
                        resolved[message[1]] = True
                        unresolved -= 1
                    elif kind == "error":
                        del busy[slot]
                        fail_attempt(index)
                    else:   # "fatal" during setup, or garbage
                        del busy[slot]
                        self._retire(slot, kill=True)
                        fail_attempt(index)
                elif not self._procs[slot].is_alive():
                    del busy[slot]
                    self._retire(slot)
                    fail_attempt(index)
                elif deadline is not None and now > deadline:
                    del busy[slot]
                    self._retire(slot, kill=True)
                    fail_attempt(index)
        return results
