"""Artifact-based pipeline orchestration.

The split this package implements mirrors MetaSys/SFIP (PAPERS.md): an
expensive offline producer -- one RevNIC symbolic-execution run plus
synthesis per driver -- hands a compact, serializable
:class:`~repro.pipeline.artifact.RunArtifact` to its many cheap consumers
(tables, figures, performance model, functional tests).  Three layers:

* :mod:`repro.pipeline.artifact` -- the versioned JSON codec for run
  artifacts (shared translation blocks and expression DAGs interned into
  tables; canonical byte-deterministic encoding);
* :mod:`repro.pipeline.store` -- the content-addressed on-disk cache
  (keyed by driver image, config, schema and a source-tree fingerprint;
  checksummed entries, quarantine, crash-consistent publish, GC);
* :mod:`repro.pipeline.pool` -- the supervised spawn-process fan-out
  (per-job timeout, bounded retry, classified failure accounting);
* :mod:`repro.pipeline.orchestrator` -- the orchestration layer that
  computes cold artifacts in isolated supervised workers.
"""

from repro.pipeline.artifact import (
    RunArtifact,
    SCHEMA_VERSION,
    build_artifact,
    canonical_json,
    from_json,
    to_json,
)
from repro.pipeline.orchestrator import (
    PipelineOrchestrator,
    build_config,
    execute_run,
    get_orchestrator,
)
from repro.pipeline.pool import PoolUnavailable, run_supervised
from repro.pipeline.store import (
    ArtifactStore,
    artifact_key,
    code_fingerprint,
    default_store,
)

__all__ = [
    "RunArtifact",
    "SCHEMA_VERSION",
    "build_artifact",
    "canonical_json",
    "from_json",
    "to_json",
    "PipelineOrchestrator",
    "build_config",
    "execute_run",
    "get_orchestrator",
    "ArtifactStore",
    "artifact_key",
    "code_fingerprint",
    "default_store",
    "PoolUnavailable",
    "run_supervised",
]
