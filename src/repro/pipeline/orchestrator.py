"""Process-pool pipeline orchestration.

RevNIC's evaluation runs one reverse-engineering pipeline per driver;
the runs are independent, so the orchestrator fans them out across
``multiprocessing`` workers (spawn context: each worker is a fresh
interpreter running RevNIC + synthesis in isolation) and collects
serialized :class:`~repro.pipeline.artifact.RunArtifact` objects.  The
four-driver warm-up therefore costs roughly the slowest single driver
instead of the sum of all four -- and with a warm on-disk cache, almost
nothing.

Lookup order per run: in-memory (this orchestrator) -> on-disk store
(content-addressed, survives the process) -> compute (in a supervised
worker during :meth:`PipelineOrchestrator.warm`, inline otherwise).
Because runs are deterministic (interned expressions, seeded solver --
see DESIGN.md), all three paths produce byte-identical canonical
artifacts; tests assert this.

Fan-out rides :func:`repro.pipeline.pool.run_supervised`: per-job
timeout, bounded retry with deterministic backoff, and **per-job** serial
fallback -- one crashed, hung or garbage-returning worker costs retries
of that job only, never a serial recompute of healthy jobs, and every
completed artifact is persisted before any fallback decision.  Each
:meth:`warm` records how it survived in a
:class:`~repro.faults.report.ResilienceReport`
(:attr:`last_resilience`); a job that cannot be healed raises its
classified error after recording a replayable
:class:`~repro.faults.report.FaultRecord`.
"""

import os
import time

from repro.errors import ReproError
from repro.pipeline.artifact import build_artifact, from_json, to_json
from repro.pipeline.store import ArtifactStore, artifact_key, default_store

#: Environment variable: set to ``0`` to force serial in-process warm-up.
PARALLEL_ENV = "REVNIC_PARALLEL"


def resolve_split_depth(split_depth=None):
    """The effective frontier split depth: an explicit value, else the
    ``REVNIC_EXPLORE_SPLIT_DEPTH`` environment default (0 = legacy)."""
    from repro.symex.frontier import env_split_depth

    return env_split_depth() if split_depth is None else max(0,
                                                             int(split_depth))


def build_config(name, strategy="coverage", script="default",
                 split_depth=None):
    """The canonical :class:`RevNicConfig` for one orchestrated run."""
    from repro.drivers import device_class
    from repro.revnic import RevNicConfig

    return RevNicConfig(driver_name=name, pci=device_class(name).PCI,
                        strategy=strategy, script=script,
                        explore_split_depth=resolve_split_depth(split_depth))


def execute_run(name, strategy="coverage", script="default",
                split_depth=None, source="computed", fault=None):
    """Run the full pipeline for one driver in this process.

    Pure producer: builds the driver image, runs RevNIC under ``config``,
    synthesizes from the captured result, and returns the
    :class:`RunArtifact` -- no singletons, no shared state, safe to call
    from any worker process.  ``fault`` is the run-layer fault-injection
    hook (:mod:`repro.faults`): a matching spec raises its induced,
    classified exception at the requested stage.  ``split_depth``
    enables partitioned frontier exploration (see
    :mod:`repro.symex.frontier`); the worker count stays an environment
    knob because it cannot change the artifact.
    """
    from repro.drivers import build_driver
    from repro.revnic import RevNic
    from repro.synth import synthesize

    if fault is not None:
        from repro.faults.inject import maybe_raise_run_fault
    image = build_driver(name)
    config = build_config(name, strategy, script, split_depth)
    engine = RevNic(image, config)
    if fault is not None:
        maybe_raise_run_fault(fault, "revnic")
    result = engine.run()
    if fault is not None:
        maybe_raise_run_fault(fault, "synthesize")
    synthesized = synthesize(result)
    return build_artifact(config, result, synthesized, source=source)


def _worker(job, fault=None):
    """Supervised-pool target: compute one artifact, return its
    serialized form.

    Runs in a spawned interpreter; the JSON produced here is byte-for-byte
    what the parent would produce in-process (determinism tests hold the
    pipeline to that).  Worker-layer faults never reach this function
    (the pool child consumes them); run-layer faults pass through to
    :func:`execute_run`.
    """
    name, strategy, script = job[:3]
    split_depth = job[3] if len(job) > 3 else None
    artifact = execute_run(name, strategy, script, split_depth,
                           source="worker", fault=fault)
    return to_json(artifact)


class PipelineOrchestrator:
    """Runs driver pipelines at most once, fanning cold runs out across
    supervised processes and persisting artifacts in the on-disk store."""

    def __init__(self, store=None, max_workers=None, parallel=None,
                 job_timeout=None, retries=None):
        self._artifacts = {}
        #: ``store=False`` disables disk caching; ``None`` uses the
        #: default store (which the REVNIC_ARTIFACT_CACHE env controls).
        self.store = default_store() if store is None else (store or None)
        self.max_workers = max_workers
        if parallel is None:
            parallel = os.environ.get(PARALLEL_ENV, "1") != "0"
        self.parallel = parallel
        #: per-job supervision budgets; ``None`` defers to the
        #: REVNIC_JOB_TIMEOUT / REVNIC_JOB_RETRIES env defaults.
        self.job_timeout = job_timeout
        self.retries = retries
        #: wall-clock of the last :meth:`warm` fan-out, and how it ran
        self.last_warm_seconds = None
        self.last_warm_mode = None
        #: the :class:`ResilienceReport` of the last :meth:`warm`
        self.last_resilience = None

    # ------------------------------------------------------------------

    def run(self, name, strategy="coverage", script="default",
            split_depth=None):
        """The :class:`RunArtifact` for one driver configuration."""
        key = (name, strategy, script, resolve_split_depth(split_depth))
        artifact = self._artifacts.get(key)
        if artifact is None:
            artifact = self._load_cached(*key)
        if artifact is None:
            artifact = execute_run(*key)
            self._store_artifact(key, artifact)
        self._artifacts[key] = artifact
        return artifact

    def warm(self, names=None, strategy="coverage", script="default",
             parallel=None, faults=None, split_depth=None):
        """Materialize artifacts for ``names`` (default: all drivers),
        computing the missing ones in supervised parallel workers.

        Returns ``{name: RunArtifact}``; :attr:`last_warm_seconds` /
        :attr:`last_warm_mode` record how the fan-out ran (for the
        benchmark report) and :attr:`last_resilience` records what it
        survived.  ``faults`` maps driver name -> FaultSpec for chaos
        campaigns.  A job that fails even its serial fallback raises the
        classified error -- after recording a replayable fault record and
        with every healthy artifact already persisted.
        """
        from repro.drivers import DRIVERS
        from repro.faults.report import FaultRecord, ResilienceReport

        names = sorted(DRIVERS) if names is None else list(names)
        split_depth = resolve_split_depth(split_depth)
        report = ResilienceReport()
        self.last_resilience = report
        store_before = self.store.counters() if self.store else None
        started = time.monotonic()
        if self.store is not None:
            # Sweep publishes crashed mid-os.replace before we fan out
            # new writers over the same root.
            self.store.recover()
        missing = []
        with report.stage_timer("load"):
            for name in names:
                key = (name, strategy, script, split_depth)
                if key in self._artifacts:
                    continue
                artifact = self._load_cached(*key)
                if artifact is not None:
                    self._artifacts[key] = artifact
                else:
                    missing.append(key)

        if parallel is None:
            # Fanning out only pays when there is real parallelism:
            # spawn-per-worker interpreter start-up loses on one core.
            parallel = self.parallel and (os.cpu_count() or 1) > 1
        mode = "cached"
        if missing:
            mode = "serial"
            pooled = set()
            pool_attempted = parallel and len(missing) > 1
            if pool_attempted:
                with report.stage_timer("pool"):
                    pooled = self._run_pool(missing, faults=faults,
                                            report=report)
                if pooled:
                    mode = "parallel"
            leftovers = [key for key in missing
                         if key not in self._artifacts]
            if leftovers:
                with report.stage_timer("serial"):
                    self._run_serial(leftovers, faults, report,
                                     degraded=pool_attempted)
        self.last_warm_seconds = time.monotonic() - started
        self.last_warm_mode = mode
        if store_before is not None:
            after = self.store.counters()
            report.quarantined += after["quarantined"] \
                - store_before["quarantined"]
            report.recovered_tmp += after["recovered"] \
                - store_before["recovered"]
            report.evicted += after["evicted"] - store_before["evicted"]
        return {name: self._artifacts[(name, strategy, script,
                                       split_depth)]
                for name in names}

    def all_drivers(self):
        """Warmed artifacts for the whole corpus, in sorted driver order."""
        return list(self.warm().values())

    # ------------------------------------------------------------------

    def _run_pool(self, jobs, faults=None, report=None):
        """Fan ``jobs`` out over the supervised spawn pool.

        Persists and caches every artifact the pool completes -- as each
        job finishes, independently of any other job's fate -- and
        returns the set of completed job keys.  Jobs the pool could not
        heal (and pool-level unavailability) are left to the caller's
        per-job serial fallback.
        """
        from repro.pipeline import pool as _pool

        fault_map = {}
        if faults:
            for index, job in enumerate(jobs):
                spec = faults.get(job[0])
                if spec is not None and spec.layer in ("worker", "run"):
                    fault_map[index] = spec

        def _validate(payload):
            # Persist the worker's bytes as-is: re-encoding in the parent
            # would force the (lazy) trace decode and produce identical
            # JSON anyway.
            return payload, from_json(payload, source="worker")

        try:
            results, _failures = _pool.run_supervised(
                jobs, _worker, labels=[job[0] for job in jobs],
                max_workers=self.max_workers, timeout=self.job_timeout,
                retries=self.retries, faults=fault_map,
                validate=_validate, report=report)
        except _pool.PoolUnavailable as exc:
            if report is not None:
                report.record_degradation(
                    "pool", "pool unavailable: %s" % exc)
            return set()
        completed = set()
        for index, (text, artifact) in sorted(results.items()):
            job = jobs[index]
            if self.store is not None:
                self.store.save_json(self._disk_key(*job), text)
            self._artifacts[job] = artifact
            completed.add(job)
        return completed

    def _run_serial(self, jobs, faults, report, degraded):
        """Per-job serial fallback (or plain serial warm-up).

        A job that fails here has exhausted every healing layer: record a
        classified, replayable :class:`FaultRecord` and re-raise --
        loudly -- leaving all other artifacts computed and persisted.
        """
        from repro.faults.report import FaultRecord

        for key in jobs:
            name = key[0]
            if degraded:
                report.record_degradation("warm",
                                          "per-job serial fallback",
                                          job=name)
            spec = (faults or {}).get(name)
            attempt = report.jobs.get(name, {}).get("attempts", 0) + 1
            run_fault = None
            if spec is not None and spec.layer == "run" \
                    and spec.fires_on(attempt):
                run_fault = spec
            try:
                artifact = execute_run(*key, fault=run_fault)
            except ReproError as exc:
                report.record_attempt(name, attempt,
                                      event="serial: %s: %s"
                                      % (type(exc).__name__, exc))
                report.record_outcome(name, "failed")
                report.record_fault(FaultRecord(
                    layer="run" if run_fault is not None else "serial",
                    kind=type(exc).__name__, job=name, error=str(exc),
                    seed=getattr(spec, "params", {}).get("seed")
                    if spec is not None else None,
                    attempts=attempt))
                raise
            self._store_artifact(key, artifact)
            self._artifacts[key] = artifact
            report.record_attempt(name, attempt)
            report.record_outcome(name,
                                  "serial-fallback" if degraded
                                  else "serial")

    def _load_cached(self, name, strategy, script, split_depth=None):
        if self.store is None:
            return None
        return self.store.load(self._disk_key(name, strategy, script,
                                              split_depth))

    def _store_artifact(self, key, artifact):
        if self.store is None:
            return
        self.store.save(self._disk_key(*key), artifact)

    def _disk_key(self, name, strategy, script, split_depth=None):
        from repro.drivers import build_driver

        # The split depth rides the config, so partitioned and legacy
        # artifacts can never collide in the content-addressed store.
        return artifact_key(build_driver(name),
                            build_config(name, strategy, script,
                                         split_depth))


_GLOBAL_ORCHESTRATOR = None


def get_orchestrator():
    """The process-wide orchestrator (the evaluation's shared cache)."""
    global _GLOBAL_ORCHESTRATOR
    if _GLOBAL_ORCHESTRATOR is None:
        _GLOBAL_ORCHESTRATOR = PipelineOrchestrator()
    return _GLOBAL_ORCHESTRATOR
