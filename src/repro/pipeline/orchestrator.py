"""Process-pool pipeline orchestration.

RevNIC's evaluation runs one reverse-engineering pipeline per driver;
the runs are independent, so the orchestrator fans them out across
``multiprocessing`` workers (spawn context: each worker is a fresh
interpreter running RevNIC + synthesis in isolation) and collects
serialized :class:`~repro.pipeline.artifact.RunArtifact` objects.  The
four-driver warm-up therefore costs roughly the slowest single driver
instead of the sum of all four -- and with a warm on-disk cache, almost
nothing.

Lookup order per run: in-memory (this orchestrator) -> on-disk store
(content-addressed, survives the process) -> compute (in a worker during
:meth:`PipelineOrchestrator.warm`, inline otherwise).  Because runs are
deterministic (interned expressions, seeded solver -- see DESIGN.md),
all three paths produce byte-identical canonical artifacts; tests assert
this.
"""

import os
import time

from repro.pipeline.artifact import build_artifact, from_json, to_json
from repro.pipeline.store import ArtifactStore, artifact_key, default_store

#: Environment variable: set to ``0`` to force serial in-process warm-up.
PARALLEL_ENV = "REVNIC_PARALLEL"


def build_config(name, strategy="coverage", script="default"):
    """The canonical :class:`RevNicConfig` for one orchestrated run."""
    from repro.drivers import device_class
    from repro.revnic import RevNicConfig

    return RevNicConfig(driver_name=name, pci=device_class(name).PCI,
                        strategy=strategy, script=script)


def execute_run(name, strategy="coverage", script="default",
                source="computed"):
    """Run the full pipeline for one driver in this process.

    Pure producer: builds the driver image, runs RevNIC under ``config``,
    synthesizes from the captured result, and returns the
    :class:`RunArtifact` -- no singletons, no shared state, safe to call
    from any worker process.
    """
    from repro.drivers import build_driver
    from repro.revnic import RevNic
    from repro.synth import synthesize

    image = build_driver(name)
    config = build_config(name, strategy, script)
    engine = RevNic(image, config)
    result = engine.run()
    synthesized = synthesize(result)
    return build_artifact(config, result, synthesized, source=source)


def _worker(job):
    """Pool target: compute one artifact, return its serialized form.

    Runs in a spawned interpreter; the JSON produced here is byte-for-byte
    what the parent would produce in-process (determinism tests hold the
    pipeline to that).
    """
    name, strategy, script = job
    artifact = execute_run(name, strategy, script, source="worker")
    return job, to_json(artifact)


class PipelineOrchestrator:
    """Runs driver pipelines at most once, fanning cold runs out across
    processes and persisting artifacts in the on-disk store."""

    def __init__(self, store=None, max_workers=None, parallel=None):
        self._artifacts = {}
        #: ``store=False`` disables disk caching; ``None`` uses the
        #: default store (which the REVNIC_ARTIFACT_CACHE env controls).
        self.store = default_store() if store is None else (store or None)
        self.max_workers = max_workers
        if parallel is None:
            parallel = os.environ.get(PARALLEL_ENV, "1") != "0"
        self.parallel = parallel
        #: wall-clock of the last :meth:`warm` fan-out, and how it ran
        self.last_warm_seconds = None
        self.last_warm_mode = None

    # ------------------------------------------------------------------

    def run(self, name, strategy="coverage", script="default"):
        """The :class:`RunArtifact` for one driver configuration."""
        key = (name, strategy, script)
        artifact = self._artifacts.get(key)
        if artifact is None:
            artifact = self._load_cached(*key)
        if artifact is None:
            artifact = execute_run(name, strategy, script)
            self._store_artifact(key, artifact)
        self._artifacts[key] = artifact
        return artifact

    def warm(self, names=None, strategy="coverage", script="default",
             parallel=None):
        """Materialize artifacts for ``names`` (default: all drivers),
        computing the missing ones in parallel workers.

        Returns ``{name: RunArtifact}``; :attr:`last_warm_seconds` /
        :attr:`last_warm_mode` record how the fan-out ran (for the
        benchmark report).
        """
        from repro.drivers import DRIVERS

        names = sorted(DRIVERS) if names is None else list(names)
        started = time.monotonic()
        missing = []
        for name in names:
            key = (name, strategy, script)
            if key in self._artifacts:
                continue
            artifact = self._load_cached(*key)
            if artifact is not None:
                self._artifacts[key] = artifact
            else:
                missing.append(key)

        if parallel is None:
            # Fanning out only pays when there is real parallelism:
            # spawn-per-worker interpreter start-up loses on one core.
            parallel = self.parallel and (os.cpu_count() or 1) > 1
        mode = "cached"
        if missing:
            mode = "serial"
            if parallel and len(missing) > 1:
                mode = "parallel" if self._run_pool(missing) else "serial"
            if mode == "serial":
                for key in missing:
                    if key not in self._artifacts:
                        artifact = execute_run(*key)
                        self._store_artifact(key, artifact)
                        self._artifacts[key] = artifact
        self.last_warm_seconds = time.monotonic() - started
        self.last_warm_mode = mode
        return {name: self._artifacts[(name, strategy, script)]
                for name in names}

    def all_drivers(self):
        """Warmed artifacts for the whole corpus, in sorted driver order."""
        return list(self.warm().values())

    # ------------------------------------------------------------------

    def _run_pool(self, jobs):
        """Fan ``jobs`` out over a spawn-context process pool.

        Returns True when every job came back; any pool-level failure
        (restricted environments without working semaphores, worker
        crashes) leaves completed artifacts in place and reports False so
        the caller falls back to serial execution for the rest.
        """
        import concurrent.futures
        import multiprocessing

        try:
            context = multiprocessing.get_context("spawn")
            workers = self.max_workers or min(len(jobs),
                                              os.cpu_count() or 1)
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=workers, mp_context=context) as pool:
                for job, text in pool.map(_worker, jobs):
                    # Persist the worker's bytes as-is: re-encoding in
                    # the parent would force the (lazy) trace decode and
                    # produce the identical JSON anyway.
                    if self.store is not None:
                        self.store.save_json(self._disk_key(*job), text)
                    self._artifacts[job] = from_json(text, source="worker")
        except Exception:
            return False
        return all(job in self._artifacts for job in jobs)

    def _load_cached(self, name, strategy, script):
        if self.store is None:
            return None
        return self.store.load(self._disk_key(name, strategy, script))

    def _store_artifact(self, key, artifact):
        if self.store is None:
            return
        self.store.save(self._disk_key(*key), artifact)

    def _disk_key(self, name, strategy, script):
        from repro.drivers import build_driver

        return artifact_key(build_driver(name),
                            build_config(name, strategy, script))


_GLOBAL_ORCHESTRATOR = None


def get_orchestrator():
    """The process-wide orchestrator (the evaluation's shared cache)."""
    global _GLOBAL_ORCHESTRATOR
    if _GLOBAL_ORCHESTRATOR is None:
        _GLOBAL_ORCHESTRATOR = PipelineOrchestrator()
    return _GLOBAL_ORCHESTRATOR
