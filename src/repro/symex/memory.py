"""Symbolic guest memory with page-level copy-on-write.

Each state's memory is a byte-granular symbolic overlay on top of the
concrete machine memory.  Forking shares overlay pages between parent and
child until either writes (page-level COW) -- the same extension the paper
made to KLEE's object-level COW to cope with tens of thousands of states
(section 3.4).
"""

from repro.layout import PAGE_SIZE
from repro.symex.expr import bv_concat, bv_extract, bv_zext, is_concrete


class SymMemory:
    """Concrete backing + symbolic byte overlay with COW pages."""

    def __init__(self, concrete_read, pages=None, owned=None):
        self._concrete_read = concrete_read
        #: page number -> {offset: byte value (int or 8-bit Expr)}
        self._pages = pages if pages is not None else {}
        #: pages this instance may mutate without copying
        self._owned = owned if owned is not None else set(self._pages)

    def fork(self):
        """Cheap fork: share all pages; both sides lose ownership."""
        self._owned = set()
        return SymMemory(self._concrete_read, dict(self._pages), set())

    # ------------------------------------------------------------------

    def _page_for_write(self, page_number):
        page = self._pages.get(page_number)
        if page is None:
            page = {}
            self._pages[page_number] = page
            self._owned.add(page_number)
        elif page_number not in self._owned:
            page = dict(page)
            self._pages[page_number] = page
            self._owned.add(page_number)
        return page

    def read_byte(self, address):
        """Read one byte: overlay value or concrete backing."""
        page = self._pages.get(address // PAGE_SIZE)
        if page is not None:
            value = page.get(address % PAGE_SIZE)
            if value is not None:
                return value
        return self._concrete_read(address, 1)

    def write_byte(self, address, value):
        page = self._page_for_write(address // PAGE_SIZE)
        page[address % PAGE_SIZE] = value

    def read(self, address, width):
        """Read ``width`` bytes, little endian.

        Returns an int when every byte is concrete, else an expression
        zero-extended to 32 bits.
        """
        parts = [self.read_byte(address + i) for i in range(width)]
        if all(is_concrete(p) for p in parts):
            value = 0
            for i, part in enumerate(parts):
                value |= (part & 0xFF) << (8 * i)
            return value
        return bv_zext(bv_concat(parts), 32)

    def write(self, address, width, value):
        """Write ``width`` bytes, little endian; ``value`` int or Expr."""
        for i in range(width):
            self.write_byte(address + i, bv_extract(value, 8 * i, 8))

    def write_bytes(self, address, data):
        for i, byte in enumerate(data):
            self.write_byte(address + i, byte)

    # ------------------------------------------------------------------

    def overlay_items(self):
        """Yield ``(address, value)`` for every overlay byte (concrete and
        symbolic).  The overlay *is* the state-specific memory delta, so
        this is what the frontier codec serializes to move a state across
        a process boundary."""
        for page_number, page in self._pages.items():
            base = page_number * PAGE_SIZE
            for offset, value in page.items():
                yield base + offset, value

    def symbolic_addresses(self):
        """Yield ``(address, value)`` for all symbolic overlay bytes."""
        for page_number, page in self._pages.items():
            base = page_number * PAGE_SIZE
            for offset, value in page.items():
                if not is_concrete(value):
                    yield base + offset, value

    def concrete_delta(self):
        """Yield ``(address, int)`` for concrete overlay bytes (writes the
        path performed that have not reached backing memory)."""
        for page_number, page in self._pages.items():
            base = page_number * PAGE_SIZE
            for offset, value in page.items():
                if is_concrete(value):
                    yield base + offset, value

    def overlay_size(self):
        """Total overlay bytes (memory-pressure metric)."""
        return sum(len(page) for page in self._pages.values())
