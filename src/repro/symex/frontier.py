"""Sharded in-run symbolic exploration: the frontier plane.

One RevNIC run explores an exploration tree whose forks share no mutable
engine state once memory and solver contexts are COW-forked -- the shape
is embarrassingly parallel below any fork depth.  This module makes that
concrete:

* the **frontier codec** serializes a live :class:`SymState` -- registers,
  the symbolic-memory overlay, path constraints, the solver context's
  cached witness models, per-path OS effects and the trace prefix --
  through the artifact expression/block tables (PR 3's codec), so a
  state can cross a process boundary and resume bit-for-bit;
* :func:`explore_subtree` runs one frontier state's sub-tree against a
  **fully isolated** engine slice (fresh solver, namespaced hardware
  symbols, namespaced wiretap sequence, namespaced state ids, private
  shell-device clone and coverage tracker), so its outcome is a pure
  function of ``(context, chunk)`` -- identical whether it runs
  in-process or in a spawned worker;
* :func:`run_exploration` is the one scheduler loop shared by the
  engine's legacy phase exploration and every sub-tree, with an optional
  *park* hook that diverts fork children crossing the configured split
  depth into the frontier instead of the worklist.

Determinism discipline: every namespace (state ids, wiretap sequence
numbers, hardware symbol names) is derived from the sub-tree's run-wide
index, and every serialized collection is emitted in a canonical order,
so the engine's merged :class:`RunArtifact` is byte-identical between
serial and sharded exploration of the same partition.
"""

import itertools
import os

from repro.symex import expr as E
from repro.symex.executor import HardwarePolicy, SymExecutor
from repro.symex.memory import SymMemory
from repro.symex.solver import Solver
from repro.symex.state import OsContext, PathStatus, SymState

#: Environment variable: worker processes for sharded exploration
#: (0/1 = explore sub-trees in-process).  Runtime-only: the worker count
#: never changes artifact bytes, only wall time.
WORKERS_ENV = "REVNIC_EXPLORE_WORKERS"

#: Environment variable: default fork depth at which states are parked
#: into the frontier (0 = legacy single-queue exploration).  Part of
#: :class:`RevNicConfig` -- it changes exploration semantics and
#: therefore artifact bytes and cache keys.
SPLIT_DEPTH_ENV = "REVNIC_EXPLORE_SPLIT_DEPTH"

#: Disjoint per-sub-tree namespaces.  Sub-tree ``index`` (run-wide,
#: assigned in frontier order) allocates state ids from
#: ``(index + 1) * SUBTREE_ID_STRIDE`` and wiretap sequence numbers from
#: ``(index + 1) * SUBTREE_SEQ_STRIDE``; the engine's own prefix counters
#: stay far below the first stride.
SUBTREE_ID_STRIDE = 1_000_000
SUBTREE_SEQ_STRIDE = 1_000_000


def env_workers():
    """Worker count from ``REVNIC_EXPLORE_WORKERS`` (default 0)."""
    value = os.environ.get(WORKERS_ENV)
    if value:
        try:
            return max(0, int(value))
        except ValueError:
            pass
    return 0


def env_split_depth():
    """Split depth from ``REVNIC_EXPLORE_SPLIT_DEPTH`` (default 0)."""
    value = os.environ.get(SPLIT_DEPTH_ENV)
    if value:
        try:
            return max(0, int(value))
        except ValueError:
            pass
    return 0


def subtree_id_base(index):
    return (index + 1) * SUBTREE_ID_STRIDE


def subtree_seq_base(index):
    return (index + 1) * SUBTREE_SEQ_STRIDE


def subtree_symbol_prefix(index):
    """Hardware-symbol namespace for sub-tree ``index`` (prefix tags are
    ``kind_address``, so ``s<index>_`` can never collide with them)."""
    return "s%d_" % index


def is_success(return_value):
    """The paper's completion-cutoff predicate: a concrete
    ``NDIS_STATUS_SUCCESS`` return."""
    from repro.guestos.structures import NdisStatus

    if not isinstance(return_value, int):
        return False
    return return_value == NdisStatus.SUCCESS


# ==========================================================================
# The shared exploration loop

class FrontierPark:
    """Diverts states crossing the split depth into the frontier.

    Offered states are collected in park order -- deterministic, because
    the prefix exploration that produces them is -- which later becomes
    the canonical sub-tree merge order.
    """

    def __init__(self, split_depth, base_depth):
        self.split_depth = split_depth
        self.base_depth = base_depth
        self.states = []

    def offer(self, state):
        """Park ``state`` if it crossed the split depth; True when taken."""
        if state.status is not PathStatus.RUNNING:
            return False
        if state.depth - self.base_depth < self.split_depth:
            return False
        self.states.append(state)
        return True


class ExplorationResult:
    """What one scheduler loop produced."""

    __slots__ = ("terminal", "completed", "blocks", "cutoff")

    def __init__(self, terminal, completed, blocks, cutoff):
        self.terminal = terminal      # every finished state, event order
        self.completed = completed    # COMPLETED subset, completion order
        self.blocks = blocks          # translation blocks executed
        self.cutoff = cutoff          # the completion cutoff fired


def run_exploration(scheduler, executor, bridge, coverage, config, budget,
                    success=is_success, park=None, on_block=None):
    """Run the scheduler loop until the budget, the cutoff, or quiescence.

    This is the exploration semantics of one entry-point phase (paper
    section 3.2) factored out of the engine so sub-trees execute the
    *same* loop: pick per strategy, step, enqueue successors, cross the
    OS boundary on import calls, track discovery staleness, and apply the
    entry-point completion cutoff.  ``park`` (a :class:`FrontierPark`)
    intercepts states before they reach the scheduler; ``on_block`` runs
    after every executed block (the engine's run-wide accounting hook).
    """
    terminal = []
    completed = []
    blocks = 0
    covered_before = len(coverage.executed)
    blocks_at_last_discovery = 0
    cutoff = False

    def enqueue(state):
        if park is not None and park.offer(state):
            return
        scheduler.add(state)
        if state.status == PathStatus.KILLED:
            terminal.append(state)

    while blocks < budget:
        state = scheduler.next_state()
        if state is None:
            break
        successors, events = executor.step(state)
        blocks += 1
        if on_block is not None:
            on_block()
        for successor in successors:
            enqueue(successor)
        for event in events:
            if event.kind == "import-call":
                followups = bridge.handle(event.state, event.slot)
                for follow in followups:
                    enqueue(follow)
                if event.state.status == PathStatus.COMPLETED:
                    completed.append(event.state)
                    terminal.append(event.state)
                elif event.state.status in (PathStatus.ERROR,
                                            PathStatus.HALTED):
                    terminal.append(event.state)
            elif event.kind == "completed":
                completed.append(event.state)
                terminal.append(event.state)
            else:
                terminal.append(event.state)
        covered_now = len(coverage.executed)
        if covered_now != covered_before:
            covered_before = covered_now
            blocks_at_last_discovery = blocks
        successes = [s for s in completed if success(s.return_value)]
        stale = blocks - blocks_at_last_discovery >= config.stale_window
        if len(successes) >= config.completion_cutoff and stale:
            for killed in scheduler.states:
                terminal.append(killed)
            scheduler.kill_all()
            cutoff = True
            break

    # Collect remaining queued states as killed paths (their traces
    # still contribute covered blocks).
    for state in scheduler.states:
        state.status = PathStatus.KILLED
        terminal.append(state)
    scheduler.states = []
    return ExplorationResult(terminal, completed, blocks, cutoff)


# ==========================================================================
# Sub-tree execution

class SubtreeContext:
    """Per-process immutable plumbing shared by every sub-tree run."""

    __slots__ = ("translator", "concrete_read", "import_names", "pci",
                 "config", "text_base", "text_end", "leaders")

    def __init__(self, translator, concrete_read, import_names, pci,
                 config, text_base, text_end, leaders):
        self.translator = translator
        self.concrete_read = concrete_read
        self.import_names = import_names
        self.pci = pci
        self.config = config
        self.text_base = text_base
        self.text_end = text_end
        self.leaders = leaders


class SubtreeChunk:
    """One unit of sharded work: a frontier state plus its context."""

    __slots__ = ("index", "state", "budget", "covered_seed", "dma_seed")

    def __init__(self, index, state, budget, covered_seed, dma_seed):
        self.index = index                  # run-wide sub-tree index
        self.state = state                  # frontier root SymState
        self.budget = budget                # block budget for the sub-tree
        self.covered_seed = covered_seed    # covered instrs at fan-out
        self.dma_seed = dma_seed            # shell DMA regions at fan-out


class SubtreeOutcome:
    """Everything one sub-tree run produced, merge-ready."""

    __slots__ = ("index", "paths", "blocks", "completed_count",
                 "max_depth", "first_success", "first_completed",
                 "entry_updates", "dma_added", "covered_new", "counters")

    def __init__(self, index, paths, blocks, completed_count, max_depth,
                 first_success, first_completed, entry_updates, dma_added,
                 covered_new, counters):
        self.index = index
        self.paths = paths                  # PathTrace list, event order
        self.blocks = blocks
        self.completed_count = completed_count
        self.max_depth = max_depth          # deepest state, frontier-rel.
        self.first_success = first_success  # SymState or None
        self.first_completed = first_completed
        self.entry_updates = entry_updates  # (name, address) in call order
        self.dma_added = dma_added          # regions registered in-tree
        self.covered_new = covered_new      # newly covered instrs, sorted
        self.counters = counters            # additive engine-stat deltas


def explore_subtree(ctx, chunk):
    """Run one frontier sub-tree in isolation.

    Every piece of engine-level mutable plumbing is instantiated fresh
    and namespaced by the chunk's run-wide index -- fresh solver (own
    model cache), own hardware policy with prefixed symbol names, own
    wiretap with a disjoint sequence base, own shell-device clone and
    coverage tracker, and a private state-id counter -- so the outcome
    is a pure function of ``(ctx, chunk)``: in-process execution and a
    spawned worker produce identical results.
    """
    from repro.revnic.coverage import CoverageTracker
    from repro.revnic.heuristics import StateScheduler, make_strategy
    from repro.revnic.osbridge import SymOsBridge
    from repro.revnic.shell_device import ShellDevice
    from repro.revnic.trace import PathTrace
    from repro.revnic.wiretap import Wiretap

    config = ctx.config
    index = chunk.index
    eval_before = E.eval_counters()
    solver = Solver()
    coverage = CoverageTracker(leaders=ctx.leaders,
                               executed=set(chunk.covered_seed))
    wiretap = Wiretap(ctx.text_base, ctx.text_end, coverage=coverage,
                      seq_start=subtree_seq_base(index))
    shell = None
    if ctx.pci is not None:
        shell = ShellDevice(ctx.pci)
        shell.dma_regions = [tuple(region) for region in chunk.dma_seed]
    entry_updates = []

    def on_entry_points(entries):
        entry_updates.extend(entries.items())

    bridge = SymOsBridge(solver, shell, wiretap=wiretap,
                         import_names=ctx.import_names,
                         on_entry_points=on_entry_points,
                         skip_functions=config.skip_functions)
    hardware = HardwarePolicy(name_prefix=subtree_symbol_prefix(index))
    executor = SymExecutor(ctx.translator, solver, hardware=hardware,
                           tracer=wiretap,
                           is_dma_address=(shell.is_dma_address
                                           if shell is not None else None))
    scheduler = StateScheduler(strategy=make_strategy(config.strategy),
                               loop_kill_threshold=config.loop_kill_threshold,
                               max_states=config.max_states)
    root = chunk.state
    root._ids = itertools.count(subtree_id_base(index))
    root_depth = root.depth
    scheduler.add(root)
    result = run_exploration(scheduler, executor, bridge, coverage, config,
                             chunk.budget)
    eval_after = E.eval_counters()

    paths = []
    max_depth = 0
    for state in result.terminal:
        depth = state.depth - root_depth
        if depth > max_depth:
            max_depth = depth
        records = state.path_trace()
        if records:
            paths.append(PathTrace(path_id=state.id, records=records,
                                   status=state.status.value,
                                   return_value=state.return_value))
    first_success = None
    first_completed = None
    if result.completed:
        first_completed = result.completed[0]
        for state in result.completed:
            if is_success(state.return_value):
                first_success = state
                break

    counters = {
        "fast_blocks": executor.fast_blocks,
        "forks": executor.forks,
        "solver_queries": solver.queries,
        "solver_comp_solves": solver.comp_solves,
        "solver_cache_hits": solver.cache_hits,
        "solver_fast_path_hits": solver.fast_path_hits,
        "eval_program_runs": (eval_after["program_runs"]
                              - eval_before["program_runs"]),
        "eval_node_visits": (eval_after["node_visits"]
                             - eval_before["node_visits"]),
        "blocks_recorded": wiretap.blocks_recorded,
        "imports_recorded": wiretap.imports_recorded,
        "hw_read_counts": dict(hardware.read_counts),
        "hw_write_counts": dict(hardware.write_counts),
        "os_calls_handled": bridge.calls_handled,
        "os_calls_skipped": bridge.calls_skipped,
    }
    dma_added = []
    if shell is not None:
        dma_added = [tuple(region)
                     for region in shell.dma_regions[len(chunk.dma_seed):]]
    return SubtreeOutcome(
        index=index, paths=paths, blocks=result.blocks,
        completed_count=len(result.completed), max_depth=max_depth,
        first_success=first_success, first_completed=first_completed,
        entry_updates=entry_updates, dma_added=dma_added,
        covered_new=sorted(coverage.executed - chunk.covered_seed),
        counters=counters)


# ==========================================================================
# Frontier-state codec (rides the artifact expression/block tables)

def encode_state(state, enc, include_trace=True):
    """Serialize a live state through artifact encoder ``enc``.

    Every collection is emitted in a canonical order (sorted addresses,
    sorted symbols, list order for path constraints -- their order is
    semantic: replaying them rebuilds the solver partition).
    """
    from repro.pipeline.artifact import _encode_record

    witnesses = []
    for symbols, model in state.solver_ctx.witnesses():
        witnesses.append([sorted(symbols),
                          sorted(model.items()) if model is not None
                          else None])
    witnesses.sort(key=lambda entry: entry[0])
    data = {
        "id": state.id,
        "pc": state.pc,
        "depth": state.depth,
        "status": state.status.value,
        "return_value": enc.value(state.return_value),
        "regs": [enc.value(reg) for reg in state.regs],
        "overlay": [[address, enc.value(value)]
                    for address, value in sorted(
                        state.memory.overlay_items(),
                        key=lambda item: item[0])],
        "constraints": [enc.value(c) for c in state.constraints],
        "ground_false": state.solver_ctx.ground_false,
        "witnesses": witnesses,
        "model_hint": [[name, value]
                       for name, value in sorted(state.model_hint.items())],
        "block_counts": [[pc, count]
                         for pc, count in sorted(state.block_counts.items())],
        "loop_suspects": sorted(state.loop_suspects),
        "os": {
            "heap_next": state.os.heap_next,
            "dma_regions": [[base, size]
                            for base, size in state.os.dma_regions],
            "timers": [[struct, handler]
                       for struct, handler in sorted(state.os.timers.items())],
            "indicated": state.os.indicated,
            "send_completions": state.os.send_completions,
            "error_logs": state.os.error_logs,
        },
    }
    if include_trace:
        data["trace"] = [_encode_record(record, enc)
                         for record in state.path_trace()]
    return data


def decode_state(data, dec, concrete_read):
    """Rebuild a state: replaying the constraint list reproduces the
    solver partition exactly, then the serialized witnesses re-attach."""
    from repro.pipeline.artifact import _decode_record

    memory = SymMemory(concrete_read)
    for address, value in data["overlay"]:
        memory.write_byte(address, dec.value(value))
    os_data = data["os"]
    os_ctx = OsContext(
        heap_next=os_data["heap_next"],
        dma_regions=[(base, size)
                     for base, size in os_data["dma_regions"]],
        timers={struct: handler for struct, handler in os_data["timers"]},
        indicated=os_data["indicated"],
        send_completions=os_data["send_completions"],
        error_logs=os_data["error_logs"])
    state = SymState(pc=data["pc"],
                     regs=[dec.value(reg) for reg in data["regs"]],
                     memory=memory,
                     constraints=[dec.value(c) for c in data["constraints"]],
                     os=os_ctx, id_source=iter((0,)))
    # The restored id is authoritative; the child-id counter is assigned
    # by whoever runs the state next (explore_subtree namespaces it, the
    # engine re-homes continuations onto its run counter).
    state.id = data["id"]
    state._ids = itertools.count(0)
    state.depth = data["depth"]
    state.status = PathStatus(data["status"])
    state.return_value = dec.value(data["return_value"])
    state.model_hint = {name: value for name, value in data["model_hint"]}
    state.block_counts = {pc: count for pc, count in data["block_counts"]}
    state.loop_suspects = set(data["loop_suspects"])
    state.solver_ctx.ground_false = data["ground_false"]
    state.solver_ctx.attach_witnesses({
        frozenset(symbols): (dict(model) if model is not None else None)
        for symbols, model in data["witnesses"]})
    if "trace" in data:
        state.trace_chain = [[_decode_record(record, dec)
                              for record in data["trace"]]]
        state.trace_records = []
    return state


# -- chunk / outcome messages ----------------------------------------------

def encode_chunk(chunk):
    """Chunk -> self-contained message (private expr/block tables)."""
    from repro.pipeline.artifact import _Encoder

    enc = _Encoder()
    payload = {
        "index": chunk.index,
        "budget": chunk.budget,
        "covered_seed": sorted(chunk.covered_seed),
        "dma_seed": [[base, size] for base, size in chunk.dma_seed],
        "state": encode_state(chunk.state, enc),
    }
    return {"payload": payload, "exprs": enc.exprs, "blocks": enc.blocks}


def decode_chunk(message, concrete_read):
    from repro.pipeline.artifact import _Decoder

    dec = _Decoder(message["exprs"], message["blocks"])
    payload = message["payload"]
    return SubtreeChunk(
        index=payload["index"],
        state=decode_state(payload["state"], dec, concrete_read),
        budget=payload["budget"],
        covered_seed=set(payload["covered_seed"]),
        dma_seed=[tuple(region) for region in payload["dma_seed"]])


def encode_outcome(outcome):
    """Outcome -> self-contained message (private expr/block tables)."""
    from repro.pipeline.artifact import _Encoder, _encode_record

    enc = _Encoder()
    counters = dict(outcome.counters)
    counters["hw_read_counts"] = sorted(counters["hw_read_counts"].items())
    counters["hw_write_counts"] = sorted(counters["hw_write_counts"].items())
    payload = {
        "index": outcome.index,
        "blocks": outcome.blocks,
        "completed_count": outcome.completed_count,
        "max_depth": outcome.max_depth,
        "paths": [[path.path_id, path.status, enc.value(path.return_value),
                   [_encode_record(record, enc) for record in path.records]]
                  for path in outcome.paths],
        "first_success": (encode_state(outcome.first_success, enc,
                                       include_trace=False)
                          if outcome.first_success is not None else None),
        "first_completed": (encode_state(outcome.first_completed, enc,
                                         include_trace=False)
                            if outcome.first_completed is not None
                            else None),
        "entry_updates": [[name, address]
                          for name, address in outcome.entry_updates],
        "dma_added": [[base, size] for base, size in outcome.dma_added],
        "covered_new": list(outcome.covered_new),
        "counters": counters,
    }
    return {"payload": payload, "exprs": enc.exprs, "blocks": enc.blocks}


def decode_outcome(message, concrete_read):
    from repro.pipeline.artifact import _Decoder, _decode_record
    from repro.revnic.trace import PathTrace

    dec = _Decoder(message["exprs"], message["blocks"])
    payload = message["payload"]
    counters = dict(payload["counters"])
    counters["hw_read_counts"] = {kind: count for kind, count
                                  in counters["hw_read_counts"]}
    counters["hw_write_counts"] = {kind: count for kind, count
                                   in counters["hw_write_counts"]}
    paths = [PathTrace(path_id=path_id,
                       records=[_decode_record(record, dec)
                                for record in records],
                       status=status,
                       return_value=dec.value(return_value))
             for path_id, status, return_value, records
             in payload["paths"]]
    first_success = payload["first_success"]
    if first_success is not None:
        first_success = decode_state(first_success, dec, concrete_read)
    first_completed = payload["first_completed"]
    if first_completed is not None:
        first_completed = decode_state(first_completed, dec, concrete_read)
    return SubtreeOutcome(
        index=payload["index"], paths=paths, blocks=payload["blocks"],
        completed_count=payload["completed_count"],
        max_depth=payload["max_depth"],
        first_success=first_success, first_completed=first_completed,
        entry_updates=[(name, address)
                       for name, address in payload["entry_updates"]],
        dma_added=[tuple(region) for region in payload["dma_added"]],
        covered_new=list(payload["covered_new"]),
        counters=counters)


# ==========================================================================
# Worker-side bootstrap (ChunkPool setup target; must be picklable)

def config_to_dict(config):
    """A :class:`RevNicConfig` as a plain nested dict (worker bootstrap)."""
    from dataclasses import asdict

    return asdict(config)


def config_from_dict(data):
    from repro.hw.base import PciDescriptor
    from repro.revnic.engine import RevNicConfig

    data = dict(data)
    pci = data.get("pci")
    if isinstance(pci, dict):
        data["pci"] = PciDescriptor(**pci)
    skip = data.get("skip_functions") or {}
    data["skip_functions"] = {
        name: tuple(value) if isinstance(value, (list, tuple)) else value
        for name, value in skip.items()}
    return RevNicConfig(**data)


def worker_setup(bootstrap):
    """ChunkPool setup target: rebuild the per-process context from
    ``(image bytes, config dict)`` and return the chunk runner.

    The machine, translator and decoded image persist across every chunk
    (and phase) the worker serves -- sub-trees only ever read them.
    """
    from repro.asm.binfmt import DrvImage
    from repro.dbt import Translator
    from repro.guestos.loader import load_image
    from repro.revnic.coverage import static_basic_blocks
    from repro.vm.machine import Machine

    image_bytes, config_dict = bootstrap
    image = DrvImage.from_bytes(image_bytes)
    config = config_from_dict(config_dict)
    machine = Machine()
    loaded = load_image(machine, image)
    translator = Translator(
        lambda addr, size: machine.memory.read_bytes(addr, size))
    ctx = SubtreeContext(
        translator=translator, concrete_read=machine.memory.read,
        import_names=loaded.import_names, pci=config.pci, config=config,
        text_base=loaded.text_base, text_end=loaded.text_end,
        leaders=static_basic_blocks(image, loaded.text_base))

    def run_chunk(message):
        chunk = decode_chunk(message, ctx.concrete_read)
        return encode_outcome(explore_subtree(ctx, chunk))

    return run_chunk
