"""Heuristic bitvector constraint solver.

The queries symbolic driver execution generates are overwhelmingly
comparisons of (chains of arithmetic/masking over) hardware-input symbols
against constants -- status-bit tests, length checks, OID dispatch.  This
solver decides them with a model-search strategy:

1. **candidate mining** -- constants appearing in the constraint trees
   (plus neighbours and boundary values) are candidate assignments;
2. **greedy per-symbol search** -- hill-climb one symbol at a time over the
   candidate set, keeping the assignment maximizing satisfied constraints;
3. **seeded random sampling** as a fallback.

A found model proves satisfiability; failure to find one is treated as
infeasible.  This mirrors how a timeout-bounded KLEE/STP behaves in
practice (paths whose feasibility cannot be established in budget are
dropped), and is documented as a substitution in DESIGN.md.
"""

import itertools
import random

from repro.symex.expr import Expr, evaluate

_BOUNDARY_VALUES = (0, 1, 2, 3, 4, 5, 6, 7, 8, 0x10, 0x20, 0x40, 0x7F, 0x80,
                    0xFF, 0x100, 0x5EA, 0x5EB, 0x600, 0xFFFF, 0x10000,
                    0x7FFFFFFF, 0x80000000, 0xFFFFFFFE, 0xFFFFFFFF)


class Solver:
    """Model finder over conjunctions of 1-bit constraint expressions."""

    def __init__(self, seed=0xC0FFEE, random_tries=48, greedy_passes=3):
        self._rng = random.Random(seed)
        self.random_tries = random_tries
        self.greedy_passes = greedy_passes
        self.queries = 0
        self.sat_results = 0

    # ------------------------------------------------------------------

    def find_model(self, constraints, prefer=None):
        """Return a satisfying ``{symbol: value}`` or ``None``.

        ``prefer`` optionally seeds the search with a partial model, so
        concretizations stay stable along a path.
        """
        self.queries += 1
        constraints = [c for c in constraints if not isinstance(c, int)
                       or c == 0]
        if any(isinstance(c, int) and c == 0 for c in constraints):
            return None
        if not constraints:
            self.sat_results += 1
            return dict(prefer or {})

        # Slice the conjunction into symbol-connected components and solve
        # each independently -- sound, and essential for keeping per-branch
        # queries cheap as path constraints accumulate.
        merged = dict(prefer or {})
        for component in self._slice(constraints):
            result = self._solve_component(component, merged)
            if result is None:
                return None
            merged.update(result)
        self.sat_results += 1
        return merged

    @staticmethod
    def _slice(constraints):
        """Partition constraints into symbol-connected components."""
        symbol_sets = []
        for constraint in constraints:
            symbol_sets.append(constraint.symbols()
                               if isinstance(constraint, Expr) else set())
        components = []
        assigned = [None] * len(constraints)
        for i, symbols in enumerate(symbol_sets):
            if assigned[i] is not None:
                continue
            group = [i]
            group_symbols = set(symbols)
            changed = True
            while changed:
                changed = False
                for j in range(len(constraints)):
                    if assigned[j] is None and j not in group \
                            and symbol_sets[j] & group_symbols:
                        group.append(j)
                        group_symbols |= symbol_sets[j]
                        changed = True
            for j in group:
                assigned[j] = len(components)
            components.append([constraints[j] for j in group])
        return components

    def _solve_component(self, constraints, prefer):
        symbols = set()
        for constraint in constraints:
            symbols |= constraint.symbols()
        symbols = sorted(symbols)
        if not symbols:
            # Fully concrete constraints that didn't fold: evaluate.
            if all(evaluate(c, {}) for c in constraints):
                return {}
            return None

        candidates = self._mine_candidates(constraints)
        model = {name: prefer.get(name, 0) for name in symbols}

        if self._satisfied(constraints, model):
            return model

        result = self._greedy_search(constraints, symbols, candidates, model)
        if result is not None:
            return result

        base = {name: prefer[name] for name in symbols if name in prefer}
        return self._random_search(constraints, symbols, candidates, base)

    def is_feasible(self, constraints):
        """True when a model was found for the conjunction."""
        return self.find_model(constraints) is not None

    def concretize(self, expr, constraints, prefer=None):
        """Pick a concrete value for ``expr`` consistent with
        ``constraints``; returns ``(value, model)`` or ``(None, None)``."""
        model = self.find_model(constraints, prefer=prefer)
        if model is None:
            return None, None
        return evaluate(expr, model), model

    # ------------------------------------------------------------------

    @staticmethod
    def _satisfied(constraints, model):
        memo = {}
        return all(evaluate(c, model, memo) == 1 for c in constraints)

    @staticmethod
    def _score(constraints, model):
        memo = {}
        return sum(1 for c in constraints if evaluate(c, model, memo) == 1)

    def _mine_candidates(self, constraints):
        mined = set(_BOUNDARY_VALUES)
        seen = set()
        stack = list(constraints)
        while stack:
            node = stack.pop()
            if isinstance(node, int):
                value = node & 0xFFFFFFFF
                for delta in (-2, -1, 0, 1, 2):
                    mined.add((value + delta) & 0xFFFFFFFF)
                # Values helpful against masks / shifted comparisons.
                mined.add((value << 8) & 0xFFFFFFFF)
                mined.add((value << 16) & 0xFFFFFFFF)
                mined.add((value >> 8) & 0xFFFFFFFF)
                if value:
                    mined.add((~value) & 0xFFFFFFFF)
                continue
            if isinstance(node, Expr):
                marker = id(node)
                if marker in seen:
                    continue
                seen.add(marker)
                stack.extend(node.args)
        return sorted(mined)

    def _greedy_search(self, constraints, symbols, candidates, model):
        model = dict(model)
        memo = {}
        satisfied = [evaluate(c, model, memo) == 1 for c in constraints]
        best_score = sum(satisfied)
        target = len(constraints)
        # Changing one symbol can only flip constraints that mention it, so
        # the hill climb rescoores just those.
        by_symbol = {name: [] for name in symbols}
        for index, constraint in enumerate(constraints):
            for name in constraint.symbols():
                if name in by_symbol:
                    by_symbol[name].append(index)
        for _ in range(self.greedy_passes):
            improved = False
            for name in symbols:
                affected = by_symbol[name]
                if not affected:
                    continue
                original = model[name]
                best_value = original
                best_local = sum(1 for i in affected if satisfied[i])
                for value in candidates:
                    if value == original:
                        continue
                    model[name] = value
                    memo = {}
                    local = sum(1 for i in affected
                                if evaluate(constraints[i], model, memo) == 1)
                    if local > best_local:
                        best_local = local
                        best_value = value
                model[name] = best_value
                if best_value != original:
                    improved = True
                    memo = {}
                    for i in affected:
                        satisfied[i] = \
                            evaluate(constraints[i], model, memo) == 1
                    best_score = sum(satisfied)
                    if best_score == target:
                        return model
            if not improved:
                break
        if best_score == target:
            return model
        return None

    def _random_search(self, constraints, symbols, candidates, base):
        pool = candidates or [0]
        for _ in range(self.random_tries):
            model = dict(base)
            for name in symbols:
                if self._rng.random() < 0.5:
                    model[name] = self._rng.choice(pool)
                else:
                    model[name] = self._rng.getrandbits(32)
            # Pairwise combinations of mined values matter for two-symbol
            # equalities; mix one more pass of single-symbol repair.
            if self._satisfied(constraints, model):
                return model
            for name, value in itertools.islice(
                    itertools.product(symbols, pool), 64):
                saved = model[name]
                model[name] = value
                if self._satisfied(constraints, model):
                    return model
                model[name] = saved
        return None
