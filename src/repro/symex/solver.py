"""Heuristic bitvector constraint solver with incremental contexts.

The queries symbolic driver execution generates are overwhelmingly
comparisons of (chains of arithmetic/masking over) hardware-input symbols
against constants -- status-bit tests, length checks, OID dispatch.  This
solver decides them with a model-search strategy:

1. **candidate mining** -- constants appearing in the constraint trees
   (plus neighbours and boundary values) are candidate assignments;
2. **greedy per-symbol search** -- hill-climb one symbol at a time over the
   candidate set, keeping the assignment maximizing satisfied constraints;
3. **seeded random sampling** as a fallback (seeded per query from the
   constraints' structural hash, so results are reproducible and safe to
   cache).

A found model proves satisfiability; failure to find one is treated as
infeasible.  This mirrors how a timeout-bounded KLEE/STP behaves in
practice (paths whose feasibility cannot be established in budget are
dropped), and is documented as a substitution in DESIGN.md.

Solving is *incremental*: a :class:`SolverContext` (one per execution
state, forked with it) maintains the path constraints partitioned into
symbol-connected components with a union-find, each component carrying a
cached witness model.  A new branch constraint only touches the components
its symbols connect to; every other component reuses its witness.  On top
of that, solved components are memoized on the solver in a KLEE-style
model cache keyed by the interned constraint set, so sibling forks and
re-explorations of the same path prefix never re-search.
"""

import itertools
import random
import zlib

from repro.symex.expr import Expr, compiled, compiled_conjunction, evaluate

_BOUNDARY_VALUES = (0, 1, 2, 3, 4, 5, 6, 7, 8, 0x10, 0x20, 0x40, 0x7F, 0x80,
                    0xFF, 0x100, 0x5EA, 0x5EB, 0x600, 0xFFFF, 0x10000,
                    0x7FFFFFFF, 0x80000000, 0xFFFFFFFE, 0xFFFFFFFF)

#: Cache sentinel for components the search failed to satisfy.
_UNSAT = object()


class _Component:
    """One symbol-connected slice of a context's path constraints.

    Treated as immutable: merges and witness updates build a new instance,
    so forked contexts can share components structurally.
    """

    __slots__ = ("constraints", "members", "symbols", "model")

    def __init__(self, constraints, members, symbols, model):
        self.constraints = constraints      # tuple, insertion order
        self.members = members              # frozenset of the tuple
        self.symbols = symbols              # frozenset of symbol names
        self.model = model                  # witness dict or None (dirty)

    def with_model(self, model):
        return _Component(self.constraints, self.members, self.symbols,
                          model)


class SolverContext:
    """Per-state incremental view of the path constraints.

    Maintains symbol -> component membership with a union-find as
    constraints are added, replacing the O(n^2) re-partition the solver
    previously ran on every query.  Forks share component objects
    copy-on-write, so forking is O(symbols) dictionary copies.
    """

    __slots__ = ("_parent", "_comps", "ground_false")

    def __init__(self):
        self._parent = {}       # symbol -> parent symbol (union-find)
        self._comps = {}        # root symbol -> _Component
        self.ground_false = False

    # -- union-find ----------------------------------------------------

    def _find(self, symbol):
        parent = self._parent
        root = symbol
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(symbol, symbol) != root:
            parent[symbol], symbol = root, parent[symbol]
        return root

    # -- queries -------------------------------------------------------

    def components(self):
        """The current components (arbitrary but deterministic order)."""
        return self._comps.values()

    def affected(self, symbols):
        """Components any of ``symbols`` belongs to.

        Symbols are visited in sorted order so the returned component
        order -- and everything downstream of it (merged constraint
        order, greedy-search tie-breaking) -- is independent of string
        hash randomization.  Cross-process artifact byte-equality
        depends on this.
        """
        seen = set()
        out = []
        for symbol in sorted(symbols):
            root = self._find(symbol)
            comp = self._comps.get(root)
            if comp is not None and id(comp) not in seen:
                seen.add(id(comp))
                out.append(comp)
        return out

    def constraint_count(self):
        return sum(len(c.constraints) for c in self._comps.values())

    # -- updates -------------------------------------------------------

    def set_model(self, component, model):
        """Attach a witness to ``component`` (replaces the instance)."""
        root = self._find(next(iter(component.symbols)))
        self._comps[root] = component.with_model(model)

    def add(self, constraint, model=None):
        """Add a path constraint, merging the components it connects.

        ``model``, when given, must be a witness satisfying the new
        constraint *and* every constraint of the components it touches; it
        becomes the merged component's cached model.  Without a witness
        the merged component tries to extend the old witnesses past the
        new constraint, and goes dirty (re-solved lazily) if that fails.
        """
        symbols = constraint.symbols()
        if not symbols:
            if evaluate(constraint, {}) != 1:
                self.ground_false = True
            return
        parent = self._parent
        roots = []
        # Sorted for cross-process determinism: the merge order decides
        # the merged component's constraint order (see affected()).
        for symbol in sorted(symbols):
            root = self._find(symbol)
            if root not in roots:
                roots.append(root)
        comps = [self._comps[r] for r in roots if r in self._comps]

        if len(comps) == 1 and constraint in comps[0].members \
                and symbols <= comps[0].symbols:
            if model is not None:
                merged_syms = comps[0].symbols
                self.set_model(comps[0], {s: model.get(s, 0)
                                          for s in merged_syms})
            return

        constraints = []
        members = set()
        merged_syms = set(symbols)
        for comp in comps:
            constraints.extend(comp.constraints)
            members.update(comp.members)
            merged_syms |= comp.symbols
        if constraint not in members:
            constraints.append(constraint)
            members.add(constraint)

        new_root = roots[0]
        for root in roots[1:]:
            parent[root] = new_root
            self._comps.pop(root, None)
        for symbol in sorted(symbols):
            if parent.get(symbol, symbol) != new_root and symbol != new_root:
                parent[symbol] = new_root

        if model is not None:
            witness = {s: model.get(s, 0) for s in merged_syms}
        else:
            witness = self._merge_witness(comps, constraint, merged_syms)
        self._comps[new_root] = _Component(tuple(constraints),
                                           frozenset(members),
                                           frozenset(merged_syms), witness)

    @staticmethod
    def _merge_witness(comps, constraint, merged_syms):
        """Try to extend the old component witnesses past ``constraint``."""
        union = {}
        for comp in comps:
            if comp.model is None:
                return None
            union.update(comp.model)
        if compiled(constraint)(union) != 1:
            return None
        return {s: union.get(s, 0) for s in merged_syms}

    def fork(self):
        child = SolverContext.__new__(SolverContext)
        child._parent = dict(self._parent)
        child._comps = dict(self._comps)
        child.ground_false = self.ground_false
        return child

    # -- witness serialization (frontier codec) ------------------------

    def witnesses(self):
        """``(symbols frozenset, model dict or None)`` per component.

        The partition itself is a pure function of the constraint list
        (``add`` order and merge order are deterministic), so replaying
        the constraints rebuilds identical components; only the cached
        witness models need to travel with a serialized state.
        """
        return [(comp.symbols, comp.model)
                for comp in self._comps.values()]

    def attach_witnesses(self, mapping):
        """Restore serialized witnesses onto replayed components.

        ``mapping`` is ``{symbols frozenset: model dict or None}`` as
        produced from :meth:`witnesses`.  Every component must have an
        entry -- a miss means the replayed partition diverged from the
        serialized one, which would silently break cross-process
        determinism, so it raises instead.
        """
        for root, comp in list(self._comps.items()):
            if comp.symbols not in mapping:
                raise KeyError("no serialized witness for component %r"
                               % (sorted(comp.symbols),))
            model = mapping[comp.symbols]
            self._comps[root] = comp.with_model(
                dict(model) if model is not None else None)


class Solver:
    """Model finder over conjunctions of 1-bit constraint expressions."""

    def __init__(self, seed=0xC0FFEE, random_tries=48, greedy_passes=3):
        self._seed = seed
        self.random_tries = random_tries
        self.greedy_passes = greedy_passes
        self.queries = 0
        self.sat_results = 0
        #: ground-truth searches actually run (cache/fast-path misses)
        self.comp_solves = 0
        self.cache_hits = 0
        self.fast_path_hits = 0
        self._model_cache = {}

    # ------------------------------------------------------------------
    # Incremental (context) API

    def check_context(self, ctx, extra=None, prefer=None):
        """Feasibility of ``ctx``'s constraints plus optional ``extra``.

        Returns a witness model covering the components ``extra`` touches
        (plus ``prefer`` pass-through), or ``None`` when infeasible.  Does
        not add ``extra`` to the context; cached witnesses for components
        the probe does not touch are reused untouched, which is what makes
        per-branch feasibility O(new component) instead of O(path).
        """
        self.queries += 1
        if ctx.ground_false:
            return None
        prefer = prefer or {}
        for comp in list(ctx.components()):
            if comp.model is None:
                solved = self._component_model(comp.constraints,
                                               comp.symbols, prefer)
                if solved is None:
                    return None
                ctx.set_model(comp, solved)

        if extra is None:
            merged = dict(prefer)
            for comp in ctx.components():
                merged.update(comp.model)
            self.sat_results += 1
            return merged

        symbols = extra.symbols()
        affected = ctx.affected(symbols)
        env = {}
        for comp in affected:
            env.update(comp.model)
        for symbol in symbols:
            if symbol not in env and symbol in prefer:
                env[symbol] = prefer[symbol]
        if compiled(extra)(env) == 1:
            # Fast path: the accumulated witnesses already satisfy the
            # new constraint, so the conjunction is satisfiable as-is.
            self.fast_path_hits += 1
            self.sat_results += 1
            witness = dict(env)
            for symbol in symbols:
                witness.setdefault(symbol, 0)
            return witness

        constraints = []
        members = set()
        all_symbols = set(symbols)
        for comp in affected:
            for constraint in comp.constraints:
                if constraint not in members:
                    members.add(constraint)
                    constraints.append(constraint)
            all_symbols |= comp.symbols
        if extra not in members:
            constraints.append(extra)
        solved = self._component_model(tuple(constraints), all_symbols,
                                       prefer)
        if solved is None:
            return None
        self.sat_results += 1
        return solved

    def concretize_context(self, ctx, expr, prefer=None):
        """Pick a concrete value for ``expr`` consistent with the
        context's constraints; returns ``(value, model)`` or
        ``(None, None)``.

        Mirrors the legacy :meth:`concretize` exactly: each component
        first tries the ``prefer`` projection (so concretizations stay
        stable along a path) and only searches when the hint fails.
        """
        self.queries += 1
        if ctx.ground_false:
            return None, None
        prefer = prefer or {}
        merged = dict(prefer)
        for comp in ctx.components():
            projection = {s: prefer.get(s, 0) for s in comp.symbols}
            conjunction = compiled_conjunction(comp.constraints)
            if conjunction(projection) == (1 << len(comp.constraints)) - 1:
                merged.update(projection)
                continue
            solved = self._component_model(comp.constraints, comp.symbols,
                                           prefer)
            if solved is None:
                return None, None
            merged.update(solved)
        self.sat_results += 1
        return evaluate(expr, merged), merged

    # ------------------------------------------------------------------
    # Legacy list API (kept for tests and ad-hoc queries)

    def find_model(self, constraints, prefer=None):
        """Return a satisfying ``{symbol: value}`` or ``None``.

        ``prefer`` optionally seeds the search with a partial model, so
        concretizations stay stable along a path.
        """
        self.queries += 1
        constraints = [c for c in constraints if not isinstance(c, int)
                       or c == 0]
        if any(isinstance(c, int) and c == 0 for c in constraints):
            return None
        if not constraints:
            self.sat_results += 1
            return dict(prefer or {})

        # Partition through a throwaway context: one union-find
        # implementation (SolverContext.add) serves both the incremental
        # and the list API.
        ctx = SolverContext()
        for constraint in constraints:
            ctx.add(constraint)
        if ctx.ground_false:
            return None
        merged = dict(prefer or {})
        for comp in ctx.components():
            result = self._component_model(comp.constraints, comp.symbols,
                                           merged)
            if result is None:
                return None
            merged.update(result)
        self.sat_results += 1
        return merged

    def is_feasible(self, constraints):
        """True when a model was found for the conjunction."""
        return self.find_model(constraints) is not None

    def concretize(self, expr, constraints, prefer=None):
        """Pick a concrete value for ``expr`` consistent with
        ``constraints``; returns ``(value, model)`` or ``(None, None)``."""
        model = self.find_model(constraints, prefer=prefer)
        if model is None:
            return None, None
        return evaluate(expr, model), model

    # ------------------------------------------------------------------
    # Component solving + model cache

    def _component_model(self, constraints, symbols, prefer):
        """Solve one component (cached).

        The cache key is the interned constraint set plus the relevant
        ``prefer`` projection -- sound because interning makes a
        constraint set's identity structural, and the search below is a
        deterministic function of exactly those inputs.  Subset/superset
        reuse: a cached model for the set minus the newest constraint is
        re-tried on the full set before searching from scratch.
        """
        projection = tuple(sorted((s, prefer[s]) for s in symbols
                                  if s in prefer))
        members = frozenset(constraints)
        key = (members, projection)
        cached = self._model_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return None if cached is _UNSAT else cached

        # Superset reuse (KLEE-style): a model found for this set minus
        # its most recent constraint often satisfies the new one too.
        if len(constraints) > 1:
            subset_key = (frozenset(constraints[:-1]), projection)
            subset = self._model_cache.get(subset_key)
            if subset is not None and subset is not _UNSAT \
                    and compiled(constraints[-1])(subset) == 1:
                model = dict(subset)
                for symbol in constraints[-1].symbols():
                    model.setdefault(symbol, 0)
                self.cache_hits += 1
                self._model_cache[key] = model
                return model

        model = self._search(list(constraints), symbols, prefer)
        self._model_cache[key] = _UNSAT if model is None else model
        return model

    def _search(self, constraints, symbols, prefer):
        """The ground-truth model search (uncached)."""
        self.comp_solves += 1
        symbols = sorted(symbols)
        programs = [compiled(c) for c in constraints]
        model = {name: prefer.get(name, 0) for name in symbols}
        if all(p(model) == 1 for p in programs):
            return model

        candidates = self._mine_candidates(constraints)
        result = self._greedy_search(constraints, programs, symbols,
                                     candidates, model)
        if result is not None:
            return result

        base = {name: prefer[name] for name in symbols if name in prefer}
        return self._random_search(constraints, programs, symbols,
                                   candidates, base)

    # ------------------------------------------------------------------

    def _mine_candidates(self, constraints):
        mined = set(_BOUNDARY_VALUES)
        seen = set()
        stack = list(constraints)
        while stack:
            node = stack.pop()
            if isinstance(node, int):
                value = node & 0xFFFFFFFF
                for delta in (-2, -1, 0, 1, 2):
                    mined.add((value + delta) & 0xFFFFFFFF)
                # Values helpful against masks / shifted comparisons.
                mined.add((value << 8) & 0xFFFFFFFF)
                mined.add((value << 16) & 0xFFFFFFFF)
                mined.add((value >> 8) & 0xFFFFFFFF)
                if value:
                    mined.add((~value) & 0xFFFFFFFF)
                continue
            if isinstance(node, Expr):
                marker = id(node)
                if marker in seen:
                    continue
                seen.add(marker)
                stack.extend(node.args)
        return sorted(mined)

    @staticmethod
    def _satisfied_mask(programs, model):
        mask = 0
        bit = 1
        for program in programs:
            if program(model) == 1:
                mask |= bit
            bit <<= 1
        return mask

    def _greedy_search(self, constraints, programs, symbols, candidates,
                       model):
        model = dict(model)
        satisfied = self._satisfied_mask(programs, model)
        full = (1 << len(constraints)) - 1
        # Changing one symbol can only flip constraints that mention it, so
        # the hill climb scores candidates against a compiled conjunction
        # of just that slice (subtrees shared across the slice are
        # evaluated once per candidate).  Slice tuples only change when a
        # new constraint mentions the symbol, so the conjunction cache
        # absorbs component growth elsewhere.
        by_symbol = {}
        slice_masks = {name: 0 for name in symbols}
        indices = {name: [] for name in symbols}
        for index, constraint in enumerate(constraints):
            bit = 1 << index
            for name in constraint.symbols():
                if name in slice_masks:
                    slice_masks[name] |= bit
                    indices[name].append(index)
        for name in symbols:
            if indices[name]:
                by_symbol[name] = (compiled_conjunction(
                    tuple(constraints[i] for i in indices[name])),
                    indices[name])
        for _ in range(self.greedy_passes):
            improved = False
            for name in symbols:
                entry = by_symbol.get(name)
                if entry is None:
                    continue
                scorer, slice_indices = entry
                slice_size = len(slice_indices)
                original = model[name]
                best_value = original
                best_local = (satisfied & slice_masks[name]).bit_count()
                if best_local == slice_size:
                    # Every affected constraint already holds; no strictly
                    # better candidate exists, so the scan is skipped.
                    continue
                for value in candidates:
                    if value == original:
                        continue
                    model[name] = value
                    local = scorer(model).bit_count()
                    if local > best_local:
                        best_local = local
                        best_value = value
                        if best_local == slice_size:
                            break
                model[name] = best_value
                if best_value != original:
                    improved = True
                    # Only this symbol's slice can have flipped: patch its
                    # bits back into the global mask from the slice score.
                    local = scorer(model)
                    patched = 0
                    for offset, index in enumerate(slice_indices):
                        if (local >> offset) & 1:
                            patched |= 1 << index
                    satisfied = (satisfied & ~slice_masks[name]) | patched
                    if satisfied == full:
                        return model
            if not improved:
                break
        if satisfied == full:
            return model
        return None

    def _query_rng(self, constraints, base):
        """A fresh RNG seeded from the query's structure, so the random
        fallback is a deterministic function of the query (and therefore
        safe to memoize) instead of depending on global solver history."""
        digest = zlib.crc32(repr(sorted(
            c.stable_hash() for c in constraints)).encode(), self._seed)
        digest = zlib.crc32(repr(sorted(base.items())).encode(), digest)
        return random.Random(digest)

    def _random_search(self, constraints, programs, symbols, candidates,
                       base):
        pool = candidates or [0]
        rng = self._query_rng(constraints, base)
        for _ in range(self.random_tries):
            model = dict(base)
            for name in symbols:
                if rng.random() < 0.5:
                    model[name] = rng.choice(pool)
                else:
                    model[name] = rng.getrandbits(32)
            # Pairwise combinations of mined values matter for two-symbol
            # equalities; mix one more pass of single-symbol repair.
            if all(p(model) == 1 for p in programs):
                return model
            for name, value in itertools.islice(
                    itertools.product(symbols, pool), 64):
                saved = model[name]
                model[name] = value
                if all(p(model) == 1 for p in programs):
                    return model
                model[name] = saved
        return None
