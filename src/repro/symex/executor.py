"""Symbolic executor: runs IR translation blocks over symbolic states.

One :meth:`SymExecutor.step` executes the translation block at the state's
``pc`` and resolves the terminator, forking on symbolic branch conditions.
Hardware reads are answered by a :class:`HardwarePolicy` (the shell device
returns fresh symbols), and calls into the import-thunk window are *not*
executed here -- they surface as :class:`StepEvent` so the engine can run
the concrete OS handler at the symbolic/concrete boundary.

Selective symbolic execution assumes cheap concrete execution around the
symbolic core (paper section 3): on all-concrete stretches -- no symbol in
any register the block reads, no device/DMA access, every memory byte read
concrete -- :meth:`SymExecutor.step` takes a **concrete fast path**, running
the block's compiled function (:mod:`repro.ir.compile`) against a buffered
environment and committing its effects only on success.  The moment a
symbol flows in (a symbolic register, device read, or symbolic memory
byte) the attempt is discarded -- nothing external was mutated -- and the
block re-executes through the symbolic op walker, so traces, constraints,
forks, and every deterministic counter are identical with the fast path
on or off.

The fast path compiles blocks through :func:`repro.ir.compile.compile_block`
and therefore rides the persistent code cache (:mod:`repro.ir.codecache`):
a warm process imports previously generated block sources instead of
regenerating them, cutting symbolic-run cold start.  Superblock chaining
is deliberately *not* applied here -- per-block stepping (``count_block``,
``blocks_executed``, the per-block tracer records) is part of the artifact
byte contract, and fusing blocks would change it.
"""

from dataclasses import dataclass

from repro.errors import VmFault
from repro.ir import codecache
from repro.ir import nodes as N
from repro.ir.compile import compile_block
from repro.layout import RETURN_TO_OS, import_index, is_mmio
from repro.symex import expr as E
from repro.symex.state import PathStatus


class HardwarePolicy:
    """Decides what device reads return during symbolic execution.

    The default is the paper's *symbolic hardware*: every read from a
    device register (port or MMIO) or from DMA-registered memory returns a
    fresh unconstrained symbol (section 3.4).

    Accesses are accounted with bounded per-kind counters (``read_counts``
    / ``write_counts``), surfaced in the engine's run stats.  A full
    access log grows with every executed block across all phases and no
    pipeline stage consumes it, so retention is opt-in: pass
    ``retain_log=True`` (interactive inspection, the symbolic-hardware
    demo) to additionally keep ``reads`` / ``writes`` lists.
    """

    def __init__(self, retain_log=False, name_prefix=""):
        self._counter = 0
        self.read_counts = {}       # kind -> count
        self.write_counts = {}      # kind -> count
        self.retain_log = retain_log
        #: symbol-name namespace prefix.  Sharded exploration gives every
        #: sub-tree its own policy with a distinct prefix so the symbols a
        #: sub-tree mints are identical whether it runs in-process or in a
        #: worker, and never collide with another sub-tree's.
        self.name_prefix = name_prefix
        self.reads = [] if retain_log else None
        self.writes = [] if retain_log else None

    @property
    def reads_total(self):
        return sum(self.read_counts.values())

    @property
    def writes_total(self):
        return sum(self.write_counts.values())

    def fresh(self, tag, width):
        self._counter += 1
        name = "hw_%s%s_%d" % (self.name_prefix, tag, self._counter)
        return E.bv_sym(name, width * 8)

    def device_read(self, state, kind, address, width):
        """Return the value of a device read (symbolic by default)."""
        self.read_counts[kind] = self.read_counts.get(kind, 0) + 1
        if self.retain_log:
            self.reads.append((kind, address, width))
        return E.bv_zext(self.fresh("%s_%x" % (kind, address), width), 32)

    def device_write(self, state, kind, address, width, value):
        """Observe a device write (the shell device has no behaviour)."""
        self.write_counts[kind] = self.write_counts.get(kind, 0) + 1
        if self.retain_log:
            self.writes.append((kind, address, width, value))


@dataclass
class StepEvent:
    """Non-local outcome of a step, handled by the engine."""

    kind: str            # 'import-call' | 'completed' | 'halted' | 'error'
    state: object
    slot: int = 0        # import slot for 'import-call'
    detail: str = ""


@dataclass
class MemAccess:
    """One memory/port access observed during a block (wiretap record)."""

    kind: str            # 'ram' | 'mmio' | 'port' | 'dma'
    address: int
    width: int
    value: object        # int or Expr
    is_write: bool


class _Bail(Exception):
    """A symbol flowed into the concrete fast path: discard and go
    symbolic."""


class _FastEnv:
    """Buffered all-concrete block environment.

    Every effect lands in private buffers (a register-file copy, a
    byte-granular write log, an access record list); the state is only
    mutated on commit, so abandoning the attempt at any point -- a
    symbolic byte, a device access, a guest fault -- leaves the state
    untouched for an exact symbolic re-execution.
    """

    __slots__ = ("regs", "accesses", "_memory", "_writes", "_is_dma",
                 "ops_retired", "instrs_retired", "io_ops", "mem_ops")

    def __init__(self, state, is_dma):
        self.regs = list(state.regs)
        self.accesses = []
        self._memory = state.memory
        self._writes = {}         # address -> concrete byte
        self._is_dma = is_dma
        self.ops_retired = 0
        self.instrs_retired = 0
        self.io_ops = 0
        self.mem_ops = 0

    @staticmethod
    def is_device_address(address):
        # Device accesses never reach the counting path: mem_read /
        # mem_write bail first.
        return False

    def mem_read(self, address, width):
        if is_mmio(address) or self._is_dma(address):
            raise _Bail
        writes = self._writes
        memory = self._memory
        value = 0
        for i in range(width):
            byte = writes.get(address + i)
            if byte is None:
                byte = memory.read_byte(address + i)
                if not isinstance(byte, int):
                    raise _Bail
            value |= (byte & 0xFF) << (8 * i)
        self.accesses.append(MemAccess("ram", address, width, value, False))
        return value

    def mem_write(self, address, width, value):
        if is_mmio(address) or self._is_dma(address):
            raise _Bail
        writes = self._writes
        for i in range(width):
            writes[address + i] = (value >> (8 * i)) & 0xFF
        self.accesses.append(MemAccess("ram", address, width, value, True))

    def io_read(self, port, width):
        raise _Bail

    def io_write(self, port, width, value):
        raise _Bail

    def commit(self, state):
        state.regs[:] = self.regs
        write_byte = state.memory.write_byte
        for address, byte in self._writes.items():
            write_byte(address, byte)


def _fast_meta(block):
    """(eligible, read_regs) for the fast path, cached on the block."""
    meta = getattr(block, "_fast_meta", None)
    if meta is None:
        has_io = any(isinstance(op, (N.IrIn, N.IrOut)) for op in block.ops)
        read_regs = tuple({op.reg for op in block.ops
                           if isinstance(op, N.IrGetReg)})
        meta = (not has_io, read_regs)
        block._fast_meta = meta
    return meta


class SymExecutor:
    """Executes translation blocks symbolically."""

    def __init__(self, translator, solver, hardware=None, tracer=None,
                 is_dma_address=None, concrete_fast_path=True):
        self.translator = translator
        self.solver = solver
        self.hardware = hardware or HardwarePolicy()
        self.tracer = tracer
        self._extra_is_dma = is_dma_address
        self.blocks_executed = 0
        self.forks = 0
        #: run fully concrete blocks through their compiled functions
        self.concrete_fast_path = concrete_fast_path
        #: blocks that completed on the concrete fast path
        self.fast_blocks = 0
        #: pcs whose chain-hint prefetch already ran (once per head)
        self._hint_prefetched = set()

    # ------------------------------------------------------------------

    def step(self, state):
        """Execute one block on ``state``.

        Returns ``(successors, events)``: follow-on RUNNING states and any
        boundary events (import calls, completions, errors).
        """
        block = self.translator.get(state.pc)
        state.count_block(block.pc)
        self.blocks_executed += 1
        regs_before = list(state.regs)

        if self.concrete_fast_path:
            outcome = self._step_concrete(state, block, regs_before)
            if outcome is not None:
                return outcome

        accesses = []

        temps = {}
        term_info = None
        for op in block.ops:
            term_info = self._exec_op(state, op, temps, accesses)
            if state.status != PathStatus.RUNNING:
                break
            if term_info is not None:
                break

        if self.tracer is not None:
            self.tracer.on_block(state, block, regs_before, list(state.regs),
                                 accesses, term_info)

        if state.status != PathStatus.RUNNING:
            return [], [StepEvent("error", state, detail="fault in block")]
        if term_info is None:
            # Block without terminator: fall through.
            state.pc = block.end_pc
            return [state], []
        return self._resolve_terminator(state, term_info, temps)

    # ------------------------------------------------------------------
    # Concrete fast path

    def _prefetch_chain_sources(self, head_block):
        """Warm the block-source cache along a persisted chain hint.

        Superblock runs record which blocks chain behind a hot head
        (:func:`repro.ir.codecache.store_chain_hint`); symbolic execution
        walks the same code, so when the fast path first meets a head it
        compiles the hinted members too -- a warm process *imports* their
        persisted sources in one locality burst instead of regenerating
        each on first touch.  Chains themselves stay off here: per-block
        stepping (``count_block``, the tracer records) is part of the
        artifact byte contract, and prefetching only moves compile work
        earlier -- it cannot change what any block computes, and the
        codecache counters it bumps are scrubbed from canonical JSON.
        """
        members = codecache.load_chain_hint(head_block, "dynamic")
        if not members:
            return
        for pc in members:
            if pc == head_block.pc or pc in self._hint_prefetched:
                continue
            self._hint_prefetched.add(pc)
            try:
                compile_block(self.translator.get(pc))
            except Exception:  # noqa: BLE001 -- best-effort prefetch
                # A hinted pc the translator cannot serve here (unmapped,
                # mid-instruction after a different split) just misses;
                # the block compiles on first execution as before.
                continue

    def _step_concrete(self, state, block, regs_before):
        """Try the block on the compiled concrete tier.

        Returns the step outcome, or ``None`` to fall back to symbolic
        execution (ineligible block, a symbol flowed in, or a guest fault
        -- the buffered attempt leaves no trace, so the symbolic re-run
        reproduces the exact interpreter behaviour, fault included).
        """
        eligible, read_regs = _fast_meta(block)
        if not eligible:
            return None
        if block.pc not in self._hint_prefetched:
            self._hint_prefetched.add(block.pc)
            self._prefetch_chain_sources(block)
        regs = state.regs
        for reg in read_regs:
            if not isinstance(regs[reg], int):
                return None
        env = _FastEnv(state, lambda address: self._is_dma(state, address))
        try:
            result = compile_block(block)(env)
        except (_Bail, VmFault):
            # A symbol flowed in, or the block faulted (divide by zero,
            # unmapped memory): the buffered attempt left no trace, so
            # the symbolic re-run reproduces the interpreter's exact
            # behaviour, partial effects and fault included.  Anything
            # else is a genuine bug and propagates loudly.
            return None
        env.commit(state)
        self.fast_blocks += 1

        if self.tracer is not None:
            term = block.terminator
            if isinstance(term, N.IrCondJump):
                # The compiled function already resolved the branch; the
                # reconstructed flag is exact unless target == fallthrough
                # (a branch to the next instruction), where either value
                # describes the same transfer -- tracers only consume the
                # terminator kind and the resolved control flow.
                taken = 1 if result.target == term.target else 0
                term_info = ("condjump", taken, term.target,
                             term.fallthrough)
            elif isinstance(term, N.IrJump):
                term_info = ("jump", result.target)
            elif isinstance(term, N.IrCall):
                term_info = ("call", result.target, term.return_pc)
            elif isinstance(term, N.IrRet):
                term_info = ("ret", result.target)
            elif isinstance(term, N.IrHalt):
                term_info = ("halt",)
            else:
                term_info = None      # split-block head: fall-through
            self.tracer.on_block(state, block, regs_before,
                                 list(state.regs), env.accesses, term_info)

        kind = result.kind
        if kind == "jump":
            state.pc = result.target
            return [state], []
        if kind == "call":
            slot = import_index(result.target)
            if slot is not None:
                return [], [StepEvent("import-call", state, slot=slot)]
            state.pc = result.target
            return [state], []
        if kind == "ret":
            if result.target == RETURN_TO_OS:
                state.status = PathStatus.COMPLETED
                state.return_value = state.regs[0]
                return [], [StepEvent("completed", state)]
            state.pc = result.target
            return [state], []
        state.status = PathStatus.HALTED
        return [], [StepEvent("halted", state)]

    # ------------------------------------------------------------------
    # Op execution

    def _exec_op(self, state, op, temps, accesses):
        from repro.ir import nodes as N

        if isinstance(op, N.IrConst):
            temps[op.dst] = op.value
        elif isinstance(op, N.IrGetReg):
            temps[op.dst] = state.regs[op.reg]
        elif isinstance(op, N.IrSetReg):
            state.regs[op.reg] = temps[op.src]
        elif isinstance(op, N.IrBin):
            temps[op.dst] = self._binop(state, op, temps)
        elif isinstance(op, N.IrNot):
            temps[op.dst] = E.bv_not(temps[op.a])
        elif isinstance(op, N.IrNeg):
            temps[op.dst] = E.bv_neg(temps[op.a])
        elif isinstance(op, N.IrCmp):
            temps[op.dst] = E.bv_cmp(op.kind.value, temps[op.a], temps[op.b])
        elif isinstance(op, N.IrLoad):
            temps[op.dst] = self._load(state, temps[op.addr], op.width,
                                       accesses)
        elif isinstance(op, N.IrStore):
            self._store(state, temps[op.addr], op.width, temps[op.src],
                        accesses)
        elif isinstance(op, N.IrIn):
            temps[op.dst] = self._io_in(state, temps[op.port], op.width,
                                        accesses)
        elif isinstance(op, N.IrOut):
            self._io_out(state, temps[op.port], op.width, temps[op.src],
                         accesses)
        elif isinstance(op, N.IrJump):
            target = temps[op.target] if op.indirect else op.target
            return ("jump", target)
        elif isinstance(op, N.IrCondJump):
            return ("condjump", temps[op.cond], op.target, op.fallthrough)
        elif isinstance(op, N.IrCall):
            target = temps[op.target] if op.indirect else op.target
            return ("call", target, op.return_pc)
        elif isinstance(op, N.IrRet):
            return ("ret", temps[op.addr])
        elif isinstance(op, N.IrHalt):
            return ("halt",)
        else:  # pragma: no cover
            raise TypeError("unknown IR op %r" % (op,))
        return None

    def _binop(self, state, op, temps):
        from repro.ir.nodes import BinKind

        a, b = temps[op.a], temps[op.b]
        if op.kind in (BinKind.DIVU, BinKind.REMU):
            if isinstance(b, int):
                if b == 0:
                    state.status = PathStatus.ERROR
                    return 0
            else:
                # Constrain the divisor nonzero; the divide-by-zero path is
                # an error state RevNIC simply terminates (section 3.2).
                constraint = E.bv_cmp("ne", b, 0)
                witness = self.solver.check_context(
                    state.solver_ctx, constraint, prefer=state.model_hint)
                state.add_constraint(constraint, model=witness)
                if witness is None:
                    state.status = PathStatus.ERROR
                    return 0
        return E.BINOP_BUILDERS[op.kind.value](a, b)

    # ------------------------------------------------------------------
    # Memory and I/O

    def _concretize_address(self, state, value, what):
        """Concretize a symbolic address/port, constraining the path to the
        chosen value (the paper "avoids the complexity of dealing with
        symbolic addresses by concretizing them")."""
        if isinstance(value, int):
            return value
        concrete, model = self.solver.concretize_context(
            state.solver_ctx, value, prefer=state.model_hint)
        if concrete is None:
            state.status = PathStatus.ERROR
            return None
        state.add_constraint(E.bv_cmp("eq", value, concrete), model=model)
        state.model_hint.update(model)
        return concrete

    def _is_dma(self, state, address):
        if state.os.is_dma(address):
            return True
        if self._extra_is_dma is not None:
            return self._extra_is_dma(address)
        return False

    def _load(self, state, address, width, accesses):
        address = self._concretize_address(state, address, "load")
        if address is None:
            return 0
        if is_mmio(address):
            value = self.hardware.device_read(state, "mmio", address, width)
            accesses.append(MemAccess("mmio", address, width, value, False))
            return value
        if self._is_dma(state, address):
            value = self.hardware.device_read(state, "dma", address, width)
            accesses.append(MemAccess("dma", address, width, value, False))
            return value
        value = state.memory.read(address, width)
        accesses.append(MemAccess("ram", address, width, value, False))
        return value

    def _store(self, state, address, width, value, accesses):
        address = self._concretize_address(state, address, "store")
        if address is None:
            return
        if is_mmio(address):
            self.hardware.device_write(state, "mmio", address, width, value)
            accesses.append(MemAccess("mmio", address, width, value, True))
            return
        if self._is_dma(state, address):
            # Writes to DMA regions land in (symbolic) memory so the driver
            # can read back descriptors it wrote.
            state.memory.write(address, width, value)
            accesses.append(MemAccess("dma", address, width, value, True))
            return
        state.memory.write(address, width, value)
        accesses.append(MemAccess("ram", address, width, value, True))

    def _io_in(self, state, port, width, accesses):
        port = self._concretize_address(state, port, "in")
        if port is None:
            return 0
        value = self.hardware.device_read(state, "port", port, width)
        accesses.append(MemAccess("port", port, width, value, False))
        return value

    def _io_out(self, state, port, width, value, accesses):
        port = self._concretize_address(state, port, "out")
        if port is None:
            return
        self.hardware.device_write(state, "port", port, width, value)
        accesses.append(MemAccess("port", port, width, value, True))

    # ------------------------------------------------------------------
    # Terminators

    def _resolve_terminator(self, state, info, temps):
        kind = info[0]
        if kind == "jump":
            target = self._concretize_address(state, info[1], "jump")
            if target is None:
                return [], [StepEvent("error", state)]
            state.pc = target
            return [state], []
        if kind == "condjump":
            return self._branch(state, info[1], info[2], info[3])
        if kind == "call":
            target = self._concretize_address(state, info[1], "call")
            if target is None:
                return [], [StepEvent("error", state)]
            slot = import_index(target)
            if slot is not None:
                return [], [StepEvent("import-call", state, slot=slot)]
            state.pc = target
            return [state], []
        if kind == "ret":
            target = self._concretize_address(state, info[1], "ret")
            if target is None:
                return [], [StepEvent("error", state)]
            if target == RETURN_TO_OS:
                state.status = PathStatus.COMPLETED
                state.return_value = state.regs[0]
                return [], [StepEvent("completed", state)]
            state.pc = target
            return [state], []
        if kind == "halt":
            state.status = PathStatus.HALTED
            return [], [StepEvent("halted", state)]
        raise TypeError("unknown terminator %r" % (info,))  # pragma: no cover

    def _branch(self, state, cond, target, fallthrough):
        if isinstance(cond, int):
            state.pc = target if cond else fallthrough
            return [state], []
        # A symbolic branch whose successor was already executed by this
        # state is a polling-loop back edge: mark both sides as loop
        # suspects so the scheduler's killer may cull re-iterating paths.
        for successor in (target, fallthrough):
            if state.block_counts.get(successor, 0) > 0:
                state.loop_suspects.add(successor)
        taken_constraint = cond
        not_taken = E.bool_not(cond)
        # Incremental feasibility: each probe first evaluates just the new
        # constraint under the path's accumulated witness model (a few
        # compiled-program steps) and only falls into a component solve on
        # failure; components the condition does not touch are never
        # revisited.  The returned witness is cached on whichever side the
        # constraint is committed to, keeping descendants on the fast path.
        hint = state.model_hint
        taken_model = self.solver.check_context(state.solver_ctx,
                                                taken_constraint,
                                                prefer=hint)
        fall_model = self.solver.check_context(state.solver_ctx, not_taken,
                                               prefer=hint)
        successors = []
        if taken_model is not None and fall_model is not None:
            child = state.fork()
            self.forks += 1
            if self.tracer is not None:
                self.tracer.on_fork(state, child)
            child.add_constraint(taken_constraint, model=taken_model)
            child.pc = target
            state.add_constraint(not_taken, model=fall_model)
            state.pc = fallthrough
            successors = [state, child]
        elif taken_model is not None:
            state.add_constraint(taken_constraint, model=taken_model)
            state.pc = target
            successors = [state]
        elif fall_model is not None:
            state.add_constraint(not_taken, model=fall_model)
            state.pc = fallthrough
            successors = [state]
        else:
            state.status = PathStatus.ERROR
            return [], [StepEvent("error", state, detail="infeasible branch")]
        return successors, []
