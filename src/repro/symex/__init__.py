"""Selective symbolic execution engine (the reproduction's KLEE analog).

Executes DBT-produced IR over symbolic expressions: driver code runs
symbolically (forking at branches on symbolic conditions), while the OS
simulator and everything else stays concrete.  Hardware reads return fresh
symbols (symbolic hardware), and values crossing back to the OS are
concretized -- the two selection mechanisms of the paper's *selective
symbolic execution* (section 3.1).
"""

from repro.symex.expr import (
    BoolExpr,
    Expr,
    bv_and,
    bv_add,
    bv_concat,
    bv_const,
    bv_extract,
    bv_not,
    bv_or,
    bv_sym,
    bv_xor,
    is_concrete,
)
from repro.symex.solver import Solver
from repro.symex.memory import SymMemory
from repro.symex.state import PathStatus, SymState
from repro.symex.executor import HardwarePolicy, StepEvent, SymExecutor

__all__ = [
    "BoolExpr",
    "Expr",
    "bv_and",
    "bv_add",
    "bv_concat",
    "bv_const",
    "bv_extract",
    "bv_not",
    "bv_or",
    "bv_sym",
    "bv_xor",
    "is_concrete",
    "Solver",
    "SymMemory",
    "PathStatus",
    "SymState",
    "HardwarePolicy",
    "StepEvent",
    "SymExecutor",
]
