"""Bitvector expression language for symbolic execution.

Expressions are immutable trees over named symbols and constants.  Smart
constructors perform aggressive local simplification (constant folding,
identity/annihilator elimination, extract-of-concat fusion) so that the
expressions reaching the solver stay small -- the same role KLEE's
expression rewriting plays.

Plain Python ints are used for fully concrete values throughout the engine;
an :class:`Expr` only appears once a value actually depends on a symbol.
"""

from dataclasses import dataclass, field

_MASKS = {1: 1, 8: 0xFF, 16: 0xFFFF, 32: 0xFFFFFFFF}


def _mask(width):
    return (1 << width) - 1


@dataclass(frozen=True)
class Expr:
    """A bitvector expression of ``width`` bits.

    ``kind`` is one of: ``sym``, ``add sub and or xor shl shr sar mul divu
    remu``, ``not neg``, ``zext``, ``extract`` (args: operand; ``lo`` bit
    offset), ``concat`` (little-endian: args[0] is least significant).
    Comparison kinds (``eq ne slt sge ult uge``) have width 1.
    """

    kind: str
    width: int
    args: tuple = ()
    name: str = ""
    lo: int = 0

    def symbols(self):
        """The set of symbol names this expression depends on."""
        out = set()
        seen = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, int):
                continue
            marker = id(node)
            if marker in seen:
                continue
            seen.add(marker)
            if node.kind == "sym":
                out.add(node.name)
            else:
                stack.extend(a for a in node.args if isinstance(a, Expr))
        return out

    def __repr__(self):
        return "<%s:%d %s>" % (self.kind, self.width, self.name or
                               ",".join(repr(a) for a in self.args))


#: Alias used where an expression is known to be a 1-bit condition.
BoolExpr = Expr


def is_concrete(value):
    """True when ``value`` is a plain integer (no symbolic dependence)."""
    return isinstance(value, int)


def bv_const(value, width=32):
    """Concrete values are plain ints in this engine."""
    return value & _mask(width)


def bv_sym(name, width=32):
    """A fresh (or named) symbolic variable."""
    return Expr("sym", width, name=name)


def _width_of(value):
    return 32 if isinstance(value, int) else value.width


def _binop(kind, a, b, width, fold):
    if isinstance(a, int) and isinstance(b, int):
        return fold(a, b) & _mask(width)
    return Expr(kind, width, args=(a, b))


def bv_add(a, b, width=32):
    if b == 0:
        return a if isinstance(a, int) else a
    if a == 0 and isinstance(b, Expr):
        return b
    # (x + c1) + c2 -> x + (c1 + c2)
    if isinstance(b, int) and isinstance(a, Expr) and a.kind == "add" \
            and isinstance(a.args[1], int):
        return bv_add(a.args[0], (a.args[1] + b) & _mask(width), width)
    return _binop("add", a, b, width, lambda x, y: x + y)


def bv_sub(a, b, width=32):
    if isinstance(b, int):
        if b == 0:
            return a
        return bv_add(a, (-b) & _mask(width), width)
    if a is b:
        return 0
    return _binop("sub", a, b, width, lambda x, y: x - y)


def bv_and(a, b, width=32):
    if a == 0 or b == 0:
        return 0
    full = _mask(width)
    if isinstance(b, int) and b == full:
        return a
    if isinstance(a, int) and a == full:
        return b
    # (x & c1) & c2 -> x & (c1 & c2)
    if isinstance(b, int) and isinstance(a, Expr) and a.kind == "and" \
            and isinstance(a.args[1], int):
        return bv_and(a.args[0], a.args[1] & b, width)
    return _binop("and", a, b, width, lambda x, y: x & y)


def bv_or(a, b, width=32):
    if a == 0:
        return b
    if b == 0:
        return a
    return _binop("or", a, b, width, lambda x, y: x | y)


def bv_xor(a, b, width=32):
    if a == 0:
        return b
    if b == 0:
        return a
    if isinstance(a, Expr) and a is b:
        return 0
    return _binop("xor", a, b, width, lambda x, y: x ^ y)


def _shift_fold(kind):
    return {
        "shl": lambda x, y: x << (y & 31),
        "shr": lambda x, y: x >> (y & 31),
        "sar": lambda x, y: (_signed32(x) >> (y & 31)),
    }[kind]


def _signed32(value):
    return value - (1 << 32) if value & 0x8000_0000 else value


def bv_shift(kind, a, b, width=32):
    if isinstance(b, int):
        b &= 31
        if b == 0:
            return a
    return _binop(kind, a, b, width, _shift_fold(kind))


def bv_mul(a, b, width=32):
    if a == 0 or b == 0:
        return 0
    if b == 1:
        return a
    if a == 1:
        return b
    return _binop("mul", a, b, width, lambda x, y: x * y)


def bv_divu(a, b, width=32):
    if isinstance(b, int) and b == 1:
        return a
    return _binop("divu", a, b, width,
                  lambda x, y: x // y if y else 0)


def bv_remu(a, b, width=32):
    return _binop("remu", a, b, width,
                  lambda x, y: x % y if y else 0)


def bv_not(a, width=32):
    if isinstance(a, int):
        return (~a) & _mask(width)
    if a.kind == "not":
        return a.args[0]
    return Expr("not", width, args=(a,))


def bv_neg(a, width=32):
    if isinstance(a, int):
        return (-a) & _mask(width)
    return Expr("neg", width, args=(a,))


def bv_zext(a, width):
    """Zero-extend ``a`` to ``width`` bits."""
    if isinstance(a, int):
        return a
    if a.width == width:
        return a
    return Expr("zext", width, args=(a,))


def bv_extract(a, lo_bit, width):
    """Extract ``width`` bits starting at bit ``lo_bit``."""
    if isinstance(a, int):
        return (a >> lo_bit) & _mask(width)
    if lo_bit == 0 and a.width == width:
        return a
    if a.kind == "zext":
        inner = a.args[0]
        if lo_bit + width <= inner.width or isinstance(inner, int):
            return bv_extract(inner, lo_bit, width)
        if lo_bit >= inner.width:
            return 0
    if a.kind == "concat":
        # Byte-granular concat: find the covered parts.
        return _extract_from_concat(a, lo_bit, width)
    if a.kind == "extract":
        return bv_extract(a.args[0], a.lo + lo_bit, width)
    return Expr("extract", width, args=(a,), lo=lo_bit)


def _extract_from_concat(concat, lo_bit, width):
    offset = 0
    parts = []
    need_lo = lo_bit
    need_hi = lo_bit + width
    for part in concat.args:
        part_width = 32 if isinstance(part, int) else part.width
        part_lo, part_hi = offset, offset + part_width
        overlap_lo = max(need_lo, part_lo)
        overlap_hi = min(need_hi, part_hi)
        if overlap_lo < overlap_hi:
            piece = bv_extract(part, overlap_lo - part_lo,
                               overlap_hi - overlap_lo)
            parts.append(piece)
        offset = part_hi
    if not parts:
        return 0
    if len(parts) == 1:
        return parts[0]
    return bv_concat(parts)


def bv_concat(parts):
    """Concatenate little-endian parts (parts[0] = least significant)."""
    widths = [32 if isinstance(p, int) else p.width for p in parts]
    total = sum(widths)
    if all(isinstance(p, int) for p in parts):
        value = 0
        shift = 0
        for part, width in zip(parts, widths):
            value |= (part & _mask(width)) << shift
            shift += width
        return value
    if len(parts) == 1:
        return parts[0]
    return Expr("concat", total, args=tuple(parts))


_CMP_FOLDS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "ult": lambda a, b: a < b,
    "uge": lambda a, b: a >= b,
    "slt": lambda a, b: _signed32(a) < _signed32(b),
    "sge": lambda a, b: _signed32(a) >= _signed32(b),
}


def bv_cmp(kind, a, b):
    """Comparison producing a 1-bit expression (or 0/1 int)."""
    if isinstance(a, int) and isinstance(b, int):
        return 1 if _CMP_FOLDS[kind](a, b) else 0
    if isinstance(a, Expr) and a is b:
        if kind in ("eq", "uge", "sge"):
            return 1
        if kind in ("ne", "ult", "slt"):
            return 0
    return Expr(kind, 1, args=(a, b))


def bool_not(cond):
    """Negate a 1-bit condition."""
    if isinstance(cond, int):
        return 0 if cond else 1
    negations = {"eq": "ne", "ne": "eq", "ult": "uge", "uge": "ult",
                 "slt": "sge", "sge": "slt"}
    if cond.kind in negations:
        return Expr(negations[cond.kind], 1, args=cond.args)
    return Expr("eq", 1, args=(cond, 0))


BINOP_BUILDERS = {
    "add": bv_add,
    "sub": bv_sub,
    "and": bv_and,
    "or": bv_or,
    "xor": bv_xor,
    "shl": lambda a, b, w=32: bv_shift("shl", a, b, w),
    "shr": lambda a, b, w=32: bv_shift("shr", a, b, w),
    "sar": lambda a, b, w=32: bv_shift("sar", a, b, w),
    "mul": bv_mul,
    "divu": bv_divu,
    "remu": bv_remu,
}


_BIN_FOLDS = {
    "add": lambda x, y: x + y,
    "sub": lambda x, y: x - y,
    "and": lambda x, y: x & y,
    "or": lambda x, y: x | y,
    "xor": lambda x, y: x ^ y,
    "shl": lambda x, y: x << (y & 31),
    "shr": lambda x, y: x >> (y & 31),
    "sar": lambda x, y: _signed32(x) >> (y & 31),
    "mul": lambda x, y: x * y,
    "divu": lambda x, y: x // y if y else 0,
    "remu": lambda x, y: x % y if y else 0,
}


def evaluate(expr, model, memo=None):
    """Evaluate ``expr`` to a concrete int under ``model`` (name -> int).

    Unbound symbols evaluate to 0.  Expressions are DAGs (byte extracts of
    one load are reassembled by concat, so subtrees are shared); ``memo``
    caches per-node results by identity so shared subtrees are evaluated
    once instead of once per reference.  Callers evaluating many
    expressions under the *same* model may pass one memo dict across the
    batch; it must be discarded whenever the model changes.
    """
    if isinstance(expr, int):
        return expr
    if memo is None:
        memo = {}
    return _evaluate(expr, model, memo)


def _evaluate(expr, model, memo):
    if isinstance(expr, int):
        return expr
    key = id(expr)
    cached = memo.get(key)
    if cached is not None:
        return cached[1]
    kind = expr.kind
    if kind == "sym":
        value = model.get(expr.name, 0) & _mask(expr.width)
    elif kind == "zext":
        value = _evaluate(expr.args[0], model, memo)
    elif kind == "extract":
        value = (_evaluate(expr.args[0], model, memo) >> expr.lo) \
            & _mask(expr.width)
    elif kind == "concat":
        value = 0
        shift = 0
        for part in expr.args:
            width = 32 if isinstance(part, int) else part.width
            value |= (_evaluate(part, model, memo) & _mask(width)) << shift
            shift += width
    elif kind == "not":
        value = (~_evaluate(expr.args[0], model, memo)) & _mask(expr.width)
    elif kind == "neg":
        value = (-_evaluate(expr.args[0], model, memo)) & _mask(expr.width)
    elif kind in _CMP_FOLDS:
        a = _evaluate(expr.args[0], model, memo)
        b = _evaluate(expr.args[1], model, memo)
        value = 1 if _CMP_FOLDS[kind](a, b) else 0
    else:
        a = _evaluate(expr.args[0], model, memo)
        b = _evaluate(expr.args[1], model, memo)
        value = _BIN_FOLDS[kind](a, b) & _mask(expr.width)
    # The node rides along in the entry so its id stays pinned for the
    # memo's lifetime (ids of collected nodes can be recycled).
    memo[key] = (expr, value)
    return value
