"""Bitvector expression language for symbolic execution.

Expressions are immutable, *hash-consed* DAGs over named symbols and
constants.  Smart constructors perform aggressive local simplification
(constant folding, identity/annihilator elimination, extract-of-concat
fusion) so that the expressions reaching the solver stay small -- the same
role KLEE's expression rewriting plays.

Three properties make expressions cheap to solve against (see DESIGN.md):

* **structural interning** -- ``Expr.__new__`` returns the canonical node
  for each distinct ``(kind, width, args, name, lo)`` tuple, so structural
  equality *is* identity and a node is a sound dictionary/cache key;
* **cached symbol sets** -- ``symbols()`` returns a frozenset computed once
  per node and shared by every holder;
* **compiled evaluation** -- ``compiled(expr)`` lowers a DAG once into a
  flat Python function (postorder, no recursion, no per-node dispatch)
  that maps a ``{symbol: int}`` model to the expression's value.

Plain Python ints are used for fully concrete values throughout the engine;
an :class:`Expr` only appears once a value actually depends on a symbol.
"""

import zlib

_MASKS = {1: 1, 8: 0xFF, 16: 0xFFFF, 32: 0xFFFFFFFF}


def _mask(width):
    return (1 << width) - 1


class Expr:
    """A bitvector expression of ``width`` bits (interned).

    ``kind`` is one of: ``sym``, ``add sub and or xor shl shr sar mul divu
    remu``, ``not neg``, ``zext``, ``extract`` (args: operand; ``lo`` bit
    offset), ``concat`` (little-endian: args[0] is least significant).
    Comparison kinds (``eq ne slt sge ult uge``) have width 1.

    Instances are hash-consed: constructing the same structure twice
    returns the same object, so ``a is b`` iff ``a`` and ``b`` are
    structurally equal.  Do not mutate nodes.
    """

    __slots__ = ("kind", "width", "args", "name", "lo",
                 "_hash", "_symbols", "_program", "_stable")

    _intern = {}

    def __new__(cls, kind, width, args=(), name="", lo=0):
        key = (kind, width, args, name, lo)
        table = cls._intern
        self = table.get(key)
        if self is not None:
            return self
        self = object.__new__(cls)
        self.kind = kind
        self.width = width
        self.args = args
        self.name = name
        self.lo = lo
        self._hash = hash(key)
        self._symbols = None
        self._program = None
        self._stable = None
        table[key] = self
        return self

    def __hash__(self):
        return self._hash

    # Interning makes identity equality complete: two structurally equal
    # expressions are the same object, so the default object.__eq__ /
    # __ne__ (identity) are exactly right and comparisons stay O(1).

    def symbols(self):
        """The (frozen, cached) set of symbol names this depends on."""
        cached = self._symbols
        if cached is not None:
            return cached
        # Iterative bottom-up: resolve children first so deep DAGs do not
        # hit the recursion limit; every node's set is computed once ever.
        stack = [self]
        while stack:
            node = stack[-1]
            if node._symbols is not None:
                stack.pop()
                continue
            if node.kind == "sym":
                node._symbols = frozenset((node.name,))
                stack.pop()
                continue
            pending = [a for a in node.args
                       if isinstance(a, Expr) and a._symbols is None]
            if pending:
                stack.extend(pending)
                continue
            out = frozenset()
            for arg in node.args:
                if isinstance(arg, Expr):
                    out |= arg._symbols
            node._symbols = out
            stack.pop()
        return self._symbols

    def stable_hash(self):
        """A structural hash stable across processes (unlike ``hash``,
        which varies with string-hash randomization).  Used to seed the
        solver's per-query fallback RNG deterministically."""
        cached = self._stable
        if cached is not None:
            return cached
        stack = [self]
        while stack:
            node = stack[-1]
            if node._stable is not None:
                stack.pop()
                continue
            pending = [a for a in node.args
                       if isinstance(a, Expr) and a._stable is None]
            if pending:
                stack.extend(pending)
                continue
            parts = [node.kind, str(node.width), node.name, str(node.lo)]
            for arg in node.args:
                parts.append(str(arg) if isinstance(arg, int)
                             else "#%08x" % arg._stable)
            node._stable = zlib.crc32("|".join(parts).encode())
            stack.pop()
        return self._stable

    def __repr__(self):
        return "<%s:%d %s>" % (self.kind, self.width, self.name or
                               ",".join(repr(a) for a in self.args))


#: Alias used where an expression is known to be a 1-bit condition.
BoolExpr = Expr


def clear_intern_cache():
    """Drop the interning table and compiled-program caches (tests /
    long-lived processes only).

    Live expressions keep working; new structurally-equal constructions
    will no longer be identical to pre-clear nodes, so never call this
    while solver contexts hold constraints.
    """
    Expr._intern = {}
    _CONJUNCTION_CACHE.clear()


def is_concrete(value):
    """True when ``value`` is a plain integer (no symbolic dependence)."""
    return isinstance(value, int)


def bv_const(value, width=32):
    """Concrete values are plain ints in this engine."""
    return value & _mask(width)


def bv_sym(name, width=32):
    """A fresh (or named) symbolic variable."""
    return Expr("sym", width, name=name)


def _width_of(value):
    return 32 if isinstance(value, int) else value.width


def _binop(kind, a, b, width, fold):
    if isinstance(a, int) and isinstance(b, int):
        return fold(a, b) & _mask(width)
    return Expr(kind, width, args=(a, b))


def bv_add(a, b, width=32):
    if b == 0:
        return a if isinstance(a, int) else a
    if a == 0 and isinstance(b, Expr):
        return b
    # (x + c1) + c2 -> x + (c1 + c2)
    if isinstance(b, int) and isinstance(a, Expr) and a.kind == "add" \
            and isinstance(a.args[1], int):
        return bv_add(a.args[0], (a.args[1] + b) & _mask(width), width)
    return _binop("add", a, b, width, lambda x, y: x + y)


def bv_sub(a, b, width=32):
    if isinstance(b, int):
        if b == 0:
            return a
        return bv_add(a, (-b) & _mask(width), width)
    if a is b:
        return 0
    return _binop("sub", a, b, width, lambda x, y: x - y)


def bv_and(a, b, width=32):
    if a == 0 or b == 0:
        return 0
    full = _mask(width)
    if isinstance(b, int) and b == full:
        return a
    if isinstance(a, int) and a == full:
        return b
    # (x & c1) & c2 -> x & (c1 & c2)
    if isinstance(b, int) and isinstance(a, Expr) and a.kind == "and" \
            and isinstance(a.args[1], int):
        return bv_and(a.args[0], a.args[1] & b, width)
    return _binop("and", a, b, width, lambda x, y: x & y)


def bv_or(a, b, width=32):
    if a == 0:
        return b
    if b == 0:
        return a
    return _binop("or", a, b, width, lambda x, y: x | y)


def bv_xor(a, b, width=32):
    if a == 0:
        return b
    if b == 0:
        return a
    if isinstance(a, Expr) and a is b:
        return 0
    return _binop("xor", a, b, width, lambda x, y: x ^ y)


def _shift_fold(kind):
    return {
        "shl": lambda x, y: x << (y & 31),
        "shr": lambda x, y: x >> (y & 31),
        "sar": lambda x, y: (_signed32(x) >> (y & 31)),
    }[kind]


def _signed32(value):
    return value - (1 << 32) if value & 0x8000_0000 else value


def bv_shift(kind, a, b, width=32):
    if isinstance(b, int):
        b &= 31
        if b == 0:
            return a
    return _binop(kind, a, b, width, _shift_fold(kind))


def bv_mul(a, b, width=32):
    if a == 0 or b == 0:
        return 0
    if b == 1:
        return a
    if a == 1:
        return b
    return _binop("mul", a, b, width, lambda x, y: x * y)


def bv_divu(a, b, width=32):
    if isinstance(b, int) and b == 1:
        return a
    return _binop("divu", a, b, width,
                  lambda x, y: x // y if y else 0)


def bv_remu(a, b, width=32):
    return _binop("remu", a, b, width,
                  lambda x, y: x % y if y else 0)


def bv_not(a, width=32):
    if isinstance(a, int):
        return (~a) & _mask(width)
    if a.kind == "not":
        return a.args[0]
    return Expr("not", width, args=(a,))


def bv_neg(a, width=32):
    if isinstance(a, int):
        return (-a) & _mask(width)
    return Expr("neg", width, args=(a,))


def bv_zext(a, width):
    """Zero-extend ``a`` to ``width`` bits."""
    if isinstance(a, int):
        return a
    if a.width == width:
        return a
    return Expr("zext", width, args=(a,))


def bv_extract(a, lo_bit, width):
    """Extract ``width`` bits starting at bit ``lo_bit``."""
    if isinstance(a, int):
        return (a >> lo_bit) & _mask(width)
    if lo_bit == 0 and a.width == width:
        return a
    if a.kind == "zext":
        inner = a.args[0]
        if lo_bit + width <= inner.width or isinstance(inner, int):
            return bv_extract(inner, lo_bit, width)
        if lo_bit >= inner.width:
            return 0
    if a.kind == "concat":
        # Byte-granular concat: find the covered parts.
        return _extract_from_concat(a, lo_bit, width)
    if a.kind == "extract":
        return bv_extract(a.args[0], a.lo + lo_bit, width)
    return Expr("extract", width, args=(a,), lo=lo_bit)


def _extract_from_concat(concat, lo_bit, width):
    offset = 0
    parts = []
    need_lo = lo_bit
    need_hi = lo_bit + width
    for part in concat.args:
        part_width = 32 if isinstance(part, int) else part.width
        part_lo, part_hi = offset, offset + part_width
        overlap_lo = max(need_lo, part_lo)
        overlap_hi = min(need_hi, part_hi)
        if overlap_lo < overlap_hi:
            piece = bv_extract(part, overlap_lo - part_lo,
                               overlap_hi - overlap_lo)
            parts.append(piece)
        offset = part_hi
    if not parts:
        return 0
    if len(parts) == 1:
        return parts[0]
    return bv_concat(parts)


def bv_concat(parts):
    """Concatenate little-endian parts (parts[0] = least significant)."""
    widths = [32 if isinstance(p, int) else p.width for p in parts]
    total = sum(widths)
    if all(isinstance(p, int) for p in parts):
        value = 0
        shift = 0
        for part, width in zip(parts, widths):
            value |= (part & _mask(width)) << shift
            shift += width
        return value
    if len(parts) == 1:
        return parts[0]
    return Expr("concat", total, args=tuple(parts))


_CMP_FOLDS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "ult": lambda a, b: a < b,
    "uge": lambda a, b: a >= b,
    "slt": lambda a, b: _signed32(a) < _signed32(b),
    "sge": lambda a, b: _signed32(a) >= _signed32(b),
}


def bv_cmp(kind, a, b):
    """Comparison producing a 1-bit expression (or 0/1 int)."""
    if isinstance(a, int) and isinstance(b, int):
        return 1 if _CMP_FOLDS[kind](a, b) else 0
    if isinstance(a, Expr) and a is b:
        if kind in ("eq", "uge", "sge"):
            return 1
        if kind in ("ne", "ult", "slt"):
            return 0
    return Expr(kind, 1, args=(a, b))


def bool_not(cond):
    """Negate a 1-bit condition."""
    if isinstance(cond, int):
        return 0 if cond else 1
    negations = {"eq": "ne", "ne": "eq", "ult": "uge", "uge": "ult",
                 "slt": "sge", "sge": "slt"}
    if cond.kind in negations:
        return Expr(negations[cond.kind], 1, args=cond.args)
    return Expr("eq", 1, args=(cond, 0))


BINOP_BUILDERS = {
    "add": bv_add,
    "sub": bv_sub,
    "and": bv_and,
    "or": bv_or,
    "xor": bv_xor,
    "shl": lambda a, b, w=32: bv_shift("shl", a, b, w),
    "shr": lambda a, b, w=32: bv_shift("shr", a, b, w),
    "sar": lambda a, b, w=32: bv_shift("sar", a, b, w),
    "mul": bv_mul,
    "divu": bv_divu,
    "remu": bv_remu,
}


# ==========================================================================
# Compiled evaluation
#
# A constraint DAG is lowered once into the source of a flat Python
# function: one assignment per distinct node in postorder (shared subtrees
# are emitted once), symbols read through ``model.get``, all semantics
# identical to the old recursive evaluator.  The compiled function is
# cached on the interned node, so every state/fork/query that reaches the
# same constraint reuses the same program.

_SIGNED = "(%s - 4294967296 if %s & 2147483648 else %s)"


def _postorder(expr):
    """Distinct Expr nodes of the DAG, children before parents."""
    return _postorder_many((expr,))


def _postorder_many(exprs):
    """Distinct Expr nodes of several DAGs, children before parents."""
    order = []
    seen = set()
    stack = [(e, False) for e in reversed(exprs) if isinstance(e, Expr)]
    while stack:
        node, expanded = stack.pop()
        marker = id(node)
        if expanded:
            order.append(node)
            continue
        if marker in seen:
            continue
        seen.add(marker)
        stack.append((node, True))
        for arg in node.args:
            if isinstance(arg, Expr) and id(arg) not in seen:
                stack.append((arg, False))
    return order


def _compile_program(expr, roots=None):
    """Lower one DAG (or, with ``roots``, a conjunction of 1-bit DAGs
    sharing subtrees) into a flat evaluation function.

    With ``roots`` the function returns a bitmask with bit *i* set iff
    ``roots[i]`` evaluates to 1 -- the representation the solver's greedy
    hill-climb scores against.
    """
    order = _postorder_many(roots) if roots is not None else _postorder(expr)
    var = {}
    lines = []

    def ref(value):
        return repr(value) if isinstance(value, int) else var[id(value)]

    for index, node in enumerate(order):
        name = "v%d" % index
        var[id(node)] = name
        kind = node.kind
        mask = _mask(node.width)
        if kind == "sym":
            rhs = "g(%r, 0) & %d" % (node.name, mask)
        elif kind == "zext":
            rhs = ref(node.args[0])
        elif kind == "extract":
            rhs = "(%s >> %d) & %d" % (ref(node.args[0]), node.lo, mask)
        elif kind == "concat":
            shift = 0
            pieces = []
            for part in node.args:
                part_width = 32 if isinstance(part, int) else part.width
                masked = "(%s & %d)" % (ref(part), _mask(part_width))
                pieces.append(masked if shift == 0
                              else "(%s << %d)" % (masked, shift))
                shift += part_width
            rhs = " | ".join(pieces)
        elif kind == "not":
            rhs = "~%s & %d" % (ref(node.args[0]), mask)
        elif kind == "neg":
            rhs = "-%s & %d" % (ref(node.args[0]), mask)
        elif kind in ("eq", "ne", "ult", "uge", "slt", "sge"):
            a, b = ref(node.args[0]), ref(node.args[1])
            if kind in ("slt", "sge"):
                a = _SIGNED % (a, a, a)
                b = _SIGNED % (b, b, b)
            op = {"eq": "==", "ne": "!=", "ult": "<", "uge": ">=",
                  "slt": "<", "sge": ">="}[kind]
            rhs = "1 if %s %s %s else 0" % (a, op, b)
        else:
            a, b = ref(node.args[0]), ref(node.args[1])
            if kind == "add":
                body = "%s + %s" % (a, b)
            elif kind == "sub":
                body = "%s - %s" % (a, b)
            elif kind == "and":
                body = "%s & %s" % (a, b)
            elif kind == "or":
                body = "%s | %s" % (a, b)
            elif kind == "xor":
                body = "%s ^ %s" % (a, b)
            elif kind == "shl":
                body = "%s << (%s & 31)" % (a, b)
            elif kind == "shr":
                body = "%s >> (%s & 31)" % (a, b)
            elif kind == "sar":
                body = "%s >> (%s & 31)" % (_SIGNED % (a, a, a), b)
            elif kind == "mul":
                body = "%s * %s" % (a, b)
            elif kind == "divu":
                body = "(%s // %s if %s else 0)" % (a, b, b)
            elif kind == "remu":
                body = "(%s %% %s if %s else 0)" % (a, b, b)
            else:  # pragma: no cover
                raise TypeError("cannot compile kind %r" % (kind,))
            rhs = "(%s) & %d" % (body, mask)
        lines.append("    %s = %s" % (name, rhs))

    if roots is not None:
        result = " | ".join(
            ref(root) if shift == 0 else "(%s << %d)" % (ref(root), shift)
            for shift, root in enumerate(roots))
    else:
        result = var[id(expr)]
    source = ("def _program(m):\n"
              "    _c[0] += 1\n"
              "    _c[1] += %d\n"
              "    g = m.get\n"
              "%s\n"
              "    return %s\n") % (len(order), "\n".join(lines), result)
    namespace = {"_c": _COUNTER_CELLS}
    exec(compile(source, "<expr-program>", "exec"), namespace)
    _COUNTER_CELLS[2] += 1
    return namespace["_program"]


#: Mutable cells shared with every compiled program:
#: [program runs, node visits, programs compiled].  Deterministic -- the
#: perf-regression budget tests assert against them via eval_counters().
_COUNTER_CELLS = [0, 0, 0]


def eval_counters():
    """Snapshot of the compiled-evaluation counters (deterministic)."""
    return {"program_runs": _COUNTER_CELLS[0],
            "node_visits": _COUNTER_CELLS[1],
            "programs": _COUNTER_CELLS[2]}


def compiled(expr):
    """The compiled evaluation program of ``expr`` (cached on the node).

    Returns a function ``program(model) -> int`` with semantics identical
    to :func:`evaluate`; unbound symbols read as 0.
    """
    program = expr._program
    if program is None:
        program = _compile_program(expr)
        expr._program = program
    return program


_CONJUNCTION_CACHE = {}


def compiled_conjunction(constraints):
    """One program for a tuple of 1-bit constraints sharing subtrees.

    Returns ``program(model) -> mask`` where bit *i* is set iff
    ``constraints[i]`` is satisfied.  Shared subexpressions across the
    conjunction are evaluated once per call -- the property the old
    per-batch memo dict provided, without its per-node dict traffic.
    """
    program = _CONJUNCTION_CACHE.get(constraints)
    if program is None:
        program = _compile_program(None, roots=constraints)
        _CONJUNCTION_CACHE[constraints] = program
    return program


def evaluate(expr, model):
    """Evaluate ``expr`` to a concrete int under ``model`` (name -> int).

    Unbound symbols evaluate to 0.  Runs the node's compiled program
    (built on first use, cached on the interned node), so shared subtrees
    are evaluated once and repeated evaluations pay no traversal or
    dispatch cost.
    """
    if isinstance(expr, int):
        return expr
    return compiled(expr)(model)
