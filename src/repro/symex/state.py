"""Execution states for selective symbolic execution.

A state is the paper's ``<path, block>`` tuple made concrete: the full
machine context of one path -- CPU registers (possibly symbolic), COW
symbolic memory, the path constraints, and the per-path OS-side effects
(heap cursor, DMA registrations, pending timers) that forked paths must not
share.
"""

import enum
import itertools
from dataclasses import dataclass, field

from repro.layout import HEAP_BASE
from repro.symex.solver import SolverContext


class PathStatus(enum.Enum):
    RUNNING = "running"
    COMPLETED = "completed"      # returned to the OS
    KILLED = "killed"            # terminated by an exploration heuristic
    ERROR = "error"              # guest fault / infeasible continuation
    HALTED = "halted"


@dataclass
class OsContext:
    """Per-path OS-side effects (forked with the state)."""

    heap_next: int = HEAP_BASE + 0x40000  # symbolic-phase scratch heap
    dma_regions: list = field(default_factory=list)   # (phys, size)
    timers: dict = field(default_factory=dict)        # struct -> handler
    indicated: int = 0
    send_completions: int = 0
    error_logs: int = 0

    def fork(self):
        return OsContext(heap_next=self.heap_next,
                         dma_regions=list(self.dma_regions),
                         timers=dict(self.timers),
                         indicated=self.indicated,
                         send_completions=self.send_completions,
                         error_logs=self.error_logs)

    def is_dma(self, address):
        return any(base <= address < base + size
                   for base, size in self.dma_regions)


_state_ids = itertools.count()


class SymState:
    """One path through the driver."""

    def __init__(self, pc, regs, memory, constraints=None, os=None,
                 parent=None, solver_ctx=None, id_source=None):
        #: id allocator shared down the fork tree.  A run passes a fresh
        #: counter for its root state so path ids are deterministic per
        #: run (serialized artifacts depend on this), not per process.
        if id_source is None:
            id_source = parent._ids if parent is not None else _state_ids
        self._ids = id_source
        self.id = next(id_source)
        self.pc = pc
        self.regs = list(regs)
        self.memory = memory
        self.constraints = list(constraints or [])
        #: incremental solver view of the path constraints (union-find
        #: components with cached witness models; see symex.solver)
        if solver_ctx is None:
            solver_ctx = SolverContext()
            for constraint in self.constraints:
                if not isinstance(constraint, int):
                    solver_ctx.add(constraint)
        self.solver_ctx = solver_ctx
        self.os = os or OsContext()
        self.parent = parent
        self.status = PathStatus.RUNNING
        self.return_value = None
        #: per-state execution count of each block (loop detection)
        self.block_counts = {}
        #: frozen record lists inherited from fork points (shared,
        #: read-only) followed by this state's live record list -- the
        #: full path trace is their concatenation
        self.trace_chain = []
        self.trace_records = []
        self.depth = 0 if parent is None else parent.depth + 1
        #: concretization model accumulated along the path, so repeated
        #: concretizations stay mutually consistent
        self.model_hint = {} if parent is None else dict(parent.model_hint)
        #: block addresses this state re-entered through a *symbolic*
        #: back-edge -- polling-loop suspects eligible for the loop killer
        #: (concrete-bounded loops like memcpy/CRC are never killed)
        self.loop_suspects = set()

    def fork(self):
        """COW fork at a symbolic branch.

        The live record list is frozen into the shared prefix so records
        the parent produces *after* the fork never leak into the child's
        path (and vice versa).
        """
        child = SymState(self.pc, self.regs, self.memory.fork(),
                         self.constraints, self.os.fork(), parent=self,
                         solver_ctx=self.solver_ctx.fork())
        child.block_counts = dict(self.block_counts)
        child.loop_suspects = set(self.loop_suspects)
        prefix = self.trace_chain + [self.trace_records]
        child.trace_chain = list(prefix)
        child.trace_records = []
        self.trace_chain = list(prefix)
        self.trace_records = []
        return child

    def add_constraint(self, constraint, model=None):
        """Append a path constraint.

        ``model``, when provided, is a witness satisfying the constraint
        together with the components it touches (e.g. the model the
        feasibility check that admitted this constraint found); caching it
        on the solver context keeps later branch checks on the fast path.
        """
        if not isinstance(constraint, int):
            self.constraints.append(constraint)
            self.solver_ctx.add(constraint, model=model)
        elif constraint == 0:
            self.status = PathStatus.ERROR

    def count_block(self, pc):
        """Bump and return this state's local execution count of ``pc``."""
        count = self.block_counts.get(pc, 0) + 1
        self.block_counts[pc] = count
        return count

    def path_trace(self):
        """All trace records from the root to this state, in order."""
        records = []
        for part in self.trace_chain:
            records.extend(part)
        records.extend(self.trace_records)
        return records

    def __repr__(self):
        return "<SymState #%d pc=0x%08x %s depth=%d>" % (
            self.id, self.pc, self.status.value, self.depth)
