"""Differential execution of scenario programs.

One generated program runs exactly like a catalog scenario: once against
the original binary on the source-OS harness (the baseline, shared across
target OSes) and once per synthesized target-OS driver, with the two
observations classified by the same
:func:`repro.validate.differ.classify_observations` rule the validation
matrix uses.  The matrix samples a fixed 11-scenario slice of the input
space; this module runs arbitrary sampled points of the full program
space through identical machinery.
"""

from dataclasses import dataclass, field

from repro.net.traffic import ScenarioProgram
from repro.validate.differ import Divergence, classify_observations
from repro.validate.matrix import expected_status
from repro.validate.observe import OriginalDut, SynthesizedDut
from repro.validate.scenarios import run_scenario


@dataclass
class ProgramRun:
    """One program x one driver x one target OS, classified."""

    driver: str
    target_os: str
    program_name: str
    seed: int
    verdict: str              # 'match' | 'divergent' | 'unsupported' | 'skipped'
    expected: str = "equivalent"
    steps: int = 0
    divergences: list = field(default_factory=list)
    candidate_error: str = ""
    #: serialized program, carried on non-matching runs so the failure
    #: replays from this record alone
    program: dict = None

    @property
    def unexplained(self):
        """True when this run is a finding the matrix semantics cannot
        account for: behavioral divergence anywhere, or an unsupported
        result where equivalence was expected."""
        if self.verdict == "divergent":
            return True
        return self.verdict == "unsupported" \
            and self.expected == "equivalent"

    def to_dict(self):
        return {"driver": self.driver, "target_os": self.target_os,
                "program_name": self.program_name, "seed": self.seed,
                "verdict": self.verdict, "expected": self.expected,
                "steps": self.steps,
                "divergences": [d.to_dict() for d in self.divergences],
                "candidate_error": self.candidate_error,
                "program": self.program}

    @classmethod
    def from_dict(cls, data):
        return cls(driver=data["driver"], target_os=data["target_os"],
                   program_name=data["program_name"], seed=data["seed"],
                   verdict=data["verdict"], expected=data["expected"],
                   steps=data["steps"],
                   divergences=[Divergence.from_dict(d)
                                for d in data["divergences"]],
                   candidate_error=data["candidate_error"],
                   program=data["program"])


def run_program_column(artifact, os_names, programs, exec_backend=None):
    """All (program x target OS) runs for one driver's artifact.

    Mirrors :func:`repro.validate.matrix.compute_column`: one baseline
    per program (the original binary), shared by every target OS; pure
    function of the artifact and programs, so it is safe in a worker
    process.  Returns ``(runs, baselines)`` where ``baselines`` maps
    program name -> baseline :class:`Observation` (the fuzz engine mines
    them for behavior coverage).
    """
    driver = artifact.name
    supported = set(artifact.synthesized.entry_points)
    original_backend = "compiled" if exec_backend is None else exec_backend
    synth_backend = "interp" if exec_backend == "step" else exec_backend
    runs = []
    baselines = {}
    for program in programs:
        if not supported.issuperset(program.requires):
            for os_name in os_names:
                runs.append(ProgramRun(
                    driver=driver, target_os=os_name,
                    program_name=program.name, seed=program.seed,
                    verdict="skipped",
                    expected=expected_status(driver, os_name),
                    steps=len(program.steps)))
            continue
        baseline = run_scenario(
            OriginalDut(driver, exec_backend=original_backend), program)
        baselines[program.name] = baseline
        for os_name in os_names:
            candidate = run_scenario(
                SynthesizedDut(artifact, os_name,
                               exec_backend=synth_backend), program)
            outcome = classify_observations(baseline, candidate)
            run = ProgramRun(
                driver=driver, target_os=os_name,
                program_name=program.name, seed=program.seed,
                verdict=outcome.verdict,
                expected=expected_status(driver, os_name),
                steps=len(program.steps),
                divergences=outcome.divergences,
                candidate_error=outcome.candidate_error)
            if not outcome.matched:
                run.program = program.to_dict()
            runs.append(run)
    return runs, baselines


def replay_program(program, driver, os_names, artifact,
                   exec_backend=None):
    """Replay one (possibly deserialized) program differentially.

    The seed-replay workflow: load a serialized program (``dict`` or
    :class:`ScenarioProgram`), run it against ``driver`` on every OS in
    ``os_names``, and return the classified :class:`ProgramRun` list.
    """
    if isinstance(program, dict):
        program = ScenarioProgram.from_dict(program)
    runs, _baselines = run_program_column(artifact, os_names, [program],
                                          exec_backend=exec_backend)
    return runs
