"""Differential scenario fuzzing and soak testing.

PR 4's validation matrix checks functional equivalence on 11 hand-written
deterministic scenarios -- a fixed slice of an enormous input space.
This package turns the matrix into a *sampled view of a randomized
scenario space*:

* :mod:`repro.fuzz.generate` -- seeded generation of replayable
  :class:`~repro.net.traffic.ScenarioProgram` workloads over the traffic
  vocabulary (bursts, runts, oversize/bad-FCS frames, link flaps, OID
  queries, resets, interleaved bidirectional traffic);
* :mod:`repro.fuzz.differential` -- runs each program through the
  :class:`~repro.validate.observe.DriverUnderTest` facade on both the
  original binary and every synthesized target-OS driver, classified by
  the shared :mod:`repro.validate.differ` semantics;
* :mod:`repro.fuzz.engine` -- the loop-until-dry campaign driver:
  rounds of programs fanned out per driver over spawn workers, stopping
  after N consecutive rounds with zero new coverage and zero new
  divergences;
* :mod:`repro.fuzz.artifact` -- canonical, versioned campaign
  serialization (same seed + config + code ==> byte-identical JSON),
  shared with the pipeline's content-addressed store;
* :mod:`repro.fuzz.soak` -- sustained saturation workloads per driver x
  execution backend, tracking packets/sec and divergence-free steps for
  the ``fuzz_soak`` benchmark section;
* :mod:`repro.fuzz.strategies` -- hypothesis strategies over the same
  vocabulary (test-only; import requires hypothesis).

See the "Fuzzing & soak" section of ``docs/validation.md``.
"""

from repro.fuzz.artifact import (FUZZ_SCHEMA_VERSION, canonical_fuzz_json,
                                 fuzz_from_dict, fuzz_from_json, fuzz_key,
                                 fuzz_to_dict, fuzz_to_json,
                                 load_fuzz_result, save_fuzz_result)
from repro.fuzz.differential import (ProgramRun, replay_program,
                                     run_program_column)
from repro.fuzz.engine import (FuzzConfig, FuzzEngine, FuzzResult,
                               observation_features, program_features,
                               run_fuzz)
from repro.fuzz.generate import ProgramGenerator
from repro.fuzz.soak import (SoakRecord, run_fabric_soak, run_soak,
                             saturation_program, soak_cell)

__all__ = [
    "FUZZ_SCHEMA_VERSION",
    "canonical_fuzz_json",
    "fuzz_from_dict",
    "fuzz_from_json",
    "fuzz_key",
    "fuzz_to_dict",
    "fuzz_to_json",
    "load_fuzz_result",
    "save_fuzz_result",
    "ProgramRun",
    "replay_program",
    "run_program_column",
    "FuzzConfig",
    "FuzzEngine",
    "FuzzResult",
    "observation_features",
    "program_features",
    "run_fuzz",
    "ProgramGenerator",
    "SoakRecord",
    "run_fabric_soak",
    "run_soak",
    "saturation_program",
    "soak_cell",
]
