"""Soak mode: sustained differential saturation workloads.

Where the fuzz engine samples many short programs, soak drives one long
deterministic saturation program -- interleaved TX/RX bursts at ring-
pressure rates -- through the full differential harness, per driver and
per execution backend, and reports throughput (packets/sec through the
differential comparison) plus the divergence-free step count.  Divergence-
free soak time is a first-class benchmark: the equivalence claim is only
as strong as the sustained traffic it survives, and the ``fuzz_soak``
section of ``BENCH_pipeline.json`` tracks it alongside the matrix.
"""

import time
from dataclasses import dataclass

from repro.fuzz.differential import run_program_column
from repro.net.traffic import ScenarioProgram, ScenarioStep

#: Frames injected/sent per burst step of the saturation program.
BURST_FRAMES = 4
#: Payload size of the saturation bursts.
BURST_PAYLOAD = 256


def saturation_program(rounds=10, payload=BURST_PAYLOAD,
                       burst=BURST_FRAMES):
    """The soak workload: ``rounds`` repetitions of a TX burst, an RX
    burst, quiet ring pressure and a service drain.  Fully deterministic;
    every round moves ``3 * burst`` frames plus the drain."""
    cycle = (
        ScenarioStep("send_burst", {"size": payload, "count": burst}),
        ScenarioStep("inject_burst", {"size": payload, "count": burst}),
        ScenarioStep("quiet_burst", {"size": payload, "count": burst}),
        ScenarioStep("service", {}),
    )
    return ScenarioProgram(name="soak-%dx%d" % (rounds, burst),
                           seed=0, steps=cycle * rounds,
                           description="saturation soak workload")


@dataclass
class SoakRecord:
    """One (driver, backend) soak cell."""

    driver: str
    target_os: str
    backend: str
    steps: int
    divergence_free_steps: int
    divergences: int
    packets: int
    wall_seconds: float
    packets_per_sec: float

    def to_dict(self):
        return {"driver": self.driver, "target_os": self.target_os,
                "backend": self.backend, "steps": self.steps,
                "divergence_free_steps": self.divergence_free_steps,
                "divergences": self.divergences, "packets": self.packets,
                "wall_seconds": round(self.wall_seconds, 3),
                "packets_per_sec": round(self.packets_per_sec, 1)}


def soak_cell(artifact, os_name, backend, rounds=10):
    """Run the saturation program differentially for one driver on one
    target OS under one execution backend; returns a :class:`SoakRecord`.

    ``backend`` is the original-binary execution tier (``"compiled"`` /
    ``"interp"``); the synthesized side maps ``"step"`` to its
    tree-walking reference exactly as the matrix does.
    """
    program = saturation_program(rounds=rounds)
    started = time.monotonic()
    runs, baselines = run_program_column(artifact, (os_name,), [program],
                                         exec_backend=backend)
    wall = time.monotonic() - started
    (run,) = runs
    baseline = baselines.get(program.name)
    packets = 0
    if baseline is not None:
        packets = len(baseline.wire_frames) + len(baseline.delivered)
    divergence_free = run.steps if run.verdict == "match" else 0
    return SoakRecord(
        driver=artifact.name, target_os=os_name, backend=backend,
        steps=run.steps, divergence_free_steps=divergence_free,
        divergences=len(run.divergences), packets=packets,
        wall_seconds=wall,
        packets_per_sec=packets / wall if wall > 0 else 0.0)


def run_fabric_soak(orchestrator=None, endpoints=16, seed=0xFAB1C,
                    workload="saturation", backends=("compiled",),
                    mode=None, queue_depth=None, store=None):
    """Fleet-scale soak: ``endpoints`` synthesized drivers on one switch.

    Builds the seeded workload, runs the fleet (batched event-driven by
    default), and returns the fabric report -- persisted under its
    content-addressed ``fabric-`` key when a ``store`` is given.  Same
    replayability contract as the program fuzzer: the (workload, count,
    seed) triple plus the topology fully determines the canonical report
    bytes.
    """
    from repro.net.fabric import (build_workload, run_fleet,
                                  save_fabric_report)
    from repro.pipeline.orchestrator import PipelineOrchestrator

    orchestrator = orchestrator or PipelineOrchestrator()
    plan = build_workload(workload, endpoints, seed)
    report = run_fleet(plan, orchestrator=orchestrator, backends=backends,
                       mode=mode, queue_depth=queue_depth)
    if store is not None:
        save_fabric_report(store, plan, report)
    return report


def run_soak(orchestrator=None, drivers=None, os_name="winsim",
             backends=("compiled", "interp"), rounds=10,
             strategy="coverage", script="default"):
    """The full soak sweep: every driver x every execution backend.

    Returns a JSON-ready dict: per-driver per-backend records plus
    corpus-wide totals (programs run, steps, packets/sec, divergences)
    -- the ``fuzz_soak`` benchmark payload.
    """
    from repro.drivers import DRIVERS
    from repro.pipeline.orchestrator import PipelineOrchestrator

    orchestrator = orchestrator or PipelineOrchestrator()
    drivers = sorted(DRIVERS) if drivers is None else list(drivers)
    cells = {}
    totals = {"programs_run": 0, "steps": 0, "packets": 0,
              "divergences": 0, "wall_seconds": 0.0}
    for driver in drivers:
        artifact = orchestrator.run(driver, strategy, script)
        cells[driver] = {}
        for backend in backends:
            record = soak_cell(artifact, os_name, backend, rounds=rounds)
            cells[driver][backend] = record.to_dict()
            totals["programs_run"] += 1
            totals["steps"] += record.steps
            totals["packets"] += record.packets
            totals["divergences"] += record.divergences
            totals["wall_seconds"] += record.wall_seconds
    totals["wall_seconds"] = round(totals["wall_seconds"], 3)
    totals["packets_per_sec"] = round(
        totals["packets"] / totals["wall_seconds"], 1) \
        if totals["wall_seconds"] > 0 else 0.0
    return {"os_name": os_name, "rounds": rounds, "drivers": cells,
            "totals": totals}
