"""Seeded scenario-program generation.

The generator is the fuzzer's randomness boundary: one ``seed`` maps to
one :class:`~repro.net.traffic.ScenarioProgram` through a private
``random.Random(seed)`` stream, and nothing downstream of the program is
random at all.  That split is what makes fuzz runs replayable -- a
divergence report carries the serialized program (and its seed, for
provenance), and replaying the JSON reproduces the failure exactly,
without the generator even being importable.

Every parameter range below stays inside the envelope the deterministic
catalog already proved equivalent (payload sizes within the Ethernet
sweep, runt/oversize lengths inside the device models' buffer caps,
filter flags over the adaptation-table bits), so a divergence found by
fuzzing is a *behavioral* finding, never a harness artifact.
"""

import random

from repro.net.traffic import (MULTICAST_GROUPS, ScenarioProgram,
                               ScenarioStep)

#: OID_GEN_CURRENT_PACKET_FILTER bit palette (raw ints so programs stay
#: JSON-pure; values mirror repro.guestos.structures.PacketFilter).
FILTER_DIRECTED = 0x01
FILTER_MULTICAST = 0x02
FILTER_BROADCAST = 0x04
FILTER_PROMISCUOUS = 0x20

#: Packet-filter mixes the generator draws from -- always DIRECTED plus
#: a mix, matching how every NDIS OS actually programs the filter.
FILTER_CHOICES = (
    FILTER_DIRECTED,
    FILTER_DIRECTED | FILTER_MULTICAST,
    FILTER_DIRECTED | FILTER_BROADCAST,
    FILTER_DIRECTED | FILTER_MULTICAST | FILTER_BROADCAST,
    FILTER_DIRECTED | FILTER_PROMISCUOUS,
)

#: UDP payload sizes the traffic steps draw from (a discrete palette
#: keeps generated programs minimizable and human-readable).
SIZE_CHOICES = (18, 64, 128, 256, 300, 512, 1000, 1400, 1472)

#: Destination kinds for tagged single-frame injections.
TAGGED_DSTS = ("station", "stranger", "broadcast", "multicast_a",
               "multicast_b", "multicast_out")

#: Default program length bounds (steps per program).
MIN_STEPS = 3
MAX_STEPS = 10


def _gen_send_burst(rng):
    return {"size": rng.choice(SIZE_CHOICES), "count": rng.randint(1, 4)}


def _gen_inject_burst(rng):
    return {"size": rng.choice(SIZE_CHOICES), "count": rng.randint(1, 4)}


def _gen_quiet_burst(rng):
    # Up to ring-overrunning pressure; zero-length bursts are legal and
    # deliberately generated (the no-op edge the catalog never hits).
    return {"size": rng.choice((64, 128, 300)),
            "count": rng.choice((0, 1, 2, 4, 8, 16))}


def _gen_service(rng):
    return {}


def _gen_inject_tagged(rng):
    return {"dst": rng.choice(TAGGED_DSTS), "tag": rng.randint(0, 255)}


def _gen_inject_runt(rng):
    return {"length": rng.randint(6, 59), "seed": rng.randint(0, 255)}


def _gen_inject_oversize(rng):
    return {"length": rng.randint(1501, 1900), "seed": rng.randint(0, 255)}


def _gen_inject_fcs(rng):
    return {"tag": rng.randint(0, 255), "corrupt": rng.random() < 0.5}


def _gen_bidirectional(rng):
    length = rng.randint(2, 4)
    return {"size": rng.choice(SIZE_CHOICES),
            "rounds": rng.randint(1, 2),
            "pattern": [rng.randint(0, 3) for _ in range(length - 1)]
            + [rng.randint(1, 3)]}


def _gen_set_link(rng):
    return {"up": rng.random() < 0.5}


def _gen_link_flap(rng):
    return {"size": rng.choice(SIZE_CHOICES),
            "frames_down": rng.randint(0, 3)}


def _gen_reset(rng):
    return {}


def _gen_set_filter(rng):
    return {"flags": rng.choice(FILTER_CHOICES)}


def _gen_set_multicast(rng):
    count = rng.randint(0, len(MULTICAST_GROUPS))
    return {"groups": list(MULTICAST_GROUPS[:count])}


def _gen_query_mac(rng):
    return {}


def _gen_query_link_speed(rng):
    return {}


#: (op, weight, param generator).  Weights skew toward data-path traffic
#: -- the behavior the equivalence claim is really about -- with control
#: plane, adversarial RX and lifecycle churn mixed in.
OP_WEIGHTS = (
    ("send_burst", 5, _gen_send_burst),
    ("inject_burst", 5, _gen_inject_burst),
    ("quiet_burst", 2, _gen_quiet_burst),
    ("service", 2, _gen_service),
    ("inject_tagged", 4, _gen_inject_tagged),
    ("inject_runt", 2, _gen_inject_runt),
    ("inject_oversize", 2, _gen_inject_oversize),
    ("inject_fcs", 2, _gen_inject_fcs),
    ("bidirectional", 2, _gen_bidirectional),
    ("set_link", 1, _gen_set_link),
    ("link_flap", 2, _gen_link_flap),
    ("reset", 1, _gen_reset),
    ("set_filter", 2, _gen_set_filter),
    ("set_multicast", 1, _gen_set_multicast),
    ("query_mac", 1, _gen_query_mac),
    ("query_link_speed", 1, _gen_query_link_speed),
)


def _weighted_choice(rng, table, total):
    pick = rng.randrange(total)
    for op, weight, gen in table:
        if pick < weight:
            return op, gen
        pick -= weight
    raise AssertionError("unreachable")


class ProgramGenerator:
    """Maps seeds to scenario programs, deterministically.

    ``program(seed)`` is a pure function: two generators (in two
    processes, two sessions, two years) produce byte-identical
    ``to_json()`` output for the same seed.  The fuzz engine walks seeds
    ``base_seed + i``; any interesting program is pinned forever by its
    serialized form in ``tests/fuzz_corpus/``.
    """

    def __init__(self, min_steps=MIN_STEPS, max_steps=MAX_STEPS):
        if not 1 <= min_steps <= max_steps:
            raise ValueError("bad step bounds [%d, %d]"
                             % (min_steps, max_steps))
        self.min_steps = min_steps
        self.max_steps = max_steps
        self._total_weight = sum(w for _op, w, _g in OP_WEIGHTS)

    def program(self, seed):
        """The :class:`ScenarioProgram` for ``seed``."""
        rng = random.Random(seed)
        steps = []
        count = rng.randint(self.min_steps, self.max_steps)
        link_down = False
        for _ in range(count):
            op, gen = _weighted_choice(rng, OP_WEIGHTS, self._total_weight)
            params = gen(rng)
            if op == "set_link":
                link_down = not params["up"]
            elif op in ("link_flap", "reset"):
                link_down = False
            steps.append(ScenarioStep(op=op, params=params))
        if link_down:
            # Leave the cable plugged in: a program must end in a state
            # the next program's boot can rely on either side resetting.
            steps.append(ScenarioStep(op="set_link", params={"up": True}))
        return ScenarioProgram(name="fuzz-%08x" % (seed & 0xFFFFFFFF),
                               seed=seed, steps=tuple(steps),
                               description="generated by seed %d" % seed)

    def programs(self, base_seed, count):
        """``count`` programs for consecutive seeds from ``base_seed``."""
        return [self.program(base_seed + i) for i in range(count)]
