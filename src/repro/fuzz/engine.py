"""The loop-until-dry differential fuzz driver.

Rounds of seeded program generation fan out across the driver corpus --
one worker per driver column over the same spawn-pool-with-serial-
fallback discipline as the pipeline orchestrator and the validation
matrix -- and every (program, driver, target OS) run is classified
against the original binary.  The loop stops when ``dry_rounds``
consecutive rounds produce **zero new coverage and zero new unexplained
divergences** (or at the ``max_rounds`` safety bound): the sampled
program space has gone dry under the current vocabulary.

Coverage is behavioral, not just syntactic: besides the step-op unigrams
and bigrams a round's programs exercise, every baseline observation is
mined for features -- distinct (driver, operation, status) triples,
bucketed wire/delivery/interrupt counts, link drops, error-log activity
-- so a round only counts as progress when it made some driver *do*
something no earlier round did.
"""

import os
import time
from dataclasses import dataclass, field

from repro.fuzz.differential import ProgramRun, run_program_column
from repro.fuzz.generate import MAX_STEPS, MIN_STEPS, ProgramGenerator
from repro.net.traffic import ScenarioProgram
from repro.validate.matrix import OS_ORDER


def _bucket(count):
    """Small-count bucketing for coverage features (exact up to 4, then
    coarse -- saturating detail where behavior actually differs)."""
    if count < 5:
        return str(count)
    if count < 10:
        return "5+"
    return "10+"


def program_features(program):
    """Syntactic coverage: the step ops and op bigrams of ``program``."""
    ops = [step.op for step in program.steps]
    features = {"op:%s" % op for op in ops}
    features.update("bigram:%s>%s" % pair for pair in zip(ops, ops[1:]))
    return features


def observation_features(driver, observation):
    """Behavioral coverage mined from one baseline observation."""
    features = set()
    prefix = "beh:%s" % driver
    for label, status in observation.statuses:
        features.add("%s:status:%s:0x%x" % (prefix, label, status))
    features.add("%s:wire:%s" % (prefix, _bucket(len(
        observation.wire_frames))))
    features.add("%s:delivered:%s" % (prefix, _bucket(len(
        observation.delivered))))
    features.add("%s:irq:%s" % (prefix, _bucket(observation.irq_count)))
    features.add("%s:drops:%s" % (prefix, _bucket(observation.link_drops)))
    if observation.error_log:
        features.add("%s:errlog" % prefix)
    if not observation.ok:
        features.add("%s:error:%s" % (prefix, observation.error))
    return features


@dataclass
class FuzzConfig:
    """One fuzz campaign's parameters (the replay key, minus the code)."""

    drivers: tuple = ()        # () -> the whole corpus
    os_names: tuple = tuple(OS_ORDER)
    base_seed: int = 0xC0FFEE
    programs_per_round: int = 4
    max_rounds: int = 8
    dry_rounds: int = 2
    min_steps: int = MIN_STEPS
    max_steps: int = MAX_STEPS
    strategy: str = "coverage"
    script: str = "default"
    exec_backend: str = None

    def resolved_drivers(self):
        from repro.drivers import DRIVERS

        return tuple(sorted(DRIVERS)) if not self.drivers \
            else tuple(self.drivers)

    def to_dict(self):
        return {"drivers": list(self.resolved_drivers()),
                "os_names": list(self.os_names),
                "base_seed": self.base_seed,
                "programs_per_round": self.programs_per_round,
                "max_rounds": self.max_rounds,
                "dry_rounds": self.dry_rounds,
                "min_steps": self.min_steps,
                "max_steps": self.max_steps,
                "strategy": self.strategy,
                "script": self.script,
                "exec_backend": self.exec_backend}


@dataclass
class FuzzResult:
    """Everything one campaign produced, serializable for the store."""

    config: dict
    programs: list = field(default_factory=list)   # program dicts, in order
    runs: list = field(default_factory=list)       # ProgramRun, in order
    coverage: set = field(default_factory=set)
    rounds: list = field(default_factory=list)     # per-round summaries
    wall_seconds: float = 0.0
    mode: str = "serial"
    stopped: str = "dry"       # 'dry' | 'budget'
    #: the campaign's ResilienceReport (or its dict when deserialized)
    resilience: object = None

    def unexplained(self):
        return [run for run in self.runs if run.unexplained]

    def summary(self):
        verdicts = [run.verdict for run in self.runs]
        return {
            "programs": len(self.programs),
            "runs": len(self.runs),
            "steps": sum(run.steps for run in self.runs),
            "matched": verdicts.count("match"),
            "divergent": verdicts.count("divergent"),
            "unsupported": verdicts.count("unsupported"),
            "skipped": verdicts.count("skipped"),
            "unexplained": len(self.unexplained()),
            "coverage": len(self.coverage),
            "rounds": len(self.rounds),
            "stopped": self.stopped,
            "mode": self.mode,
            "wall_seconds": round(self.wall_seconds, 3),
        }


def _fuzz_column_worker(job, fault=None):
    """Pool target: one driver's runs for one round's programs.

    Same discipline as the matrix column worker: the worker builds its
    own orchestrator over the shared store root, loads (or cold-computes
    and persists) the driver artifact, and returns serialized results.
    ``fault`` is the run-layer injection hook (worker-layer faults are
    consumed by the pool child before this function runs).
    """
    (driver, os_names, program_texts, strategy, script, store_root,
     exec_backend) = job
    from repro.faults.inject import maybe_raise_run_fault
    from repro.pipeline.orchestrator import PipelineOrchestrator
    from repro.pipeline.store import ArtifactStore

    maybe_raise_run_fault(fault, "revnic")
    store = ArtifactStore(store_root) if store_root else False
    orchestrator = PipelineOrchestrator(store=store, parallel=False)
    artifact = orchestrator.run(driver, strategy, script)
    programs = [ScenarioProgram.from_json(text) for text in program_texts]
    runs, baselines = run_program_column(artifact, os_names, programs,
                                         exec_backend=exec_backend)
    features = set()
    for name, observation in baselines.items():
        features |= observation_features(driver, observation)
    return driver, [run.to_dict() for run in runs], sorted(features)


class FuzzEngine:
    """Runs a differential fuzz campaign over the driver corpus."""

    def __init__(self, orchestrator=None, config=None):
        from repro.pipeline.orchestrator import PipelineOrchestrator

        self.orchestrator = orchestrator or PipelineOrchestrator()
        self.config = config or FuzzConfig()
        self.generator = ProgramGenerator(min_steps=self.config.min_steps,
                                          max_steps=self.config.max_steps)

    def run(self, parallel=None, faults=None):
        """Fuzz until dry (or the round budget); returns a
        :class:`FuzzResult`.

        ``faults`` maps driver name -> FaultSpec (chaos campaigns); the
        supervised pool retries faulted columns, healthy columns keep
        their pooled results, and unhealed columns fall back to serial
        recomputation per driver.  The campaign-wide
        :class:`ResilienceReport` lands on ``result.resilience``.
        """
        from repro.faults.report import ResilienceReport

        config = self.config
        started = time.monotonic()
        report = ResilienceReport()
        if parallel is None:
            parallel = self.orchestrator.parallel \
                and (os.cpu_count() or 1) > 1
        drivers = config.resolved_drivers()
        result = FuzzResult(config=config.to_dict(), resilience=report)
        mode = "serial"
        dry_streak = 0
        seed_cursor = config.base_seed
        for round_index in range(config.max_rounds):
            programs = self.generator.programs(seed_cursor,
                                               config.programs_per_round)
            seed_cursor += config.programs_per_round
            round_runs, round_features, round_mode = self._run_round(
                drivers, programs, parallel, faults, report)
            if round_mode == "parallel":
                mode = "parallel"
            for program in programs:
                round_features |= program_features(program)
            new_features = round_features - result.coverage
            new_unexplained = [run for run in round_runs
                               if run.unexplained]
            result.coverage |= round_features
            result.programs.extend(p.to_dict() for p in programs)
            result.runs.extend(round_runs)
            result.rounds.append({
                "round": round_index,
                "seeds": [p.seed for p in programs],
                "new_coverage": len(new_features),
                "new_divergences": len(new_unexplained),
            })
            if not new_features and not new_unexplained:
                dry_streak += 1
                if dry_streak >= config.dry_rounds:
                    break
            else:
                dry_streak = 0
        else:
            result.stopped = "budget"
        result.mode = mode
        result.wall_seconds = time.monotonic() - started
        return result

    # ------------------------------------------------------------------

    def _run_round(self, drivers, programs, parallel, faults, report):
        """One round's (driver x program x OS) runs; pool when possible.

        Fallback is per driver column: every column the pool completed
        is kept, and only missing columns are recomputed serially (with
        a recorded degradation when the pool had been attempted).
        """
        collected = {}
        pool_attempted = parallel and len(drivers) > 1
        if pool_attempted:
            with report.stage_timer("pool"):
                collected = self._run_pool(drivers, programs, faults,
                                           report)
        missing = [d for d in drivers if d not in collected]
        if missing:
            with report.stage_timer("serial"):
                for driver in missing:
                    if pool_attempted:
                        report.record_degradation(
                            "fuzz", "per-column serial fallback",
                            job=driver)
                        report.record_outcome(driver, "serial-fallback")
                    artifact = self.orchestrator.run(
                        driver, self.config.strategy, self.config.script)
                    column, baselines = run_program_column(
                        artifact, self.config.os_names, programs,
                        exec_backend=self.config.exec_backend)
                    features = set()
                    for observation in baselines.values():
                        features |= observation_features(driver,
                                                         observation)
                    collected[driver] = (column, features)
        runs = []
        features = set()
        for driver in drivers:
            column, column_features = collected[driver]
            runs.extend(column)
            features.update(column_features)
        mode = "parallel" if pool_attempted and len(missing) < len(drivers) \
            else "serial"
        return runs, features, mode

    def _run_pool(self, drivers, programs, faults, report):
        """Fan driver columns out across the supervised spawn pool.

        Returns ``{driver: (runs, features)}`` for every column that
        completed (possibly after retries); an empty dict means the pool
        was unavailable.  Columns the pool could not heal are left to
        the caller's per-column serial fallback.
        """
        from repro.pipeline.pool import PoolUnavailable, run_supervised

        store = self.orchestrator.store
        store_root = store.root if store is not None else None
        program_texts = tuple(p.to_json() for p in programs)
        jobs = [(driver, tuple(self.config.os_names), program_texts,
                 self.config.strategy, self.config.script, store_root,
                 self.config.exec_backend) for driver in drivers]
        fault_map = {}
        if faults:
            for index, driver in enumerate(drivers):
                spec = faults.get(driver)
                if spec is not None and spec.layer in ("worker", "run"):
                    fault_map[index] = spec

        def _validate(payload):
            driver, encoded, features = payload
            return driver, ([ProgramRun.from_dict(r) for r in encoded],
                            set(features))

        try:
            results, _failures = run_supervised(
                jobs, _fuzz_column_worker, labels=list(drivers),
                max_workers=self.orchestrator.max_workers,
                timeout=self.orchestrator.job_timeout,
                retries=self.orchestrator.retries, faults=fault_map,
                validate=_validate, report=report)
        except PoolUnavailable as exc:
            report.record_degradation("pool",
                                      "pool unavailable: %s" % exc)
            return {}
        return {driver: column for driver, column in results.values()}


def run_fuzz(orchestrator=None, parallel=None, faults=None,
             **config_kwargs):
    """One-call entry point: build and run a fuzz campaign."""
    config = FuzzConfig(**config_kwargs)
    return FuzzEngine(orchestrator=orchestrator, config=config) \
        .run(parallel=parallel, faults=faults)
