"""Serialization of fuzz campaigns: replayable, canonical, storable.

A campaign serializes to versioned JSON the same way pipeline run
artifacts do: the encoding is a *canonical* function of the campaign's
outputs (sorted keys, sorted coverage, no whitespace), with the only
non-deterministic fields -- wall clock and pool mode -- scrubbed by
:func:`canonical_fuzz_json`.  Same seed, same config, same code ==>
byte-identical canonical JSON; the determinism tests hold the fuzzer to
exactly that.

Campaign records share the pipeline's content-addressed
:class:`~repro.pipeline.store.ArtifactStore` under a ``fuzz-`` key
prefix: the key hashes the canonical config, the fuzz schema version and
the ``src/repro`` code fingerprint, so stale campaigns (different
vocabulary, different comparison semantics) read as misses, never as
replayable corpora.
"""

import hashlib
import json

from repro.errors import ArtifactError
from repro.fuzz.differential import ProgramRun
from repro.fuzz.engine import FuzzResult

#: Bump on any incompatible change to the encoding below.
#: v2: added the ``resilience`` field (the campaign's ResilienceReport).
FUZZ_SCHEMA_VERSION = 2


def _resilience_dict(resilience):
    if resilience is None:
        return None
    if hasattr(resilience, "to_dict"):
        return resilience.to_dict()
    return dict(resilience)


def fuzz_to_dict(result):
    """Encode a :class:`FuzzResult` as a JSON-serializable dict (full
    fidelity, wall clock, mode and resilience included)."""
    return {
        "schema": FUZZ_SCHEMA_VERSION,
        "config": dict(result.config),
        "programs": list(result.programs),
        "runs": [run.to_dict() for run in result.runs],
        "coverage": sorted(result.coverage),
        "rounds": list(result.rounds),
        "summary": result.summary(),
        "stopped": result.stopped,
        "mode": result.mode,
        "wall_seconds": result.wall_seconds,
        "resilience": _resilience_dict(result.resilience),
    }


def fuzz_from_dict(data):
    """Decode a dict produced by :func:`fuzz_to_dict`."""
    try:
        schema = data["schema"]
        if schema != FUZZ_SCHEMA_VERSION:
            raise ArtifactError("fuzz artifact schema %r, expected %r"
                                % (schema, FUZZ_SCHEMA_VERSION))
        return FuzzResult(
            config=dict(data["config"]),
            programs=list(data["programs"]),
            runs=[ProgramRun.from_dict(r) for r in data["runs"]],
            coverage=set(data["coverage"]),
            rounds=list(data["rounds"]),
            wall_seconds=data["wall_seconds"],
            mode=data["mode"],
            stopped=data["stopped"],
            resilience=data.get("resilience"),
        )
    except ArtifactError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError("malformed fuzz artifact: %s" % (exc,)) from exc


def fuzz_to_json(result):
    """Full-fidelity deterministic-format JSON (timings included)."""
    return json.dumps(fuzz_to_dict(result), sort_keys=True,
                      separators=(",", ":"))


def fuzz_from_json(text):
    return fuzz_from_dict(json.loads(text))


def canonical_fuzz_json(result):
    """Deterministic JSON with the volatile fields scrubbed.

    Byte-equality of canonical JSON is the campaign-equivalence relation:
    two runs of the same seed and config (serial or pooled, cold or warm)
    must produce identical bytes.
    """
    data = fuzz_to_dict(result)
    data["wall_seconds"] = 0.0
    data["mode"] = "scrubbed"
    summary = dict(data["summary"])
    summary["wall_seconds"] = 0.0
    summary["mode"] = "scrubbed"
    data["summary"] = summary
    # The resilience report records *how* a run survived (pool vs serial,
    # retries, timings) -- volatile by design, so canonical equivalence
    # scrubs it entirely.
    data["resilience"] = None
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def fuzz_key(config):
    """Store key for one campaign configuration.

    Content-addressed like pipeline artifact keys: config + schema +
    code fingerprint, so campaigns recorded by different code never
    collide with (or shadow) current ones.
    """
    from repro.pipeline.store import code_fingerprint

    config_dict = config.to_dict() if hasattr(config, "to_dict") \
        else dict(config)
    digest = hashlib.sha256()
    digest.update(b"fuzz-schema:%d|" % FUZZ_SCHEMA_VERSION)
    digest.update(json.dumps(config_dict, sort_keys=True,
                             separators=(",", ":")).encode())
    digest.update(code_fingerprint().encode())
    return "fuzz-%s" % digest.hexdigest()


def save_fuzz_result(store, result):
    """Persist ``result`` in ``store``; returns the store key."""
    key = fuzz_key(result.config)
    store.save_json(key, fuzz_to_json(result))
    return key


def load_fuzz_result(store, config):
    """The stored campaign for ``config``, or ``None``."""
    text = store.load_json(fuzz_key(config))
    if text is None:
        return None
    try:
        return fuzz_from_json(text)
    except (ArtifactError, json.JSONDecodeError):
        return None
