"""Hypothesis strategies over the scenario-program vocabulary.

The seeded :class:`~repro.fuzz.generate.ProgramGenerator` owns campaign
generation (replayable seeds, no external dependency); these strategies
expose the *same parameter envelope* to hypothesis for property-based
testing -- shrinking a failing program to a minimal step list is exactly
what hypothesis is good at, and a shrunk example serializes straight into
``tests/fuzz_corpus/``.

Hypothesis is a test-only dependency: importing this module without it
raises ImportError, and nothing else in :mod:`repro.fuzz` touches it.
"""

from hypothesis import strategies as st

from repro.fuzz.generate import (FILTER_CHOICES, SIZE_CHOICES, TAGGED_DSTS)
from repro.net.traffic import (MULTICAST_GROUPS, ScenarioProgram,
                               ScenarioStep)

_sizes = st.sampled_from(SIZE_CHOICES)
_tags = st.integers(min_value=0, max_value=255)

#: Per-op parameter strategies, mirroring ProgramGenerator's envelope.
STEP_PARAMS = {
    "send_burst": st.fixed_dictionaries(
        {"size": _sizes, "count": st.integers(1, 4)}),
    "inject_burst": st.fixed_dictionaries(
        {"size": _sizes, "count": st.integers(1, 4)}),
    "quiet_burst": st.fixed_dictionaries(
        {"size": st.sampled_from((64, 128, 300)),
         "count": st.sampled_from((0, 1, 2, 4, 8, 16))}),
    "service": st.just({}),
    "inject_tagged": st.fixed_dictionaries(
        {"dst": st.sampled_from(TAGGED_DSTS), "tag": _tags}),
    "inject_runt": st.fixed_dictionaries(
        {"length": st.integers(6, 59), "seed": _tags}),
    "inject_oversize": st.fixed_dictionaries(
        {"length": st.integers(1501, 1900), "seed": _tags}),
    "inject_fcs": st.fixed_dictionaries(
        {"tag": _tags, "corrupt": st.booleans()}),
    "bidirectional": st.fixed_dictionaries(
        {"size": _sizes, "rounds": st.integers(1, 2),
         "pattern": st.lists(st.integers(0, 3), min_size=1, max_size=3)
         .filter(lambda p: any(p))}),
    "set_link": st.fixed_dictionaries({"up": st.booleans()}),
    "link_flap": st.fixed_dictionaries(
        {"size": _sizes, "frames_down": st.integers(0, 3)}),
    "reset": st.just({}),
    "set_filter": st.fixed_dictionaries(
        {"flags": st.sampled_from(FILTER_CHOICES)}),
    "set_multicast": st.fixed_dictionaries(
        {"groups": st.lists(st.sampled_from(MULTICAST_GROUPS),
                            max_size=len(MULTICAST_GROUPS), unique=True)}),
    "query_mac": st.just({}),
    "query_link_speed": st.just({}),
}


@st.composite
def scenario_steps(draw):
    """One vocabulary step with in-envelope parameters."""
    op = draw(st.sampled_from(sorted(STEP_PARAMS)))
    return ScenarioStep(op=op, params=draw(STEP_PARAMS[op]))


@st.composite
def scenario_programs(draw, min_steps=1, max_steps=6):
    """A whole scenario program (name marks it hypothesis-built)."""
    steps = draw(st.lists(scenario_steps(), min_size=min_steps,
                          max_size=max_steps))
    return ScenarioProgram(name="hypo-%04d" % draw(st.integers(0, 9999)),
                           seed=0, steps=tuple(steps),
                           description="hypothesis-generated program")
