"""The validation workload catalog.

Each scenario is one deterministic driver workout: a fixed sequence of
operations and wire traffic driven identically against the original binary
(source OS) and the synthesized driver (each target OS).  The catalog goes
deliberately beyond the paper's fixed-size UDP sweep -- adversarial RX
(runts, oversize, corrupted FCS), bidirectional bursts, RX-ring overflow
pressure, filter mixes and link flaps -- because functional equivalence is
only as strong as the traffic it is checked under.

A scenario must be *deterministic*: no randomness, no timing dependence.
``requires`` lists the entry-point roles beyond ``initialize``/``send``/
``isr`` the scenario needs; the matrix skips scenarios the synthesized
driver cannot host (e.g. artifacts produced by the reduced ``quick``
exercise script carry no ``set_information`` entry point).
"""

from dataclasses import dataclass

from repro.guestos.structures import PacketFilter
from repro.net.traffic import (BidirectionalBurst, UdpWorkload,
                               addressed_frame, frame_with_fcs,
                               overflow_burst, oversize_frame,
                               packet_size_sweep, runt_frame)

#: A second multicast group outside the programmed list.
_GROUP_IN = b"\x01\x00\x5e\x00\x00\x01"
_GROUP_IN2 = b"\x01\x00\x5e\x00\x00\x17"
_GROUP_OUT = b"\x01\x00\x5e\x7f\x00\x42"
_BROADCAST = b"\xff" * 6
_OTHER_UNICAST = b"\x02\x99\x02\x99\x02\x99"


@dataclass(frozen=True)
class Scenario:
    """One catalog entry."""

    name: str
    description: str
    run: callable
    #: entry-point roles needed beyond initialize/send/isr
    requires: tuple = ()


# -- data path -------------------------------------------------------------

def _boot_probe(dut):
    """Init, control-plane queries, clean shutdown."""
    dut.boot()
    dut.query_mac()
    dut.query_link_speed()
    dut.shutdown()


def _udp_stream(dut):
    """The paper's workload: unidirectional UDP at several sizes."""
    dut.boot()
    for size in (64, 256, 1000):
        workload = UdpWorkload(dut.mac, dut.peer, size)
        for frame in workload.frames(2):
            dut.send(frame.to_bytes())


def _udp_extremes(dut):
    """Smallest and largest legal UDP payloads from the sweep."""
    dut.boot()
    sizes = packet_size_sweep()
    for size in (sizes[0], sizes[-1], 18):
        workload = UdpWorkload(dut.mac, dut.peer, size)
        dut.send(workload.next_frame().to_bytes())


def _bidirectional_burst(dut):
    """Interleaved TX/RX bursts (full-duplex traffic mix)."""
    dut.boot()
    for kind, frame in BidirectionalBurst(dut.mac, dut.peer).events():
        if kind == "tx":
            dut.send(frame)
        else:
            dut.inject(frame)


# -- adversarial RX --------------------------------------------------------

def _runt_oversize_rx(dut):
    """Runt and oversize wire frames, then a normal one to prove the
    driver survived."""
    dut.boot()
    dut.inject(runt_frame(dut.mac, dut.peer, total_length=24))
    dut.inject(runt_frame(dut.mac, dut.peer, total_length=59, seed=9))
    dut.inject(oversize_frame(dut.mac, dut.peer, payload_length=1600))
    dut.inject(addressed_frame(dut.mac, dut.peer, tag=1))


def _bad_crc_rx(dut):
    """Frames carrying a trailing FCS -- one valid, one corrupted."""
    dut.boot()
    base = addressed_frame(dut.mac, dut.peer, tag=2)
    dut.inject(frame_with_fcs(base))
    dut.inject(frame_with_fcs(addressed_frame(dut.mac, dut.peer, tag=3),
                              corrupt=True))
    dut.inject(addressed_frame(dut.mac, dut.peer, tag=4))


def _rx_overflow(dut):
    """Back-to-back RX pressure without interrupt service: overruns any
    bounded RX ring, then drains and resumes."""
    dut.boot()
    for frame in overflow_burst(dut.peer, dut.mac, count=40,
                                payload_size=300):
        dut.inject_quiet(frame)
    dut.service()
    dut.inject(addressed_frame(dut.mac, dut.peer, tag=5))
    dut.inject(addressed_frame(dut.mac, dut.peer, tag=6))


# -- filtering -------------------------------------------------------------

def _filter_mix(dut):
    """Multicast list plus packet-filter mixes, including promiscuous."""
    dut.boot()
    probes = [
        addressed_frame(dut.mac, dut.peer, tag=10),
        addressed_frame(_OTHER_UNICAST, dut.peer, tag=11),
        addressed_frame(_GROUP_IN, dut.peer, tag=12),
        addressed_frame(_GROUP_IN2, dut.peer, tag=13),
        addressed_frame(_GROUP_OUT, dut.peer, tag=14),
        addressed_frame(_BROADCAST, dut.peer, tag=15),
    ]
    dut.set_multicast_list([_GROUP_IN, _GROUP_IN2])
    dut.set_packet_filter(PacketFilter.DIRECTED | PacketFilter.MULTICAST)
    for frame in probes:
        dut.inject(frame)
    dut.set_packet_filter(PacketFilter.DIRECTED | PacketFilter.BROADCAST)
    for frame in probes:
        dut.inject(frame)
    dut.set_packet_filter(PacketFilter.DIRECTED | PacketFilter.PROMISCUOUS)
    for frame in probes:
        dut.inject(frame)


def _promiscuous_churn(dut):
    """Toggle promiscuous mode around traffic (filter state machine)."""
    dut.boot()
    stranger = addressed_frame(_OTHER_UNICAST, dut.peer, tag=20)
    dut.inject(stranger)
    dut.set_packet_filter(PacketFilter.DIRECTED | PacketFilter.PROMISCUOUS)
    dut.inject(stranger)
    dut.set_packet_filter(PacketFilter.DIRECTED)
    dut.inject(stranger)
    dut.inject(addressed_frame(dut.mac, dut.peer, tag=21))


# -- lifecycle under traffic ----------------------------------------------

def _link_flap(dut):
    """Cable pull mid-burst: traffic into a downed link vanishes, the
    driver is reset, traffic resumes."""
    dut.boot()
    workload = UdpWorkload(dut.mac, dut.peer, 200)
    for frame in workload.frames(2):
        dut.send(frame.to_bytes())
    dut.set_link(False)
    for frame in workload.frames(2):
        dut.send(frame.to_bytes())
    dut.inject(addressed_frame(dut.mac, dut.peer, tag=30))
    dut.set_link(True)
    dut.reset()
    for frame in workload.frames(2):
        dut.send(frame.to_bytes())
    dut.inject(addressed_frame(dut.mac, dut.peer, tag=31))


def _control_plane(dut):
    """MAC rewrite, duplex, Wake-on-LAN, LED: the Table 2 control
    surface under differential comparison."""
    dut.boot()
    new_mac = b"\x52\x54\x00\x01\x02\x03"
    dut.set_mac(new_mac)
    dut.query_mac()
    dut.inject(addressed_frame(new_mac, dut.peer, tag=40))
    dut.inject(addressed_frame(dut.mac, dut.peer, tag=41))
    dut.set_full_duplex(True)
    dut.enable_wake_on_lan()
    dut.set_led(2)
    dut.send(UdpWorkload(new_mac, dut.peer, 128).next_frame().to_bytes())


#: The catalog, in deterministic execution order.
SCENARIOS = (
    Scenario("boot_probe",
             "init, MAC + link-speed queries, clean shutdown",
             _boot_probe, requires=("query_information", "halt")),
    Scenario("udp_stream",
             "unidirectional UDP at 64/256/1000-byte payloads",
             _udp_stream),
    Scenario("udp_extremes",
             "smallest and largest legal UDP payloads",
             _udp_extremes),
    Scenario("bidirectional_burst",
             "interleaved TX/RX bursts (full-duplex mix)",
             _bidirectional_burst),
    Scenario("runt_oversize_rx",
             "runt and oversize wire frames, then recovery",
             _runt_oversize_rx),
    Scenario("bad_crc_rx",
             "frames with valid and corrupted trailing FCS",
             _bad_crc_rx),
    Scenario("rx_overflow",
             "40-frame quiet burst overruns the RX ring, then drains",
             _rx_overflow),
    Scenario("filter_mix",
             "multicast list x packet-filter combinations",
             _filter_mix, requires=("set_information",)),
    Scenario("promiscuous_churn",
             "promiscuous toggled around a stranger's traffic",
             _promiscuous_churn, requires=("set_information",)),
    Scenario("link_flap",
             "cable pull mid-burst, reset, resume",
             _link_flap, requires=("reset",)),
    Scenario("control_plane",
             "MAC rewrite, duplex, WoL, LED control",
             _control_plane,
             requires=("set_information", "query_information")),
)

CATALOG = {scenario.name: scenario for scenario in SCENARIOS}


def run_scenario(dut, scenario):
    """Drive ``scenario`` against ``dut`` and snapshot the observation.

    Exceptions are part of the observable behavior (``ok``/``error``), not
    harness failures: an unsupported adaptation (``TemplateError``) or a
    missing basic block surfaces here as a divergence or an explained
    incompatibility, never as a crashed matrix.
    """
    try:
        scenario.run(dut)
    except Exception as exc:  # noqa: BLE001 -- behavior, not plumbing
        return dut.observation(scenario.name, ok=False,
                               error=type(exc).__name__)
    return dut.observation(scenario.name)
