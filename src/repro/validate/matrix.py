"""The drivers x target-OSes x workloads differential validation matrix.

For every synthesized driver (loaded from cached pipeline
:class:`~repro.pipeline.artifact.RunArtifact`\\ s -- nothing is
re-reverse-engineered) and every target OS, each catalog scenario runs
twice: once as the baseline (the original binary on the source-OS harness)
and once as the candidate (the synthesized driver in the target-OS
template), and the two observations are compared field by field.

Cell semantics:

* ``equivalent`` -- every non-skipped scenario matched exactly;
* ``unsupported`` -- every non-skipped scenario failed with a
  ``TemplateError`` (an OS that cannot host the driver, e.g. the DMA
  drivers on uC/OS-II, which has no shared-memory API -- the paper never
  ports them there either, Table 1);
* ``divergent`` -- at least one scenario exhibited a real behavioral
  difference;
* ``skipped`` -- no scenario could run (reduced-script artifacts).

Each cell also carries its *expectation*; an **unexplained** divergence is
any behavioral mismatch, or an unsupported result where equivalence was
expected.  The matrix fans out across the same supervised spawn pool as
the pipeline orchestrator (:func:`repro.pipeline.pool.run_supervised`:
per-job timeout, bounded retry, classified failures) -- one worker per
driver column, each loading (or, cold, computing and storing) its
artifact from the shared on-disk store -- with **per-column** serial
fallback: one misbehaving column never forces healthy columns to
recompute.  Every run records how it survived in
:attr:`MatrixResult.resilience`.
"""

import os
import time
from dataclasses import dataclass, field

from repro.drivers import DRIVERS
from repro.validate.differ import Divergence, classify_observations
from repro.validate.observe import OriginalDut, SynthesizedDut
from repro.validate.scenarios import CATALOG, SCENARIOS, run_scenario

#: Target OSes in matrix-column order.
OS_ORDER = ("winsim", "linsim", "ucsim", "kitos")

#: Cells where the template layer cannot host the driver at all; the
#: matrix *verifies* these stay unsupported rather than assuming them.
EXPECTED_UNSUPPORTED = {
    ("rtl8139", "ucsim"): "bus-master DMA driver; ucsim has no "
                          "shared-memory DMA API",
    ("pcnet", "ucsim"): "bus-master DMA driver; ucsim has no "
                        "shared-memory DMA API",
}


def expected_status(driver, os_name):
    """'equivalent' or 'unsupported': what this cell should report."""
    if (driver, os_name) in EXPECTED_UNSUPPORTED:
        return "unsupported"
    return "equivalent"


@dataclass
class ScenarioResult:
    """One scenario's verdict inside one cell."""

    name: str
    verdict: str              # 'match' | 'divergent' | 'unsupported' | 'skipped'
    divergences: list = field(default_factory=list)
    candidate_error: str = ""

    def to_dict(self):
        return {"name": self.name, "verdict": self.verdict,
                "divergences": [d.to_dict() for d in self.divergences],
                "candidate_error": self.candidate_error}

    @classmethod
    def from_dict(cls, data):
        return cls(name=data["name"], verdict=data["verdict"],
                   divergences=[Divergence.from_dict(d)
                                for d in data["divergences"]],
                   candidate_error=data["candidate_error"])


@dataclass
class CellResult:
    """One (driver, target OS) cell of the matrix."""

    driver: str
    target_os: str
    expected: str             # 'equivalent' | 'unsupported'
    scenarios: list = field(default_factory=list)

    @property
    def ran(self):
        return [s for s in self.scenarios if s.verdict != "skipped"]

    @property
    def matched(self):
        return [s for s in self.scenarios if s.verdict == "match"]

    @property
    def status(self):
        ran = self.ran
        if not ran:
            return "skipped"
        if all(s.verdict == "match" for s in ran):
            return "equivalent"
        if all(s.verdict == "unsupported" for s in ran):
            return "unsupported"
        return "divergent"

    def unexplained(self):
        """Scenario results this cell cannot account for: behavioral
        divergences anywhere, and unsupported results where equivalence
        was expected."""
        out = []
        for result in self.scenarios:
            if result.verdict == "divergent":
                out.append(result)
            elif result.verdict == "unsupported" \
                    and self.expected == "equivalent":
                out.append(result)
        return out

    def to_dict(self):
        return {"driver": self.driver, "target_os": self.target_os,
                "expected": self.expected,
                "scenarios": [s.to_dict() for s in self.scenarios]}

    @classmethod
    def from_dict(cls, data):
        return cls(driver=data["driver"], target_os=data["target_os"],
                   expected=data["expected"],
                   scenarios=[ScenarioResult.from_dict(s)
                              for s in data["scenarios"]])


@dataclass
class MatrixResult:
    """The full matrix plus how the run went."""

    cells: dict               # (driver, os_name) -> CellResult
    drivers: list
    os_names: list
    scenario_names: list
    wall_seconds: float = 0.0
    mode: str = "serial"      # 'parallel' | 'serial'
    #: :class:`~repro.faults.report.ResilienceReport` of this run
    resilience: object = None

    def cell(self, driver, os_name):
        return self.cells[(driver, os_name)]

    def unexplained(self):
        """[(driver, os, ScenarioResult)] the matrix cannot account for."""
        out = []
        for (driver, os_name), cell in sorted(self.cells.items()):
            for result in cell.unexplained():
                out.append((driver, os_name, result))
        return out

    def summary(self):
        statuses = [cell.status for cell in self.cells.values()]
        return {
            "cells": len(self.cells),
            "equivalent": statuses.count("equivalent"),
            "unsupported": statuses.count("unsupported"),
            "divergent": statuses.count("divergent"),
            "skipped": statuses.count("skipped"),
            "scenarios_run": sum(len(cell.ran)
                                 for cell in self.cells.values()),
            "scenarios_matched": sum(len(cell.matched)
                                     for cell in self.cells.values()),
            "unexplained": len(self.unexplained()),
            "wall_seconds": round(self.wall_seconds, 3),
            "mode": self.mode,
        }


def compute_column(artifact, os_names, scenario_names, exec_backend=None):
    """All cells for one driver, sharing one baseline per scenario.

    Pure function of the artifact and catalog -- safe to run in a worker
    process; everything it returns serializes through ``to_dict``.
    ``exec_backend`` overrides the execution tier on *both* sides
    (``None`` keeps the library default: compiled blocks everywhere).
    """
    driver = artifact.name
    scenarios = [CATALOG[name] for name in scenario_names]
    supported_roles = set(artifact.synthesized.entry_points)
    original_backend = "compiled" if exec_backend is None else exec_backend
    # The synthesized side has no per-instruction tier; "step" means the
    # tree-walking reference there.
    synth_backend = "interp" if exec_backend == "step" else exec_backend
    baselines = {}
    cells = []
    for os_name in os_names:
        results = []
        for scenario in scenarios:
            if not supported_roles.issuperset(scenario.requires):
                results.append(ScenarioResult(scenario.name, "skipped"))
                continue
            candidate_dut = SynthesizedDut(artifact, os_name,
                                           exec_backend=synth_backend)
            baseline = baselines.get(scenario.name)
            if baseline is None:
                baseline = run_scenario(
                    OriginalDut(driver, exec_backend=original_backend),
                    scenario)
                baselines[scenario.name] = baseline
            candidate = run_scenario(candidate_dut, scenario)
            outcome = classify_observations(baseline, candidate)
            results.append(ScenarioResult(scenario.name, outcome.verdict,
                                          outcome.divergences,
                                          outcome.candidate_error))
        cells.append(CellResult(driver=driver, target_os=os_name,
                                expected=expected_status(driver, os_name),
                                scenarios=results))
    return cells


def _column_worker(job, fault=None):
    """Supervised-pool target: one driver's whole matrix column.

    The worker builds its own orchestrator over the shared store root:
    warm runs load the artifact in milliseconds, cold runs compute it here
    (that *is* the parallel cold matrix) and persist it for everyone else.
    """
    (driver, os_names, scenario_names, strategy, script, store_root,
     exec_backend) = job
    from repro.faults.inject import maybe_raise_run_fault
    from repro.pipeline.orchestrator import PipelineOrchestrator
    from repro.pipeline.store import ArtifactStore

    maybe_raise_run_fault(fault, "revnic")
    store = ArtifactStore(store_root) if store_root else False
    orchestrator = PipelineOrchestrator(store=store, parallel=False)
    artifact = orchestrator.run(driver, strategy, script)
    column = compute_column(artifact, os_names, scenario_names,
                            exec_backend=exec_backend)
    return driver, [cell.to_dict() for cell in column]


class ValidationMatrix:
    """Runs the differential matrix over the driver corpus."""

    def __init__(self, orchestrator=None, drivers=None, os_names=None,
                 scenarios=None, strategy="coverage", script="default",
                 exec_backend=None):
        from repro.pipeline.orchestrator import PipelineOrchestrator

        self.orchestrator = orchestrator or PipelineOrchestrator()
        self.drivers = sorted(DRIVERS) if drivers is None else list(drivers)
        self.os_names = list(OS_ORDER) if os_names is None else list(os_names)
        self.scenario_names = [s.name for s in SCENARIOS] \
            if scenarios is None else list(scenarios)
        self.strategy = strategy
        self.script = script
        #: execution-tier override for both comparison sides (None =
        #: compiled everywhere; "interp"/"step" for the ablation)
        self.exec_backend = exec_backend

    def run(self, parallel=None, faults=None):
        """Compute the full matrix; returns a :class:`MatrixResult`.

        ``faults`` maps driver name -> FaultSpec (chaos campaigns); the
        supervised pool retries faulted columns and any column it cannot
        heal falls back to serial recomputation -- per column, with every
        healthy column's pooled result kept.
        """
        from repro.faults.report import ResilienceReport

        started = time.monotonic()
        report = ResilienceReport()
        if parallel is None:
            parallel = self.orchestrator.parallel \
                and (os.cpu_count() or 1) > 1
        columns = {}
        mode = "serial"
        if parallel and len(self.drivers) > 1:
            with report.stage_timer("pool"):
                columns = self._run_pool(faults, report)
            if columns:
                mode = "parallel"
        missing = [d for d in self.drivers if d not in columns]
        if missing:
            with report.stage_timer("serial"):
                artifacts = self.orchestrator.warm(missing, self.strategy,
                                                   self.script,
                                                   parallel=False)
                for name in missing:
                    if mode == "parallel":
                        report.record_degradation(
                            "matrix", "per-column serial fallback",
                            job=name)
                        report.record_outcome(name, "serial-fallback")
                    columns[name] = compute_column(
                        artifacts[name], self.os_names,
                        self.scenario_names,
                        exec_backend=self.exec_backend)
        cells = {}
        for driver in self.drivers:
            for cell in columns[driver]:
                cells[(driver, cell.target_os)] = cell
        return MatrixResult(cells=cells, drivers=list(self.drivers),
                            os_names=list(self.os_names),
                            scenario_names=list(self.scenario_names),
                            wall_seconds=time.monotonic() - started,
                            mode=mode, resilience=report)

    def _run_pool(self, faults, report):
        """Fan driver columns out across the supervised spawn pool.

        Returns the columns that completed (possibly after retries) --
        never discarding healthy columns because another column failed.
        An empty dict means the pool was unavailable.
        """
        from repro.pipeline.pool import PoolUnavailable, run_supervised

        store = self.orchestrator.store
        store_root = store.root if store is not None else None
        jobs = [(driver, tuple(self.os_names), tuple(self.scenario_names),
                 self.strategy, self.script, store_root, self.exec_backend)
                for driver in self.drivers]
        fault_map = {}
        if faults:
            for index, driver in enumerate(self.drivers):
                spec = faults.get(driver)
                if spec is not None and spec.layer in ("worker", "run"):
                    fault_map[index] = spec

        def _validate(payload):
            driver, encoded = payload
            return driver, [CellResult.from_dict(c) for c in encoded]

        try:
            results, _failures = run_supervised(
                jobs, _column_worker, labels=list(self.drivers),
                max_workers=self.orchestrator.max_workers,
                timeout=self.orchestrator.job_timeout,
                retries=self.orchestrator.retries, faults=fault_map,
                validate=_validate, report=report)
        except PoolUnavailable as exc:
            report.record_degradation("pool",
                                      "pool unavailable: %s" % exc)
            return {}
        return {driver: column
                for driver, column in results.values()}


def run_matrix(orchestrator=None, parallel=None, **kwargs):
    """One-call entry point: build and run the full validation matrix."""
    return ValidationMatrix(orchestrator=orchestrator, **kwargs) \
        .run(parallel=parallel)
