"""Observable behavior capture for differential validation.

The matrix compares two executions of "the same driver": the original
binary running under the source-OS harness
(:class:`~repro.guestos.harness.DriverHarness`) and the RevNIC-synthesized
driver pasted into a target-OS template
(:class:`~repro.templates.base.NicTemplate`).  Both are wrapped in a
:class:`DriverUnderTest` facade exposing one operation vocabulary, so a
workload scenario is a single function driven against either side.

An :class:`Observation` is the flattened, JSON-serializable record of
everything externally observable about one scenario run: frames that hit
the medium, frames delivered up to the OS, driver-operation status codes
in order, device register state and statistics, OID query results,
interrupt counts, and error-log contents.  Two observations being equal is
the functional-equivalence claim of the paper's section 5.2, scenario by
scenario.
"""

from dataclasses import asdict, dataclass, field

from repro.drivers import DRIVERS, build_driver, device_class
from repro.guestos.harness import DriverHarness
from repro.guestos.structures import Oid
from repro.targetos import TARGET_OSES
from repro.templates import DmaNicTemplate, NicTemplate

#: Station MAC programmed into every device under validation.
VALIDATION_MAC = b"\x52\x54\x00\xAA\xBB\xCC"
#: The remote peer all workloads talk to.
PEER_MAC = b"\x02\x00\x00\x00\x00\x01"


@dataclass
class Observation:
    """Everything externally observable about one scenario run."""

    driver: str
    side: str                 # 'original' or 'synthesized/<os>'
    scenario: str
    ok: bool = True
    error: str = ""           # exception type name when not ok
    #: driver-operation results in invocation order: [label, status]
    statuses: list = field(default_factory=list)
    #: frames that reached the medium, hex-encoded
    wire_frames: list = field(default_factory=list)
    #: frames the driver handed up to the OS, hex-encoded
    delivered: list = field(default_factory=list)
    link_drops: int = 0
    device_stats: dict = field(default_factory=dict)
    device_state: dict = field(default_factory=dict)
    oids: dict = field(default_factory=dict)
    irq_count: int = 0
    error_log: list = field(default_factory=list)

    def to_dict(self):
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


class DriverUnderTest:
    """Uniform operation vocabulary over both sides of the comparison.

    Subclasses provide the wiring (``medium``, ``device``, ``delivered``,
    ``irq_count``, ``error_log``, ``_front``) plus the lifecycle verbs; the
    shared methods record every operation's status code so the *order and
    outcome* of driver calls is itself compared.
    """

    side = "base"

    def __init__(self, driver_name, mac=VALIDATION_MAC):
        self.driver = driver_name
        self.mac = bytes(mac)
        self.peer = PEER_MAC
        self.statuses = []
        self.oids = {}

    # -- wiring supplied by subclasses ---------------------------------

    @property
    def medium(self):
        raise NotImplementedError

    @property
    def device(self):
        raise NotImplementedError

    @property
    def delivered(self):
        raise NotImplementedError

    @property
    def irq_count(self):
        raise NotImplementedError

    @property
    def error_log(self):
        raise NotImplementedError

    def supports(self, role):
        """Whether the driver has entry point ``role`` to exercise."""
        raise NotImplementedError

    def boot(self):
        raise NotImplementedError

    def shutdown(self):
        raise NotImplementedError

    def service(self):
        """Drain pending interrupts (used after quiet injections)."""
        raise NotImplementedError

    # -- shared operations ---------------------------------------------

    def _record(self, label, status):
        self.statuses.append([label, int(status) & 0xFFFFFFFF])
        return status

    def send(self, frame_bytes):
        return self._record("send", self._front.send(frame_bytes))

    def inject(self, frame_bytes):
        """Wire-side arrival with interrupt service (the normal RX path)."""
        return self._front.inject_rx(frame_bytes)

    def inject_quiet(self, frame_bytes):
        """Wire-side arrival *without* servicing interrupts -- back-to-back
        pressure for the overflow scenarios."""
        self.medium.inject(frame_bytes)

    def reset(self):
        return self._record("reset", self._front.reset())

    def set_link(self, up):
        self.medium.set_link(up)

    def set_packet_filter(self, flags):
        return self._record("set_filter",
                            self._front.set_packet_filter(flags))

    def set_multicast_list(self, macs):
        return self._record("set_multicast",
                            self._front.set_multicast_list(macs))

    def set_mac(self, mac):
        return self._record("set_mac", self._front.set_mac(mac))

    def set_full_duplex(self, enabled):
        return self._record("set_full_duplex",
                            self._front.set_full_duplex(enabled))

    def enable_wake_on_lan(self):
        return self._record("enable_wol", self._front.enable_wake_on_lan())

    def set_led(self, mode):
        return self._record("set_led", self._front.set_led(mode))

    def query_mac(self):
        """MAC query through the driver, recorded without raising (a
        failing query is an observation, not a harness error)."""
        status, data = self._front._query_info(Oid.E802_3_CURRENT_ADDRESS, 6)
        self._record("query_mac", status)
        self.oids["mac"] = [int(status) & 0xFFFFFFFF, data.hex()]
        return data

    def query_link_speed(self):
        status, speed = self._front.query_link_speed()
        self._record("query_link_speed", status)
        self.oids["link_speed"] = [int(status) & 0xFFFFFFFF, int(speed)]
        return speed

    # -- snapshot ------------------------------------------------------

    def observation(self, scenario, ok=True, error=""):
        device = self.device
        return Observation(
            driver=self.driver,
            side=self.side,
            scenario=scenario,
            ok=ok,
            error=error,
            statuses=list(self.statuses),
            wire_frames=[f.hex() for f in self.medium.transmitted],
            delivered=[f.hex() for f in self.delivered],
            link_drops=self.medium.link_drops,
            device_stats=dict(device.stats),
            device_state={
                "mac": bytes(device.mac).hex(),
                "promiscuous": device.promiscuous,
                "rx_enabled": device.rx_enabled,
                "full_duplex": device.full_duplex,
                "wol_enabled": device.wol_enabled,
                "led_state": device.led_state,
                "multicast_hash": bytes(device.multicast_hash).hex(),
            },
            oids=dict(self.oids),
            irq_count=self.irq_count,
            error_log=list(self.error_log),
        )


class OriginalDut(DriverUnderTest):
    """The baseline: the original binary on the source-OS harness.

    ``exec_backend`` selects the CPU tier (see
    :class:`~repro.guestos.harness.DriverHarness`): ``"compiled"`` by
    default, ``"interp"`` for the DBT tree-walker, ``"step"`` for the
    per-instruction interpreter.  Observations are identical across
    tiers; only wall-clock differs.
    """

    side = "original"

    def __init__(self, driver_name, mac=VALIDATION_MAC,
                 exec_backend="compiled", exec_superblocks=None):
        super().__init__(driver_name, mac)
        self._front = DriverHarness(build_driver(driver_name),
                                    device_class(driver_name), mac=mac,
                                    exec_backend=exec_backend,
                                    exec_superblocks=exec_superblocks)

    @property
    def medium(self):
        return self._front.medium

    @property
    def device(self):
        return self._front.device

    @property
    def delivered(self):
        return self._front.env.indicated_frames

    @property
    def irq_count(self):
        return self._front.env.irq_count

    @property
    def error_log(self):
        return self._front.env.error_log

    def supports(self, role):
        # Entry points are registered during DriverEntry; before boot the
        # static corpus answer is "everything the script exercises".
        if self._front.env.entry_points:
            return role in self._front.env.entry_points
        return True

    def boot(self):
        return self._record("boot", self._front.boot())

    def shutdown(self):
        return self._record("shutdown", self._front.halt())

    def service(self):
        self._front.env.service_interrupts()


class SynthesizedDut(DriverUnderTest):
    """The candidate: the synthesized driver in a target-OS template.

    ``artifact`` is a :class:`~repro.pipeline.artifact.RunArtifact`; the
    DMA-capable template variant is selected from the corpus metadata,
    exactly as a developer picks the template for a bus-master NIC.
    """

    def __init__(self, artifact, os_name, mac=VALIDATION_MAC,
                 exec_backend=None, exec_superblocks=None):
        super().__init__(artifact.name, mac)
        self.target_os = os_name
        self.side = "synthesized/%s" % os_name
        target = TARGET_OSES[os_name](device_class(artifact.name), mac=mac)
        template_cls = DmaNicTemplate if DRIVERS[artifact.name].uses_dma \
            else NicTemplate
        self._front = template_cls(artifact.synthesized, target,
                                   original_image=artifact.image,
                                   exec_backend=exec_backend,
                                   exec_superblocks=exec_superblocks)
        self._os = target

    @property
    def medium(self):
        return self._os.medium

    @property
    def device(self):
        return self._os.device

    @property
    def delivered(self):
        return self._os.received_frames

    @property
    def irq_count(self):
        return self._os.irq_count

    @property
    def error_log(self):
        return self._os.error_log

    def supports(self, role):
        return role in self._front.driver.entry_points

    def boot(self):
        return self._record("boot", self._front.initialize())

    def shutdown(self):
        return self._record("shutdown", self._front.shutdown())

    def service(self):
        self._front.service_interrupts()
