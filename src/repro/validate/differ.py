"""Divergence semantics: what "functionally equivalent" means here.

Two observations are equivalent when every *compared field* matches
exactly.  The compared fields are the externally visible contract of a NIC
driver: frames on the wire, frames delivered to the OS, operation status
codes in order, device state and statistics, OID answers, interrupt counts
and logged errors.  Deliberately **not** compared:

* ``side`` / OS identity (that is the experiment variable);
* OS API call *counts* -- the template does not re-run ``DriverEntry``
  and each OS adapts calls differently, so call totals differ by
  construction while behavior does not;
* wall-clock anything -- performance is the perf model's business
  (Figures 2-7), not the equivalence matrix's.

A mismatch produces a :class:`Divergence` naming the field and the first
point of disagreement; comparison never stops at the first divergent
field, so one scenario can report several.

On top of the field comparison sits the shared *verdict* layer
(:func:`classify_observations`): every differential consumer -- the
validation matrix, the scenario fuzzer, the replay corpus -- classifies a
(baseline, candidate) observation pair the same way:

* ``match`` -- no divergence on any compared field;
* ``unsupported`` -- the candidate failed with a ``TemplateError`` (an
  OS that cannot host the driver; an *explained* incompatibility);
* ``divergent`` -- any other disagreement (the real-bug verdict).
"""

from dataclasses import asdict, dataclass, field

#: Fields compared for equivalence, in report order.
COMPARED_FIELDS = (
    "ok", "error", "statuses", "wire_frames", "delivered", "link_drops",
    "device_stats", "device_state", "oids", "irq_count", "error_log",
)


@dataclass(frozen=True)
class Divergence:
    """One field on which baseline and candidate disagree."""

    field: str
    detail: str

    def to_dict(self):
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


def _frame_list_detail(name, baseline, candidate):
    if len(baseline) != len(candidate):
        return "%d %s vs %d" % (len(baseline), name, len(candidate))
    for index, (b, c) in enumerate(zip(baseline, candidate)):
        if b != c:
            return "%s[%d]: %s... vs %s..." % (name, index, str(b)[:24],
                                               str(c)[:24])
    return "%s differ" % name


def _dict_detail(name, baseline, candidate):
    keys = sorted(set(baseline) | set(candidate))
    for key in keys:
        b, c = baseline.get(key), candidate.get(key)
        if b != c:
            return "%s[%s]: %r vs %r" % (name, key, b, c)
    return "%s differ" % name


def compare_observations(baseline, candidate, ignore=()):
    """All divergences between two observations of one scenario."""
    divergences = []
    for field_name in COMPARED_FIELDS:
        if field_name in ignore:
            continue
        b = getattr(baseline, field_name)
        c = getattr(candidate, field_name)
        if b == c:
            continue
        if field_name in ("wire_frames", "delivered", "statuses",
                          "error_log"):
            detail = _frame_list_detail(field_name, b, c)
        elif field_name in ("device_stats", "device_state", "oids"):
            detail = _dict_detail(field_name, b, c)
        else:
            detail = "%r vs %r" % (b, c)
        divergences.append(Divergence(field=field_name, detail=detail))
    return divergences


@dataclass
class DifferentialVerdict:
    """One (baseline, candidate) pair, classified."""

    verdict: str              # 'match' | 'unsupported' | 'divergent'
    divergences: list = field(default_factory=list)
    candidate_error: str = ""

    @property
    def matched(self):
        return self.verdict == "match"

    def to_dict(self):
        return {"verdict": self.verdict,
                "divergences": [d.to_dict() for d in self.divergences],
                "candidate_error": self.candidate_error}

    @classmethod
    def from_dict(cls, data):
        return cls(verdict=data["verdict"],
                   divergences=[Divergence.from_dict(d)
                                for d in data["divergences"]],
                   candidate_error=data["candidate_error"])


def classify_observations(baseline, candidate, ignore=()):
    """Compare and classify one observation pair.

    The single verdict rule every differential consumer shares: exact
    match, explained incompatibility (``TemplateError`` on the candidate
    side), or genuine behavioral divergence.
    """
    divergences = compare_observations(baseline, candidate, ignore=ignore)
    if not divergences:
        verdict = "match"
    elif not candidate.ok and candidate.error == "TemplateError":
        verdict = "unsupported"
    else:
        verdict = "divergent"
    return DifferentialVerdict(verdict=verdict, divergences=divergences,
                               candidate_error=candidate.error)
