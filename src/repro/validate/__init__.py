"""Cross-OS differential validation of synthesized drivers.

The paper's functional-equivalence claim (section 5.2) is checked here as
a systematic matrix: every synthesized driver x every target OS x a
catalog of deterministic workloads, each compared observation-for-
observation against the original binary running on the source OS.  Four
layers:

* :mod:`repro.validate.observe` -- the :class:`DriverUnderTest` facade
  that gives both sides one operation vocabulary, and the
  :class:`Observation` snapshot of externally visible behavior;
* :mod:`repro.validate.scenarios` -- the workload catalog (UDP streams,
  bidirectional bursts, runt/oversize/bad-FCS frames, RX-ring overflow,
  filter mixes, link flaps, control plane);
* :mod:`repro.validate.differ` -- field-by-field divergence semantics
  plus the shared match / unsupported / divergent verdict rule (the
  matrix and the scenario fuzzer classify identically);
* :mod:`repro.validate.matrix` -- the matrix runner: per-driver columns
  fanned out over the pipeline's process pool, artifacts served from the
  on-disk store, cells classified equivalent / unsupported / divergent
  against per-cell expectations.

See ``docs/validation.md`` for the catalog, the divergence semantics and
how to extend either.
"""

from repro.validate.differ import (COMPARED_FIELDS, DifferentialVerdict,
                                   Divergence, classify_observations,
                                   compare_observations)
from repro.validate.matrix import (EXPECTED_UNSUPPORTED, OS_ORDER,
                                   CellResult, MatrixResult, ScenarioResult,
                                   ValidationMatrix, compute_column,
                                   expected_status, run_matrix)
from repro.validate.observe import (PEER_MAC, VALIDATION_MAC,
                                    DriverUnderTest, Observation,
                                    OriginalDut, SynthesizedDut)
from repro.validate.scenarios import CATALOG, SCENARIOS, Scenario, \
    run_scenario

__all__ = [
    "COMPARED_FIELDS",
    "DifferentialVerdict",
    "Divergence",
    "classify_observations",
    "compare_observations",
    "EXPECTED_UNSUPPORTED",
    "OS_ORDER",
    "CellResult",
    "MatrixResult",
    "ScenarioResult",
    "ValidationMatrix",
    "compute_column",
    "expected_status",
    "run_matrix",
    "PEER_MAC",
    "VALIDATION_MAC",
    "DriverUnderTest",
    "Observation",
    "OriginalDut",
    "SynthesizedDut",
    "CATALOG",
    "SCENARIOS",
    "Scenario",
    "run_scenario",
]
