"""Back-compat shim: the comparison layer moved to
:mod:`repro.validate.differ`.

The field-by-field divergence semantics started life here; when the
scenario fuzzer joined the matrix as a second differential consumer, the
comparison *and* the verdict classification were extracted into the
standalone ``differ`` module so both drive the exact same equivalence
rule.  Import from :mod:`repro.validate.differ` (or the package root) in
new code.
"""

from repro.validate.differ import (COMPARED_FIELDS, Divergence,
                                   compare_observations)

__all__ = ["COMPARED_FIELDS", "Divergence", "compare_observations"]
