"""Divergence semantics: what "functionally equivalent" means here.

Two observations are equivalent when every *compared field* matches
exactly.  The compared fields are the externally visible contract of a NIC
driver: frames on the wire, frames delivered to the OS, operation status
codes in order, device state and statistics, OID answers, interrupt counts
and logged errors.  Deliberately **not** compared:

* ``side`` / OS identity (that is the experiment variable);
* OS API call *counts* -- the template does not re-run ``DriverEntry``
  and each OS adapts calls differently, so call totals differ by
  construction while behavior does not;
* wall-clock anything -- performance is the perf model's business
  (Figures 2-7), not the equivalence matrix's.

A mismatch produces a :class:`Divergence` naming the field and the first
point of disagreement; the matrix never stops at the first divergent
field, so one scenario can report several.
"""

from dataclasses import asdict, dataclass

#: Fields compared for equivalence, in report order.
COMPARED_FIELDS = (
    "ok", "error", "statuses", "wire_frames", "delivered", "link_drops",
    "device_stats", "device_state", "oids", "irq_count", "error_log",
)


@dataclass(frozen=True)
class Divergence:
    """One field on which baseline and candidate disagree."""

    field: str
    detail: str

    def to_dict(self):
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


def _frame_list_detail(name, baseline, candidate):
    if len(baseline) != len(candidate):
        return "%d %s vs %d" % (len(baseline), name, len(candidate))
    for index, (b, c) in enumerate(zip(baseline, candidate)):
        if b != c:
            return "%s[%d]: %s... vs %s..." % (name, index, str(b)[:24],
                                               str(c)[:24])
    return "%s differ" % name


def _dict_detail(name, baseline, candidate):
    keys = sorted(set(baseline) | set(candidate))
    for key in keys:
        b, c = baseline.get(key), candidate.get(key)
        if b != c:
            return "%s[%s]: %r vs %r" % (name, key, b, c)
    return "%s differ" % name


def compare_observations(baseline, candidate, ignore=()):
    """All divergences between two observations of one scenario."""
    divergences = []
    for field_name in COMPARED_FIELDS:
        if field_name in ignore:
            continue
        b = getattr(baseline, field_name)
        c = getattr(candidate, field_name)
        if b == c:
            continue
        if field_name in ("wire_frames", "delivered", "statuses",
                          "error_log"):
            detail = _frame_list_detail(field_name, b, c)
        elif field_name in ("device_stats", "device_state", "oids"):
            detail = _dict_detail(field_name, b, c)
        else:
            detail = "%r vs %r" % (b, c)
        divergences.append(Divergence(field=field_name, detail=detail))
    return divergences
