"""Guest address-space layout shared by the loader, VM, devices and RevNIC.

The layout mirrors the roles the paper's setup needs:

* a driver image region (text + data + bss), mapped by the guest-OS loader;
* a kernel heap from which the OS allocates the driver's persistent state
  ("adapter context") and DMA-shared buffers;
* a stack;
* an MMIO window where device registers of memory-mapped NICs live -- the VM
  bus routes accesses in this window to devices, which is how RevNIC can
  distinguish device-mapped memory from regular memory (paper section 2);
* an import-thunk window: calls to addresses here are intercepted by the VM
  and dispatched to guest-OS API handlers, the analog of a kernel-export
  call in a real Windows driver.
"""

PAGE_SIZE = 0x1000
PAGE_MASK = PAGE_SIZE - 1

#: Base virtual address where driver text is mapped.
TEXT_BASE = 0x0040_0000

#: Kernel heap (adapter context, packet buffers, DMA-shared memory).
HEAP_BASE = 0x0060_0000
HEAP_LIMIT = 0x0078_0000

#: Stack top (grows down).
STACK_TOP = 0x007F_F000
STACK_LIMIT = 0x007E_0000

#: MMIO window: device registers for memory-mapped NICs.
MMIO_BASE = 0xD000_0000
MMIO_LIMIT = 0xD100_0000

#: Import-thunk window: CALL targets here invoke OS API handlers.
IMPORT_BASE = 0xF000_0000
IMPORT_STRIDE = 16

#: Sentinel return address pushed when the OS invokes a driver entry point;
#: a RET to this address returns control to the (concrete, Python) OS.
RETURN_TO_OS = 0xFFFF_FFF0


def page_align(value):
    """Round ``value`` up to the next page boundary."""
    return (value + PAGE_MASK) & ~PAGE_MASK


def import_address(index):
    """Virtual address of the import thunk for import slot ``index``."""
    return IMPORT_BASE + index * IMPORT_STRIDE


def import_index(address):
    """Inverse of :func:`import_address`; returns ``None`` if not a thunk."""
    if IMPORT_BASE <= address < IMPORT_BASE + 0x1_0000:
        offset = address - IMPORT_BASE
        if offset % IMPORT_STRIDE == 0:
            return offset // IMPORT_STRIDE
    return None


def is_mmio(address):
    """True when ``address`` falls inside the device-register window."""
    return MMIO_BASE <= address < MMIO_LIMIT
