"""UcSim: the µC/OS-II analog target (embedded, FPGA-class).

µC/OS-II "has a simple driver interface" (Table 3: one person-day for the
template).  There is no demand-allocated kernel heap in the usual sense and
no shared-memory DMA API -- the 91C111 is a PIO device; the network stack
is a lightweight embedded one.  Traits model the 75 MHz Nios II: relatively
higher per-packet stack cost in *cycles* terms is captured by the platform
profile in the performance model, not here.
"""

from repro.errors import TemplateError
from repro.targetos.base import OsTraits, TargetOs


class UcSim(TargetOs):
    """Embedded RTOS target."""

    TRAITS = OsTraits(name="ucsim", stack_cost=900, irq_cost=90,
                      syscall_cost=14, stack_per_byte=2.0)

    def adaptation_table(self):
        table = super().adaptation_table()

        def no_dma(arg_reader):
            raise TemplateError("ucsim has no DMA shared-memory API")

        table.update({
            "NdisMAllocateSharedMemory": (no_dma, 2),
        })
        return table
