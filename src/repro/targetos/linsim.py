"""LinSim: the Linux 2.6.26 analog target.

The adaptation table re-routes the synthesized driver's source-OS calls to
Linux-flavoured services (``netif_rx`` analog, ``pci_alloc_consistent``
analog, ``printk`` analog) -- the mechanical translation the developer
performs when instantiating the Linux template (paper section 4.2 and
Listing 2).  The Linux network stack is slightly leaner per packet than
the NDIS path in the paper's figures; traits reflect that.
"""

from repro.targetos.base import OsTraits, TargetOs


class LinSim(TargetOs):
    """netdev-like target OS."""

    TRAITS = OsTraits(name="linsim", stack_cost=11000, irq_cost=140,
                      syscall_cost=24, stack_per_byte=7.0)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.printk_log = []

    def netif_rx(self, buffer, length):
        """Linux-side receive indication."""
        self.deliver_frame_up(buffer, length)
        return 0

    def pci_alloc_consistent(self, size, physical_out):
        virtual = self.alloc(size, align=64)
        self.machine.memory.write(physical_out, 4, virtual)
        return virtual

    def printk(self, code):
        self.printk_log.append(code)
        # a driver-error printk is Linux's error-log channel: it must
        # land in the cross-OS observable log, or error-path behaviour
        # silently diverges from every other target
        self.error_log.append(code)
        return 0

    def adaptation_table(self):
        table = super().adaptation_table()
        table.update({
            "NdisMIndicateReceivePacket":
                (lambda a: self.netif_rx(a(0), a(1)), 2),
            "NdisMAllocateSharedMemory":
                (lambda a: self.pci_alloc_consistent(a(0), a(1)), 2),
            "NdisWriteErrorLogEntry": (lambda a: self.printk(a(0)), 1),
        })
        return table
