"""WinSim: the Windows XP analog target (same-OS port).

Porting back to the source OS "enables quantifying the overhead of the
generated code with respect to the original Windows driver" (section 5.1).
The adaptation table is the identity -- the synthesized code's API calls
already are this OS's API.
"""

from repro.targetos.base import OsTraits, TargetOs


class WinSim(TargetOs):
    """NDIS-like target OS."""

    TRAITS = OsTraits(name="winsim", stack_cost=13000, irq_cost=160,
                      syscall_cost=28, stack_per_byte=8.0)
