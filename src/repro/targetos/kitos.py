"""KitOS: the authors' bare-metal OS.

"This OS initializes the CPU into protected mode and lets the driver use
the hardware directly, without any OS-related overhead (no multitasking,
no memory management, etc.)" -- and no TCP/IP stack; benchmarks send
hand-crafted raw UDP frames.  Running a driver on KitOS "does not require
a template, since the driver can directly talk to the hardware" (Table 3:
zero person-days); the adaptation below is the minimal runtime the driver
needs to execute at all (static allocation, no-op logging).
"""

from repro.targetos.base import OsTraits, TargetOs


class KitOs(TargetOs):
    """Bare-metal target."""

    TRAITS = OsTraits(name="kitos", stack_cost=0, irq_cost=40,
                      syscall_cost=4, stack_per_byte=0.0,
                      has_network_stack=False)
