"""Target operating-system simulators.

The paper ports drivers to four targets: back to Windows XP, to Linux
2.6.26, to the µC/OS-II embedded kernel (FPGA) and to the authors' bare-
metal KitOS.  These simulators are those targets: each provides the OS-side
services a NIC driver needs, with per-OS API semantics and per-OS
performance characteristics (network-stack cost, interrupt cost) consumed
by the evaluation's performance model.
"""

from repro.targetos.base import OsTraits, TargetOs
from repro.targetos.winsim import WinSim
from repro.targetos.linsim import LinSim
from repro.targetos.ucsim import UcSim
from repro.targetos.kitos import KitOs

TARGET_OSES = {
    "winsim": WinSim,
    "linsim": LinSim,
    "ucsim": UcSim,
    "kitos": KitOs,
}

__all__ = ["OsTraits", "TargetOs", "WinSim", "LinSim", "UcSim", "KitOs",
           "TARGET_OSES"]
