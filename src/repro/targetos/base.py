"""Shared target-OS machinery.

A :class:`TargetOs` owns a machine + device model and exposes the kernel
services a NIC driver consumes.  The *API adaptation table* is the Python
analog of the developer's template-integration work: the synthesized
driver's OS calls (source-OS names) are translated to the target OS's own
services (paper section 4.2: "The developer also needs to match OS-specific
API calls to those of the target OS").
"""

from dataclasses import dataclass

from repro.errors import TemplateError
from repro.layout import HEAP_BASE, HEAP_LIMIT
from repro.net.medium import Medium
from repro.vm.machine import Machine


@dataclass(frozen=True)
class OsTraits:
    """Per-OS characteristics consumed by the performance model.

    ``stack_cost`` is the fixed per-packet CPU cost (in model instruction
    units) of the OS network stack above the driver and ``stack_per_byte``
    its copy cost; ``irq_cost`` the per-interrupt kernel entry/dispatch
    cost; ``syscall_cost`` the per-OS-API-call cost inside the driver path.
    KitOS has no stack ("the benchmark transmits hand-crafted raw UDP
    packets, since KitOS has no TCP/IP stack").
    """

    name: str
    stack_cost: int
    irq_cost: int
    syscall_cost: int
    stack_per_byte: float = 0.0
    has_network_stack: bool = True


class TargetOs:
    """Base target OS: machine, device, kernel services, adaptation table."""

    TRAITS = OsTraits(name="base", stack_cost=0, irq_cost=0, syscall_cost=0)

    def __init__(self, device_cls, mac=b"\x52\x54\x00\x12\x34\x56"):
        self.machine = Machine()
        self.medium = Medium()
        self.device = device_cls(mac, medium=self.medium,
                                 bus=self.machine.bus)
        self.medium.attach(self.device)
        pci = self.device.PCI
        if pci.io_size:
            self.machine.bus.attach_ports(pci.io_base, pci.io_size,
                                          self.device)
        if pci.mmio_size:
            self.machine.bus.attach_mmio(pci.mmio_base, pci.mmio_size,
                                         self.device)
        self.device.irq_callback = self._device_irq
        self.irq_pending = False
        #: total device interrupts raised (validation-matrix observable)
        self.irq_count = 0
        self._heap_next = HEAP_BASE
        #: frames the driver handed up to this OS's network layer
        self.received_frames = []
        self.send_completions = []
        self.error_log = []
        self.timers = {}
        #: counts of OS API calls made by the (synthesized) driver
        self.api_call_count = 0

    # ------------------------------------------------------------------
    # Kernel services

    def _device_irq(self):
        self.irq_pending = True
        self.irq_count += 1

    def alloc(self, size, align=16):
        base = (self._heap_next + align - 1) & ~(align - 1)
        if base + size > HEAP_LIMIT:
            raise TemplateError("target-OS heap exhausted")
        self._heap_next = base + size
        return base

    def deliver_frame_up(self, buffer, length):
        """The driver indicated a received frame to the OS."""
        frame = self.machine.memory.read_bytes(buffer, length)
        self.received_frames.append(frame)

    # ------------------------------------------------------------------
    # API adaptation: source-OS API name -> (handler, nargs)

    def adaptation_table(self):
        """Map each source-OS API the synthesized code may call to this
        OS's own service.  Subclasses override entries whose semantics
        differ; unknown calls raise, surfacing incomplete templates."""
        return {
            "NdisMRegisterMiniport": (self._nop_status, 1),
            "NdisMSetAttributes": (self._nop_status, 1),
            "NdisAllocateMemory": (lambda a: self.alloc(a(0)), 1),
            "NdisFreeMemory": (self._nop_status, 2),
            "NdisMAllocateSharedMemory": (self._alloc_shared, 2),
            "NdisMFreeSharedMemory": (self._nop_status, 2),
            "NdisMRegisterIoPortRange":
                (lambda a: self.device.PCI.io_base, 1),
            "NdisMMapIoSpace": (lambda a: self.device.PCI.mmio_base, 2),
            "NdisMRegisterInterrupt": (self._nop_status, 1),
            "NdisInitializeTimer": (self._init_timer, 2),
            "NdisSetTimer": (self._set_timer, 2),
            "NdisMCancelTimer": (self._cancel_timer, 1),
            "NdisWriteErrorLogEntry":
                (lambda a: self.error_log.append(a(0)) or 0, 1),
            "NdisStallExecution": (self._nop_status, 1),
            "NdisMIndicateReceivePacket": (self._indicate, 2),
            "NdisMSendComplete":
                (lambda a: self.send_completions.append(a(0)) or 0, 1),
            "NdisReadConfiguration": (lambda a: 0, 1),
            "NdisGetPhysicalAddress": (lambda a: a(0), 1),
        }

    def _nop_status(self, arg_reader):
        return 0

    def _alloc_shared(self, arg_reader):
        size, physical_out = arg_reader(0), arg_reader(1)
        virtual = self.alloc(size, align=64)
        self.machine.memory.write(physical_out, 4, virtual)
        return virtual

    def _indicate(self, arg_reader):
        self.deliver_frame_up(arg_reader(0), arg_reader(1))
        return 0

    def _init_timer(self, arg_reader):
        self.timers[arg_reader(0)] = {"handler": arg_reader(1), "due": False}
        return 0

    def _set_timer(self, arg_reader):
        timer = self.timers.get(arg_reader(0))
        if timer is not None:
            timer["due"] = True
        return 0

    def _cancel_timer(self, arg_reader):
        timer = self.timers.get(arg_reader(0))
        if timer is not None:
            timer["due"] = False
        return 0

    # ------------------------------------------------------------------

    def call(self, name, arg_reader):
        """The os_interface protocol used by SynthesizedDriver."""
        entry = self.adaptation_table().get(name)
        if entry is None:
            raise TemplateError(
                "template for %s has no adaptation for OS API %r"
                % (self.TRAITS.name, name))
        handler, nargs = entry
        self.api_call_count += 1
        result = handler(arg_reader)
        return (0 if result is None else result, nargs)
