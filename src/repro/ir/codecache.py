"""Persistent compiled-code cache: generated sources, content-addressed.

:func:`repro.ir.compile.block_source` and the superblock generator are
pure functions of block content, so their output can be persisted and
re-imported by a warm process instead of regenerated -- the codegen
analogue of the run-artifact store.  Entries ride the exact same
hardening discipline as :class:`~repro.pipeline.store.ArtifactStore`
(PR 7): every file carries a digest footer, truncation or bit rot is
detected and quarantined, publishes are atomic.  On top of the store's
framing, each payload records the codegen schema version and the
``src/repro`` code fingerprint; an entry whose recorded values do not
match the running process is **quarantined and regenerated, never
served** -- stale generated code must not execute.

Keys hash four things: the codegen schema version, the code fingerprint,
the entry kind, and a structural descriptor of the block(s) -- pc, size,
instruction count and the full op list, i.e. everything the generated
source depends on.  Two entry kinds exist:

* ``block`` / ``superblock:<flavor>`` -- the generated module source;
* ``sb-hint:<flavor>`` -- a chain hint: the member pcs of a superblock
  previously formed from this head block, letting a warm process re-form
  the chain on the *first* dispatch instead of re-profiling up to the
  hot threshold.

The cache lives under ``<artifact-cache>/codegen`` by default (so CI's
store caching covers it) and is controlled by ``REVNIC_CODE_CACHE``:
unset follows ``REVNIC_ARTIFACT_CACHE``, a path overrides the directory,
``off`` disables persistence (generation still works, nothing touches
disk).
"""

import dataclasses
import enum
import hashlib
import json
import os

#: Environment variable overriding the code-cache directory; ``off``
#: disables persistence.  Unset: ``<artifact-cache>/codegen``.
CODE_CACHE_ENV = "REVNIC_CODE_CACHE"

#: Bump whenever the generated-source layout changes incompatibly.
CODEGEN_SCHEMA = 1

_DISABLED = ("off", "0", "none", "disabled")

#: Deterministic outcome counters (process-wide): ``generated`` sources
#: built by the code generator, ``imported`` served from disk,
#: ``persisted`` written, ``rejected`` quarantined for a schema or
#: fingerprint mismatch, ``hints`` chain hints served.
_counters = {"generated": 0, "imported": 0, "persisted": 0,
             "rejected": 0, "hints": 0}

_stores = {}

#: In-memory mirror of the persisted chain hints, including negative
#: results.  Hint probes happen on the *first* dispatch of every head pc
#: in every manager (each harness builds its own), so without this every
#: short-lived harness would re-pay a digest-verified disk read per head.
_HINTS = {}
_HINTS_MAX = 8192


def codecache_counters():
    """Snapshot of the code-cache outcome counters."""
    return dict(_counters)


def cache_dir():
    """The configured code-cache directory, or ``None`` when disabled."""
    value = os.environ.get(CODE_CACHE_ENV)
    if value:
        if value.lower() in _DISABLED:
            return None
        return value
    from repro.pipeline.store import default_cache_dir
    root = default_cache_dir()
    if root is None:
        return None
    return os.path.join(root, "codegen")


def _store():
    root = cache_dir()
    if root is None:
        return None
    store = _stores.get(root)
    if store is None:
        from repro.pipeline.store import ArtifactStore
        store = _stores[root] = ArtifactStore(root)
    return store


def enabled():
    """True when a persistent backing store is configured."""
    return _store() is not None


def store_counters():
    """The backing store's own outcome counters (empty when disabled)."""
    store = _store()
    return store.counters() if store is not None else {}


def forget_stores():
    """Drop the per-process store handles and the in-memory hint mirror
    (tests use this to simulate a fresh process against the same
    on-disk cache)."""
    _stores.clear()
    _HINTS.clear()


def _fingerprint():
    from repro.pipeline.store import code_fingerprint
    return code_fingerprint()


# -- content descriptors -----------------------------------------------


def op_signature(op):
    """A deterministic, python-version-stable rendering of one IR op."""
    parts = [type(op).__name__]
    for spec in dataclasses.fields(op):
        value = getattr(op, spec.name)
        if isinstance(value, enum.Enum):
            value = value.value
        parts.append("%s=%r" % (spec.name, value))
    return ",".join(parts)


def block_descriptor(block):
    """Structural identity of one block: layout plus the full op list."""
    return "%d:%d:%d|%s" % (
        block.pc, block.size, len(block.instr_addrs),
        ";".join(op_signature(op) for op in block.ops))


def chain_descriptor(blocks):
    """Structural identity of a superblock chain."""
    return "&".join(block_descriptor(block) for block in blocks)


def _key(kind, descriptor):
    digest = hashlib.sha256()
    digest.update(("revnic-codegen:%d:%s|" % (CODEGEN_SCHEMA,
                                              kind)).encode())
    digest.update(_fingerprint().encode())
    digest.update(b"|")
    digest.update(descriptor.encode())
    return "code-" + digest.hexdigest()


# -- payload framing ----------------------------------------------------


def _load_payload(store, key, kind):
    """The validated payload dict under ``key``, or ``None``.

    The store already rejects (and quarantines) digest failures; this
    layer additionally rejects payloads whose recorded kind, codegen
    schema, or code fingerprint differ from the running process --
    quarantined too, so a stale entry costs one regeneration and leaves
    evidence, exactly like a corrupt one.
    """
    text = store.load_json(key)
    if text is None:
        return None
    try:
        payload = json.loads(text)
    except ValueError:  # pragma: no cover - load_json pre-validates
        payload = None
    if (not isinstance(payload, dict)
            or payload.get("kind") != kind
            or payload.get("codegen") != CODEGEN_SCHEMA
            or payload.get("fingerprint") != _fingerprint()):
        store.quarantine_entry(key)
        _counters["rejected"] += 1
        return None
    return payload


def _save_payload(store, key, kind, extra):
    payload = {"kind": kind, "codegen": CODEGEN_SCHEMA,
               "fingerprint": _fingerprint()}
    payload.update(extra)
    try:
        store.save_json(key, json.dumps(payload, sort_keys=True))
    except OSError:
        return
    _counters["persisted"] += 1


# -- public API ---------------------------------------------------------


def cached_source(kind, descriptor, generate):
    """The generated source for ``descriptor``, through the cache.

    Serves the persisted source when a valid entry exists; otherwise
    calls ``generate()`` and persists the result.  Both paths return
    byte-identical text because generation is deterministic and entries
    are validated before being served.
    """
    store = _store()
    if store is None:
        _counters["generated"] += 1
        return generate()
    key = _key(kind, descriptor)
    payload = _load_payload(store, key, kind)
    if payload is not None:
        source = payload.get("source")
        if isinstance(source, str):
            _counters["imported"] += 1
            return source
        store.quarantine_entry(key)
        _counters["rejected"] += 1
    source = generate()
    _counters["generated"] += 1
    _save_payload(store, key, kind, {"source": source})
    return source


def _hint_key(head_block, flavor):
    """Cheap hashable identity for the in-memory hint mirror (same
    content identity as the shared compiled-program caches)."""
    return (flavor, head_block.pc, head_block.size,
            len(head_block.instr_addrs), tuple(head_block.ops))


def load_chain_hint(head_block, flavor):
    """The recorded member pcs of a superblock headed by ``head_block``,
    or ``None`` when no (valid) hint is persisted.  Disk is consulted
    once per head per process; hits and misses are both mirrored."""
    store = _store()
    if store is None:
        return None
    memo_key = _hint_key(head_block, flavor)
    if memo_key in _HINTS:
        members = _HINTS[memo_key]
        if members is not None:
            _counters["hints"] += 1
        return members
    kind = "sb-hint:" + flavor
    payload = _load_payload(store, _key(kind, block_descriptor(head_block)),
                            kind)
    members = payload.get("members") if payload is not None else None
    if (not isinstance(members, list) or len(members) < 2
            or not all(isinstance(pc, int) for pc in members)):
        members = None
    if len(_HINTS) >= _HINTS_MAX:
        _HINTS.clear()
    _HINTS[memo_key] = members
    if members is not None:
        _counters["hints"] += 1
    return members


def store_chain_hint(head_block, flavor, members):
    """Persist the member pcs of a freshly formed superblock."""
    store = _store()
    if store is None:
        return
    members = list(members)
    if len(_HINTS) >= _HINTS_MAX:
        _HINTS.clear()
    _HINTS[_hint_key(head_block, flavor)] = members
    kind = "sb-hint:" + flavor
    _save_payload(store, _key(kind, block_descriptor(head_block)), kind,
                  {"members": members})
