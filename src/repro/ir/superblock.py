"""Profile-guided superblocks: hot block chains compiled as one function.

Per-block DBT pays a dispatch round trip per translation block: a cache
lookup, a call into the compiled function, a ``BlockResult`` decode, and
(on the CPU path) per-counter property proxying.  Hot code is dominated
by short blocks chained through fall-throughs and direct jumps, so this
module fuses those chains -- profiled at dispatch time through per-head
execution counts and observed branch edges -- into one generated Python
function per chain, with the cross-block counter traffic accumulated in
locals and flushed once.

**Semantics are bit-for-bit those of the per-block tier.**  The chain
executes members in order; every assumption the fused code makes is
guarded, and a violated guard exits ("deopts") at the next member
boundary with a plain ``BlockResult`` jump to the member's pc, where the
per-block path resumes.  Concretely:

* **instruction budget** -- before entering member *k* the chain checks
  the caller's remaining budget and exits if exhausted, so a run that
  hits its step limit stops at exactly the same block boundary (and
  counter values) as per-block dispatch;
* **block budget** -- same check against the synthesized runtime's
  block-count budget;
* **self-patching code** -- every store is guarded against the chain's
  own code span; a hit marks the chain dirty and the next member
  boundary deopts (per-block dispatch revalidates block bytes at the
  same boundary, so observable behaviour is identical).  Patches landing
  *between* dispatches are caught by :meth:`Superblock.validate`, which
  re-reads every member's bytes before each chain run -- the same check
  ``Translator.get`` performs per block.  ``Cpu.code_changed()`` drops
  all chains outright;
* **faults and interrupts** -- a faulting op propagates out of the chain
  with all counters flushed (a ``finally`` adds the locals back to the
  env at the op boundary where the fault occurred) and, in the dynamic
  flavour, with the CPU's pc already advanced to the faulting member's
  head -- exactly where per-block dispatch leaves it; interrupts are
  delivered at run boundaries in this VM, which superblocks do not move.

Terminators end a chain: indirect jumps, calls, returns and halts are
never fused; conditional jumps fuse the profiled-hotter edge and exit
through the other.  Mid-chain exits report how many members actually
entered so the dispatcher can account steps and locate the terminating
member (import calls and halts need its last instruction address).

Generated superblock sources are persisted through
:mod:`repro.ir.codecache` alongside a *chain hint* keyed by the head
block's content, so a warm process both skips regeneration and re-forms
hot chains on first dispatch instead of re-profiling.
"""

import os

from repro.ir import codecache
from repro.ir import nodes as N
from repro.ir.compile import _BINDINGS, _Writer, _emit_op, compile_source

#: Environment toggle for the superblock tier (used when a consumer does
#: not pass an explicit setting): ``off``/``0`` disables, default on.
SUPERBLOCKS_ENV = "REVNIC_SUPERBLOCKS"

_DISABLED = ("off", "0", "no", "false", "disabled")

#: Mutable cells shared with every generated superblock: [chains formed,
#: chain runs, member blocks executed inside chains, dirty-deopt exits].
#: Deterministic -- tests assert the tier actually ran (or deopted).
_SB_CELLS = [0, 0, 0, 0]


def superblock_counters():
    """Snapshot of the superblock-tier counters (deterministic)."""
    return {"superblocks_formed": _SB_CELLS[0],
            "superblock_runs": _SB_CELLS[1],
            "superblock_blocks": _SB_CELLS[2],
            "superblock_deopts": _SB_CELLS[3]}


def superblocks_enabled():
    """The environment-default for consumers without an explicit
    setting."""
    return os.environ.get(SUPERBLOCKS_ENV, "").lower() not in _DISABLED


class SuperblockConfig:
    """Formation knobs: how hot a head must run before chaining and how
    many members one chain may fuse."""

    __slots__ = ("hot_threshold", "max_members")

    def __init__(self, hot_threshold=16, max_members=16):
        self.hot_threshold = hot_threshold
        self.max_members = max_members


class _ChainWriter(_Writer):
    """Retargets the op lowering at chain-local counter accumulators and
    wraps returns in the chain-exit protocol ``(result, members, _i)``."""

    ops_target = "_o"
    io_target = "_io"
    mem_target = "_mem"

    def __init__(self, guard_span):
        _Writer.__init__(self)
        self.guard_span = guard_span   # (lo, hi) or None
        self.members_entered = 1

    def wrap_return(self, expr):
        return "return (%s), %d, _i" % (expr, self.members_entered)

    def after_store(self, address_ref):
        if self.guard_span is not None:
            lo, hi = self.guard_span
            self.line("if %d <= %s < %d:" % (lo, address_ref, hi))
            self.line("    _w = True")


def superblock_source(blocks, guard_code_writes):
    """The generated module source fusing ``blocks`` into one function
    ``_sb(env, instr_budget, block_budget) -> (BlockResult, members,
    instrs)``.

    ``guard_code_writes`` emits the self-patch store guard (the dynamic
    flavour; synthesized block maps are immutable and skip it).  Like
    :func:`repro.ir.compile.block_source` this is a pure function of the
    member blocks, which is what makes persisting it sound.
    """
    span = (min(b.pc for b in blocks), max(b.end_pc for b in blocks))
    w = _ChainWriter(span if guard_code_writes else None)
    last = len(blocks) - 1
    instrs = 0
    for index, block in enumerate(blocks):
        w.members_entered = index + 1
        if index:
            # Member boundary: deopt on a dirty code span, exit on an
            # exhausted instruction or block budget.  Exits return a
            # plain jump to this member's pc -- exactly what the
            # per-block tier would be dispatching next.
            exit_const = w.const(
                "x", "BlockResult(\"jump\", %d)" % block.pc)
            if guard_code_writes:
                w.line("if _w:")
                w.line("    _s[3] += 1")
                w.line("    return %s, %d, _i" % (exit_const, index))
            w.line("if _i >= instr_budget or %d >= block_budget:" % index)
            w.line("    return %s, %d, _i" % (exit_const, index))
            if guard_code_writes:
                # Per-block dispatch would have advanced the CPU's pc to
                # this member before running it; track that so a fault
                # escaping the chain reports the same faulting-block pc.
                w.line("env.cpu.pc = %d" % block.pc)
        instrs += len(block.instr_addrs)
        w.line("_n = %d" % (index + 1))
        w.line("_i = %d" % instrs)
        terminator = block.terminator
        if not isinstance(terminator, N.TERMINATOR_TYPES):
            terminator = None
        if index != last:
            body_ops = block.ops[:-1] if terminator is not None \
                else block.ops
            for op in body_ops:
                _emit_op(w, op)
            _emit_chain_link(w, terminator, index + 1,
                             blocks[index + 1].pc)
        else:
            terminated = False
            for op in block.ops:
                terminated = _emit_op(w, op)
                if terminated:
                    break
            if not terminated:
                w.flush()
                w.line(w.wrap_return(w.const(
                    "f", "BlockResult(\"jump\", %d)" % block.end_pc)))

    header = ["%s = %s" % pair for pair in w.consts]
    header += ["def _sb(env, instr_budget, block_budget):",
               "    _s[1] += 1"]
    header.extend(_BINDINGS[name] for name in sorted(w.used))
    header.append("    _i = 0; _o = 0; _io = 0; _mem = 0; _n = 0")
    if guard_code_writes:
        header.append("    _w = False")
    header.append("    try:")
    body = ["    " + line for line in w.lines]
    footer = ["    finally:",
              "        _s[2] += _n",
              "        env.instrs_retired += _i",
              "        env.ops_retired += _o"]
    if w.used & {"io_read", "io_write", "is_dev"}:
        footer.append("        env.io_ops += _io")
    if "is_dev" in w.used:
        footer.append("        env.mem_ops += _mem")
    return "\n".join(header + body + footer) + "\n"


def _emit_chain_link(w, terminator, entered, next_pc):
    """Fold an interior member's terminator into the fall-through to the
    next member, exiting through the non-fused edge when one exists."""
    if terminator is None:
        # Terminator-less member (a split-block head): falls through.
        w.flush()
        return
    if isinstance(terminator, N.IrJump):
        # Direct jump to the next member: counting the op is all that
        # remains of it.
        w.flush(including=1)
        return
    if isinstance(terminator, N.IrCondJump):
        w.flush(including=1)
        if terminator.target == terminator.fallthrough:
            # Degenerate branch: both edges continue into the chain.
            return
        cond = "t%d" % terminator.cond
        if next_pc == terminator.fallthrough:
            exit_const = w.const(
                "j", "BlockResult(\"jump\", %d)" % terminator.target)
            w.line("if %s:" % cond)
        else:
            exit_const = w.const(
                "j", "BlockResult(\"jump\", %d)" % terminator.fallthrough)
            w.line("if not %s:" % cond)
        w.line("    return %s, %d, _i" % (exit_const, entered))
        return
    raise ValueError(  # pragma: no cover - formation never fuses these
        "cannot fuse terminator %r" % (terminator,))


class Superblock:
    """A formed chain: the member blocks, the fused function, and (in
    the dynamic flavour) the byte spans revalidated before every run.

    ``valid_epoch`` memoizes the memory write epoch the spans were last
    verified against: while no write has happened since, revalidation is
    a single integer compare instead of guest-byte reads."""

    __slots__ = ("pc", "blocks", "fn", "_spans", "valid_epoch")

    def __init__(self, blocks, fn, spans):
        self.pc = blocks[0].pc
        self.blocks = blocks
        self.fn = fn
        self._spans = spans
        self.valid_epoch = None

    def validate(self, read_code):
        """True when every member's guest bytes still match the bytes
        the chain was formed from (contiguous members share one read)."""
        try:
            for pc, size, raw in self._spans:
                if bytes(read_code(pc, size)) != raw:
                    return False
        except Exception:
            return False
        return True


#: Content-addressed fused-function cache shared across managers, like
#: ``compile._SHARED_PROGRAMS``: many short-lived harnesses over the
#: same image share one compiled chain.  Same bounding discipline.
_SHARED_CHAINS = {}
_SHARED_CHAINS_MAX = 4096

_DECLINED = object()


class SuperblockManager:
    """Per-consumer profiling, formation and dispatch-time validation.

    ``flavor`` selects the trust model: ``"dynamic"`` blocks come from a
    :class:`~repro.dbt.translator.Translator` over mutable guest memory,
    so chains revalidate member bytes before every run and guard their
    own stores; ``"static"`` blocks come from a synthesized driver's
    immutable block map, so both checks are skipped (matching the
    per-block tier, which never re-reads a synthesized block either).

    ``get_block`` maps a pc to a translation block (returning ``None``
    or raising for untranslatable addresses -- both simply stop chain
    growth).  ``epoch_source`` (dynamic flavour) is an object with a
    ``write_epoch`` attribute (the guest :class:`~repro.vm.memory.Memory`)
    used to skip byte revalidation while memory is untouched.
    """

    def __init__(self, get_block, flavor, read_code=None, config=None,
                 epoch_source=None):
        if flavor not in ("dynamic", "static"):
            raise ValueError("unknown superblock flavor %r" % (flavor,))
        if flavor == "dynamic" and read_code is None:
            raise ValueError("dynamic superblocks need read_code")
        self._get_block = get_block
        self._flavor = flavor
        self._read = read_code
        self._epoch_source = epoch_source
        self._config = config if config is not None else SuperblockConfig()
        self._supers = {}
        self._counts = {}
        self._edges = {}
        self._last_pc = None
        #: Static-flavour steady-state fast path: pc -> formed chain, or
        #: ``None`` for a declined head.  Dispatch loops may probe it
        #: before paying a :meth:`lookup` call -- static chains need no
        #: revalidation, so a hit is final; only absent keys (cold pcs
        #: still being profiled) need the full path.  Dynamic managers
        #: keep it ``None``: every hit must revalidate member bytes.
        self.dispatch = {} if flavor == "static" else None

    def invalidate(self):
        """Drop every chain and all profile state (the
        ``Cpu.code_changed()`` hook).  Persisted hints survive -- they
        are content-addressed, so patched code simply misses them."""
        self._supers.clear()
        self._counts.clear()
        self._edges.clear()
        self._last_pc = None
        if self.dispatch is not None:
            self.dispatch.clear()

    def lookup(self, pc):
        """The superblock to run at ``pc``, or ``None`` for the per-block
        path.  Also the profiling hook: consecutive per-block lookups
        feed the execution counts and branch edges formation uses."""
        sb = self._supers.get(pc)
        if sb is not None and sb is not _DECLINED:
            if self._read is None:
                self._last_pc = None
                return sb
            source = self._epoch_source
            epoch = source.write_epoch if source is not None else None
            if epoch is not None and sb.valid_epoch == epoch:
                # Nothing has written to memory since the last byte
                # check: the spans cannot have changed.
                self._last_pc = None
                return sb
            if sb.validate(self._read):
                sb.valid_epoch = epoch
                self._last_pc = None
                return sb
            # Patched under the chain: drop it and fall through to
            # re-profile (the translator revalidates and retranslates
            # the members on the next fetch).
            del self._supers[pc]
            sb = None
        prev, self._last_pc = self._last_pc, pc
        if prev is not None:
            edges = self._edges.get(prev)
            if edges is None:
                edges = self._edges[prev] = {}
            edges[pc] = edges.get(pc, 0) + 1
        if sb is _DECLINED:
            return None
        count = self._counts.get(pc, 0) + 1
        self._counts[pc] = count
        formed = None
        if count == 1 and codecache.enabled():
            formed = self._try_hint(pc)
        if formed is None and count >= self._config.hot_threshold:
            formed = self._form(pc)
        if formed is not None:
            self._last_pc = None
        return formed

    # -- formation -----------------------------------------------------

    def _fetch(self, pc):
        try:
            return self._get_block(pc)
        except Exception:
            return None

    def _next_pc(self, block):
        """The chain continuation after ``block``, or ``None`` when its
        terminator ends the chain."""
        term = block.terminator
        if not isinstance(term, N.TERMINATOR_TYPES):
            return block.end_pc
        if isinstance(term, N.IrJump) and not term.indirect:
            return term.target
        if isinstance(term, N.IrCondJump):
            if term.target == term.fallthrough:
                return term.target
            edges = self._edges.get(block.pc)
            taken = edges.get(term.target, 0) if edges else 0
            fall = edges.get(term.fallthrough, 0) if edges else 0
            return term.target if taken > fall else term.fallthrough
        return None

    def _allowed_next(self, block):
        """The pcs a hint is allowed to chain to after ``block``."""
        term = block.terminator
        if not isinstance(term, N.TERMINATOR_TYPES):
            return (block.end_pc,)
        if isinstance(term, N.IrJump) and not term.indirect:
            return (term.target,)
        if isinstance(term, N.IrCondJump):
            return (term.target, term.fallthrough)
        return ()

    def _form(self, head_pc):
        blocks = []
        seen = set()
        pc = head_pc
        while len(blocks) < self._config.max_members:
            block = self._fetch(pc)
            if block is None:
                break
            blocks.append(block)
            seen.add(pc)
            nxt = self._next_pc(block)
            if nxt is None or nxt in seen:
                break
            pc = nxt
        if len(blocks) < 2:
            # Nothing to fuse (terminator ends the chain immediately, or
            # the continuation is untranslatable): never retry this head.
            self._supers[head_pc] = _DECLINED
            if self.dispatch is not None:
                self.dispatch[head_pc] = None
            return None
        sb = self._build(blocks)
        self._supers[head_pc] = sb
        if self.dispatch is not None:
            self.dispatch[head_pc] = sb
        codecache.store_chain_hint(blocks[0], self._flavor,
                                   [b.pc for b in blocks])
        _SB_CELLS[0] += 1
        return sb

    def _try_hint(self, pc):
        """Re-form a persisted chain on first dispatch of its head."""
        head = self._fetch(pc)
        if head is None:
            return None
        members = codecache.load_chain_hint(head, self._flavor)
        if not members or members[0] != pc:
            return None
        blocks = [head]
        prev = head
        for nxt in members[1:self._config.max_members]:
            if nxt not in self._allowed_next(prev) or nxt == pc:
                return None
            block = self._fetch(nxt)
            if block is None:
                return None
            blocks.append(block)
            prev = block
        if len(blocks) < 2:
            return None
        sb = self._build(blocks)
        self._supers[pc] = sb
        if self.dispatch is not None:
            self.dispatch[pc] = sb
        _SB_CELLS[0] += 1
        return sb

    def _build(self, blocks):
        guard = self._flavor == "dynamic"
        key = (self._flavor,
               tuple((b.pc, b.size, len(b.instr_addrs), tuple(b.ops))
                     for b in blocks))
        if guard and self._epoch_source is not None:
            self._epoch_source.watch_code_span(
                min(b.pc for b in blocks), max(b.end_pc for b in blocks))
        fn = _SHARED_CHAINS.get(key)
        if fn is None:
            source = codecache.cached_source(
                "superblock:" + self._flavor,
                codecache.chain_descriptor(blocks),
                lambda: superblock_source(blocks, guard))
            fn = compile_source(
                source, "_sb", "<superblock-0x%08x>" % blocks[0].pc,
                extra={"_s": _SB_CELLS})
            if len(_SHARED_CHAINS) >= _SHARED_CHAINS_MAX:
                _SHARED_CHAINS.clear()
            _SHARED_CHAINS[key] = fn
        spans = _member_spans(blocks, self._read) if guard else None
        return Superblock(blocks, fn, spans)


def _member_spans(blocks, read_code):
    """``(pc, size, raw)`` spans covering every member, with contiguous
    members merged so dispatch-time revalidation reads once per run of
    fall-through members."""
    spans = []
    for block in blocks:
        if spans and spans[-1][0] + spans[-1][1] == block.pc:
            pc, size = spans[-1][0], spans[-1][1] + block.size
            spans[-1] = (pc, size)
        else:
            spans.append((block.pc, block.size))
    return [(pc, size, bytes(read_code(pc, size))) for pc, size in spans]
