"""Textual rendering of IR (debugging aid and golden-test format)."""

from repro.ir import nodes as N


def _target(value, indirect):
    return "%%t%d" % value if indirect else "0x%x" % value


def format_op(op):
    """Render one IR op as text."""
    if isinstance(op, N.IrConst):
        return "%%t%d = const 0x%x" % (op.dst, op.value)
    if isinstance(op, N.IrGetReg):
        return "%%t%d = getreg r%d" % (op.dst, op.reg)
    if isinstance(op, N.IrSetReg):
        return "setreg r%d, %%t%d" % (op.reg, op.src)
    if isinstance(op, N.IrBin):
        return "%%t%d = %s %%t%d, %%t%d" % (op.dst, op.kind.value, op.a, op.b)
    if isinstance(op, N.IrNot):
        return "%%t%d = not %%t%d" % (op.dst, op.a)
    if isinstance(op, N.IrNeg):
        return "%%t%d = neg %%t%d" % (op.dst, op.a)
    if isinstance(op, N.IrCmp):
        return "%%t%d = icmp.%s %%t%d, %%t%d" % (op.dst, op.kind.value,
                                                 op.a, op.b)
    if isinstance(op, N.IrLoad):
        return "%%t%d = load%d [%%t%d]" % (op.dst, op.width * 8, op.addr)
    if isinstance(op, N.IrStore):
        return "store%d [%%t%d], %%t%d" % (op.width * 8, op.addr, op.src)
    if isinstance(op, N.IrIn):
        return "%%t%d = in%d (%%t%d)" % (op.dst, op.width * 8, op.port)
    if isinstance(op, N.IrOut):
        return "out%d (%%t%d), %%t%d" % (op.width * 8, op.port, op.src)
    if isinstance(op, N.IrJump):
        return "jump %s" % _target(op.target, op.indirect)
    if isinstance(op, N.IrCondJump):
        return "condjump %%t%d, 0x%x, 0x%x" % (op.cond, op.target,
                                               op.fallthrough)
    if isinstance(op, N.IrCall):
        return "call %s (ret 0x%x)" % (_target(op.target, op.indirect),
                                       op.return_pc)
    if isinstance(op, N.IrRet):
        return "ret %%t%d (+%d)" % (op.addr, op.cleanup)
    if isinstance(op, N.IrHalt):
        return "halt"
    raise TypeError("unknown IR op %r" % (op,))


def format_block(block):
    """Render a whole translation block."""
    lines = ["tb @0x%08x (%d instrs):" % (block.pc, len(block.instr_addrs))]
    lines.extend("  " + format_op(op) for op in block.ops)
    return "\n".join(lines)
