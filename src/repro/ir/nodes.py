"""IR node definitions.

Ops form three groups:

* computation: ``IrConst``, ``IrGetReg``, ``IrSetReg``, ``IrBin``, ``IrNot``,
  ``IrNeg``, ``IrCmp`` -- all over an unbounded set of per-block temporaries;
* effects: ``IrLoad``/``IrStore`` (memory), ``IrIn``/``IrOut`` (port I/O);
* terminators: ``IrJump``, ``IrCondJump``, ``IrCall``, ``IrRet``, ``IrHalt``.

Jump/call targets are either an ``int`` (direct, a guest virtual address) or
a temp index (indirect).  A :class:`TranslationBlock` is a maximal run of
guest instructions ending at the first control-flow change -- exactly the
paper's footnote-1 definition, so a translation block may span multiple
basic blocks when a later branch lands in its middle.
"""

import enum
from dataclasses import dataclass, field


class BinKind(enum.Enum):
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SAR = "sar"
    MUL = "mul"
    DIVU = "divu"
    REMU = "remu"


class CmpKind(enum.Enum):
    EQ = "eq"
    NE = "ne"
    SLT = "slt"
    SGE = "sge"
    ULT = "ult"
    UGE = "uge"


@dataclass(frozen=True)
class IrConst:
    dst: int
    value: int


@dataclass(frozen=True)
class IrGetReg:
    dst: int
    reg: int


@dataclass(frozen=True)
class IrSetReg:
    reg: int
    src: int


@dataclass(frozen=True)
class IrBin:
    dst: int
    kind: BinKind
    a: int
    b: int


@dataclass(frozen=True)
class IrNot:
    dst: int
    a: int


@dataclass(frozen=True)
class IrNeg:
    dst: int
    a: int


@dataclass(frozen=True)
class IrCmp:
    dst: int
    kind: CmpKind
    a: int
    b: int


@dataclass(frozen=True)
class IrLoad:
    dst: int
    addr: int      # temp holding the address
    width: int


@dataclass(frozen=True)
class IrStore:
    addr: int
    src: int
    width: int


@dataclass(frozen=True)
class IrIn:
    dst: int
    port: int      # temp holding the port number
    width: int


@dataclass(frozen=True)
class IrOut:
    port: int
    src: int
    width: int


@dataclass(frozen=True)
class IrJump:
    """Direct (``target`` is int) or indirect (``target`` is temp) jump."""

    target: object
    indirect: bool = False


@dataclass(frozen=True)
class IrCondJump:
    cond: int
    target: int        # taken-branch guest address
    fallthrough: int   # next guest address


@dataclass(frozen=True)
class IrCall:
    """Function call; the return-address push is emitted as explicit
    sp-adjust + store ops *before* this terminator."""

    target: object
    indirect: bool
    return_pc: int


@dataclass(frozen=True)
class IrRet:
    """Function return; the return-address load and stack cleanup are
    explicit ops before this terminator.  ``addr`` is the temp holding the
    return address, ``cleanup`` the stdcall argument-byte count."""

    addr: int
    cleanup: int


@dataclass(frozen=True)
class IrHalt:
    pass


TERMINATOR_TYPES = (IrJump, IrCondJump, IrCall, IrRet, IrHalt)


@dataclass
class TranslationBlock:
    """A translated run of guest instructions ending at a terminator."""

    pc: int
    size: int                      # guest bytes covered
    instr_addrs: list              # guest address of every instruction
    ops: list = field(default_factory=list)
    #: per-instruction (start, end) index ranges into ``ops`` -- used by the
    #: synthesizer to split translation blocks into basic blocks
    instr_spans: list = field(default_factory=list)

    @property
    def terminator(self):
        return self.ops[-1] if self.ops else None

    @property
    def end_pc(self):
        return self.pc + self.size

    def contains(self, address):
        """True when ``address`` is one of the block's instructions."""
        return address in self.instr_addrs

    def static_successors(self):
        """Guest addresses statically known to follow this block."""
        term = self.terminator
        if isinstance(term, IrCondJump):
            return [term.target, term.fallthrough]
        if isinstance(term, IrJump) and not term.indirect:
            return [term.target]
        if isinstance(term, IrCall) and not term.indirect:
            return [term.target]
        return []

    def split_at(self, address):
        """Split this block at instruction ``address``; returns the head
        piece (``[pc, address)``), which falls through to ``address``.

        Used during CFG reconstruction when a branch target lands in the
        middle of a translation block (paper footnote 1 / section 4.1:
        "RevNIC splits translation blocks into basic blocks").
        """
        if address not in self.instr_addrs or address == self.pc:
            raise ValueError("0x%x is not an interior instruction" % address)
        index = self.instr_addrs.index(address)
        op_cut = self.instr_spans[index][0] if self.instr_spans else None
        head = TranslationBlock(
            pc=self.pc,
            size=address - self.pc,
            instr_addrs=self.instr_addrs[:index],
            ops=self.ops[:op_cut] if op_cut is not None else [],
            instr_spans=self.instr_spans[:index],
        )
        return head
