"""Block compiler: lowers IR translation blocks to flat Python functions.

The same ``compile()`` discipline as :mod:`repro.symex.expr`'s compiled
evaluation programs, applied to whole translation blocks: each block is
lowered once into the source of one Python function -- one statement per
IR op, temps as local variables, no per-op dispatch, no temp dictionary --
and executed many times.  The generated function has *exactly* the
semantics of :func:`repro.ir.interp.run_block` against the same
environment object, including the counter discipline (``instrs_retired``
at block entry, ``ops_retired`` per executed op even when an op faults
mid-block) and the fault behaviour (``VmFault`` on divide by zero,
whatever the environment's memory/I/O callables raise for bad accesses).

Generated sources are *self-contained modules*: every constant (the
``BlockResult`` objects a block returns) is emitted as a source-level
binding, so :func:`block_source` is a pure function of the block's
ops/layout and the exact same text executes identically in any process.
That is what makes the persistent code cache (:mod:`repro.ir.codecache`)
sound: a warm process imports the cached source instead of regenerating
it, and both paths exec byte-identical text.

The compiled function is cached on the block object itself, so cache
lifetime *is* block lifetime: a :class:`~repro.dbt.translator.Translator`
that retranslates a patched block produces a fresh block object and
therefore a fresh compiled function -- the mid-block-patch invalidation
semantics come for free.

The op lowering in :func:`_emit_op` is shared with the superblock
code generator (:mod:`repro.ir.superblock`), which subclasses
:class:`_Writer` to retarget the counter sinks at local accumulators and
wrap returns in the chain-exit protocol.
"""

from repro.errors import VmFault
from repro.ir import nodes as N
from repro.ir.interp import BlockResult

_MASK32 = 0xFFFFFFFF

#: ``a`` signed-reinterpreted, as a source expression (operand repeated).
_SIGNED = "(%s - 4294967296 if %s & 2147483648 else %s)"

_BIN_TEMPLATES = {
    N.BinKind.ADD: "(%s + %s) & 4294967295",
    N.BinKind.SUB: "(%s - %s) & 4294967295",
    N.BinKind.AND: "%s & %s",
    N.BinKind.OR: "%s | %s",
    N.BinKind.XOR: "%s ^ %s",
    N.BinKind.SHL: "(%s << (%s & 31)) & 4294967295",
    N.BinKind.SHR: "%s >> (%s & 31)",
    N.BinKind.MUL: "(%s * %s) & 4294967295",
}

_CMP_OPS = {
    N.CmpKind.EQ: ("==", False), N.CmpKind.NE: ("!=", False),
    N.CmpKind.ULT: ("<", False), N.CmpKind.UGE: (">=", False),
    N.CmpKind.SLT: ("<", True), N.CmpKind.SGE: (">=", True),
}

#: Mutable cells shared with every compiled block: [blocks compiled,
#: compiled-block executions].  Deterministic, like the expression-program
#: counters -- tests assert the compiled tier actually ran.
_COUNTER_CELLS = [0, 0]


def exec_counters():
    """Snapshot of the block-compiler counters (deterministic)."""
    return {"blocks_compiled": _COUNTER_CELLS[0],
            "block_runs": _COUNTER_CELLS[1]}


class _Writer:
    """Accumulates body lines plus the deferred ops_retired flushes.

    The class attributes name the counter sinks the emitted statements
    increment; the superblock writer retargets them at local accumulators
    (flushed once in a ``finally``) and overrides :meth:`wrap_return` /
    :meth:`after_store` for the chain-exit protocol and the self-patch
    store guard.
    """

    ops_target = "env.ops_retired"
    io_target = "env.io_ops"
    mem_target = "env.mem_ops"

    def __init__(self):
        self.lines = []
        self.pending = 0          # executed ops not yet counted
        self.consts = []          # (name, source expression) pairs
        self.used = set()         # env accessors referenced by the body

    def line(self, text):
        self.lines.append("    " + text)

    def flush(self, including=0):
        """Emit the deferred ``ops_retired`` increment.  ``including``
        ops are about to execute now (a faulting op counts *before* it
        runs, exactly like the interpreter's per-op increment)."""
        count = self.pending + including
        self.pending = 0
        if count:
            self.line("%s += %d" % (self.ops_target, count))

    def const(self, prefix, expr):
        """Bind source expression ``expr`` as a module-level constant."""
        name = "_%s%d" % (prefix, len(self.consts))
        self.consts.append((name, expr))
        return name

    def wrap_return(self, expr):
        """The return statement delivering ``expr`` as the block result."""
        return "return " + expr

    def after_store(self, address_ref):
        """Hook invoked after every emitted store; the superblock writer
        guards writes into the chain's own code span here."""


def _signed(ref):
    return _SIGNED % (ref, ref, ref)


def _emit_op(w, op):
    """Emit source for one IR op; returns True when it terminated the
    block (emitted a return)."""
    t = "t%d"
    if isinstance(op, N.IrConst):
        w.line(t % op.dst + " = %d" % (op.value & _MASK32))
    elif isinstance(op, N.IrGetReg):
        w.used.add("regs")
        w.line(t % op.dst + " = regs[%d]" % op.reg)
    elif isinstance(op, N.IrSetReg):
        w.used.add("regs")
        w.line("regs[%d] = " % op.reg + t % op.src)
    elif isinstance(op, N.IrBin):
        a, b = t % op.a, t % op.b
        if op.kind in (N.BinKind.DIVU, N.BinKind.REMU):
            w.flush(including=1)
            w.line("if %s == 0:" % b)
            w.line("    raise VmFault(\"divide by zero\")")
            sign = "//" if op.kind == N.BinKind.DIVU else "%"
            w.line(t % op.dst + " = (%s %s %s) & 4294967295" % (a, sign, b))
            return False
        if op.kind == N.BinKind.SAR:
            w.line(t % op.dst + " = (%s >> (%s & 31)) & 4294967295"
                   % (_signed(a), b))
        else:
            w.line(t % op.dst + " = " + _BIN_TEMPLATES[op.kind] % (a, b))
    elif isinstance(op, N.IrNot):
        w.line(t % op.dst + " = (~%s) & 4294967295" % (t % op.a,))
    elif isinstance(op, N.IrNeg):
        w.line(t % op.dst + " = (-%s) & 4294967295" % (t % op.a,))
    elif isinstance(op, N.IrCmp):
        a, b = t % op.a, t % op.b
        sign, is_signed = _CMP_OPS[op.kind]
        if is_signed:
            a, b = _signed(a), _signed(b)
        w.line(t % op.dst + " = 1 if %s %s %s else 0" % (a, sign, b))
    elif isinstance(op, N.IrLoad):
        w.used.update(("mem_read", "is_dev"))
        w.flush(including=1)
        w.line(t % op.dst + " = mem_read(%s, %d)" % (t % op.addr, op.width))
        _emit_access_count(w, t % op.addr)
        return False
    elif isinstance(op, N.IrStore):
        w.used.update(("mem_write", "is_dev"))
        w.flush(including=1)
        w.line("mem_write(%s, %d, %s)"
               % (t % op.addr, op.width, t % op.src))
        _emit_access_count(w, t % op.addr)
        w.after_store(t % op.addr)
        return False
    elif isinstance(op, N.IrIn):
        w.used.add("io_read")
        w.flush(including=1)
        w.line(t % op.dst + " = io_read(%s, %d)" % (t % op.port, op.width))
        w.line("%s += 1" % w.io_target)
        return False
    elif isinstance(op, N.IrOut):
        w.used.add("io_write")
        w.flush(including=1)
        w.line("io_write(%s, %d, %s)" % (t % op.port, op.width, t % op.src))
        w.line("%s += 1" % w.io_target)
        return False
    elif isinstance(op, N.IrJump):
        w.flush(including=1)
        if op.indirect:
            w.line(w.wrap_return("BlockResult(\"jump\", %s)"
                                 % (t % op.target,)))
        else:
            w.line(w.wrap_return(w.const(
                "j", "BlockResult(\"jump\", %d)" % op.target)))
        return True
    elif isinstance(op, N.IrCondJump):
        w.flush(including=1)
        taken = w.const("j", "BlockResult(\"jump\", %d)" % op.target)
        fall = w.const("j", "BlockResult(\"jump\", %d)" % op.fallthrough)
        w.line(w.wrap_return("%s if %s else %s" % (taken, t % op.cond, fall)))
        return True
    elif isinstance(op, N.IrCall):
        w.flush(including=1)
        if op.indirect:
            w.line(w.wrap_return("BlockResult(\"call\", %s, %d)"
                                 % (t % op.target, op.return_pc)))
        else:
            w.line(w.wrap_return(w.const(
                "c", "BlockResult(\"call\", %d, %d)"
                % (op.target, op.return_pc))))
        return True
    elif isinstance(op, N.IrRet):
        w.flush(including=1)
        w.line(w.wrap_return("BlockResult(\"ret\", %s, cleanup=%d)"
                             % (t % op.addr, op.cleanup)))
        return True
    elif isinstance(op, N.IrHalt):
        w.flush(including=1)
        w.line(w.wrap_return(w.const("h", "BlockResult(\"halt\")")))
        return True
    else:  # pragma: no cover - node set is closed
        raise TypeError("cannot compile IR op %r" % (op,))
    w.pending += 1
    return False


def _emit_access_count(w, address_ref):
    w.line("if is_dev(%s):" % address_ref)
    w.line("    %s += 1" % w.io_target)
    w.line("else:")
    w.line("    %s += 1" % w.mem_target)


_BINDINGS = {
    "regs": "    regs = env.regs",
    "mem_read": "    mem_read = env.mem_read",
    "mem_write": "    mem_write = env.mem_write",
    "io_read": "    io_read = env.io_read",
    "io_write": "    io_write = env.io_write",
    "is_dev": "    is_dev = env.is_device_address",
}


def block_source(block):
    """The generated module source for ``block``: constant bindings plus
    one ``_block(env)`` function.

    A pure function of the block's ops and layout -- byte-identical
    whenever the block content is identical -- which is the contract the
    persistent code cache relies on.
    """
    w = _Writer()
    terminated = False
    for op in block.ops:
        terminated = _emit_op(w, op)
        if terminated:
            break
    if not terminated:
        # A block with no terminator falls through (split-block heads).
        w.flush()
        w.line(w.wrap_return(w.const(
            "f", "BlockResult(\"jump\", %d)" % block.end_pc)))

    header = ["%s = %s" % pair for pair in w.consts]
    header += ["def _block(env):",
               "    _c[1] += 1",
               "    env.instrs_retired += %d" % len(block.instr_addrs)]
    header.extend(_BINDINGS[name] for name in sorted(w.used))
    return "\n".join(header + w.lines) + "\n"


def compile_source(source, name, filename, extra=None):
    """Exec generated ``source`` and return the function bound to
    ``name``.  The namespace carries the shared counter cells plus
    whatever ``extra`` bindings the flavour needs."""
    namespace = {"_c": _COUNTER_CELLS, "VmFault": VmFault,
                 "BlockResult": BlockResult}
    if extra:
        namespace.update(extra)
    exec(compile(source, filename, "exec"), namespace)
    return namespace[name]


def _compile_block(block):
    from repro.ir import codecache

    source = codecache.cached_source(
        "block", codecache.block_descriptor(block),
        lambda: block_source(block))
    fn = compile_source(source, "_block", "<block-0x%08x>" % block.pc)
    _COUNTER_CELLS[0] += 1
    return fn


#: Content-addressed program cache shared across translators: two block
#: objects with identical ops/layout (e.g. the same driver image loaded
#: into many harnesses) share one compiled function.  Keys capture
#: everything the generated source depends on, so a mid-block patch --
#: which retranslates into different ops -- can never hit a stale entry.
#: Bounded: long-lived sessions that keep patching/reloading code reset
#: the table once it reaches the cap (semantics-safe -- every entry is a
#: pure function of its key and recompiles on demand; live blocks keep
#: their function through the per-block attribute).
_SHARED_PROGRAMS = {}
_SHARED_PROGRAMS_MAX = 16384


def compile_block(block):
    """The compiled execution function of ``block`` (cached on the block).

    Returns a function ``fn(env) -> BlockResult`` with semantics identical
    to ``run_block(block, env)``.  Rides the persistent code cache when
    one is configured: the generated source is stored content-addressed,
    so a warm process imports instead of regenerating.
    """
    fn = getattr(block, "_compiled", None)
    if fn is None:
        key = (block.pc, block.size, len(block.instr_addrs),
               tuple(block.ops))
        fn = _SHARED_PROGRAMS.get(key)
        if fn is None:
            fn = _compile_block(block)
            if len(_SHARED_PROGRAMS) >= _SHARED_PROGRAMS_MAX:
                _SHARED_PROGRAMS.clear()
            _SHARED_PROGRAMS[key] = fn
        block._compiled = fn
    return fn
