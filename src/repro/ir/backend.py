"""Execution backends: how concrete layers run IR translation blocks.

One :class:`ExecutionBackend` is the strategy shared by every layer that
executes recovered or translated code concretely -- the DBT mode of the
concrete CPU (:mod:`repro.vm.cpu`), the synthesized-driver runtime
(:mod:`repro.templates.runtime` over :mod:`repro.synth.module`), and the
symbolic executor's concrete fast path (:mod:`repro.symex.executor`).
Both backends execute one block against an :class:`~repro.ir.interp.IrEnv`
-compatible environment and return a
:class:`~repro.ir.interp.BlockResult`:

* ``interp`` -- the tree-walking interpreter (:func:`repro.ir.interp.run_block`),
  zero warm-up cost, used as the differential reference;
* ``compiled`` -- the generated-source tier
  (:func:`repro.ir.compile.compile_block`), the default everywhere.
"""

from repro.ir.compile import compile_block
from repro.ir.interp import run_block

#: Backend every layer uses when none is requested.
DEFAULT_BACKEND = "compiled"


class ExecutionBackend:
    """Strategy for executing one translation block concretely."""

    name = "base"

    def run(self, block, env):
        """Execute ``block`` in ``env``; returns a ``BlockResult``."""
        raise NotImplementedError


class InterpBackend(ExecutionBackend):
    """Tree-walking reference backend."""

    name = "interp"

    def run(self, block, env):
        return run_block(block, env)


class CompiledBackend(ExecutionBackend):
    """Generated-source backend (one Python function per block)."""

    name = "compiled"

    def run(self, block, env):
        return compile_block(block)(env)


BACKENDS = {
    "interp": InterpBackend(),
    "compiled": CompiledBackend(),
}


def get_backend(spec, default=DEFAULT_BACKEND):
    """Resolve ``spec`` (None, a name, or a backend instance)."""
    if spec is None:
        spec = default
    if isinstance(spec, ExecutionBackend):
        return spec
    backend = BACKENDS.get(spec)
    if backend is None:
        raise ValueError("unknown execution backend %r (one of %s)"
                         % (spec, ", ".join(sorted(BACKENDS))))
    return backend
