"""Concrete IR interpreter (the ``interp`` execution backend).

Two uses: (1) differential validation that the DBT's IR -- and the
compiled tier lowered from it (:mod:`repro.ir.compile`) -- has exactly
the semantics of the concrete CPU, and (2) the reference execution engine
behind *synthesized* drivers: the target-OS simulators run recovered IR
functions through the compiled backend by default and fall back to (or
are differentially checked against) this tree-walker.
"""

from repro.errors import VmFault
from repro.ir import nodes as N

_MASK32 = 0xFFFFFFFF


def _signed(value):
    return value - (1 << 32) if value & 0x8000_0000 else value


_BIN_FUNCS = {
    N.BinKind.ADD: lambda a, b: (a + b) & _MASK32,
    N.BinKind.SUB: lambda a, b: (a - b) & _MASK32,
    N.BinKind.AND: lambda a, b: a & b,
    N.BinKind.OR: lambda a, b: a | b,
    N.BinKind.XOR: lambda a, b: a ^ b,
    N.BinKind.SHL: lambda a, b: (a << (b & 31)) & _MASK32,
    N.BinKind.SHR: lambda a, b: a >> (b & 31),
    N.BinKind.SAR: lambda a, b: (_signed(a) >> (b & 31)) & _MASK32,
    N.BinKind.MUL: lambda a, b: (a * b) & _MASK32,
}

_CMP_FUNCS = {
    N.CmpKind.EQ: lambda a, b: a == b,
    N.CmpKind.NE: lambda a, b: a != b,
    N.CmpKind.SLT: lambda a, b: _signed(a) < _signed(b),
    N.CmpKind.SGE: lambda a, b: _signed(a) >= _signed(b),
    N.CmpKind.ULT: lambda a, b: a < b,
    N.CmpKind.UGE: lambda a, b: a >= b,
}


class IrEnv:
    """Execution environment the interpreter reads/writes through.

    Wraps a register file plus memory and I/O callables; the default
    implementation adapts a :class:`~repro.vm.machine.Machine`.
    """

    def __init__(self, regs, mem_read, mem_write, io_read, io_write,
                 is_device_address=None):
        self.regs = regs
        self.mem_read = mem_read
        self.mem_write = mem_write
        self.io_read = io_read
        self.io_write = io_write
        #: predicate classifying load/store addresses as device (MMIO)
        #: accesses for the io_ops counter
        self.is_device_address = is_device_address or (lambda addr: False)
        #: Retired IR-op count (the synthesized driver's perf counter).
        self.ops_retired = 0
        #: Retired guest-instruction count (comparable to Cpu.instret, so
        #: original and synthesized drivers are measured in the same unit).
        self.instrs_retired = 0
        #: Device accesses performed by synthesized code.
        self.io_ops = 0
        #: Regular-memory accesses, counted by both backends with the
        #: concrete CPU's per-access semantics (device accesses land in
        #: ``io_ops`` instead).
        self.mem_ops = 0

    @classmethod
    def for_machine(cls, machine):
        """Adapt a concrete VM machine."""
        bus = machine.bus
        return cls(machine.cpu.regs, bus.mem_read, bus.mem_write,
                   bus.io_read, bus.io_write,
                   is_device_address=bus.is_device_address)


class BlockResult:
    """Outcome of executing one translation block."""

    __slots__ = ("kind", "target", "return_pc", "cleanup")

    def __init__(self, kind, target=None, return_pc=None, cleanup=0):
        self.kind = kind          # 'jump' | 'call' | 'ret' | 'halt'
        self.target = target
        self.return_pc = return_pc
        self.cleanup = cleanup


def run_block(block, env):
    """Execute ``block`` concretely in ``env``; returns a
    :class:`BlockResult` describing the control transfer."""
    temps = {}
    env.instrs_retired += len(block.instr_addrs)

    def val(temp):
        return temps[temp]

    for op in block.ops:
        env.ops_retired += 1
        if isinstance(op, N.IrConst):
            temps[op.dst] = op.value & _MASK32
        elif isinstance(op, N.IrGetReg):
            temps[op.dst] = env.regs[op.reg]
        elif isinstance(op, N.IrSetReg):
            env.regs[op.reg] = val(op.src)
        elif isinstance(op, N.IrBin):
            if op.kind in (N.BinKind.DIVU, N.BinKind.REMU):
                divisor = val(op.b)
                if divisor == 0:
                    raise VmFault("divide by zero")
                if op.kind == N.BinKind.DIVU:
                    temps[op.dst] = (val(op.a) // divisor) & _MASK32
                else:
                    temps[op.dst] = (val(op.a) % divisor) & _MASK32
            else:
                temps[op.dst] = _BIN_FUNCS[op.kind](val(op.a), val(op.b))
        elif isinstance(op, N.IrNot):
            temps[op.dst] = (~val(op.a)) & _MASK32
        elif isinstance(op, N.IrNeg):
            temps[op.dst] = (-val(op.a)) & _MASK32
        elif isinstance(op, N.IrCmp):
            temps[op.dst] = 1 if _CMP_FUNCS[op.kind](val(op.a), val(op.b)) \
                else 0
        elif isinstance(op, N.IrLoad):
            address = val(op.addr)
            temps[op.dst] = env.mem_read(address, op.width)
            if env.is_device_address(address):
                env.io_ops += 1
            else:
                env.mem_ops += 1
        elif isinstance(op, N.IrStore):
            address = val(op.addr)
            env.mem_write(address, op.width, val(op.src))
            if env.is_device_address(address):
                env.io_ops += 1
            else:
                env.mem_ops += 1
        elif isinstance(op, N.IrIn):
            temps[op.dst] = env.io_read(val(op.port), op.width)
            env.io_ops += 1
        elif isinstance(op, N.IrOut):
            env.io_write(val(op.port), op.width, val(op.src))
            env.io_ops += 1
        elif isinstance(op, N.IrJump):
            target = val(op.target) if op.indirect else op.target
            return BlockResult("jump", target)
        elif isinstance(op, N.IrCondJump):
            target = op.target if val(op.cond) else op.fallthrough
            return BlockResult("jump", target)
        elif isinstance(op, N.IrCall):
            target = val(op.target) if op.indirect else op.target
            return BlockResult("call", target, return_pc=op.return_pc)
        elif isinstance(op, N.IrRet):
            return BlockResult("ret", val(op.addr), cleanup=op.cleanup)
        elif isinstance(op, N.IrHalt):
            return BlockResult("halt")
        else:  # pragma: no cover - node set is closed
            raise TypeError("unknown IR op %r" % (op,))
    # A block with no terminator falls through (only possible for blocks
    # truncated by basic-block splitting during synthesis).
    return BlockResult("jump", block.end_pc)
