"""Intermediate representation (the reproduction's LLVM-bitcode analog).

The dynamic binary translator lowers R32 machine code into this IR one
*translation block* at a time; the IR is what the wiretap records in traces,
what the symbolic engine executes, and what the synthesizer converts to C.
Guest CPU registers are accessed through explicit ``GetReg``/``SetReg`` ops
(mirroring QEMU's CPU-state accesses in its TCG/LLVM output), and every
memory or port access is an explicit op so the wiretap can classify it.
"""

from repro.ir.nodes import (
    BinKind,
    CmpKind,
    IrBin,
    IrCall,
    IrCmp,
    IrCondJump,
    IrConst,
    IrGetReg,
    IrHalt,
    IrIn,
    IrJump,
    IrLoad,
    IrNeg,
    IrNot,
    IrOut,
    IrRet,
    IrSetReg,
    IrStore,
    TERMINATOR_TYPES,
    TranslationBlock,
)
from repro.ir.printer import format_block, format_op
from repro.ir.interp import IrEnv, run_block
from repro.ir.compile import (block_source, compile_block, compile_source,
                              exec_counters)
from repro.ir.codecache import codecache_counters
from repro.ir.superblock import (Superblock, SuperblockConfig,
                                 SuperblockManager, superblock_counters,
                                 superblock_source, superblocks_enabled)
from repro.ir.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    CompiledBackend,
    ExecutionBackend,
    InterpBackend,
    get_backend,
)

__all__ = [
    "BinKind",
    "CmpKind",
    "IrBin",
    "IrCall",
    "IrCmp",
    "IrCondJump",
    "IrConst",
    "IrGetReg",
    "IrHalt",
    "IrIn",
    "IrJump",
    "IrLoad",
    "IrNeg",
    "IrNot",
    "IrOut",
    "IrRet",
    "IrSetReg",
    "IrStore",
    "TERMINATOR_TYPES",
    "TranslationBlock",
    "format_block",
    "format_op",
    "IrEnv",
    "run_block",
    "block_source",
    "compile_block",
    "compile_source",
    "exec_counters",
    "codecache_counters",
    "Superblock",
    "SuperblockConfig",
    "SuperblockManager",
    "superblock_counters",
    "superblock_source",
    "superblocks_enabled",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "CompiledBackend",
    "ExecutionBackend",
    "InterpBackend",
    "get_backend",
]
