"""Opcode enumeration for the R32 ISA."""

import enum


class Op(enum.IntEnum):
    """R32 opcodes.

    The numeric values are the first byte of the 8-byte encoding and are part
    of the binary format -- do not renumber.
    """

    NOP = 0x00
    MOV = 0x01       # rd = rs
    MOVI = 0x02      # rd = imm
    LD8 = 0x03       # rd = zx(mem8[rs + imm])
    LD16 = 0x04      # rd = zx(mem16[rs + imm])
    LD32 = 0x05      # rd = mem32[rs + imm]
    ST8 = 0x06       # mem8[ra + imm] = rv
    ST16 = 0x07      # mem16[ra + imm] = rv
    ST32 = 0x08      # mem32[ra + imm] = rv
    PUSH = 0x09      # sp -= 4; mem32[sp] = rs
    POP = 0x0A       # rd = mem32[sp]; sp += 4

    ADD = 0x10       # rd = rs1 + src2
    SUB = 0x11
    AND = 0x12
    OR = 0x13
    XOR = 0x14
    SHL = 0x15
    SHR = 0x16       # logical shift right
    SAR = 0x17       # arithmetic shift right
    MUL = 0x18
    DIVU = 0x19      # unsigned divide (div-by-zero faults)
    REMU = 0x1A
    NOT = 0x1B       # rd = ~rs1
    NEG = 0x1C       # rd = -rs1

    BEQ = 0x20       # if rs1 == rs2: pc = imm
    BNE = 0x21
    BLT = 0x22       # signed
    BGE = 0x23       # signed
    BLTU = 0x24
    BGEU = 0x25

    JMP = 0x28       # pc = imm
    JMPR = 0x29      # pc = rs
    CALL = 0x2A      # push return; pc = imm
    CALLR = 0x2B     # push return; pc = rs
    RET = 0x2C       # pop return; sp += imm

    IN8 = 0x30       # rd = port8[rs + imm]
    IN16 = 0x31
    IN32 = 0x32
    OUT8 = 0x33      # port8[ra + imm] = rv
    OUT16 = 0x34
    OUT32 = 0x35

    HALT = 0x3F


LOAD_OPS = frozenset({Op.LD8, Op.LD16, Op.LD32})
STORE_OPS = frozenset({Op.ST8, Op.ST16, Op.ST32})
IN_OPS = frozenset({Op.IN8, Op.IN16, Op.IN32})
OUT_OPS = frozenset({Op.OUT8, Op.OUT16, Op.OUT32})

ALU_OPS = frozenset({
    Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.SAR,
    Op.MUL, Op.DIVU, Op.REMU, Op.NOT, Op.NEG,
})

BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU})

#: Opcodes that end a translation block (alter control flow).
TERMINATOR_OPS = BRANCH_OPS | {Op.JMP, Op.JMPR, Op.CALL, Op.CALLR, Op.RET, Op.HALT}

#: Width in bytes accessed by each memory / port opcode.
ACCESS_WIDTH = {
    Op.LD8: 1, Op.LD16: 2, Op.LD32: 4,
    Op.ST8: 1, Op.ST16: 2, Op.ST32: 4,
    Op.IN8: 1, Op.IN16: 2, Op.IN32: 4,
    Op.OUT8: 1, Op.OUT16: 2, Op.OUT32: 4,
}
