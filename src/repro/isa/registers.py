"""Register file layout and naming for the R32 ISA.

Sixteen general-purpose registers.  Conventions (mirroring the stdcall-style
convention the paper relies on for parameter recovery, see paper section 4.1):

* ``r0`` -- return value (the analog of ``eax``).
* ``r1``..``r11`` -- general purpose; ``r1``-``r3`` are caller-saved scratch.
* ``r12`` (``at``) -- assembler temporary, used to materialize immediates for
  reg-reg-only instructions such as branches.
* ``r13`` (``sp``) -- stack pointer.
* ``r14`` (``fp``) -- frame pointer; binary drivers address locals and stack
  arguments as ``fp + offset``, which is what the synthesizer's def-use
  analysis keys on.
* ``r15`` -- general purpose / saved values.

Arguments are passed on the stack (pushed right to left); ``CALL`` pushes the
return address, ``RET n`` pops it and removes ``n`` bytes of arguments
(callee-clean, like Windows stdcall).
"""

from repro.errors import AsmError

NUM_REGS = 16

REG_RV = 0
REG_AT = 12
REG_SP = 13
REG_FP = 14

REG_NAMES = tuple("r%d" % i for i in range(NUM_REGS))

_ALIASES = {
    "at": REG_AT,
    "sp": REG_SP,
    "fp": REG_FP,
    "rv": REG_RV,
}

_NAME_TO_NUM = {name: i for i, name in enumerate(REG_NAMES)}
_NAME_TO_NUM.update(_ALIASES)


def reg_name(num):
    """Return the canonical name (``rN``) for a register number."""
    if not 0 <= num < NUM_REGS:
        raise ValueError("bad register number %r" % (num,))
    return REG_NAMES[num]


def reg_number(name):
    """Parse a register name (``r0``..``r15`` or an alias) to its number."""
    try:
        return _NAME_TO_NUM[name.lower()]
    except KeyError:
        raise AsmError("unknown register %r" % (name,)) from None
