"""Fixed 8-byte instruction encoding for R32.

Layout (little endian)::

    byte 0   opcode
    byte 1   field a   (destination register, or base register for stores)
    byte 2   field b   (source register 1, or NO_REG when unused)
    byte 3   field c   (source register 2, or NO_REG meaning "use imm")
    bytes 4-7  imm     (32-bit immediate / displacement / branch target)

ALU instructions take ``rd = b op (c or imm)``: when field ``c`` is
:data:`NO_REG` the second operand is the immediate.  Branches are strictly
reg-reg (``a`` vs ``b``) with the absolute target in ``imm``; the assembler
materializes immediates into the ``at`` register for immediate comparisons.
"""

import struct
from dataclasses import dataclass

from repro.errors import DecodeError
from repro.isa.opcodes import ALU_OPS, BRANCH_OPS, Op
from repro.isa.registers import NUM_REGS, reg_name

INSTR_SIZE = 8

#: Register-field sentinel: "no register here" / "second operand is imm".
NO_REG = 0xFF

_STRUCT = struct.Struct("<BBBBI")

_VALID_OPS = {int(op) for op in Op}


@dataclass(frozen=True)
class Instruction:
    """A decoded R32 instruction."""

    op: Op
    a: int = NO_REG
    b: int = NO_REG
    c: int = NO_REG
    imm: int = 0

    def uses_imm_operand(self):
        """True when an ALU op's second source operand is the immediate."""
        return self.op in ALU_OPS and self.c == NO_REG

    def text(self):
        """Render a human-readable disassembly of this instruction."""
        op = self.op
        name = op.name.lower()
        r = reg_name
        if op == Op.NOP or op == Op.HALT:
            return name
        if op == Op.MOV:
            return "%s %s, %s" % (name, r(self.a), r(self.b))
        if op == Op.MOVI:
            return "%s %s, 0x%x" % (name, r(self.a), self.imm)
        if op in (Op.LD8, Op.LD16, Op.LD32):
            return "%s %s, [%s%+d]" % (name, r(self.a), r(self.b), _sdisp(self.imm))
        if op in (Op.ST8, Op.ST16, Op.ST32):
            return "%s [%s%+d], %s" % (name, r(self.a), _sdisp(self.imm), r(self.b))
        if op == Op.PUSH:
            return "%s %s" % (name, r(self.a))
        if op == Op.POP:
            return "%s %s" % (name, r(self.a))
        if op in (Op.NOT, Op.NEG):
            return "%s %s, %s" % (name, r(self.a), r(self.b))
        if op in ALU_OPS:
            if self.c == NO_REG:
                return "%s %s, %s, 0x%x" % (name, r(self.a), r(self.b), self.imm)
            return "%s %s, %s, %s" % (name, r(self.a), r(self.b), r(self.c))
        if op in BRANCH_OPS:
            return "%s %s, %s, 0x%x" % (name, r(self.a), r(self.b), self.imm)
        if op == Op.JMP or op == Op.CALL:
            return "%s 0x%x" % (name, self.imm)
        if op == Op.JMPR or op == Op.CALLR:
            return "%s %s" % (name, r(self.a))
        if op == Op.RET:
            return "%s %d" % (name, self.imm)
        if op in (Op.IN8, Op.IN16, Op.IN32):
            return "%s %s, (%s%+d)" % (name, r(self.a), r(self.b), _sdisp(self.imm))
        if op in (Op.OUT8, Op.OUT16, Op.OUT32):
            return "%s (%s%+d), %s" % (name, r(self.a), _sdisp(self.imm), r(self.b))
        return "%s a=%d b=%d c=%d imm=0x%x" % (name, self.a, self.b, self.c, self.imm)


def _sdisp(imm):
    """Interpret a 32-bit immediate as a signed displacement for display."""
    return imm - (1 << 32) if imm >= (1 << 31) else imm


def encode(instr):
    """Encode an :class:`Instruction` to its 8-byte machine form."""
    return _STRUCT.pack(
        int(instr.op), instr.a & 0xFF, instr.b & 0xFF, instr.c & 0xFF,
        instr.imm & 0xFFFFFFFF,
    )


def decode(data, offset=0):
    """Decode one instruction from ``data`` at ``offset``.

    Raises :class:`~repro.errors.DecodeError` on truncated input or an
    unknown opcode -- the same condition that makes static disassembly of
    stripped binaries unreliable (paper section 2).
    """
    if len(data) - offset < INSTR_SIZE:
        raise DecodeError("truncated instruction at offset %d" % offset)
    opcode, a, b, c, imm = _STRUCT.unpack_from(data, offset)
    if opcode not in _VALID_OPS:
        raise DecodeError("invalid opcode 0x%02x at offset %d" % (opcode, offset))
    instr = Instruction(Op(opcode), a, b, c, imm)
    _validate_registers(instr, offset)
    return instr


def _validate_registers(instr, offset):
    op = instr.op
    fields = []
    if op in (Op.MOV,):
        fields = [instr.a, instr.b]
    elif op in (Op.MOVI, Op.PUSH, Op.POP, Op.JMPR, Op.CALLR):
        fields = [instr.a]
    elif op in (Op.LD8, Op.LD16, Op.LD32, Op.ST8, Op.ST16, Op.ST32,
                Op.IN8, Op.IN16, Op.IN32, Op.OUT8, Op.OUT16, Op.OUT32,
                Op.NOT, Op.NEG):
        fields = [instr.a, instr.b]
    elif op in ALU_OPS:
        fields = [instr.a, instr.b]
        if instr.c != NO_REG:
            fields.append(instr.c)
    elif op in BRANCH_OPS:
        fields = [instr.a, instr.b]
    for f in fields:
        if not 0 <= f < NUM_REGS:
            raise DecodeError(
                "register field out of range (%d) in %s at offset %d"
                % (f, op.name, offset))


def decode_stream(data, base=0):
    """Decode a whole code segment, yielding ``(address, Instruction)``.

    ``base`` is the virtual address of ``data[0]``; addresses in the yielded
    pairs are virtual.
    """
    for offset in range(0, len(data) - len(data) % INSTR_SIZE, INSTR_SIZE):
        yield base + offset, decode(data, offset)
