"""The R32 instruction set architecture.

R32 is the reproduction's stand-in for x86: a 32-bit, little-endian machine
with sixteen general-purpose registers, a fixed 8-byte instruction encoding,
compare-and-branch control flow, separate port-I/O instructions, and a
stack-based (stdcall-like) calling convention in which ``CALL`` pushes the
return address and ``RET n`` pops it and releases ``n`` bytes of arguments.

The binary drivers that RevNIC reverse engineers are assembled to R32 machine
code; the dynamic binary translator decodes R32 into the IR that is traced,
symbolically executed and finally synthesized back to C.
"""

from repro.isa.registers import (
    NUM_REGS,
    REG_AT,
    REG_FP,
    REG_NAMES,
    REG_RV,
    REG_SP,
    reg_name,
    reg_number,
)
from repro.isa.opcodes import (
    ALU_OPS,
    BRANCH_OPS,
    IN_OPS,
    LOAD_OPS,
    OUT_OPS,
    STORE_OPS,
    Op,
)
from repro.isa.encoding import (
    INSTR_SIZE,
    NO_REG,
    Instruction,
    decode,
    decode_stream,
    encode,
)

__all__ = [
    "NUM_REGS",
    "REG_AT",
    "REG_FP",
    "REG_NAMES",
    "REG_RV",
    "REG_SP",
    "reg_name",
    "reg_number",
    "ALU_OPS",
    "BRANCH_OPS",
    "IN_OPS",
    "LOAD_OPS",
    "OUT_OPS",
    "STORE_OPS",
    "Op",
    "INSTR_SIZE",
    "NO_REG",
    "Instruction",
    "decode",
    "decode_stream",
    "encode",
]
