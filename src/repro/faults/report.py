"""Resilience accounting: what the pipeline did to survive.

Every orchestrated campaign -- a pipeline warm-up, a validation matrix, a
fuzz run, a chaos schedule -- carries a :class:`ResilienceReport`: how
many retries, timeouts, worker crashes and garbage results the supervised
pool absorbed, what the store quarantined or recovered, which jobs
degraded from pool to serial, and per-stage wall clock.  Degradation
(parallel -> serial, retry -> fallback) is an explicit, observable control
decision here, never a silent ``except Exception``.

A :class:`FaultRecord` is the loud half of the chaos invariant: when the
pipeline cannot heal a fault it must fail with a *classified, replayable*
record -- the layer/kind/job plus the plan seed that reproduces it.
"""

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class FaultRecord:
    """One classified, replayable fault the pipeline could not absorb."""

    layer: str                  # 'worker' | 'store' | 'run' | 'pool'
    kind: str                   # fault kind or exception class name
    job: str = ""               # job label (driver name) or store key
    error: str = ""             # the classified error message
    seed: int = None            # fault-plan seed, when one was installed
    attempts: int = 0           # attempts consumed before giving up

    def to_dict(self):
        return {"layer": self.layer, "kind": self.kind, "job": self.job,
                "error": self.error, "seed": self.seed,
                "attempts": self.attempts}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


@dataclass
class ResilienceReport:
    """How one campaign survived: counters, events, per-stage wall clock."""

    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    garbage_results: int = 0
    run_faults: int = 0
    quarantined: int = 0
    recovered_tmp: int = 0
    evicted: int = 0
    #: explicit degradation decisions, in order: dicts with ``stage``,
    #: ``job`` and ``reason``
    degradations: list = field(default_factory=list)
    #: per-job provenance: label -> {"attempts", "outcome", "events"}
    jobs: dict = field(default_factory=dict)
    #: stage name -> cumulative wall seconds
    stage_seconds: dict = field(default_factory=dict)
    #: classified, replayable faults that survived every healing layer
    fault_records: list = field(default_factory=list)

    # ------------------------------------------------------------------

    def job_entry(self, label):
        return self.jobs.setdefault(label, {"attempts": 0,
                                            "outcome": "pending",
                                            "events": []})

    def record_attempt(self, label, attempt, event=None):
        entry = self.job_entry(label)
        entry["attempts"] = max(entry["attempts"], attempt)
        if event:
            entry["events"].append(event)
        if attempt > 1:
            self.retries += 1

    def record_outcome(self, label, outcome):
        self.job_entry(label)["outcome"] = outcome

    def record_degradation(self, stage, reason, job=""):
        self.degradations.append({"stage": stage, "job": job,
                                  "reason": reason})

    def record_fault(self, record):
        self.fault_records.append(record)

    @contextmanager
    def stage_timer(self, stage):
        started = time.monotonic()
        try:
            yield
        finally:
            self.stage_seconds[stage] = round(
                self.stage_seconds.get(stage, 0.0)
                + time.monotonic() - started, 6)

    def absorb_store(self, store):
        """Pull the store's robustness counters into this report."""
        self.quarantined += getattr(store, "quarantined", 0)
        self.recovered_tmp += getattr(store, "recovered", 0)
        self.evicted += getattr(store, "evicted", 0)

    def merge(self, other):
        """Fold ``other`` (a later stage's report) into this one."""
        for counter in ("retries", "timeouts", "worker_crashes",
                        "garbage_results", "run_faults", "quarantined",
                        "recovered_tmp", "evicted"):
            setattr(self, counter,
                    getattr(self, counter) + getattr(other, counter))
        self.degradations.extend(other.degradations)
        for label, entry in other.jobs.items():
            mine = self.job_entry(label)
            mine["attempts"] += entry["attempts"]
            mine["outcome"] = entry["outcome"]
            mine["events"].extend(entry["events"])
        for stage, seconds in other.stage_seconds.items():
            self.stage_seconds[stage] = round(
                self.stage_seconds.get(stage, 0.0) + seconds, 6)
        self.fault_records.extend(other.fault_records)
        return self

    # ------------------------------------------------------------------

    def healed(self):
        """Did every job end healthy (no unresolved fault records)?"""
        return not self.fault_records

    def to_dict(self):
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_crashes": self.worker_crashes,
            "garbage_results": self.garbage_results,
            "run_faults": self.run_faults,
            "quarantined": self.quarantined,
            "recovered_tmp": self.recovered_tmp,
            "evicted": self.evicted,
            "degradations": list(self.degradations),
            "jobs": {label: {"attempts": entry["attempts"],
                             "outcome": entry["outcome"],
                             "events": list(entry["events"])}
                     for label, entry in sorted(self.jobs.items())},
            "stage_seconds": dict(self.stage_seconds),
            "fault_records": [r.to_dict() for r in self.fault_records],
        }

    def scrubbed_dict(self):
        """``to_dict`` minus wall clocks -- the canonical-JSON-safe form."""
        data = self.to_dict()
        data["stage_seconds"] = {}
        return data
