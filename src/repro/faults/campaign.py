"""Chaos campaigns: prove the pipeline is loud-or-identical under fault.

A campaign composes the seeded fault plane (:mod:`repro.faults.plan`)
with the pipeline orchestrator and the differential fuzzer, and checks
the one invariant robustness hinges on: **under any injected fault
schedule the pipeline either produces byte-identical canonical artifacts
to the fault-free run, or fails loudly with a classified, replayable
fault record -- never a silent wrong answer.**

Per schedule: generate the :class:`FaultPlan` for a seed, stand up a
fresh artifact store (primed from a pristine copy when the plan carries
store-layer faults, cold otherwise), vandalize it per the plan, then
warm the driver corpus through the supervised pool with the plan's
worker/run faults installed.  A warm-up that completes must match the
fault-free baseline byte for byte (``canonical_json``); one that raises
must leave a :class:`~repro.faults.report.FaultRecord` behind.  Anything
else raises :class:`ChaosInvariantError` -- the campaign itself is the
assertion.

``fuzz_invariant`` runs the same bargain through the PR-6 differential
fuzzer: a seeded fuzz campaign executed under a worker-fault schedule
must produce ``canonical_fuzz_json`` bytes identical to its fault-free
twin.
"""

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.faults.inject import corrupt_store_entry
from repro.faults.plan import FaultPlan, FaultPlanGenerator
from repro.pipeline.artifact import canonical_json
from repro.pipeline.orchestrator import PipelineOrchestrator
from repro.pipeline.store import ArtifactStore


class ChaosInvariantError(ReproError):
    """The pipeline broke the chaos bargain: a fault schedule produced a
    silently wrong (or silently missing) answer instead of byte-identical
    artifacts or a loud classified failure."""


@dataclass
class ChaosOutcome:
    """What one fault schedule did to the pipeline -- and how it ended."""

    seed: int
    plan: dict                  # serialized FaultPlan (the replay key)
    verdict: str                # 'identical' | 'faulted'
    error: str = ""             # classified error text when 'faulted'
    fault_records: list = field(default_factory=list)
    resilience: dict = field(default_factory=dict)
    store_faults: list = field(default_factory=list)
    wall_seconds: float = 0.0

    def to_dict(self):
        return {"seed": self.seed, "plan": self.plan,
                "verdict": self.verdict, "error": self.error,
                "fault_records": list(self.fault_records),
                "resilience": dict(self.resilience),
                "store_faults": list(self.store_faults),
                "wall_seconds": round(self.wall_seconds, 3)}


@dataclass
class ChaosReport:
    """One campaign's outcomes, plus the fault-free baseline cost."""

    drivers: tuple
    strategy: str
    script: str
    outcomes: list = field(default_factory=list)
    baseline_seconds: float = 0.0
    wall_seconds: float = 0.0

    def summary(self):
        verdicts = [outcome.verdict for outcome in self.outcomes]
        return {"schedules": len(self.outcomes),
                "identical": verdicts.count("identical"),
                "faulted": verdicts.count("faulted"),
                "retries": sum(o.resilience.get("retries", 0)
                               for o in self.outcomes),
                "timeouts": sum(o.resilience.get("timeouts", 0)
                                for o in self.outcomes),
                "quarantined": sum(o.resilience.get("quarantined", 0)
                                   for o in self.outcomes),
                "recovered_tmp": sum(o.resilience.get("recovered_tmp", 0)
                                     for o in self.outcomes),
                "baseline_seconds": round(self.baseline_seconds, 3),
                "wall_seconds": round(self.wall_seconds, 3)}

    def to_dict(self):
        return {"drivers": list(self.drivers), "strategy": self.strategy,
                "script": self.script,
                "outcomes": [o.to_dict() for o in self.outcomes],
                "summary": self.summary()}


class ChaosCampaign:
    """Runs seeded fault schedules against the pipeline and asserts the
    loud-or-identical invariant on every one of them."""

    def __init__(self, drivers=None, strategy="coverage", script="quick",
                 generator=None, job_timeout=20.0, retries=2,
                 workdir=None):
        from repro.drivers import DRIVERS

        self.drivers = tuple(sorted(DRIVERS)) if drivers is None \
            else tuple(drivers)
        self.strategy = strategy
        self.script = script
        self.generator = generator or FaultPlanGenerator(
            jobs=len(self.drivers))
        #: per-job supervision budget; hang faults sleep far past this,
        #: so keep it small enough that a campaign stays affordable.
        self.job_timeout = job_timeout
        self.retries = retries
        self._workdir = workdir
        self._own_workdir = workdir is None
        self._baseline = None           # {driver: canonical_json bytes}
        self._baseline_seconds = None
        self._pristine_root = None      # fault-free store to prime from

    # ------------------------------------------------------------------

    def workdir(self):
        if self._workdir is None:
            self._workdir = tempfile.mkdtemp(prefix="chaos-")
        return self._workdir

    def cleanup(self):
        """Remove the campaign's scratch stores (owned tempdirs only)."""
        if self._own_workdir and self._workdir is not None:
            shutil.rmtree(self._workdir, ignore_errors=True)
            self._workdir = None
            self._pristine_root = None
            self._baseline = None

    def baseline(self):
        """Fault-free canonical artifacts (computed once, serially);
        also primes the pristine store that store-fault schedules copy."""
        if self._baseline is None:
            self._pristine_root = os.path.join(self.workdir(), "pristine")
            orchestrator = PipelineOrchestrator(
                store=ArtifactStore(self._pristine_root), parallel=False)
            started = time.monotonic()
            artifacts = orchestrator.warm(self.drivers, self.strategy,
                                          self.script, parallel=False)
            self._baseline_seconds = time.monotonic() - started
            self._baseline = {name: canonical_json(artifacts[name])
                              for name in self.drivers}
        return self._baseline

    # ------------------------------------------------------------------

    def fault_map(self, plan):
        """Resolve a plan's worker/run faults to driver names (first
        fault per driver wins; targets wrap around the sorted corpus)."""
        mapping = {}
        for spec in plan.faults:
            if spec.layer not in ("worker", "run"):
                continue
            driver = self.drivers[spec.target % len(self.drivers)]
            mapping.setdefault(driver, spec)
        return mapping

    def run_schedule(self, plan_or_seed):
        """Run one fault schedule; returns a :class:`ChaosOutcome`.

        Raises :class:`ChaosInvariantError` when the schedule produced a
        silent wrong answer (artifact bytes diverged from the fault-free
        baseline) or an unclassified failure (an exception with no
        replayable fault record behind it).
        """
        plan = plan_or_seed if isinstance(plan_or_seed, FaultPlan) \
            else self.generator.plan(plan_or_seed)
        baseline = self.baseline()
        started = time.monotonic()

        schedule_dir = tempfile.mkdtemp(prefix="seed%d-" % plan.seed,
                                        dir=self.workdir())
        store_root = os.path.join(schedule_dir, "store")
        store_faults = plan.layer("store")
        if store_faults:
            # Store faults need entries to corrupt: prime from the
            # pristine fault-free store, then vandalize per the plan.
            shutil.copytree(self._pristine_root, store_root)
        store = ArtifactStore(store_root)
        applied = []
        for spec in store_faults:
            record = corrupt_store_entry(store, spec)
            if record is not None:
                applied.append(record)

        orchestrator = PipelineOrchestrator(
            store=store, parallel=True, job_timeout=self.job_timeout,
            retries=self.retries)
        outcome = ChaosOutcome(seed=plan.seed, plan=plan.to_dict(),
                               verdict="identical",
                               store_faults=applied)
        try:
            artifacts = orchestrator.warm(self.drivers, self.strategy,
                                          self.script, parallel=True,
                                          faults=self.fault_map(plan))
        except ReproError as exc:
            report = orchestrator.last_resilience
            records = report.fault_records if report is not None else []
            if not records:
                raise ChaosInvariantError(
                    "schedule seed=%d failed without a classified fault "
                    "record: %s: %s (plan %s)"
                    % (plan.seed, type(exc).__name__, exc,
                       plan.to_json()))
            outcome.verdict = "faulted"
            outcome.error = "%s: %s" % (type(exc).__name__, exc)
            outcome.fault_records = [r.to_dict() for r in records]
        else:
            mismatched = [name for name in self.drivers
                          if canonical_json(artifacts[name])
                          != baseline[name]]
            if mismatched:
                raise ChaosInvariantError(
                    "SILENT WRONG ANSWER: schedule seed=%d completed but "
                    "artifacts diverged from the fault-free baseline for "
                    "%s (plan %s)"
                    % (plan.seed, ", ".join(mismatched), plan.to_json()))
        report = orchestrator.last_resilience
        if report is not None:
            outcome.resilience = report.to_dict()
        outcome.wall_seconds = time.monotonic() - started
        shutil.rmtree(schedule_dir, ignore_errors=True)
        return outcome

    def run(self, base_seed=0xFA0175, schedules=3, plans=None):
        """Run ``schedules`` seeded fault schedules (or explicit
        ``plans``); returns a :class:`ChaosReport`."""
        if plans is None:
            plans = self.generator.plans(base_seed, schedules)
        started = time.monotonic()
        self.baseline()
        report = ChaosReport(drivers=self.drivers, strategy=self.strategy,
                             script=self.script,
                             baseline_seconds=self._baseline_seconds)
        for plan in plans:
            report.outcomes.append(self.run_schedule(plan))
        report.wall_seconds = time.monotonic() - started
        return report

    # ------------------------------------------------------------------

    def fuzz_invariant(self, seed, **fuzz_kwargs):
        """Compose the fault plane with the differential fuzzer.

        Runs one small seeded fuzz campaign fault-free, then again under
        the worker-fault schedule for ``seed`` (same warm store, so the
        faults land on the fuzz columns themselves); the two campaigns
        must be canonically byte-identical.  Returns the chaos twin's
        outcome dict; raises :class:`ChaosInvariantError` on divergence.
        """
        from repro.fuzz.artifact import canonical_fuzz_json
        from repro.fuzz.engine import run_fuzz

        generator = FaultPlanGenerator(layers=("worker",),
                                       jobs=len(self.drivers))
        plan = generator.plan(seed)
        fuzz_kwargs.setdefault("drivers", self.drivers)
        fuzz_kwargs.setdefault("strategy", self.strategy)
        fuzz_kwargs.setdefault("script", self.script)
        # A bounded twin-campaign: the invariant is about surviving the
        # fault schedule, not about fuzz coverage depth.
        fuzz_kwargs.setdefault("programs_per_round", 2)
        fuzz_kwargs.setdefault("max_rounds", 2)
        fuzz_kwargs.setdefault("dry_rounds", 1)

        store_root = os.path.join(self.workdir(), "fuzz-store")
        baseline = run_fuzz(
            orchestrator=PipelineOrchestrator(
                store=ArtifactStore(store_root), parallel=False),
            parallel=False, **fuzz_kwargs)
        chaos_orchestrator = PipelineOrchestrator(
            store=ArtifactStore(store_root), parallel=True,
            job_timeout=self.job_timeout, retries=self.retries)
        chaos = run_fuzz(orchestrator=chaos_orchestrator, parallel=True,
                         faults=self.fault_map(plan), **fuzz_kwargs)
        if canonical_fuzz_json(chaos) != canonical_fuzz_json(baseline):
            raise ChaosInvariantError(
                "SILENT WRONG ANSWER: fuzz campaign under fault plan %s "
                "diverged from its fault-free twin" % plan.to_json())
        return {"seed": seed, "plan": plan.to_dict(),
                "resilience": chaos.resilience.to_dict()
                if chaos.resilience is not None else {},
                "summary": chaos.summary()}


def run_chaos(drivers=None, strategy="coverage", script="quick",
              base_seed=0xFA0175, schedules=3, **campaign_kwargs):
    """One-call entry point: run a chaos campaign and clean up after it."""
    campaign = ChaosCampaign(drivers=drivers, strategy=strategy,
                             script=script, **campaign_kwargs)
    try:
        return campaign.run(base_seed=base_seed, schedules=schedules)
    finally:
        campaign.cleanup()
