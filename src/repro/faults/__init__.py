"""Deterministic fault-injection plane and self-healing accounting.

RevNIC's claim is that synthesized drivers survive hostile conditions;
this package holds the pipeline itself to the same bar.  Three layers of
faults, all generated from a seed the way the fuzzer generates scenario
programs (same seed ==> byte-identical fault schedule):

* **worker** -- a pool worker is killed, hangs, or returns garbage;
* **store** -- an on-disk cache entry is truncated, bit-flipped, or a
  publish is crashed mid-``os.replace`` leaving an orphaned temp file;
* **run** -- ``execute_run`` raises an induced :class:`GuestOsError` or
  solver-budget exhaustion partway through the pipeline.

:mod:`repro.faults.plan` maps seeds to fault schedules,
:mod:`repro.faults.inject` applies them, and
:mod:`repro.faults.report` collects what the pipeline did to survive
(retries, timeouts, quarantines, degradations, per-stage wall clock).
The chaos campaign -- :mod:`repro.faults.campaign`, imported explicitly
because it sits on top of :mod:`repro.pipeline` -- asserts the invariant
that matters: under any injected schedule the pipeline either produces
byte-identical artifacts to the fault-free run or fails loudly with a
classified, replayable fault record.
"""

from repro.faults.plan import (
    FaultPlan,
    FaultPlanGenerator,
    FaultSpec,
    RUN_KINDS,
    STORE_KINDS,
    WORKER_KINDS,
)
from repro.faults.report import FaultRecord, ResilienceReport

__all__ = [
    "FaultPlan",
    "FaultPlanGenerator",
    "FaultSpec",
    "FaultRecord",
    "ResilienceReport",
    "RUN_KINDS",
    "STORE_KINDS",
    "WORKER_KINDS",
]
