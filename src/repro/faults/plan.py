"""Seeded, deterministic fault schedules.

A :class:`FaultPlan` is to chaos runs what a
:class:`~repro.net.traffic.ScenarioProgram` is to fuzz runs: the single
randomness boundary.  One seed maps to one plan through a private
``random.Random(seed)`` stream, the plan serializes canonically, and
everything downstream of the plan is deterministic -- so a chaos failure
report carries the serialized plan and replaying it reproduces the exact
fault schedule, byte for byte.

Fault targets are small integers resolved against the sorted job list
(worker/run layers) or the sorted key list (store layer) at injection
time, so a plan stays meaningful whatever corpus subset a campaign runs.
"""

import json
import random
from dataclasses import dataclass, field

#: Worker-level fault kinds: what a pool worker process does to us.
WORKER_KINDS = ("kill", "hang", "garbage")

#: Store-level fault kinds: what a hostile disk does to cache entries.
STORE_KINDS = ("truncate", "bitflip", "orphan_tmp", "partial_publish")

#: Run-level fault kinds: induced failures inside ``execute_run``.
RUN_KINDS = ("guest_os_error", "solver_budget")

#: ``attempts`` value meaning "fires on every attempt, including the
#: serial fallback" -- the plan wants a loud classified failure.
PERSISTENT = 99


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    ``attempts`` is how many consecutive attempts of the targeted job the
    fault fires on (worker/run layers); a transient fault (``attempts``
    below the retry budget) must be healed by retry or per-job fallback,
    a :data:`PERSISTENT` one must surface as a loud classified failure.
    """

    layer: str                  # 'worker' | 'store' | 'run'
    kind: str
    target: int = 0             # job ordinal (worker/run) or key ordinal (store)
    attempts: int = 1
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        kinds = {"worker": WORKER_KINDS, "store": STORE_KINDS,
                 "run": RUN_KINDS}.get(self.layer)
        if kinds is None:
            raise ValueError("unknown fault layer %r" % (self.layer,))
        if self.kind not in kinds:
            raise ValueError("unknown %s fault kind %r"
                             % (self.layer, self.kind))

    def fires_on(self, attempt):
        """Does this fault fire on 1-based ``attempt`` of its job?"""
        return attempt <= self.attempts

    def to_dict(self):
        return {"layer": self.layer, "kind": self.kind,
                "target": self.target, "attempts": self.attempts,
                "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data):
        return cls(layer=data["layer"], kind=data["kind"],
                   target=data["target"], attempts=data["attempts"],
                   params=dict(data["params"]))


@dataclass(frozen=True)
class FaultPlan:
    """One chaos schedule: the faults one campaign run injects."""

    seed: int
    faults: tuple = ()

    def layer(self, name):
        """The plan's faults for one layer, in schedule order."""
        return tuple(f for f in self.faults if f.layer == name)

    def to_dict(self):
        return {"seed": self.seed,
                "faults": [f.to_dict() for f in self.faults]}

    def to_json(self):
        """Canonical bytes: the replay key for this schedule."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data):
        return cls(seed=data["seed"],
                   faults=tuple(FaultSpec.from_dict(f)
                                for f in data["faults"]))

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))


def _gen_kill(rng):
    return {}


def _gen_hang(rng):
    # Sleep far past any sane job timeout: the supervisor must kill us.
    return {"seconds": rng.choice((600, 3600))}


def _gen_garbage(rng):
    return {"payload": rng.choice((
        "{\"truncated\": tru",              # cut-off JSON
        "not json at all",
        "{\"schema\": -1, \"driver\": null}",  # decodes, wrong shape
        "",
    ))}


def _gen_truncate(rng):
    return {"keep_fraction": rng.choice((0.0, 0.25, 0.5, 0.9))}


def _gen_bitflip(rng):
    return {"salt": rng.randrange(1 << 30)}


def _gen_orphan_tmp(rng):
    return {"salt": rng.randrange(1 << 30)}


def _gen_partial_publish(rng):
    return {"salt": rng.randrange(1 << 30)}


def _gen_guest_os_error(rng):
    return {"stage": rng.choice(("revnic", "synthesize"))}


def _gen_solver_budget(rng):
    return {"stage": "revnic"}


_PARAM_GENERATORS = {
    "kill": _gen_kill,
    "hang": _gen_hang,
    "garbage": _gen_garbage,
    "truncate": _gen_truncate,
    "bitflip": _gen_bitflip,
    "orphan_tmp": _gen_orphan_tmp,
    "partial_publish": _gen_partial_publish,
    "guest_os_error": _gen_guest_os_error,
    "solver_budget": _gen_solver_budget,
}

_LAYER_KINDS = {"worker": WORKER_KINDS, "store": STORE_KINDS,
                "run": RUN_KINDS}


class FaultPlanGenerator:
    """Maps seeds to fault plans, deterministically.

    ``plan(seed)`` is a pure function (same discipline as
    :class:`~repro.fuzz.generate.ProgramGenerator`): two generators in two
    processes produce byte-identical ``to_json()`` output for the same
    seed.  Worker faults are always transient (the retry/fallback path
    must heal them); run faults are occasionally :data:`PERSISTENT` so
    campaigns also exercise the loud-failure half of the invariant.
    """

    def __init__(self, layers=("worker", "store", "run"), min_faults=1,
                 max_faults=3, jobs=4, persistent_run_faults=True):
        for layer in layers:
            if layer not in _LAYER_KINDS:
                raise ValueError("unknown fault layer %r" % (layer,))
        if not 1 <= min_faults <= max_faults:
            raise ValueError("bad fault count bounds [%d, %d]"
                             % (min_faults, max_faults))
        self.layers = tuple(layers)
        self.min_faults = min_faults
        self.max_faults = max_faults
        self.jobs = jobs
        self.persistent_run_faults = persistent_run_faults

    def plan(self, seed):
        """The :class:`FaultPlan` for ``seed``."""
        rng = random.Random(seed)
        count = rng.randint(self.min_faults, self.max_faults)
        faults = []
        for _ in range(count):
            layer = rng.choice(self.layers)
            kind = rng.choice(_LAYER_KINDS[layer])
            params = _PARAM_GENERATORS[kind](rng)
            attempts = 1
            if layer == "worker":
                attempts = rng.choice((1, 1, 2))
            elif layer == "run":
                attempts = rng.choice((1, 1, 2))
                if self.persistent_run_faults and rng.random() < 0.25:
                    attempts = PERSISTENT
            faults.append(FaultSpec(layer=layer, kind=kind,
                                    target=rng.randrange(self.jobs),
                                    attempts=attempts, params=params))
        return FaultPlan(seed=seed, faults=tuple(faults))

    def plans(self, base_seed, count):
        """``count`` plans for consecutive seeds from ``base_seed``."""
        return [self.plan(base_seed + i) for i in range(count)]
