"""Applying fault schedules: the mechanics of breaking things on purpose.

Three entry points, one per layer:

* :func:`apply_worker_fault` runs inside a supervised pool child, before
  the real worker: it kills the process, hangs it past the supervisor's
  job timeout, or substitutes a garbage payload;
* :func:`maybe_raise_run_fault` is consulted by
  :func:`repro.pipeline.orchestrator.execute_run` between pipeline
  stages: it raises the induced, classified exception
  (:class:`GuestOsError` / :class:`SolverError`) the schedule asks for;
* :func:`corrupt_store_entry` vandalizes an on-disk
  :class:`~repro.pipeline.store.ArtifactStore` deterministically --
  truncation, a single flipped bit, an orphaned temp file, or a publish
  crashed mid-``os.replace``.

Everything here is deterministic given the fault spec and the store
contents; nothing reads a clock or an unseeded RNG.
"""

import os
import time

from repro.errors import GuestOsError, SolverError

#: Exit code a kill-faulted worker dies with (distinguishable from a
#: Python traceback exit in the supervisor's accounting).
KILL_EXIT_CODE = 113

#: Fallback sleep for hang faults that carry no explicit duration.
DEFAULT_HANG_SECONDS = 3600.0

#: Payload substituted by garbage faults that carry no explicit payload.
DEFAULT_GARBAGE = "{\"garbage\": tru"


def _spec_dict(fault):
    """Accept either a FaultSpec or its dict form (specs cross process
    boundaries as dicts)."""
    return fault.to_dict() if hasattr(fault, "to_dict") else fault


def apply_worker_fault(conn, fault):
    """Apply a worker-layer fault inside a pool child.

    Returns True when the fault consumed the attempt (the caller must not
    run the real worker); kill faults never return at all.
    """
    fault = _spec_dict(fault)
    if fault is None or fault.get("layer") != "worker":
        return False
    kind = fault["kind"]
    params = fault.get("params", {})
    if kind == "kill":
        os._exit(KILL_EXIT_CODE)
    if kind == "hang":
        time.sleep(params.get("seconds", DEFAULT_HANG_SECONDS))
        # A hang that outlives the supervisor's patience is killed before
        # reaching here; if the timeout was generous, die quietly so the
        # attempt still reads as a crash, never as a silent success.
        os._exit(KILL_EXIT_CODE)
    if kind == "garbage":
        conn.send(("ok", params.get("payload", DEFAULT_GARBAGE)))
        return True
    raise ValueError("unknown worker fault kind %r" % (kind,))


def maybe_raise_run_fault(fault, stage):
    """Raise the induced run-layer exception when ``fault`` targets
    ``stage`` (called between pipeline stages in ``execute_run``)."""
    fault = _spec_dict(fault)
    if fault is None or fault.get("layer") != "run":
        return
    params = fault.get("params", {})
    if params.get("stage", "revnic") != stage:
        return
    kind = fault["kind"]
    if kind == "guest_os_error":
        raise GuestOsError("injected fault: guest OS failure during %s"
                           % stage)
    if kind == "solver_budget":
        raise SolverError("injected fault: solver budget exhausted "
                          "during %s" % stage)
    raise ValueError("unknown run fault kind %r" % (kind,))


def corrupt_store_entry(store, fault):
    """Apply a store-layer fault to one entry of ``store``.

    The target entry is ``sorted(keys)[target % len(keys)]`` -- stable
    for a given store state.  Returns a record dict describing what was
    done (``None`` when the store is empty and there is nothing to
    corrupt).
    """
    fault = _spec_dict(fault)
    if fault is None or fault.get("layer") != "store":
        return None
    keys = store.keys()
    kind = fault["kind"]
    params = fault.get("params", {})
    salt = params.get("salt", 0)
    if not keys:
        return None
    key = keys[fault.get("target", 0) % len(keys)]
    path = store.path_for(key)
    with open(path, "rb") as handle:
        original = handle.read()
    record = {"kind": kind, "key": key}

    if kind == "truncate":
        keep = int(len(original) * params.get("keep_fraction", 0.5))
        with open(path, "wb") as handle:
            handle.write(original[:keep])
        record["kept_bytes"] = keep
    elif kind == "bitflip":
        if original:
            offset = salt % len(original)
            flipped = bytearray(original)
            flipped[offset] ^= 1 << (salt % 8)
            with open(path, "wb") as handle:
                handle.write(bytes(flipped))
            record["offset"] = offset
    elif kind == "orphan_tmp":
        # A writer that died after writing its temp file but before
        # os.replace: the entry itself is intact, the orphan must be
        # swept by ArtifactStore.recover().
        tmp_path = os.path.join(store.root, "crash-%08x.tmp" % (salt,))
        with open(tmp_path, "wb") as handle:
            handle.write(original[:max(1, len(original) // 2)])
        record["orphan"] = os.path.basename(tmp_path)
    elif kind == "partial_publish":
        # A publish crashed mid-flight: the temp file holds the full
        # payload but the rename never landed, and the destination is
        # gone (first publish of this key).  Load must miss cleanly and
        # recovery must sweep the orphan.
        tmp_path = os.path.join(store.root, "crash-%08x.tmp" % (salt,))
        os.replace(path, tmp_path)
        record["orphan"] = os.path.basename(tmp_path)
    else:
        raise ValueError("unknown store fault kind %r" % (kind,))
    return record
