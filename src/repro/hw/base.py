"""Shared machinery for NIC device models."""

from dataclasses import dataclass

from repro.net.ethernet import BROADCAST_MAC, is_multicast
from repro.net.crc import crc32_ethernet


@dataclass(frozen=True)
class PciDescriptor:
    """The PCI configuration-space summary of a device.

    This is exactly the information the paper says the developer obtains
    from the Windows device manager and passes to RevNIC on the command
    line (section 3.4): vendor/product identifiers, I/O ranges and the
    interrupt line.  The shell symbolic device is constructed from one of
    these.
    """

    vendor_id: int
    device_id: int
    io_base: int = 0
    io_size: int = 0
    mmio_base: int = 0
    mmio_size: int = 0
    irq_line: int = 0

    @property
    def uses_mmio(self):
        return self.mmio_size > 0


class NicDevice:
    """Base class for NIC models.

    Subclasses implement the register interface (``io_read``/``io_write``
    and/or ``mmio_read``/``mmio_write``) and the RX path
    (:meth:`receive_frame`).  This base provides the wire side, interrupt
    plumbing, address filtering and feature-observability used by the
    Table 2 functional checks.
    """

    #: Subclasses override with their PCI identity.
    PCI = PciDescriptor(vendor_id=0, device_id=0)

    def __init__(self, mac, medium=None, irq_callback=None, bus=None):
        if len(mac) != 6:
            raise ValueError("MAC must be 6 bytes")
        self.mac = bytearray(mac)
        self.medium = medium
        self.irq_callback = irq_callback
        #: DMA port into guest memory (set for bus-master devices).
        self.bus = bus
        self.promiscuous = False
        self.rx_enabled = False
        self.tx_enabled = False
        self.full_duplex = False
        self.wol_enabled = False
        self.led_state = 0
        self.multicast_hash = bytearray(8)
        self.stats = {"tx_frames": 0, "rx_frames": 0, "rx_dropped": 0,
                      "tx_bytes": 0, "rx_bytes": 0}

    # ------------------------------------------------------------------
    # Interrupts

    def raise_interrupt(self):
        """Assert the device's interrupt line."""
        if self.irq_callback is not None:
            self.irq_callback()

    # ------------------------------------------------------------------
    # Wire side

    def transmit(self, frame_bytes):
        """Put a frame on the medium and account for it."""
        self.stats["tx_frames"] += 1
        self.stats["tx_bytes"] += len(frame_bytes)
        if self.medium is not None:
            self.medium.transmit(frame_bytes)

    def accepts(self, frame_bytes):
        """Destination-address filter shared by all models."""
        if not self.rx_enabled:
            return False
        if self.promiscuous:
            return True
        dst = frame_bytes[0:6]
        if dst == bytes(self.mac):
            return True
        if dst == BROADCAST_MAC:
            return True
        if is_multicast(dst):
            return self._multicast_match(dst)
        return False

    def _multicast_match(self, dst):
        """64-bin CRC hash filter (the classic Ethernet scheme)."""
        index = crc32_ethernet(dst) >> 26
        return bool(self.multicast_hash[index >> 3] & (1 << (index & 7)))

    def receive_frame(self, frame_bytes):
        """Deliver a frame from the medium into the device (RX path)."""
        raise NotImplementedError

    def reset(self):
        """Soft-reset device state."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Register interface defaults (subclasses override the ones they use)

    def io_read(self, offset, width):
        raise NotImplementedError

    def io_write(self, offset, width, value):
        raise NotImplementedError

    def mmio_read(self, offset, width):
        raise NotImplementedError

    def mmio_write(self, offset, width, value):
        raise NotImplementedError


def mask_width(value, width):
    """Truncate ``value`` to ``width`` bytes."""
    return value & ((1 << (8 * width)) - 1)
