"""Realtek RTL8139 device model.

Programming style: **bus-master DMA** -- four TX descriptor slots whose
buffers the device fetches from guest memory, and an RX ring written by the
device directly into guest memory.  Also carries the feature set Table 2
checks for this chip: Wake-on-LAN (Config3 magic-packet bit), LED control
(Config1) and full duplex (BMCR).

Register map (port I/O, 0x100 bytes):

====== =================================================
0x00   IDR0-5: station MAC (byte access, writable)
0x08   MAR0-7: multicast hash
0x10   TSD0-3 (u32 x4): tx status/size; writing size starts DMA
       bits: size in 0..12, OWN=0x2000 (cleared on write=DMA pending),
       TOK=0x8000 set by device when sent
0x20   TSAD0-3 (u32 x4): tx buffer physical addresses
0x30   RBSTART (u32): rx ring physical base
0x37   CR (u8): RST=0x10 RE=0x08 TE=0x04 BUFE=0x01(ro)
0x38   CAPR (u16): driver read pointer minus 0x10
0x3A   CBR (u16, ro): device write pointer
0x3C   IMR (u16)   0x3E ISR (u16, write-1-clear): ROK=0x01 TOK=0x04
0x44   RCR (u32): AAP=0x01(promisc) APM=0x02 AM=0x04 AB=0x08
0x50   Cfg9346 (u8): 0xC0 unlocks config registers
0x52   Config1 (u8): LED mode in bits 6-7
0x59   Config3 (u8): MAGIC=0x20 enables Wake-on-LAN
0x64   BMCR (u16): FDX=0x0100, SPEED100=0x2000
====== =================================================

RX ring format (classic 8139): per packet a 4-byte header -- u16 status
(ROK=0x01), u16 length (frame + 4 FCS bytes) -- then the frame, padded to a
4-byte boundary.
"""

from repro.hw.base import NicDevice, PciDescriptor, mask_width

RX_RING_SIZE = 8192 + 16

#: The ring wraps to offset 0 once the write pointer passes this threshold,
#: guaranteeing each record is contiguous.  The driver applies the same
#: rule, so both sides stay in lockstep deterministically.
RX_WRAP_THRESHOLD = RX_RING_SIZE - 2048

# CR bits
CR_BUFE = 0x01
CR_TE = 0x04
CR_RE = 0x08
CR_RST = 0x10

# ISR bits
ISR_ROK = 0x01
ISR_TOK = 0x04

# TSD bits
TSD_SIZE_MASK = 0x1FFF
TSD_OWN = 0x2000
TSD_TOK = 0x8000

# RCR bits
RCR_AAP = 0x01
RCR_APM = 0x02
RCR_AM = 0x04
RCR_AB = 0x08

# Config
CFG9346_UNLOCK = 0xC0
CONFIG3_MAGIC = 0x20
BMCR_FDX = 0x0100


class Rtl8139Device(NicDevice):
    """Behavioural RTL8139 model (DMA-capable)."""

    PCI = PciDescriptor(vendor_id=0x10EC, device_id=0x8139,
                        io_base=0xC000, io_size=0x100, irq_line=11)

    NUM_TX_SLOTS = 4

    def __init__(self, mac, **kwargs):
        super().__init__(mac, **kwargs)
        self.idr = bytearray(mac)
        self.tsd = [TSD_OWN] * self.NUM_TX_SLOTS
        self.tsad = [0] * self.NUM_TX_SLOTS
        self.rbstart = 0
        self.cr = CR_BUFE
        self.capr = 0xFFF0
        self.cbr = 0
        self.imr = 0
        self.isr = 0
        self.rcr = 0
        self.tcr = 0
        self.cfg9346 = 0
        self.config1 = 0
        self.config3 = 0
        self.bmcr = 0x2000
        self._rx_offset = 0

    # ------------------------------------------------------------------

    def reset(self):
        self.cr = CR_BUFE
        self.isr = 0
        self.imr = 0
        self.capr = 0xFFF0
        self.cbr = 0
        self._rx_offset = 0
        self.tsd = [TSD_OWN] * self.NUM_TX_SLOTS
        self.rx_enabled = False
        self.tx_enabled = False

    def _update_irq(self):
        if self.isr & self.imr:
            self.raise_interrupt()

    # ------------------------------------------------------------------
    # Register access

    def io_read(self, offset, width):
        if 0x00 <= offset < 0x06:
            return self._read_bytes(self.idr, offset, width)
        if 0x08 <= offset < 0x10:
            return self._read_bytes(self.multicast_hash, offset - 0x08, width)
        if 0x10 <= offset < 0x20 and width == 4:
            return self.tsd[(offset - 0x10) // 4]
        if 0x20 <= offset < 0x30 and width == 4:
            return self.tsad[(offset - 0x20) // 4]
        value = {
            0x30: self.rbstart,
            0x37: self.cr,
            0x38: self.capr,
            0x3A: self.cbr,
            0x3C: self.imr,
            0x3E: self.isr,
            0x44: self.rcr,
            0x40: self.tcr,
            0x50: self.cfg9346,
            0x52: self.config1,
            0x59: self.config3,
            0x64: self.bmcr,
        }.get(offset, 0)
        return mask_width(value, width)

    def io_write(self, offset, width, value):
        value = mask_width(value, width)
        if 0x00 <= offset < 0x06:
            self._write_bytes(self.idr, offset, width, value)
            self.mac[:] = self.idr
            return
        if 0x08 <= offset < 0x10:
            self._write_bytes(self.multicast_hash, offset - 0x08, width, value)
            return
        if 0x10 <= offset < 0x20 and width == 4:
            self._write_tsd((offset - 0x10) // 4, value)
            return
        if 0x20 <= offset < 0x30 and width == 4:
            self.tsad[(offset - 0x20) // 4] = value
            return
        if offset == 0x30:
            self.rbstart = value
        elif offset == 0x37:
            self._write_cr(value)
        elif offset == 0x38:
            self.capr = value & 0xFFFF
        elif offset == 0x3C:
            self.imr = value & 0xFFFF
            self._update_irq()
        elif offset == 0x3E:
            self.isr &= ~value  # write-1-to-clear
        elif offset == 0x40:
            self.tcr = value
        elif offset == 0x44:
            self.rcr = value
            self.promiscuous = bool(value & RCR_AAP)
        elif offset == 0x50:
            self.cfg9346 = value
        elif offset == 0x52:
            if self.cfg9346 == CFG9346_UNLOCK:
                self.config1 = value
                self.led_state = (value >> 6) & 0x3
        elif offset == 0x59:
            if self.cfg9346 == CFG9346_UNLOCK:
                self.config3 = value
                self.wol_enabled = bool(value & CONFIG3_MAGIC)
        elif offset == 0x64:
            self.bmcr = value
            self.full_duplex = bool(value & BMCR_FDX)

    @staticmethod
    def _read_bytes(buf, offset, width):
        value = 0
        for i in range(width):
            if offset + i < len(buf):
                value |= buf[offset + i] << (8 * i)
        return value

    @staticmethod
    def _write_bytes(buf, offset, width, value):
        for i in range(width):
            if offset + i < len(buf):
                buf[offset + i] = (value >> (8 * i)) & 0xFF

    def _write_cr(self, value):
        if value & CR_RST:
            self.reset()
            return
        self.cr = (value & ~CR_BUFE) | (self.cr & CR_BUFE)
        self.rx_enabled = bool(value & CR_RE)
        self.tx_enabled = bool(value & CR_TE)

    # ------------------------------------------------------------------
    # TX path (bus-master: device fetches the buffer via DMA)

    def _write_tsd(self, slot, value):
        size = value & TSD_SIZE_MASK
        self.tsd[slot] = value & ~(TSD_OWN | TSD_TOK)
        if not self.tx_enabled or self.bus is None:
            return
        frame = self.bus.dma_read(self.tsad[slot], size)
        self.transmit(frame)
        self.tsd[slot] |= TSD_OWN | TSD_TOK
        self.isr |= ISR_TOK
        self._update_irq()

    # ------------------------------------------------------------------
    # RX path (device writes the ring in guest memory)

    def receive_frame(self, frame_bytes):
        if not self.accepts(frame_bytes):
            self.stats["rx_dropped"] += 1
            return
        if self.bus is None or self.rbstart == 0:
            self.stats["rx_dropped"] += 1
            return
        length = len(frame_bytes) + 4  # device counts the FCS
        header = (0x0001).to_bytes(2, "little") + length.to_bytes(2, "little")
        # The chip stores the frame followed by the 4 FCS bytes (modeled as
        # zeros); drivers compute the next-record offset from the length
        # field, which includes them.
        record = header + frame_bytes + b"\0\0\0\0"
        pad = (-len(record)) % 4
        record += b"\0" * pad
        self.bus.dma_write(self.rbstart + self._rx_offset, record)
        self._rx_offset += len(record)
        if self._rx_offset > RX_WRAP_THRESHOLD:
            self._rx_offset = 0
        self.cbr = self._rx_offset
        self.cr &= ~CR_BUFE
        self.stats["rx_frames"] += 1
        self.stats["rx_bytes"] += len(frame_bytes)
        self.isr |= ISR_ROK
        self._update_irq()
