"""SMSC 91C111 device model (the embedded/FPGA NIC of the paper).

Programming style: **bank-switched registers over MMIO** with on-chip
packet memory managed by an MMU (allocate / release commands) and TX/RX
FIFOs.  No bus mastering -- the CPU copies every byte through the DATA
window, which is why Figure 5 shows 20-30% of CPU time spent inside the
driver on the FPGA platform.

Register file (MMIO, 16 bytes visible per bank; bank select at 0x0E):

Bank 0: 0x00 TCR (TXENA=0x0001, FDUPLX=0x0800)
        0x04 RCR (PRMS=0x0002, ALMUL=0x0004, RXEN=0x0100, SOFT_RST=0x8000)
        0x08 MIR (free packet-memory, read-only)
        0x0A RPCR (LED config: LEDA bits 0-2, LEDB bits 3-5)
Bank 1: 0x04..0x09 IAR0-5 (station MAC)
        0x0C CONTROL
Bank 2: 0x00 MMU_CMD: ALLOC=0x20, RESET=0x40, REMOVE_RELEASE=0x70,
                      RELEASE_PKT=0x80, ENQUEUE_TX=0xC0
        0x02 PNR (u8, packet number for pointer ops)
        0x03 ARR (u8, allocation result; FAILED=0x80)
        0x04 FIFO (u8 lo: tx-done fifo head, u8 hi at 0x05: rx fifo head;
                   EMPTY=0x80)
        0x06 POINTER (u16: offset | RCV=0x8000 | AUTO_INCR=0x4000)
        0x08 DATA (byte/halfword/word window into packet memory)
        0x0C INT_STATUS (u8: RCV=0x01 TX=0x02 ALLOC=0x08, write-1-clear
                         for TX; RCV clears when rx fifo empties)
        0x0D INT_MASK (u8)
Bank 3: 0x00..0x07 MCAST table (multicast hash)
        0x0A REVISION (read-only 0x91)

Packet format in packet memory (same as the real chip): u16 status,
u16 byte count, payload, u16 control word at the end.
"""

from repro.hw.base import NicDevice, PciDescriptor, mask_width

NUM_PACKETS = 16
PACKET_SIZE = 2048

# Bank 0
TCR_TXENA = 0x0001
TCR_FDUPLX = 0x0800
RCR_PRMS = 0x0002
RCR_ALMUL = 0x0004
RCR_RXEN = 0x0100
RCR_SOFT_RST = 0x8000

# Bank 2 MMU commands
MMU_ALLOC = 0x20
MMU_RESET = 0x40
MMU_REMOVE_RELEASE = 0x70
MMU_RELEASE_PKT = 0x80
MMU_ENQUEUE_TX = 0xC0

ARR_FAILED = 0x80
FIFO_EMPTY = 0x80

PTR_AUTO_INCR = 0x4000
PTR_RCV = 0x8000

INT_RCV = 0x01
INT_TX = 0x02
INT_ALLOC = 0x08

REG_BANK_SELECT = 0x0E


class Smc91c111Device(NicDevice):
    """Behavioural SMSC 91C111 model (FIFO + on-chip packet memory)."""

    PCI = PciDescriptor(vendor_id=0x0000, device_id=0x9111,
                        mmio_base=0xD000_0000, mmio_size=0x100, irq_line=6)

    def __init__(self, mac, **kwargs):
        super().__init__(mac, **kwargs)
        self.bank = 0
        self.tcr = 0
        self.rcr = 0
        self.rpcr = 0
        self.control = 0
        self.pointer = 0
        self.pnr = 0
        self.arr = ARR_FAILED
        self.int_status = 0
        self.int_mask = 0
        self.packet_mem = bytearray(NUM_PACKETS * PACKET_SIZE)
        self.free_packets = list(range(NUM_PACKETS))
        self.tx_done_fifo = []
        self.rx_fifo = []
        self._ptr_cursor = 0

    # ------------------------------------------------------------------

    def reset(self):
        self.bank = 0
        self.tcr = 0
        self.rcr = 0
        self.int_status = 0
        self.int_mask = 0
        self.free_packets = list(range(NUM_PACKETS))
        self.tx_done_fifo = []
        self.rx_fifo = []
        self.rx_enabled = False
        self.tx_enabled = False

    def _update_irq(self):
        if self.int_status & self.int_mask:
            self.raise_interrupt()

    # ------------------------------------------------------------------
    # MMIO access

    def mmio_read(self, offset, width):
        if offset == REG_BANK_SELECT:
            return mask_width(0x3300 | self.bank, width)
        handler = getattr(self, "_read_bank%d" % self.bank)
        return mask_width(handler(offset, width), width)

    def mmio_write(self, offset, width, value):
        value = mask_width(value, width)
        if offset == REG_BANK_SELECT:
            self.bank = value & 0x7
            return
        handler = getattr(self, "_write_bank%d" % self.bank)
        handler(offset, width, value)

    # Bank 0 ------------------------------------------------------------

    def _read_bank0(self, offset, width):
        return {
            0x00: self.tcr,
            0x04: self.rcr,
            0x08: len(self.free_packets) * (PACKET_SIZE // 256),
            0x0A: self.rpcr,
        }.get(offset, 0)

    def _write_bank0(self, offset, width, value):
        if offset == 0x00:
            self.tcr = value
            self.tx_enabled = bool(value & TCR_TXENA)
            self.full_duplex = bool(value & TCR_FDUPLX)
        elif offset == 0x04:
            if value & RCR_SOFT_RST:
                self.reset()
                return
            self.rcr = value
            self.rx_enabled = bool(value & RCR_RXEN)
            self.promiscuous = bool(value & RCR_PRMS)
        elif offset == 0x0A:
            self.rpcr = value
            self.led_state = value & 0x3F

    # Bank 1 ------------------------------------------------------------

    def _read_bank1(self, offset, width):
        if 0x04 <= offset < 0x0A:
            value = 0
            for i in range(width):
                index = offset - 0x04 + i
                if index < 6:
                    value |= self.mac[index] << (8 * i)
            return value
        if offset == 0x0C:
            return self.control
        return 0

    def _write_bank1(self, offset, width, value):
        if 0x04 <= offset < 0x0A:
            for i in range(width):
                index = offset - 0x04 + i
                if index < 6:
                    self.mac[index] = (value >> (8 * i)) & 0xFF
        elif offset == 0x0C:
            self.control = value

    # Bank 2 ------------------------------------------------------------

    def _read_bank2(self, offset, width):
        if offset == 0x02:
            value = self.pnr | (self.arr << 8)
            return value
        if offset == 0x03:
            return self.arr
        if offset == 0x04:
            lo = self.tx_done_fifo[0] if self.tx_done_fifo else FIFO_EMPTY
            hi = self.rx_fifo[0] if self.rx_fifo else FIFO_EMPTY
            return lo | (hi << 8)
        if offset == 0x05:
            return self.rx_fifo[0] if self.rx_fifo else FIFO_EMPTY
        if offset == 0x06:
            return self.pointer
        if offset == 0x08 or offset == 0x0A:
            return self._data_read(width)
        if offset == 0x0C:
            return self.int_status
        if offset == 0x0D:
            return self.int_mask
        return 0

    def _write_bank2(self, offset, width, value):
        if offset == 0x00:
            self._mmu_command(value & 0xFF)
        elif offset == 0x02:
            self.pnr = value & 0x3F
        elif offset == 0x06:
            self.pointer = value
            self._ptr_cursor = value & 0x07FF
        elif offset == 0x08 or offset == 0x0A:
            self._data_write(width, value)
        elif offset == 0x0C:
            # TX/ALLOC bits are write-1-to-clear; RCV tracks the fifo.
            self.int_status &= ~(value & (INT_TX | INT_ALLOC))
        elif offset == 0x0D:
            self.int_mask = value & 0xFF
            self._update_irq()

    # Bank 3 ------------------------------------------------------------

    def _read_bank3(self, offset, width):
        if 0x00 <= offset < 0x08:
            value = 0
            for i in range(width):
                if offset + i < 8:
                    value |= self.multicast_hash[offset + i] << (8 * i)
            return value
        if offset == 0x0A:
            return 0x0091
        return 0

    def _write_bank3(self, offset, width, value):
        if 0x00 <= offset < 0x08:
            for i in range(width):
                if offset + i < 8:
                    self.multicast_hash[offset + i] = (value >> (8 * i)) & 0xFF

    # ------------------------------------------------------------------
    # Packet memory access through the POINTER/DATA window

    def _target_packet(self):
        if self.pointer & PTR_RCV:
            return self.rx_fifo[0] if self.rx_fifo else None
        return self.pnr

    def _data_read(self, width):
        packet = self._target_packet()
        if packet is None:
            return 0
        base = packet * PACKET_SIZE
        value = 0
        for i in range(width):
            value |= self.packet_mem[base + (self._ptr_cursor + i) % PACKET_SIZE] << (8 * i)
        if self.pointer & PTR_AUTO_INCR:
            self._ptr_cursor = (self._ptr_cursor + width) % PACKET_SIZE
        return value

    def _data_write(self, width, value):
        packet = self._target_packet()
        if packet is None:
            return
        base = packet * PACKET_SIZE
        for i in range(width):
            self.packet_mem[base + (self._ptr_cursor + i) % PACKET_SIZE] = \
                (value >> (8 * i)) & 0xFF
        if self.pointer & PTR_AUTO_INCR:
            self._ptr_cursor = (self._ptr_cursor + width) % PACKET_SIZE

    # ------------------------------------------------------------------
    # MMU commands

    def _mmu_command(self, command):
        if command == MMU_ALLOC:
            if self.free_packets:
                self.arr = self.free_packets.pop(0)
                self.int_status |= INT_ALLOC
            else:
                self.arr = ARR_FAILED
            self._update_irq()
        elif command == MMU_RESET:
            self.reset()
        elif command == MMU_REMOVE_RELEASE:
            if self.rx_fifo:
                packet = self.rx_fifo.pop(0)
                self.free_packets.append(packet)
            if not self.rx_fifo:
                self.int_status &= ~INT_RCV
        elif command == MMU_RELEASE_PKT:
            if self.pnr not in self.free_packets:
                self.free_packets.append(self.pnr)
        elif command == MMU_ENQUEUE_TX:
            self._do_transmit(self.pnr)

    def _do_transmit(self, packet):
        if not self.tx_enabled:
            return
        base = packet * PACKET_SIZE
        count = int.from_bytes(self.packet_mem[base + 2:base + 4], "little")
        count &= 0x7FF
        frame = bytes(self.packet_mem[base + 4:base + 4 + count - 6])
        self.transmit(frame)
        self.tx_done_fifo.append(packet)
        self.int_status |= INT_TX
        self._update_irq()

    # ------------------------------------------------------------------
    # RX path

    def receive_frame(self, frame_bytes):
        if not self.accepts(frame_bytes):
            self.stats["rx_dropped"] += 1
            return
        if not self.free_packets:
            self.stats["rx_dropped"] += 1
            return
        packet = self.free_packets.pop(0)
        base = packet * PACKET_SIZE
        count = len(frame_bytes) + 6  # status + count + control words
        self.packet_mem[base:base + 2] = (0).to_bytes(2, "little")
        self.packet_mem[base + 2:base + 4] = count.to_bytes(2, "little")
        self.packet_mem[base + 4:base + 4 + len(frame_bytes)] = frame_bytes
        self.rx_fifo.append(packet)
        self.stats["rx_frames"] += 1
        self.stats["rx_bytes"] += len(frame_bytes)
        self.int_status |= INT_RCV
        self._update_irq()

    def _multicast_match(self, dst):
        if self.rcr & RCR_ALMUL:
            return True
        return super()._multicast_match(dst)
