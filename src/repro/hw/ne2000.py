"""NE2000-class device model (the Realtek RTL8029 analog).

Programming style: **page-selected registers + remote DMA through a data
port**, no bus mastering.  The driver copies every frame through the data
port by hand, which is why the paper's RTL8029 figures show ~100% CPU
utilization (section 5.3).

Register map (port I/O, 32 bytes):

====== ======================================================
offset register
====== ======================================================
0x00   CR: STP=0x01 STA=0x02 TXP=0x04 RD(remote dma)=bits3-5,
       PS(page select)=bits6-7
page 0 regs (CR.PS == 0):
0x01   PSTART (rx ring start page)   0x02 PSTOP (ring end page)
0x03   BNRY (boundary page)          0x04 TPSR(w) / TSR(r)
0x05   TBCR0  0x06 TBCR1 (tx byte count lo/hi)
0x07   ISR: PRX=0x01 PTX=0x02 RXE=0x04 TXE=0x08 OVW=0x10 RDC=0x40
       (write-1-to-clear)
0x08   RSAR0  0x09 RSAR1 (remote start address lo/hi)
0x0A   RBCR0  0x0B RBCR1 (remote byte count lo/hi)
0x0C   RCR: AB=0x04 AM=0x08 PRO=0x10
0x0D   TCR (loopback bits ignored)   0x0E DCR: FDX=0x40
0x0F   IMR (interrupt mask, same bits as ISR)
page 1 regs (CR.PS == 1):
0x01.. 0x06 PAR0-5 (station MAC)     0x07 CURR (current rx page)
0x08.. 0x0F MAR0-7 (multicast hash)
0x10   data port (remote DMA window, any width)
0x1F   reset (read triggers soft reset)
====== ======================================================

Internal packet memory: 16 KiB (pages 0x40..0x7F, 256 bytes each).
Received frames are stored in the ring with the classic 4-byte header
(status, next-page, count lo, count hi).
"""

from repro.hw.base import NicDevice, PciDescriptor, mask_width

PAGE_SIZE = 256
MEM_START_PAGE = 0x40
MEM_STOP_PAGE = 0x80

# CR bits
CR_STP = 0x01
CR_STA = 0x02
CR_TXP = 0x04
CR_RD_MASK = 0x38
CR_RD_READ = 0x08
CR_RD_WRITE = 0x10
CR_RD_ABORT = 0x20
CR_PS_SHIFT = 6

# ISR bits
ISR_PRX = 0x01
ISR_PTX = 0x02
ISR_RXE = 0x04
ISR_TXE = 0x08
ISR_OVW = 0x10
ISR_RDC = 0x40

# RCR bits
RCR_AB = 0x04
RCR_AM = 0x08
RCR_PRO = 0x10

# DCR bits
DCR_FDX = 0x40

REG_CR = 0x00
REG_DATA = 0x10
REG_RESET = 0x1F


class Ne2000Device(NicDevice):
    """Behavioural NE2000 (RTL8029) model."""

    PCI = PciDescriptor(vendor_id=0x10EC, device_id=0x8029,
                        io_base=0x300, io_size=0x20, irq_line=9)

    def __init__(self, mac, **kwargs):
        super().__init__(mac, **kwargs)
        self.mem = bytearray(PAGE_SIZE * (MEM_STOP_PAGE - MEM_START_PAGE))
        self.cr = CR_STP
        self.isr = 0
        self.imr = 0
        self.pstart = MEM_START_PAGE
        self.pstop = MEM_STOP_PAGE
        self.bnry = MEM_START_PAGE
        self.curr = MEM_START_PAGE
        self.tpsr = MEM_START_PAGE
        self.tbcr = 0
        self.rsar = 0
        self.rbcr = 0
        self.rcr = 0
        self.tcr = 0
        self.dcr = 0
        self.par = bytearray(mac)

    # ------------------------------------------------------------------

    def reset(self):
        self.cr = CR_STP
        self.isr = 0x80  # RST bit set after reset, drivers poll it
        self.imr = 0
        self.rx_enabled = False
        self.tx_enabled = False

    def _page(self):
        return (self.cr >> CR_PS_SHIFT) & 0x3

    def _update_irq(self):
        if self.isr & self.imr:
            self.raise_interrupt()

    def _mem_index(self, address):
        base = MEM_START_PAGE * PAGE_SIZE
        limit = MEM_STOP_PAGE * PAGE_SIZE
        if not base <= address < limit:
            return None
        return address - base

    # ------------------------------------------------------------------
    # Register access

    def io_read(self, offset, width):
        if offset == REG_DATA:
            return self._remote_read(width)
        value = self._read_reg(offset)
        return mask_width(value, width)

    def io_write(self, offset, width, value):
        if offset == REG_DATA:
            self._remote_write(value, width)
            return
        self._write_reg(offset, mask_width(value, 1))

    def _read_reg(self, offset):
        if offset == REG_CR:
            return self.cr
        if offset == REG_RESET:
            self.reset()
            return 0
        page = self._page()
        if page == 0:
            return {
                0x01: self.pstart, 0x02: self.pstop, 0x03: self.bnry,
                0x04: 0x01,  # TSR: transmit OK
                0x07: self.isr,
                0x0C: self.rcr, 0x0D: self.tcr, 0x0E: self.dcr,
                0x0F: self.imr,
            }.get(offset, 0)
        if page == 1:
            if 0x01 <= offset <= 0x06:
                return self.par[offset - 0x01]
            if offset == 0x07:
                return self.curr
            if 0x08 <= offset <= 0x0F:
                return self.multicast_hash[offset - 0x08]
        return 0

    def _write_reg(self, offset, value):
        if offset == REG_CR:
            self._write_cr(value)
            return
        page = self._page()
        if page == 0:
            self._write_page0(offset, value)
        elif page == 1:
            self._write_page1(offset, value)

    def _write_cr(self, value):
        self.cr = value
        if value & CR_STA and not value & CR_STP:
            self.rx_enabled = True
            self.tx_enabled = True
        if value & CR_STP:
            self.rx_enabled = False
            self.tx_enabled = False
        if value & CR_TXP:
            self._do_transmit()
            self.cr &= ~CR_TXP
        if value & CR_RD_ABORT:
            self.isr |= ISR_RDC
            self._update_irq()

    def _write_page0(self, offset, value):
        if offset == 0x01:
            self.pstart = value
        elif offset == 0x02:
            self.pstop = value
        elif offset == 0x03:
            self.bnry = value
        elif offset == 0x04:
            self.tpsr = value
        elif offset == 0x05:
            self.tbcr = (self.tbcr & 0xFF00) | value
        elif offset == 0x06:
            self.tbcr = (self.tbcr & 0x00FF) | (value << 8)
        elif offset == 0x07:
            self.isr &= ~value  # write-1-to-clear
        elif offset == 0x08:
            self.rsar = (self.rsar & 0xFF00) | value
        elif offset == 0x09:
            self.rsar = (self.rsar & 0x00FF) | (value << 8)
        elif offset == 0x0A:
            self.rbcr = (self.rbcr & 0xFF00) | value
        elif offset == 0x0B:
            self.rbcr = (self.rbcr & 0x00FF) | (value << 8)
        elif offset == 0x0C:
            self.rcr = value
            self.promiscuous = bool(value & RCR_PRO)
        elif offset == 0x0D:
            self.tcr = value
        elif offset == 0x0E:
            self.dcr = value
            self.full_duplex = bool(value & DCR_FDX)
        elif offset == 0x0F:
            self.imr = value
            self._update_irq()

    def _write_page1(self, offset, value):
        if 0x01 <= offset <= 0x06:
            self.par[offset - 0x01] = value
            self.mac[offset - 0x01] = value
        elif offset == 0x07:
            self.curr = value
        elif 0x08 <= offset <= 0x0F:
            self.multicast_hash[offset - 0x08] = value

    # ------------------------------------------------------------------
    # Remote DMA (driver-driven copies through the data port)

    def _remote_read(self, width):
        value = 0
        for i in range(width):
            index = self._mem_index(self.rsar)
            byte = self.mem[index] if index is not None else 0
            value |= byte << (8 * i)
            self.rsar = (self.rsar + 1) & 0xFFFF
            if self.rbcr:
                self.rbcr -= 1
        if self.rbcr == 0:
            self.isr |= ISR_RDC
            self._update_irq()
        return value

    def _remote_write(self, value, width):
        for i in range(width):
            index = self._mem_index(self.rsar)
            if index is not None:
                self.mem[index] = (value >> (8 * i)) & 0xFF
            self.rsar = (self.rsar + 1) & 0xFFFF
            if self.rbcr:
                self.rbcr -= 1
        if self.rbcr == 0:
            self.isr |= ISR_RDC
            self._update_irq()

    # ------------------------------------------------------------------
    # TX / RX

    def _do_transmit(self):
        if not self.tx_enabled:
            return
        start = self.tpsr * PAGE_SIZE
        index = self._mem_index(start)
        if index is None:
            self.isr |= ISR_TXE
            self._update_irq()
            return
        frame = bytes(self.mem[index:index + self.tbcr])
        self.transmit(frame)
        self.isr |= ISR_PTX
        self._update_irq()

    def receive_frame(self, frame_bytes):
        if not self.accepts(frame_bytes):
            self.stats["rx_dropped"] += 1
            return
        total = len(frame_bytes) + 4  # ring header
        pages_needed = (total + PAGE_SIZE - 1) // PAGE_SIZE
        next_page = self.curr + pages_needed
        if next_page >= self.pstop:
            next_page = self.pstart + (next_page - self.pstop)
        # Overflow check: would we run into BNRY?
        if self._ring_full(pages_needed):
            self.isr |= ISR_OVW
            self.stats["rx_dropped"] += 1
            self._update_irq()
            return
        header = bytes([
            0x01,                        # status: received OK
            next_page,
            total & 0xFF, (total >> 8) & 0xFF,
        ])
        self._ring_write(self.curr * PAGE_SIZE, header + frame_bytes)
        self.curr = next_page
        self.stats["rx_frames"] += 1
        self.stats["rx_bytes"] += len(frame_bytes)
        self.isr |= ISR_PRX
        self._update_irq()

    def _ring_full(self, pages_needed):
        free = (self.bnry - self.curr) % (self.pstop - self.pstart)
        if free == 0:
            free = self.pstop - self.pstart
        return pages_needed >= free

    def _ring_write(self, address, data):
        for byte in data:
            index = self._mem_index(address)
            if index is not None:
                self.mem[index] = byte
            address += 1
            page = address // PAGE_SIZE
            if page >= self.pstop:
                address = self.pstart * PAGE_SIZE
