"""Behavioural NIC device models.

These are the reproduction's stand-ins for the four physical chips the paper
evaluates (Table 1): AMD PCNet, Realtek RTL8139, SMSC 91C111 and Realtek
RTL8029 (NE2000-class).  Each model exposes a register interface in a
*different programming style* -- descriptor-ring bus-master DMA, indirect
RAP/RDP register access, bank-switched FIFOs, page-register PIO with remote
DMA -- so the reverse-engineering pipeline is exercised over genuinely
different hardware protocols.

RevNIC itself never touches these models (it uses symbolic hardware); they
exist for functional verification (Table 2 I/O-trace comparison) and the
performance evaluation (Figures 2-7).
"""

from repro.hw.base import NicDevice, PciDescriptor
from repro.hw.ne2000 import Ne2000Device
from repro.hw.rtl8139 import Rtl8139Device
from repro.hw.pcnet import PcnetDevice
from repro.hw.smc91c111 import Smc91c111Device

NIC_MODELS = {
    "rtl8029": Ne2000Device,
    "rtl8139": Rtl8139Device,
    "pcnet": PcnetDevice,
    "smc91c111": Smc91c111Device,
}

__all__ = [
    "NicDevice",
    "PciDescriptor",
    "Ne2000Device",
    "Rtl8139Device",
    "PcnetDevice",
    "Smc91c111Device",
    "NIC_MODELS",
]
