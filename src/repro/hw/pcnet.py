"""AMD PCNet (Am79C970) device model.

Programming style: **indirect register access** -- the driver writes a
register number to RAP and then reads/writes the value through RDP (CSRs)
or BDP (BCRs).  This is exactly the "write a register address on one port
and read the value on another" access pattern the paper calls out as a
candidate for function models during exploration (section 3.2).

Descriptor rings and the initialization block live in guest memory and are
fetched by the device via DMA.

Port map (0x20 bytes):

====== =====================================================
0x00   APROM: station MAC in bytes 0-5 (byte reads)
0x10   RDP (u16): CSR data, selected by RAP
0x12   RAP (u16): register number for RDP/BDP
0x14   RESET: reading performs a soft reset
0x16   BDP (u16): BCR data, selected by RAP
====== =====================================================

CSRs: 0=status/control (INIT=0x01 STRT=0x02 STOP=0x04 TDMD=0x08 IENA=0x40
INTR=0x80 IDON=0x100 TINT=0x200 RINT=0x400; interrupt bits write-1-clear),
1/2 = init-block physical address lo/hi16, 15 = mode (PROM=0x8000).
BCRs: 4 = LED control, 7 = Wake-on-LAN control (MAGIC=0x1), 9 = full duplex
(FDEN=0x1).

Init block (32 bytes, little endian)::

    u16 mode        u16 rlen (rx ring entries)
    u16 tlen        u16 reserved
    u8  padr[6]     u16 reserved
    u8  ladrf[8]    (multicast hash)
    u32 rdra        (rx descriptor ring base)
    u32 tdra        (tx descriptor ring base)

Descriptors (16 bytes): u32 buffer address, u32 length, u32 status
(OWN=0x80000000 -- owned by device), u32 message length (written by the
device on RX completion).
"""

import struct

from repro.hw.base import NicDevice, PciDescriptor, mask_width

# CSR0 bits
CSR0_INIT = 0x0001
CSR0_STRT = 0x0002
CSR0_STOP = 0x0004
CSR0_TDMD = 0x0008
CSR0_IENA = 0x0040
CSR0_INTR = 0x0080
CSR0_IDON = 0x0100
CSR0_TINT = 0x0200
CSR0_RINT = 0x0400

CSR15_PROM = 0x8000

BCR7_MAGIC = 0x0001
BCR9_FDEN = 0x0001

DESC_OWN = 0x8000_0000
DESC_SIZE = 16
INIT_BLOCK_SIZE = 32

REG_APROM = 0x00
REG_RDP = 0x10
REG_RAP = 0x12
REG_RESET = 0x14
REG_BDP = 0x16


class PcnetDevice(NicDevice):
    """Behavioural AMD PCNet model (DMA rings + init block)."""

    PCI = PciDescriptor(vendor_id=0x1022, device_id=0x2000,
                        io_base=0x1000, io_size=0x20, irq_line=10)

    def __init__(self, mac, **kwargs):
        super().__init__(mac, **kwargs)
        self.rap = 0
        self.csr = {0: CSR0_STOP, 1: 0, 2: 0, 15: 0}
        self.bcr = {4: 0, 7: 0, 9: 0}
        self.rdra = 0
        self.tdra = 0
        self.rlen = 0
        self.tlen = 0
        self.rx_index = 0
        self.tx_index = 0

    # ------------------------------------------------------------------

    def reset(self):
        self.csr = {0: CSR0_STOP, 1: 0, 2: 0, 15: 0}
        self.rap = 0
        self.rx_enabled = False
        self.tx_enabled = False
        self.rx_index = 0
        self.tx_index = 0

    def _update_irq(self):
        csr0 = self.csr[0]
        if csr0 & CSR0_IENA and csr0 & (CSR0_IDON | CSR0_TINT | CSR0_RINT):
            self.csr[0] |= CSR0_INTR
            self.raise_interrupt()
        else:
            self.csr[0] &= ~CSR0_INTR

    # ------------------------------------------------------------------
    # Register access

    def io_read(self, offset, width):
        if REG_APROM <= offset < REG_APROM + 16:
            value = 0
            for i in range(width):
                index = offset - REG_APROM + i
                byte = self.mac[index] if index < 6 else 0
                value |= byte << (8 * i)
            return value
        if offset == REG_RDP:
            return mask_width(self.csr.get(self.rap, 0), width)
        if offset == REG_RAP:
            return mask_width(self.rap, width)
        if offset == REG_RESET:
            self.reset()
            return 0
        if offset == REG_BDP:
            return mask_width(self.bcr.get(self.rap, 0), width)
        return 0

    def io_write(self, offset, width, value):
        value = mask_width(value, width)
        if offset == REG_RAP:
            self.rap = value & 0xFFFF
        elif offset == REG_RDP:
            self._write_csr(self.rap, value & 0xFFFF)
        elif offset == REG_BDP:
            self._write_bcr(self.rap, value & 0xFFFF)

    def _write_csr(self, number, value):
        if number == 0:
            self._write_csr0(value)
            return
        self.csr[number] = value
        if number == 15:
            self.promiscuous = bool(value & CSR15_PROM)
        elif 8 <= number <= 11:
            # CSR8-11: logical address filter (multicast hash), 16 bits
            # per CSR, little endian within the 64-bit filter.
            offset = (number - 8) * 2
            self.multicast_hash[offset] = value & 0xFF
            self.multicast_hash[offset + 1] = (value >> 8) & 0xFF

    def _write_csr0(self, value):
        csr0 = self.csr[0]
        # Interrupt bits are write-1-to-clear.
        csr0 &= ~(value & (CSR0_IDON | CSR0_TINT | CSR0_RINT))
        # IENA is a plain read/write control bit.
        csr0 = (csr0 & ~CSR0_IENA) | (value & CSR0_IENA)
        self.csr[0] = csr0
        if value & CSR0_STOP:
            self.csr[0] |= CSR0_STOP
            self.csr[0] &= ~(CSR0_STRT | CSR0_INIT)
            self.rx_enabled = False
            self.tx_enabled = False
            return
        if value & CSR0_INIT:
            self._load_init_block()
            self.csr[0] |= CSR0_INIT | CSR0_IDON
            self.csr[0] &= ~CSR0_STOP
        if value & CSR0_STRT:
            self.csr[0] |= CSR0_STRT
            self.csr[0] &= ~CSR0_STOP
            self.rx_enabled = True
            self.tx_enabled = True
        if value & CSR0_TDMD:
            self._poll_tx_ring()
        self._update_irq()

    def _write_bcr(self, number, value):
        self.bcr[number] = value
        if number == 4:
            self.led_state = value & 0xF
        elif number == 7:
            self.wol_enabled = bool(value & BCR7_MAGIC)
        elif number == 9:
            self.full_duplex = bool(value & BCR9_FDEN)

    # ------------------------------------------------------------------
    # Init block / descriptor rings (DMA)

    def _init_block_address(self):
        return (self.csr[2] << 16) | self.csr[1]

    def _load_init_block(self):
        if self.bus is None:
            return
        raw = self.bus.dma_read(self._init_block_address(), INIT_BLOCK_SIZE)
        (mode, rlen, tlen, _pad) = struct.unpack_from("<HHHH", raw, 0)
        padr = raw[8:14]
        ladrf = raw[16:24]
        (rdra, tdra) = struct.unpack_from("<II", raw, 24)
        self.csr[15] = mode
        self.promiscuous = bool(mode & CSR15_PROM)
        self.mac[:] = padr
        self.multicast_hash[:] = ladrf
        self.rdra, self.tdra = rdra, tdra
        self.rlen, self.tlen = rlen, tlen
        self.rx_index = 0
        self.tx_index = 0

    def _read_desc(self, base, index):
        raw = self.bus.dma_read(base + index * DESC_SIZE, DESC_SIZE)
        return list(struct.unpack("<IIII", raw))

    def _write_desc(self, base, index, fields):
        self.bus.dma_write(base + index * DESC_SIZE,
                           struct.pack("<IIII", *fields))

    def _poll_tx_ring(self):
        if not self.tx_enabled or self.bus is None or self.tlen == 0:
            return
        sent = 0
        for _ in range(self.tlen):
            desc = self._read_desc(self.tdra, self.tx_index)
            buf, length, status, _msg = desc
            if not status & DESC_OWN:
                break
            frame = self.bus.dma_read(buf, length & 0xFFFF)
            self.transmit(frame)
            desc[2] = status & ~DESC_OWN
            self._write_desc(self.tdra, self.tx_index, desc)
            self.tx_index = (self.tx_index + 1) % self.tlen
            sent += 1
        if sent:
            self.csr[0] |= CSR0_TINT
            self._update_irq()

    def receive_frame(self, frame_bytes):
        if not self.accepts(frame_bytes):
            self.stats["rx_dropped"] += 1
            return
        if self.bus is None or self.rlen == 0:
            self.stats["rx_dropped"] += 1
            return
        desc = self._read_desc(self.rdra, self.rx_index)
        buf, length, status, _msg = desc
        if not status & DESC_OWN:
            self.stats["rx_dropped"] += 1
            return
        frame = frame_bytes[:length & 0xFFFF]
        self.bus.dma_write(buf, frame)
        desc[2] = status & ~DESC_OWN
        desc[3] = len(frame)
        self._write_desc(self.rdra, self.rx_index, desc)
        self.rx_index = (self.rx_index + 1) % self.rlen
        self.stats["rx_frames"] += 1
        self.stats["rx_bytes"] += len(frame)
        self.csr[0] |= CSR0_RINT
        self._update_irq()
