"""The DRV binary image format (the reproduction's ``.sys`` analog).

A DRV image carries text, initialized data, a bss size, an import table
(named OS API functions the driver calls), an export table (at minimum the
``DriverEntry`` analog) and relocations.  It deliberately contains **no**
function symbols or type information beyond exports -- reverse engineering
must recover structure from execution, not from metadata.

Serialized layout (little endian)::

    0x00  magic   "DRV1"
    0x04  u16 version, u16 flags
    0x08  u32 entry offset (into text)
    0x0C  u32 text size
    0x10  u32 data size
    0x14  u32 bss size
    0x18  u32 import count
    0x1C  u32 export count
    0x20  u32 reloc count
    0x24  text bytes
          data bytes
          imports:  per entry u16 name length + name bytes
          exports:  per entry u16 name length + name bytes + u32 text offset
          relocs:   per entry u8 kind + u32 site offset + u32 symbol index
"""

import struct
from dataclasses import dataclass, field
from enum import IntEnum

from repro.errors import BinFmtError

MAGIC = b"DRV1"
VERSION = 1

_HEADER = struct.Struct("<4sHHIIIIIII")


class RelocKind(IntEnum):
    """Relocation kinds applied by the guest-OS loader."""

    TEXT = 0      #: add the text load base to the imm field at the site
    DATA = 1      #: add the data load base to the imm field at the site
    IMPORT = 2    #: store the import-thunk address of import ``index``


@dataclass(frozen=True)
class Import:
    """One imported OS API function."""

    name: str


@dataclass(frozen=True)
class Export:
    """One exported symbol (text offset)."""

    name: str
    offset: int


@dataclass(frozen=True)
class Reloc:
    """One relocation site.

    ``site`` is the byte offset of the 32-bit imm field to patch.  Sites in
    ``[0, text_size)`` live in text; sites at ``text_size + k`` patch the
    k-th byte of the data segment (used for function-pointer tables).
    """

    kind: RelocKind
    site: int
    index: int = 0


@dataclass
class DrvImage:
    """An in-memory DRV binary image."""

    text: bytes
    data: bytes = b""
    bss_size: int = 0
    entry: int = 0
    imports: list = field(default_factory=list)
    exports: list = field(default_factory=list)
    relocs: list = field(default_factory=list)

    @property
    def file_size(self):
        """Size of the serialized image ("Driver Size" in Table 1)."""
        return len(self.to_bytes())

    @property
    def code_size(self):
        """Size of the code segment ("Code Segment Size" in Table 1)."""
        return len(self.text)

    def import_index(self, name):
        """Index of import ``name``, raising ``KeyError`` when absent."""
        for i, imp in enumerate(self.imports):
            if imp.name == name:
                return i
        raise KeyError(name)

    def export_offset(self, name):
        """Text offset of export ``name``, raising ``KeyError`` when absent."""
        for exp in self.exports:
            if exp.name == name:
                return exp.offset
        raise KeyError(name)

    def to_bytes(self):
        """Serialize the image."""
        parts = [
            _HEADER.pack(
                MAGIC, VERSION, 0, self.entry, len(self.text), len(self.data),
                self.bss_size, len(self.imports), len(self.exports),
                len(self.relocs),
            ),
            self.text,
            self.data,
        ]
        for imp in self.imports:
            name = imp.name.encode("ascii")
            parts.append(struct.pack("<H", len(name)) + name)
        for exp in self.exports:
            name = exp.name.encode("ascii")
            parts.append(struct.pack("<H", len(name)) + name)
            parts.append(struct.pack("<I", exp.offset))
        for reloc in self.relocs:
            parts.append(struct.pack("<BII", int(reloc.kind), reloc.site,
                                     reloc.index))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, blob):
        """Deserialize an image, validating structure."""
        if len(blob) < _HEADER.size:
            raise BinFmtError("image too small for header")
        (magic, version, _flags, entry, text_size, data_size, bss_size,
         n_imports, n_exports, n_relocs) = _HEADER.unpack_from(blob, 0)
        if magic != MAGIC:
            raise BinFmtError("bad magic %r" % (magic,))
        if version != VERSION:
            raise BinFmtError("unsupported version %d" % version)

        pos = _HEADER.size
        end = pos + text_size
        if end > len(blob):
            raise BinFmtError("truncated text segment")
        text = bytes(blob[pos:end])
        pos = end

        end = pos + data_size
        if end > len(blob):
            raise BinFmtError("truncated data segment")
        data = bytes(blob[pos:end])
        pos = end

        imports = []
        for _ in range(n_imports):
            name, pos = _read_name(blob, pos)
            imports.append(Import(name))

        exports = []
        for _ in range(n_exports):
            name, pos = _read_name(blob, pos)
            if pos + 4 > len(blob):
                raise BinFmtError("truncated export table")
            (offset,) = struct.unpack_from("<I", blob, pos)
            pos += 4
            exports.append(Export(name, offset))

        relocs = []
        for _ in range(n_relocs):
            if pos + 9 > len(blob):
                raise BinFmtError("truncated relocation table")
            kind, site, index = struct.unpack_from("<BII", blob, pos)
            pos += 9
            try:
                kind = RelocKind(kind)
            except ValueError:
                raise BinFmtError("bad relocation kind %d" % kind) from None
            relocs.append(Reloc(kind, site, index))

        image = cls(text=text, data=data, bss_size=bss_size, entry=entry,
                    imports=imports, exports=exports, relocs=relocs)
        image.validate()
        return image

    def validate(self):
        """Check internal consistency; raises :class:`BinFmtError`."""
        if self.entry >= len(self.text) and self.text:
            raise BinFmtError("entry point 0x%x outside text" % self.entry)
        if len(self.text) % 8 != 0:
            raise BinFmtError("text size not a multiple of instruction size")
        limit = len(self.text) + len(self.data)
        for reloc in self.relocs:
            if reloc.site + 4 > limit:
                raise BinFmtError("relocation site 0x%x out of range"
                                  % reloc.site)
            if reloc.kind == RelocKind.IMPORT and \
                    reloc.index >= len(self.imports):
                raise BinFmtError("relocation references import %d of %d"
                                  % (reloc.index, len(self.imports)))
        for exp in self.exports:
            if exp.offset >= len(self.text):
                raise BinFmtError("export %s outside text" % exp.name)


def _read_name(blob, pos):
    if pos + 2 > len(blob):
        raise BinFmtError("truncated name table")
    (length,) = struct.unpack_from("<H", blob, pos)
    pos += 2
    if pos + length > len(blob):
        raise BinFmtError("truncated name")
    name = blob[pos:pos + length].decode("ascii")
    return name, pos + length
