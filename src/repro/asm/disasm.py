"""Disassembler for DRV images (debugging / developer aid).

The paper notes that RevNIC-generated C is "substantially more accessible
than disassembly" -- this module provides that disassembly baseline and is
also used by the static analysis behind Table 1.
"""

from repro.isa.encoding import INSTR_SIZE, decode
from repro.isa.opcodes import Op
from repro.layout import TEXT_BASE


def disassemble_image(image, base=TEXT_BASE):
    """Yield ``(address, Instruction, text)`` for every instruction in
    ``image``'s code segment."""
    exports = {exp.offset: exp.name for exp in image.exports}
    for offset in range(0, len(image.text), INSTR_SIZE):
        instr = decode(image.text, offset)
        address = base + offset
        label = exports.get(offset)
        text = instr.text()
        if label is not None:
            text = "%s:\n    %s" % (label, text)
        yield address, instr, text


def static_call_targets(image):
    """Return the set of text offsets that are targets of direct CALLs.

    This is the static function-discovery analysis used to fill the
    "Functions Implemented by the Original Driver" column of Table 1: a
    function is an entry point (export), a direct call target, or a code
    address materialized into a register (a function pointer, e.g. a
    registered entry point or timer handler).
    """
    targets = set()
    text_relocs = {r.site for r in image.relocs
                   if r.kind.name == "TEXT" and r.site < len(image.text)}
    for offset in range(0, len(image.text), INSTR_SIZE):
        instr = decode(image.text, offset)
        has_text_reloc = (offset + 4) in text_relocs
        if instr.op == Op.CALL and has_text_reloc:
            targets.add(instr.imm)
        elif instr.op == Op.MOVI and has_text_reloc:
            # A code pointer materialized into a register: registered
            # entry point, timer handler, or an indirect-call target.
            targets.add(instr.imm)
    targets.update(exp.offset for exp in image.exports)
    return targets
