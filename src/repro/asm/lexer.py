"""Tokenizer for R32 assembly source."""

import re
from dataclasses import dataclass

from repro.errors import AsmError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>;[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<int>\d+)
  | (?P<name>\.?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct><<|>>|[@:,\[\]()+\-*&|])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source line for diagnostics."""

    kind: str      # 'string' | 'int' | 'name' | 'punct'
    value: object
    line: int


def tokenize_line(text, line_number):
    """Tokenize one source line, dropping whitespace and comments."""
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise AsmError("unexpected character %r" % text[pos], line_number)
        pos = match.end()
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        raw = match.group()
        if kind == "hex":
            tokens.append(Token("int", int(raw, 16), line_number))
        elif kind == "int":
            tokens.append(Token("int", int(raw, 10), line_number))
        elif kind == "string":
            tokens.append(Token("string", _unescape(raw[1:-1], line_number),
                                line_number))
        elif kind == "name":
            tokens.append(Token("name", raw, line_number))
        else:
            tokens.append(Token("punct", raw, line_number))
    return tokens


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", '"': '"', "\\": "\\"}


def _unescape(body, line_number):
    out = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            if i >= len(body):
                raise AsmError("dangling escape in string", line_number)
            esc = body[i]
            if esc not in _ESCAPES:
                raise AsmError("unknown escape \\%s" % esc, line_number)
            out.append(_ESCAPES[esc])
        else:
            out.append(ch)
        i += 1
    return "".join(out)
