"""Parser for R32 assembly: lines -> statements with structured operands."""

from dataclasses import dataclass, field

from repro.errors import AsmError
from repro.asm.lexer import Token, tokenize_line
from repro.isa.registers import _NAME_TO_NUM


# --------------------------------------------------------------------------
# Expression AST (evaluated by the assembler against the symbol table).

@dataclass(frozen=True)
class Num:
    """Integer literal."""

    value: int


@dataclass(frozen=True)
class Sym:
    """Reference to a label or ``.equ`` constant."""

    name: str


@dataclass(frozen=True)
class ImportRef:
    """Reference to an imported OS API function (``@Name``)."""

    name: str


@dataclass(frozen=True)
class BinExpr:
    """Binary arithmetic over sub-expressions."""

    op: str
    left: object
    right: object


# --------------------------------------------------------------------------
# Operands.

@dataclass(frozen=True)
class RegOperand:
    """A register operand."""

    reg: int


@dataclass(frozen=True)
class MemOperand:
    """A memory operand ``[base + disp]`` (``base`` may be ``None``)."""

    base: object   # int register number or None for absolute
    disp: object   # expression AST


@dataclass(frozen=True)
class PortOperand:
    """A port-I/O operand ``(base + disp)``."""

    base: object
    disp: object


@dataclass(frozen=True)
class ExprOperand:
    """An immediate / label expression operand."""

    expr: object


# --------------------------------------------------------------------------
# Statements.

@dataclass
class LabelStmt:
    """``name:`` -- defines a label at the current location."""

    name: str
    line: int


@dataclass
class DirectiveStmt:
    """``.name arg, arg...``."""

    name: str
    args: list
    line: int


@dataclass
class InstrStmt:
    """A (possibly pseudo-) instruction with parsed operands."""

    mnemonic: str
    operands: list = field(default_factory=list)
    line: int = 0


def parse_source(source):
    """Parse assembly source text into a list of statements."""
    statements = []
    for line_number, raw in enumerate(source.splitlines(), start=1):
        tokens = tokenize_line(raw, line_number)
        if not tokens:
            continue
        statements.extend(_parse_line(tokens, line_number))
    return statements


def _parse_line(tokens, line):
    cursor = _Cursor(tokens, line)
    out = []
    # Leading labels: "name:" possibly followed by more on the same line.
    while (cursor.peek_kind() == "name"
           and not cursor.peek().value.startswith(".")
           and cursor.peek2_is(":")):
        name = cursor.take("name").value
        cursor.take_punct(":")
        out.append(LabelStmt(name, line))
    if cursor.done():
        return out
    head = cursor.take("name")
    if head.value.startswith("."):
        out.append(_parse_directive(head.value, cursor, line))
    else:
        out.append(_parse_instr(head.value.lower(), cursor, line))
    if not cursor.done():
        raise AsmError("trailing junk %r" % (cursor.peek().value,), line)
    return out


def _parse_directive(name, cursor, line):
    args = []
    while not cursor.done():
        token = cursor.peek()
        if token.kind == "string":
            args.append(cursor.take("string").value)
        else:
            args.append(_parse_expr(cursor, line))
        if not cursor.done():
            cursor.take_punct(",")
    return DirectiveStmt(name.lower(), args, line)


def _parse_instr(mnemonic, cursor, line):
    operands = []
    while not cursor.done():
        operands.append(_parse_operand(cursor, line))
        if not cursor.done():
            cursor.take_punct(",")
    return InstrStmt(mnemonic, operands, line)


def _parse_operand(cursor, line):
    token = cursor.peek()
    if token.kind == "punct" and token.value == "[":
        cursor.take_punct("[")
        base, disp = _parse_base_disp(cursor, line, "]")
        return MemOperand(base, disp)
    if token.kind == "punct" and token.value == "(":
        # Disambiguate a port operand "(reg...)" from a parenthesized
        # expression "(1 + 2)": a port operand starts with a register name.
        if cursor.peek2_is_register():
            cursor.take_punct("(")
            base, disp = _parse_base_disp(cursor, line, ")")
            return PortOperand(base, disp)
        return ExprOperand(_parse_expr(cursor, line))
    if token.kind == "name" and token.value.lower() in _NAME_TO_NUM:
        cursor.advance()
        return RegOperand(_NAME_TO_NUM[token.value.lower()])
    return ExprOperand(_parse_expr(cursor, line))


def _parse_base_disp(cursor, line, closer):
    """Parse the inside of ``[...]`` / ``(...)``: ``reg``, ``reg+expr``,
    ``reg-expr`` or a bare absolute expression."""
    base = None
    token = cursor.peek()
    if token is not None and token.kind == "name" \
            and token.value.lower() in _NAME_TO_NUM:
        base = _NAME_TO_NUM[token.value.lower()]
        cursor.advance()
        nxt = cursor.peek()
        if nxt is not None and nxt.kind == "punct" and nxt.value in "+-":
            sign = cursor.take("punct").value
            disp = _parse_expr(cursor, line)
            if sign == "-":
                disp = BinExpr("-", Num(0), disp)
        else:
            disp = Num(0)
    else:
        disp = _parse_expr(cursor, line)
    cursor.take_punct(closer)
    return base, disp


# Precedence-climbing expression parser: | < & < << >> < + - < * .
_PRECEDENCE = {"|": 1, "&": 2, "<<": 3, ">>": 3, "+": 4, "-": 4, "*": 5}


def _parse_expr(cursor, line, min_prec=1):
    left = _parse_primary(cursor, line)
    while True:
        token = cursor.peek()
        if token is None or token.kind != "punct" \
                or token.value not in _PRECEDENCE:
            return left
        prec = _PRECEDENCE[token.value]
        if prec < min_prec:
            return left
        op = cursor.take("punct").value
        right = _parse_expr(cursor, line, prec + 1)
        left = BinExpr(op, left, right)


def _parse_primary(cursor, line):
    token = cursor.peek()
    if token is None:
        raise AsmError("expected expression", line)
    if token.kind == "int":
        cursor.advance()
        return Num(token.value)
    if token.kind == "punct" and token.value == "(":
        cursor.take_punct("(")
        inner = _parse_expr(cursor, line)
        cursor.take_punct(")")
        return inner
    if token.kind == "punct" and token.value == "-":
        cursor.advance()
        return BinExpr("-", Num(0), _parse_primary(cursor, line))
    if token.kind == "punct" and token.value == "@":
        cursor.advance()
        name = cursor.take("name").value
        return ImportRef(name)
    if token.kind == "name":
        cursor.advance()
        return Sym(token.value)
    raise AsmError("unexpected token %r in expression" % (token.value,), line)


class _Cursor:
    """Token stream cursor with convenience accessors."""

    def __init__(self, tokens, line):
        self._tokens = tokens
        self._pos = 0
        self._line = line

    def done(self):
        return self._pos >= len(self._tokens)

    def peek(self):
        if self.done():
            return None
        return self._tokens[self._pos]

    def peek_kind(self):
        token = self.peek()
        return None if token is None else token.kind

    def peek2_is(self, punct):
        if self._pos + 1 >= len(self._tokens):
            return False
        token = self._tokens[self._pos + 1]
        return token.kind == "punct" and token.value == punct

    def peek2_is_register(self):
        if self._pos + 1 >= len(self._tokens):
            return False
        token = self._tokens[self._pos + 1]
        return token.kind == "name" and token.value.lower() in _NAME_TO_NUM

    def advance(self):
        self._pos += 1

    def take(self, kind):
        token = self.peek()
        if token is None or token.kind != kind:
            raise AsmError("expected %s, got %r"
                           % (kind, None if token is None else token.value),
                           self._line)
        self._pos += 1
        return token

    def take_punct(self, value):
        token = self.peek()
        if token is None or token.kind != "punct" or token.value != value:
            raise AsmError("expected %r, got %r"
                           % (value, None if token is None else token.value),
                           self._line)
        self._pos += 1
        return token
