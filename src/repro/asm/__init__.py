"""Two-pass assembler and binary image format for R32 driver binaries.

The four "proprietary Windows drivers" in :mod:`repro.drivers` are written in
R32 assembly and assembled with this package into opaque DRV images -- the
reverse-engineering pipeline never sees the assembly source, only the bytes,
just as RevNIC only ever sees ``.sys`` files.
"""

from repro.asm.assembler import assemble, assemble_file
from repro.asm.binfmt import DrvImage, Import, Export, Reloc, RelocKind
from repro.asm.disasm import disassemble_image

__all__ = [
    "assemble",
    "assemble_file",
    "DrvImage",
    "Import",
    "Export",
    "Reloc",
    "RelocKind",
    "disassemble_image",
]
