"""Two-pass R32 assembler producing DRV binary images.

Pass 1 parses the source, expands pseudo-instructions into concrete
instruction records (sizes are syntactically determined, so forward label
references are fine) and assigns section offsets to labels.  Pass 2 evaluates
operand expressions against the symbol table, encodes instructions and
emits relocations for text/data/import references.
"""

import struct

from repro.errors import AsmError
from repro.asm import parser as P
from repro.asm.binfmt import DrvImage, Export, Import, Reloc, RelocKind
from repro.isa.encoding import INSTR_SIZE, NO_REG, Instruction, encode
from repro.isa.opcodes import Op
from repro.isa.registers import REG_AT


class _Value:
    """Result of expression evaluation: ``addend`` relative to ``base``.

    ``base`` is ``None`` (absolute), ``"text"``, ``"data"``, or ``"import"``
    (in which case ``index`` identifies the import slot).
    """

    __slots__ = ("addend", "base", "index")

    def __init__(self, addend, base=None, index=0):
        self.addend = addend
        self.base = base
        self.index = index

    @property
    def absolute(self):
        return self.base is None


def assemble(source, name="<source>"):
    """Assemble R32 source text into a :class:`DrvImage`."""
    statements = P.parse_source(source)
    asm = _Assembler(name)
    asm.pass1(statements)
    return asm.pass2()


def assemble_file(path):
    """Assemble the file at ``path``."""
    with open(path, "r") as handle:
        return assemble(handle.read(), name=str(path))


class _TextItem:
    """One concrete instruction awaiting encoding in pass 2."""

    __slots__ = ("op", "a", "b", "c", "imm_expr", "line", "offset")

    def __init__(self, op, a=NO_REG, b=NO_REG, c=NO_REG, imm_expr=None,
                 line=0, offset=0):
        self.op = op
        self.a = a
        self.b = b
        self.c = c
        self.imm_expr = imm_expr
        self.line = line
        self.offset = offset


class _DataItem:
    """One data directive awaiting emission in pass 2."""

    __slots__ = ("kind", "payload", "line", "offset")

    def __init__(self, kind, payload, line, offset):
        self.kind = kind        # 'bytes' | 'word' | 'half' | 'byte'
        self.payload = payload  # bytes, or list of expressions
        self.line = line
        self.offset = offset


_SWAPPED_BRANCHES = {"bgt": "blt", "ble": "bge", "bgtu": "bltu",
                     "bleu": "bgeu"}
_DIRECT_BRANCHES = {"beq": Op.BEQ, "bne": Op.BNE, "blt": Op.BLT,
                    "bge": Op.BGE, "bltu": Op.BLTU, "bgeu": Op.BGEU}
_ALU_MNEMONICS = {"add": Op.ADD, "sub": Op.SUB, "and": Op.AND, "or": Op.OR,
                  "xor": Op.XOR, "shl": Op.SHL, "shr": Op.SHR, "sar": Op.SAR,
                  "mul": Op.MUL, "divu": Op.DIVU, "remu": Op.REMU}
_LOAD_MNEMONICS = {"ld8": Op.LD8, "ld16": Op.LD16, "ld32": Op.LD32}
_STORE_MNEMONICS = {"st8": Op.ST8, "st16": Op.ST16, "st32": Op.ST32}
_IN_MNEMONICS = {"in8": Op.IN8, "in16": Op.IN16, "in32": Op.IN32}
_OUT_MNEMONICS = {"out8": Op.OUT8, "out16": Op.OUT16, "out32": Op.OUT32}


class _Assembler:
    def __init__(self, name):
        self.name = name
        self.section = "text"
        self.text_items = []
        self.data_items = []
        self.text_offset = 0
        self.data_offset = 0
        self.bss_size = 0
        self.symbols = {}          # name -> _Value
        self.equ = {}              # name -> expression AST (lazy constants)
        self.imports = []          # ordered Import list
        self.import_index = {}
        self.exports = []          # (name, line)
        self.entry_name = None

    # ------------------------------------------------------------------
    # Pass 1

    def pass1(self, statements):
        for stmt in statements:
            if isinstance(stmt, P.LabelStmt):
                self._define_label(stmt)
            elif isinstance(stmt, P.DirectiveStmt):
                self._directive(stmt)
            elif isinstance(stmt, P.InstrStmt):
                if self.section != "text":
                    raise AsmError("instruction outside .text", stmt.line)
                self._instruction(stmt)
            else:  # pragma: no cover - parser yields only the above
                raise AsmError("bad statement %r" % (stmt,), 0)

    def _define_label(self, stmt):
        if stmt.name in self.symbols or stmt.name in self.equ:
            raise AsmError("duplicate symbol %r" % stmt.name, stmt.line)
        if self.section == "text":
            self.symbols[stmt.name] = _Value(self.text_offset, "text")
        elif self.section == "data":
            self.symbols[stmt.name] = _Value(self.data_offset, "data")
        else:
            raise AsmError("label in unknown section", stmt.line)

    def _directive(self, stmt):
        name = stmt.name
        if name == ".text":
            self.section = "text"
        elif name == ".data":
            self.section = "data"
        elif name == ".equ":
            self._equ(stmt)
        elif name == ".import":
            self._import(stmt)
        elif name == ".export":
            self._export(stmt)
        elif name == ".entry":
            self._entry(stmt)
        elif name in (".word", ".half", ".byte"):
            self._data_values(name[1:], stmt)
        elif name == ".asciz":
            self._asciz(stmt)
        elif name == ".space":
            self._space(stmt)
        elif name == ".align":
            self._align(stmt)
        else:
            raise AsmError("unknown directive %s" % name, stmt.line)

    def _equ(self, stmt):
        if len(stmt.args) != 2 or not isinstance(stmt.args[0], P.Sym):
            raise AsmError(".equ needs a name and a value", stmt.line)
        name = stmt.args[0].name
        if name in self.symbols or name in self.equ:
            raise AsmError("duplicate symbol %r" % name, stmt.line)
        self.equ[name] = stmt.args[1]

    def _import(self, stmt):
        for arg in stmt.args:
            if not isinstance(arg, P.Sym):
                raise AsmError(".import needs function names", stmt.line)
            if arg.name in self.import_index:
                continue
            self.import_index[arg.name] = len(self.imports)
            self.imports.append(Import(arg.name))

    def _export(self, stmt):
        for arg in stmt.args:
            if not isinstance(arg, P.Sym):
                raise AsmError(".export needs label names", stmt.line)
            self.exports.append((arg.name, stmt.line))

    def _entry(self, stmt):
        if len(stmt.args) != 1 or not isinstance(stmt.args[0], P.Sym):
            raise AsmError(".entry needs one label name", stmt.line)
        self.entry_name = stmt.args[0].name

    def _data_values(self, kind, stmt):
        if self.section != "data":
            raise AsmError(".%s outside .data" % kind, stmt.line)
        width = {"word": 4, "half": 2, "byte": 1}[kind]
        item = _DataItem(kind, list(stmt.args), stmt.line, self.data_offset)
        self.data_items.append(item)
        self.data_offset += width * len(stmt.args)

    def _asciz(self, stmt):
        if self.section != "data":
            raise AsmError(".asciz outside .data", stmt.line)
        if len(stmt.args) != 1 or not isinstance(stmt.args[0], str):
            raise AsmError(".asciz needs one string", stmt.line)
        payload = stmt.args[0].encode("ascii") + b"\0"
        self.data_items.append(_DataItem("bytes", payload, stmt.line,
                                         self.data_offset))
        self.data_offset += len(payload)

    def _space(self, stmt):
        if len(stmt.args) != 1:
            raise AsmError(".space needs one size", stmt.line)
        size = self._const(stmt.args[0], stmt.line)
        if self.section != "data":
            raise AsmError(".space outside .data", stmt.line)
        self.data_items.append(_DataItem("bytes", b"\0" * size, stmt.line,
                                         self.data_offset))
        self.data_offset += size

    def _align(self, stmt):
        if len(stmt.args) != 1:
            raise AsmError(".align needs one argument", stmt.line)
        align = self._const(stmt.args[0], stmt.line)
        if align <= 0 or align & (align - 1):
            raise AsmError(".align must be a power of two", stmt.line)
        if self.section == "data":
            pad = -self.data_offset % align
            if pad:
                self.data_items.append(_DataItem("bytes", b"\0" * pad,
                                                 stmt.line, self.data_offset))
                self.data_offset += pad
        else:
            while self.text_offset % align:
                self._emit(Op.NOP, line=stmt.line)

    def _const(self, expr, line):
        value = self._eval(expr, line)
        if not value.absolute:
            raise AsmError("expected an absolute constant", line)
        return value.addend

    # ------------------------------------------------------------------
    # Instruction expansion

    def _emit(self, op, a=NO_REG, b=NO_REG, c=NO_REG, imm_expr=None, line=0):
        item = _TextItem(op, a, b, c, imm_expr, line, self.text_offset)
        self.text_items.append(item)
        self.text_offset += INSTR_SIZE

    def _instruction(self, stmt):
        m = stmt.mnemonic
        ops = stmt.operands
        line = stmt.line
        emit = self._emit

        if m in ("nop", "halt"):
            self._expect(ops, 0, line)
            emit(Op.NOP if m == "nop" else Op.HALT, line=line)
        elif m in ("mov", "li", "movi"):
            self._mov(m, ops, line)
        elif m in _LOAD_MNEMONICS:
            self._load(_LOAD_MNEMONICS[m], ops, line)
        elif m in _STORE_MNEMONICS:
            self._store(_STORE_MNEMONICS[m], ops, line)
        elif m == "push":
            for op in self._regs(ops, line):
                emit(Op.PUSH, a=op, line=line)
        elif m == "pop":
            for op in self._regs(ops, line):
                emit(Op.POP, a=op, line=line)
        elif m in _ALU_MNEMONICS:
            self._alu(_ALU_MNEMONICS[m], ops, line)
        elif m in ("not", "neg"):
            self._unary(Op.NOT if m == "not" else Op.NEG, ops, line)
        elif m in _DIRECT_BRANCHES:
            self._branch(_DIRECT_BRANCHES[m], ops, line, swapped=False)
        elif m in _SWAPPED_BRANCHES:
            self._branch(_DIRECT_BRANCHES[_SWAPPED_BRANCHES[m]], ops, line,
                         swapped=True)
        elif m in ("bz", "bnz"):
            self._branch_zero(m, ops, line)
        elif m in ("jmp", "b", "jmpr"):
            self._jump(Op.JMP, Op.JMPR, ops, line)
        elif m in ("call", "callr"):
            self._jump(Op.CALL, Op.CALLR, ops, line)
        elif m == "ret":
            self._ret(ops, line)
        elif m in _IN_MNEMONICS:
            self._io_in(_IN_MNEMONICS[m], ops, line)
        elif m in _OUT_MNEMONICS:
            self._io_out(_OUT_MNEMONICS[m], ops, line)
        else:
            raise AsmError("unknown mnemonic %r" % m, line)

    def _expect(self, ops, count, line):
        if len(ops) != count:
            raise AsmError("expected %d operand(s), got %d"
                           % (count, len(ops)), line)

    def _regs(self, ops, line):
        regs = []
        for op in ops:
            if not isinstance(op, P.RegOperand):
                raise AsmError("expected register operand", line)
            regs.append(op.reg)
        if not regs:
            raise AsmError("expected at least one register", line)
        return regs

    def _mov(self, m, ops, line):
        self._expect(ops, 2, line)
        dst, src = ops
        if not isinstance(dst, P.RegOperand):
            raise AsmError("destination must be a register", line)
        if isinstance(src, P.RegOperand):
            if m == "movi" or m == "li":
                raise AsmError("%s needs an immediate" % m, line)
            self._emit(Op.MOV, a=dst.reg, b=src.reg, line=line)
        elif isinstance(src, P.ExprOperand):
            self._emit(Op.MOVI, a=dst.reg, imm_expr=src.expr, line=line)
        else:
            raise AsmError("bad mov source", line)

    def _load(self, op, ops, line):
        self._expect(ops, 2, line)
        dst, mem = ops
        if not isinstance(dst, P.RegOperand) or not isinstance(mem, P.MemOperand):
            raise AsmError("load needs: rd, [base+disp]", line)
        base = mem.base
        disp = mem.disp
        if base is None:
            self._emit(Op.MOVI, a=REG_AT, imm_expr=disp, line=line)
            base, disp = REG_AT, P.Num(0)
        self._emit(op, a=dst.reg, b=base, imm_expr=disp, line=line)

    def _store(self, op, ops, line):
        self._expect(ops, 2, line)
        mem, src = ops
        if not isinstance(mem, P.MemOperand) or not isinstance(src, P.RegOperand):
            raise AsmError("store needs: [base+disp], rs", line)
        base = mem.base
        disp = mem.disp
        if base is None:
            self._emit(Op.MOVI, a=REG_AT, imm_expr=disp, line=line)
            base, disp = REG_AT, P.Num(0)
        self._emit(op, a=base, b=src.reg, imm_expr=disp, line=line)

    def _alu(self, op, ops, line):
        if len(ops) == 2:  # two-operand form: rd = rd op src
            ops = [ops[0], ops[0], ops[1]]
        self._expect(ops, 3, line)
        dst, src1, src2 = ops
        if not isinstance(dst, P.RegOperand) or not isinstance(src1, P.RegOperand):
            raise AsmError("ALU needs register destination and source", line)
        if isinstance(src2, P.RegOperand):
            self._emit(op, a=dst.reg, b=src1.reg, c=src2.reg, line=line)
        elif isinstance(src2, P.ExprOperand):
            self._emit(op, a=dst.reg, b=src1.reg, c=NO_REG,
                       imm_expr=src2.expr, line=line)
        else:
            raise AsmError("bad ALU operand", line)

    def _unary(self, op, ops, line):
        if len(ops) == 1:
            ops = [ops[0], ops[0]]
        self._expect(ops, 2, line)
        dst, src = ops
        if not isinstance(dst, P.RegOperand) or not isinstance(src, P.RegOperand):
            raise AsmError("unary op needs registers", line)
        self._emit(op, a=dst.reg, b=src.reg, line=line)

    def _branch(self, op, ops, line, swapped):
        self._expect(ops, 3, line)
        lhs, rhs, target = ops
        if not isinstance(lhs, P.RegOperand):
            raise AsmError("branch first operand must be a register", line)
        if not isinstance(target, P.ExprOperand):
            raise AsmError("branch target must be a label/expression", line)
        if isinstance(rhs, P.RegOperand):
            rhs_reg = rhs.reg
        elif isinstance(rhs, P.ExprOperand):
            self._emit(Op.MOVI, a=REG_AT, imm_expr=rhs.expr, line=line)
            rhs_reg = REG_AT
        else:
            raise AsmError("bad branch operand", line)
        a, b = (rhs_reg, lhs.reg) if swapped else (lhs.reg, rhs_reg)
        self._emit(op, a=a, b=b, imm_expr=target.expr, line=line)

    def _branch_zero(self, m, ops, line):
        self._expect(ops, 2, line)
        reg, target = ops
        if not isinstance(reg, P.RegOperand) or not isinstance(target, P.ExprOperand):
            raise AsmError("%s needs: rs, target" % m, line)
        self._emit(Op.MOVI, a=REG_AT, imm_expr=P.Num(0), line=line)
        op = Op.BEQ if m == "bz" else Op.BNE
        self._emit(op, a=reg.reg, b=REG_AT, imm_expr=target.expr, line=line)

    def _jump(self, direct, indirect, ops, line):
        self._expect(ops, 1, line)
        target = ops[0]
        if isinstance(target, P.RegOperand):
            self._emit(indirect, a=target.reg, line=line)
        elif isinstance(target, P.ExprOperand):
            self._emit(direct, imm_expr=target.expr, line=line)
        else:
            raise AsmError("bad jump target", line)

    def _ret(self, ops, line):
        if not ops:
            self._emit(Op.RET, imm_expr=P.Num(0), line=line)
            return
        self._expect(ops, 1, line)
        if not isinstance(ops[0], P.ExprOperand):
            raise AsmError("ret takes a byte count", line)
        self._emit(Op.RET, imm_expr=ops[0].expr, line=line)

    def _io_in(self, op, ops, line):
        self._expect(ops, 2, line)
        dst, port = ops
        if not isinstance(dst, P.RegOperand) or not isinstance(port, P.PortOperand):
            raise AsmError("in needs: rd, (base+disp)", line)
        self._emit(op, a=dst.reg, b=port.base, imm_expr=port.disp, line=line)

    def _io_out(self, op, ops, line):
        self._expect(ops, 2, line)
        port, src = ops
        if not isinstance(port, P.PortOperand) or not isinstance(src, P.RegOperand):
            raise AsmError("out needs: (base+disp), rs", line)
        self._emit(op, a=port.base, b=src.reg, imm_expr=port.disp, line=line)

    # ------------------------------------------------------------------
    # Pass 2

    def pass2(self):
        text = bytearray()
        relocs = []
        for item in self.text_items:
            imm = 0
            if item.imm_expr is not None:
                value = self._eval(item.imm_expr, item.line)
                imm = value.addend & 0xFFFFFFFF
                reloc = self._reloc_for(value, item.offset + 4, item.line)
                if reloc is not None:
                    relocs.append(reloc)
                    if reloc.kind == RelocKind.IMPORT:
                        imm = 0
            text += encode(Instruction(item.op, item.a, item.b, item.c, imm))

        data = bytearray()
        for item in self.data_items:
            if item.kind == "bytes":
                data += item.payload
                continue
            width = {"word": 4, "half": 2, "byte": 1}[item.kind]
            fmt = {"word": "<I", "half": "<H", "byte": "<B"}[item.kind]
            for i, expr in enumerate(item.payload):
                value = self._eval(expr, item.line)
                raw = value.addend & ((1 << (8 * width)) - 1)
                site = len(self.text_items) * INSTR_SIZE + item.offset + i * width
                reloc = self._reloc_for(value, site, item.line)
                if reloc is not None:
                    if width != 4:
                        raise AsmError("relocatable value needs .word",
                                       item.line)
                    relocs.append(reloc)
                    if reloc.kind == RelocKind.IMPORT:
                        raw = 0
                data += struct.pack(fmt, raw)

        exports = []
        for name, line in self.exports:
            value = self.symbols.get(name)
            if value is None or value.base != "text":
                raise AsmError("export %r is not a text label" % name, line)
            exports.append(Export(name, value.addend))

        entry = 0
        if self.entry_name is not None:
            value = self.symbols.get(self.entry_name)
            if value is None or value.base != "text":
                raise AsmError("entry %r is not a text label"
                               % self.entry_name, 0)
            entry = value.addend
        elif exports:
            entry = exports[0].offset

        image = DrvImage(text=bytes(text), data=bytes(data),
                         bss_size=self.bss_size, entry=entry,
                         imports=list(self.imports), exports=exports,
                         relocs=relocs)
        image.validate()
        return image

    def _reloc_for(self, value, site, line):
        if value.base is None:
            return None
        if value.base == "text":
            return Reloc(RelocKind.TEXT, site)
        if value.base == "data":
            return Reloc(RelocKind.DATA, site)
        if value.base == "import":
            return Reloc(RelocKind.IMPORT, site, value.index)
        raise AsmError("unsupported relocation base %r" % value.base, line)

    # ------------------------------------------------------------------
    # Expression evaluation

    def _eval(self, expr, line, _depth=0):
        if _depth > 32:
            raise AsmError("circular .equ definition", line)
        if isinstance(expr, P.Num):
            return _Value(expr.value)
        if isinstance(expr, P.ImportRef):
            index = self.import_index.get(expr.name)
            if index is None:
                raise AsmError("reference to undeclared import %r"
                               % expr.name, line)
            return _Value(0, "import", index)
        if isinstance(expr, P.Sym):
            if expr.name in self.symbols:
                value = self.symbols[expr.name]
                return _Value(value.addend, value.base, value.index)
            if expr.name in self.equ:
                return self._eval(self.equ[expr.name], line, _depth + 1)
            raise AsmError("undefined symbol %r" % expr.name, line)
        if isinstance(expr, P.BinExpr):
            left = self._eval(expr.left, line, _depth)
            right = self._eval(expr.right, line, _depth)
            return self._combine(expr.op, left, right, line)
        raise AsmError("bad expression %r" % (expr,), line)

    def _combine(self, op, left, right, line):
        if op == "+":
            if left.absolute:
                return _Value(left.addend + right.addend, right.base,
                              right.index)
            if right.absolute:
                return _Value(left.addend + right.addend, left.base,
                              left.index)
            raise AsmError("cannot add two relocatable values", line)
        if op == "-":
            if right.absolute:
                return _Value(left.addend - right.addend, left.base,
                              left.index)
            if left.base == right.base and left.index == right.index:
                return _Value(left.addend - right.addend)
            raise AsmError("cannot subtract across sections", line)
        if not (left.absolute and right.absolute):
            raise AsmError("operator %r needs absolute operands" % op, line)
        funcs = {
            "*": lambda a, b: a * b,
            "&": lambda a, b: a & b,
            "|": lambda a, b: a | b,
            "<<": lambda a, b: a << b,
            ">>": lambda a, b: a >> b,
        }
        return _Value(funcs[op](left.addend, right.addend))
