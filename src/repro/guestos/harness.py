"""High-level driver harness: the "user-mode script" analog.

The paper exercises drivers with a user-mode program that loads the driver,
invokes standard IOCTLs, performs sends, exercises reception and unloads
(section 3.2).  :class:`DriverHarness` is that program for both the
concrete functional runs (Table 2) and the performance measurements.
"""

from repro.guestos.ndis import NdisEnv
from repro.guestos.structures import NdisStatus, Oid, PacketFilter
from repro.net.medium import Medium
from repro.vm.machine import Machine


class DriverHarness:
    """Boots a driver binary against a device model and drives it."""

    def __init__(self, image, device_cls, mac=b"\x52\x54\x00\x12\x34\x56",
                 exec_backend="compiled", exec_superblocks=None):
        """``exec_backend`` picks the CPU tier the binary runs on:
        ``"compiled"`` (default, DBT + generated-source blocks),
        ``"interp"`` (DBT + tree-walker) or ``"step"``/``None`` (the
        per-instruction interpreter).  ``exec_superblocks`` gates the
        superblock tier on the compiled backend (``None`` follows the
        ``REVNIC_SUPERBLOCKS`` environment default)."""
        self.machine = Machine(exec_backend=exec_backend,
                               exec_superblocks=exec_superblocks)
        self.medium = Medium()
        self.device = device_cls(mac, medium=self.medium)
        self.medium.attach(self.device)
        self.env = NdisEnv(self.machine, device=self.device)
        self.image = image
        self.initialized = False

    # ------------------------------------------------------------------
    # Lifecycle

    def boot(self):
        """Load the driver and run its initialize entry point."""
        self.env.load_driver(self.image)
        self.env.allocate_adapter_context()
        status = self.env.call_entry("initialize")
        if status != NdisStatus.SUCCESS:
            raise RuntimeError("driver initialize failed: 0x%08x" % status)
        self.env.service_interrupts()
        self.initialized = True
        return status

    def halt(self):
        """Run the halt (unload) entry point."""
        status = self.env.call_entry("halt")
        self.initialized = False
        return status

    def reset(self):
        """Run the reset entry point."""
        return self.env.call_entry("reset")

    # ------------------------------------------------------------------
    # Data path

    def send(self, frame_bytes):
        """Send one Ethernet frame through the driver."""
        buffer = self.env.alloc(len(frame_bytes))
        self.machine.memory.write_bytes(buffer, frame_bytes)
        status = self.env.call_entry("send", (buffer, len(frame_bytes)))
        self.env.service_interrupts()
        return status

    def inject_rx(self, frame_bytes):
        """Deliver a frame from the wire and let the driver handle the
        receive interrupt; returns frames the driver indicated upward."""
        before = len(self.env.indicated_frames)
        self.medium.inject(frame_bytes)
        self.env.service_interrupts()
        return self.env.indicated_frames[before:]

    # ------------------------------------------------------------------
    # IOCTL-style control operations

    def _set_info(self, oid, payload):
        buffer = self.env.alloc(max(len(payload), 4))
        self.machine.memory.write_bytes(buffer, payload)
        return self.env.call_entry(
            "set_information", (int(oid), buffer, len(payload)))

    def _query_info(self, oid, length):
        buffer = self.env.alloc(max(length, 4))
        status = self.env.call_entry(
            "query_information", (int(oid), buffer, length))
        data = self.machine.memory.read_bytes(buffer, length)
        return status, data

    def set_packet_filter(self, flags):
        """Program the RX packet filter (promiscuous / multicast / ...)."""
        payload = int(flags).to_bytes(4, "little")
        return self._set_info(Oid.GEN_CURRENT_PACKET_FILTER, payload)

    def enable_promiscuous(self):
        return self.set_packet_filter(
            PacketFilter.DIRECTED | PacketFilter.BROADCAST
            | PacketFilter.PROMISCUOUS)

    def query_mac(self):
        """Read the station MAC through the driver."""
        status, data = self._query_info(Oid.E802_3_CURRENT_ADDRESS, 6)
        if status != NdisStatus.SUCCESS:
            raise RuntimeError("MAC query failed: 0x%08x" % status)
        return data

    def set_mac(self, mac):
        """Program a new station MAC through the driver."""
        return self._set_info(Oid.E802_3_STATION_ADDRESS, bytes(mac))

    def set_multicast_list(self, macs):
        """Program the multicast address list."""
        payload = b"".join(bytes(m) for m in macs)
        return self._set_info(Oid.E802_3_MULTICAST_LIST, payload)

    def set_full_duplex(self, enabled):
        """Toggle full-duplex operation."""
        payload = (1 if enabled else 0).to_bytes(4, "little")
        return self._set_info(Oid.GEN_FULL_DUPLEX, payload)

    def enable_wake_on_lan(self):
        """Enable magic-packet wake-up."""
        payload = (1).to_bytes(4, "little")
        return self._set_info(Oid.PNP_ENABLE_WAKE_UP, payload)

    def set_led(self, mode):
        """Drive the proprietary LED-control IOCTL."""
        payload = int(mode).to_bytes(4, "little")
        return self._set_info(Oid.VENDOR_LED_CONTROL, payload)

    def query_link_speed(self):
        status, data = self._query_info(Oid.GEN_LINK_SPEED, 4)
        return status, int.from_bytes(data, "little")
