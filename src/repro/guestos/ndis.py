"""NDIS-like kernel API environment for the source OS.

Drivers import these functions by name; the loader binds each import to a
thunk address and the VM dispatches thunk calls here.  The environment also
performs the two pieces of OS-side bookkeeping RevNIC depends on:

* **entry-point discovery** -- ``NdisMRegisterMiniport`` and
  ``NdisInitializeTimer`` registrations are recorded, giving RevNIC the list
  of functions to exercise (paper section 3.2);
* **DMA-region tracking** -- ``NdisMAllocateSharedMemory`` return values are
  recorded so the shell device can return symbolic data for reads from DMA
  memory (paper section 3.4).
"""

from dataclasses import dataclass, field

from repro.errors import GuestOsError
from repro.guestos.structures import (
    ADAPTER_CONTEXT_SIZE,
    MINIPORT_FIELDS,
    NdisStatus,
)
from repro.layout import HEAP_BASE, HEAP_LIMIT, RETURN_TO_OS, STACK_TOP
from repro.vm.cpu import ExitReason


@dataclass
class DmaRegion:
    """A shared-memory region registered for DMA."""

    virtual: int
    physical: int
    size: int

    def contains(self, address):
        return self.physical <= address < self.physical + self.size


@dataclass
class TimerRegistration:
    """A timer entry point registered via ``NdisInitializeTimer``."""

    timer_struct: int
    handler: int
    due: bool = False


@dataclass
class ApiCallRecord:
    """One OS API call made by the driver (feeds Figure 9's function
    classification: functions whose traces contain OS calls are the
    "manual" template-integration ones)."""

    name: str
    args: tuple
    caller_pc: int


class NdisEnv:
    """The source-OS kernel services exposed to the driver."""

    def __init__(self, machine, device=None, trace_api_calls=True):
        self.machine = machine
        self.device = device
        self.loaded = None
        self.entry_points = {}          # name -> virtual address
        self.adapter_context = 0
        self.dma_regions = []
        self.timers = {}                # timer_struct addr -> TimerRegistration
        self.indicated_frames = []
        self.send_completions = []
        self.error_log = []
        self.api_calls = []
        self.trace_api_calls = trace_api_calls
        self.registry = {}
        self.irq_pending = False
        #: total device interrupts raised (validation-matrix observable)
        self.irq_count = 0
        self.stall_microseconds = 0
        self._heap_next = HEAP_BASE
        self._dispatch = _build_dispatch()
        machine.cpu.import_handler = self._import_call
        if device is not None:
            self._attach_device(device)

    # ------------------------------------------------------------------
    # Device plumbing

    def _attach_device(self, device):
        pci = device.PCI
        if pci.io_size:
            self.machine.bus.attach_ports(pci.io_base, pci.io_size, device)
        if pci.mmio_size:
            self.machine.bus.attach_mmio(pci.mmio_base, pci.mmio_size, device)
        device.irq_callback = self._device_irq
        if getattr(device, "bus", None) is None:
            device.bus = self.machine.bus

    def _device_irq(self):
        self.irq_pending = True
        self.irq_count += 1

    # ------------------------------------------------------------------
    # Driver loading and invocation

    def load_driver(self, image):
        """Map the driver and run its ``DriverEntry`` (which registers the
        miniport entry points).  Returns the :class:`LoadedImage`."""
        from repro.guestos.loader import load_image

        self.loaded = load_image(self.machine, image)
        status = self.invoke(self.loaded.entry_address, [])
        if status != NdisStatus.SUCCESS:
            raise GuestOsError("DriverEntry failed with 0x%08x" % status)
        if "initialize" not in self.entry_points:
            raise GuestOsError("driver did not register an initialize handler")
        return self.loaded

    def allocate_adapter_context(self):
        """Allocate the driver's persistent state block (paper: "the
        template allocates persistent state ... passed to each reverse
        engineered entry point")."""
        self.adapter_context = self.alloc(ADAPTER_CONTEXT_SIZE)
        return self.adapter_context

    def invoke(self, address, args, max_steps=5_000_000):
        """Call driver code at ``address`` with stack ``args`` and run the
        CPU until it returns to the OS.  Returns ``r0``."""
        cpu = self.machine.cpu
        saved_regs = list(cpu.regs)
        saved_pc = cpu.pc
        if cpu.sp == 0:
            cpu.sp = STACK_TOP
        for value in reversed(args):
            cpu.push(value)
        cpu.push(RETURN_TO_OS)
        cpu.pc = address
        reason = cpu.run(max_steps=max_steps)
        if reason != ExitReason.RETURNED_TO_OS:
            raise GuestOsError("driver did not return cleanly: %s"
                               % reason.value)
        result = cpu.regs[0]
        cpu.regs = saved_regs
        cpu.pc = saved_pc
        return result

    def call_entry(self, name, extra_args=(), max_steps=5_000_000):
        """Invoke a registered entry point with the adapter context plus
        ``extra_args``."""
        address = self.entry_points.get(name)
        if address is None:
            raise GuestOsError("entry point %r not registered" % name)
        return self.invoke(address, [self.adapter_context, *extra_args],
                           max_steps=max_steps)

    def service_interrupts(self, max_rounds=8):
        """Deliver pending device interrupts to the driver's ISR.

        Interrupt delivery is deferred to entry-point boundaries -- the same
        injection point the paper's heuristic uses ("triggering interrupts
        after returning from a driver entry point works well", section 3.2).
        """
        rounds = 0
        while self.irq_pending and rounds < max_rounds:
            self.irq_pending = False
            if "isr" in self.entry_points:
                self.call_entry("isr")
            rounds += 1
        return rounds

    def fire_timers(self):
        """Run all due timer handlers."""
        fired = 0
        for registration in list(self.timers.values()):
            if registration.due:
                registration.due = False
                self.invoke(registration.handler, [self.adapter_context])
                fired += 1
        return fired

    # ------------------------------------------------------------------
    # Kernel heap

    def alloc(self, size, align=16):
        """Bump-allocate from the kernel heap."""
        base = (self._heap_next + align - 1) & ~(align - 1)
        if base + size > HEAP_LIMIT:
            raise GuestOsError("kernel heap exhausted")
        self._heap_next = base + size
        return base

    def is_dma_address(self, address):
        """True when ``address`` falls in a registered DMA region."""
        return any(region.contains(address) for region in self.dma_regions)

    # ------------------------------------------------------------------
    # Import dispatch

    def _import_call(self, cpu, slot):
        if self.loaded is None:
            raise GuestOsError("import call before any driver was loaded")
        name = self.loaded.import_names.get(slot)
        if name is None:
            raise GuestOsError("call to unknown import slot %d" % slot)
        entry = self._dispatch.get(name)
        if entry is None:
            raise GuestOsError("unimplemented OS API %r" % name)
        handler, nargs = entry
        args = tuple(cpu.read_stack_arg(i) for i in range(nargs))
        if self.trace_api_calls:
            self.api_calls.append(ApiCallRecord(name, args, cpu.pc))
        result = handler(self, cpu, *args)
        cpu.regs[0] = 0 if result is None else (result & 0xFFFFFFFF)
        return nargs


# --------------------------------------------------------------------------
# API handler implementations.  Each is (handler, number_of_stack_args).

def _register_miniport(env, cpu, characteristics_ptr):
    memory = env.machine.memory
    for name, offset in MINIPORT_FIELDS.items():
        pointer = memory.read(characteristics_ptr + offset, 4)
        if pointer:
            env.entry_points[name] = pointer
    return NdisStatus.SUCCESS


def _set_attributes(env, cpu, context):
    env.adapter_context = context
    return NdisStatus.SUCCESS


def _allocate_memory(env, cpu, size):
    return env.alloc(size)


def _free_memory(env, cpu, pointer, size):
    return NdisStatus.SUCCESS


def _allocate_shared_memory(env, cpu, size, physical_out):
    virtual = env.alloc(size, align=64)
    physical = virtual  # identity-mapped guest
    env.machine.memory.write(physical_out, 4, physical)
    env.dma_regions.append(DmaRegion(virtual, physical, size))
    return virtual


def _free_shared_memory(env, cpu, virtual, size):
    return NdisStatus.SUCCESS


def _register_io_port_range(env, cpu, size):
    if env.device is None:
        raise GuestOsError("no device attached")
    return env.device.PCI.io_base


def _map_io_space(env, cpu, physical, size):
    if env.device is None:
        raise GuestOsError("no device attached")
    return env.device.PCI.mmio_base


def _register_interrupt(env, cpu, line):
    return NdisStatus.SUCCESS


def _initialize_timer(env, cpu, timer_struct, handler):
    env.timers[timer_struct] = TimerRegistration(timer_struct, handler)
    env.entry_points.setdefault("timer", handler)
    return NdisStatus.SUCCESS


def _set_timer(env, cpu, timer_struct, milliseconds):
    registration = env.timers.get(timer_struct)
    if registration is not None:
        registration.due = True
    return NdisStatus.SUCCESS


def _cancel_timer(env, cpu, timer_struct):
    registration = env.timers.get(timer_struct)
    if registration is not None:
        registration.due = False
    return NdisStatus.SUCCESS


def _write_error_log_entry(env, cpu, code):
    env.error_log.append(code)
    return NdisStatus.SUCCESS


def _stall_execution(env, cpu, microseconds):
    env.stall_microseconds += microseconds
    return NdisStatus.SUCCESS


def _indicate_receive(env, cpu, buffer, length):
    frame = env.machine.memory.read_bytes(buffer, length)
    env.indicated_frames.append(frame)
    return NdisStatus.SUCCESS


def _send_complete(env, cpu, status):
    env.send_completions.append(status)
    return NdisStatus.SUCCESS


def _read_configuration(env, cpu, key):
    return env.registry.get(key, 0)


def _get_physical_address(env, cpu, virtual):
    return virtual  # identity-mapped guest


def _build_dispatch():
    return {
        "NdisMRegisterMiniport": (_register_miniport, 1),
        "NdisMSetAttributes": (_set_attributes, 1),
        "NdisAllocateMemory": (_allocate_memory, 1),
        "NdisFreeMemory": (_free_memory, 2),
        "NdisMAllocateSharedMemory": (_allocate_shared_memory, 2),
        "NdisMFreeSharedMemory": (_free_shared_memory, 2),
        "NdisMRegisterIoPortRange": (_register_io_port_range, 1),
        "NdisMMapIoSpace": (_map_io_space, 2),
        "NdisMRegisterInterrupt": (_register_interrupt, 1),
        "NdisInitializeTimer": (_initialize_timer, 2),
        "NdisSetTimer": (_set_timer, 2),
        "NdisMCancelTimer": (_cancel_timer, 1),
        "NdisWriteErrorLogEntry": (_write_error_log_entry, 1),
        "NdisStallExecution": (_stall_execution, 1),
        "NdisMIndicateReceivePacket": (_indicate_receive, 2),
        "NdisMSendComplete": (_send_complete, 1),
        "NdisReadConfiguration": (_read_configuration, 1),
        "NdisGetPhysicalAddress": (_get_physical_address, 1),
    }


#: Names and stack-arg counts of every OS API (exported for RevNIC's
#: OS-interface knowledge base and for the symbolic-boundary dispatcher).
API_SIGNATURES = {name: nargs for name, (_h, nargs) in
                  _build_dispatch().items()}
