"""Documented OS-interface structures and constants.

The paper requires "that the OS driver interface and all API functions used
by the driver be documented ... the name of the API functions, the
parameter descriptions, along with information about data structures (type
and layout)" (section 3.2).  This module *is* that documentation for the
reproduction's NDIS analog: RevNIC reads these descriptions to know which
registered function pointers are entry points and what parameters each
takes.
"""

import enum

#: Layout of the miniport characteristics structure the driver passes to
#: ``NdisMRegisterMiniport``: field name -> byte offset of the function
#: pointer.  Every driver entry point RevNIC must exercise is found here.
MINIPORT_FIELDS = {
    "initialize": 0x00,
    "send": 0x04,
    "isr": 0x08,
    "set_information": 0x0C,
    "query_information": 0x10,
    "reset": 0x14,
    "halt": 0x18,
}

MINIPORT_STRUCT_SIZE = 0x1C

#: Entry-point parameter descriptions (name, arity, which params are
#: "data" -- candidates for symbolic injection -- versus pointers that must
#: stay concrete).  Mirrors the paper's selective symbolic input injection:
#: "fills with symbolic data the user buffers and the integer parameters
#: passed in, while keeping the other parameters, like pointers, concrete".
ENTRY_POINT_SIGNATURES = {
    "initialize": {"params": ["context"], "symbolic": []},
    "send": {"params": ["context", "packet", "length"],
             "symbolic": ["length"], "symbolic_buffers": ["packet"]},
    "isr": {"params": ["context"], "symbolic": []},
    "set_information": {"params": ["context", "oid", "buffer", "length"],
                        "symbolic": ["length"],
                        "symbolic_buffers": ["buffer"]},
    "query_information": {"params": ["context", "oid", "buffer", "length"],
                          "symbolic": ["length"], "symbolic_buffers": []},
    "reset": {"params": ["context"], "symbolic": []},
    "halt": {"params": ["context"], "symbolic": []},
    "timer": {"params": ["context"], "symbolic": []},
}


class NdisStatus(enum.IntEnum):
    """Status codes returned by driver entry points."""

    SUCCESS = 0x0000_0000
    PENDING = 0x0000_0103
    FAILURE = 0xC000_0001
    NOT_SUPPORTED = 0xC000_00BB
    INVALID_LENGTH = 0xC001_0014


class Oid(enum.IntEnum):
    """Object identifiers for Query/SetInformation (the IOCTL analog)."""

    GEN_CURRENT_PACKET_FILTER = 0x0001_010E
    GEN_LINK_SPEED = 0x0001_0107
    GEN_MEDIA_CONNECT_STATUS = 0x0001_0114
    E802_3_CURRENT_ADDRESS = 0x0101_0102
    E802_3_STATION_ADDRESS = 0x0101_0101
    E802_3_MULTICAST_LIST = 0x0101_0103
    GEN_FULL_DUPLEX = 0x0001_0203       # reproduction-specific
    PNP_ENABLE_WAKE_UP = 0xFD01_0106
    #: Proprietary vendor IOCTL (paper section 6: proprietary IOCTLs are
    #: exercised via vendor tools; here, LED control is the proprietary op).
    VENDOR_LED_CONTROL = 0xFF01_0001


class PacketFilter(enum.IntFlag):
    """OID_GEN_CURRENT_PACKET_FILTER bits."""

    DIRECTED = 0x01
    MULTICAST = 0x02
    BROADCAST = 0x04
    PROMISCUOUS = 0x20


#: Size of the adapter-context ("global state") block the OS allocates for
#: the driver.  The driver lays out its private state inside this block
#: with raw offsets -- which is exactly the pointer-arithmetic state the
#: synthesizer must preserve (paper Listing 1).
ADAPTER_CONTEXT_SIZE = 0x400
