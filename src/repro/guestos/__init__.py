"""The source-OS environment (the reproduction's Windows/NDIS analog).

The guest OS loads DRV driver binaries into the virtual machine, resolves
their imports to an NDIS-like API table, discovers driver entry points by
monitoring the registration call (``NdisMRegisterMiniport``), and invokes
those entry points -- concretely for functional runs, or under RevNIC's
control for symbolic exploration.
"""

from repro.guestos.structures import (
    MINIPORT_FIELDS,
    NdisStatus,
    Oid,
    PacketFilter,
)
from repro.guestos.loader import LoadedImage, load_image
from repro.guestos.ndis import NdisEnv

__all__ = [
    "MINIPORT_FIELDS",
    "NdisStatus",
    "Oid",
    "PacketFilter",
    "LoadedImage",
    "load_image",
    "NdisEnv",
]
