"""Driver binary loader: maps a DRV image into guest memory.

The analog of the Windows kernel's PE driver loader: maps sections, applies
relocations, resolves imports to thunk addresses, and reports where the
driver landed (RevNIC "monitors OS attempts to load the driver, in order to
track the location of the driver code", section 3.4).
"""

from dataclasses import dataclass, field

from repro.asm.binfmt import RelocKind
from repro.errors import GuestOsError
from repro.layout import TEXT_BASE, import_address, page_align


@dataclass
class LoadedImage:
    """Where a driver image was mapped."""

    image: object
    text_base: int
    data_base: int
    bss_base: int
    entry_address: int
    #: import slot index -> name (the dispatch table key).
    import_names: dict = field(default_factory=dict)

    @property
    def text_end(self):
        return self.text_base + len(self.image.text)

    def contains_code(self, address):
        """True when ``address`` is inside the driver's text segment."""
        return self.text_base <= address < self.text_end

    def text_offset(self, address):
        """Translate a virtual code address back to a text offset."""
        if not self.contains_code(address):
            raise ValueError("0x%08x is not driver code" % address)
        return address - self.text_base


def load_image(machine, image, text_base=TEXT_BASE):
    """Map ``image`` into ``machine`` memory and apply relocations."""
    text_size = page_align(max(len(image.text), 1))
    data_base = text_base + text_size
    data_size = page_align(max(len(image.data), 1))
    bss_base = data_base + data_size
    bss_size = page_align(max(image.bss_size, 1))

    machine.memory.map_region(text_base, text_size, "driver-text")
    machine.memory.map_region(data_base, data_size, "driver-data")
    machine.memory.map_region(bss_base, bss_size, "driver-bss")

    text = bytearray(image.text)
    data = bytearray(image.data)

    def patch(site, value):
        if site < len(text):
            blob, offset = text, site
        else:
            blob, offset = data, site - len(image.text)
        if offset + 4 > len(blob):
            raise GuestOsError("relocation site 0x%x out of range" % site)
        old = int.from_bytes(blob[offset:offset + 4], "little")
        blob[offset:offset + 4] = ((old + value) & 0xFFFFFFFF) \
            .to_bytes(4, "little")

    def set_abs(site, value):
        if site < len(text):
            blob, offset = text, site
        else:
            blob, offset = data, site - len(image.text)
        blob[offset:offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    for reloc in image.relocs:
        if reloc.kind == RelocKind.TEXT:
            patch(reloc.site, text_base)
        elif reloc.kind == RelocKind.DATA:
            patch(reloc.site, data_base)
        elif reloc.kind == RelocKind.IMPORT:
            set_abs(reloc.site, import_address(reloc.index))
        else:  # pragma: no cover - RelocKind is exhaustive
            raise GuestOsError("unknown relocation kind %r" % (reloc.kind,))

    machine.memory.write_bytes(text_base, bytes(text))
    if data:
        machine.memory.write_bytes(data_base, bytes(data))
    # One hook drops every code-derived cache (decode cache and DBT
    # translations) -- loaders no longer track them individually.
    machine.cpu.code_changed()

    return LoadedImage(
        image=image,
        text_base=text_base,
        data_base=data_base,
        bss_base=bss_base,
        entry_address=text_base + image.entry,
        import_names={i: imp.name for i, imp in enumerate(image.imports)},
    )
