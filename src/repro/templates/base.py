"""The NIC driver template hierarchy (paper section 4.2, Listing 2).

:class:`NicTemplate` is the paper's generic wired-NIC template: it carries
the OS-specific boilerplate (resource allocation, persistent-state
allocation, registration, interrupt hookup, data-structure adaptation) with
placeholders filled by RevNIC-synthesized entry points.
:class:`DmaNicTemplate` derives from it and adds the DMA-capable flow.

The instantiated template exposes the same high-level operations as the
source-OS harness (:class:`~repro.guestos.harness.DriverHarness`), which is
what makes the Table 2 functional-equivalence comparison symmetric.
"""

from dataclasses import dataclass

from repro.errors import TemplateError
from repro.guestos.structures import ADAPTER_CONTEXT_SIZE, NdisStatus, Oid
from repro.templates.runtime import SyntheticDriverRuntime


@dataclass(frozen=True)
class TemplateInfo:
    """Metadata for Table 3's proxies."""

    target_os: str
    person_days_paper: int     # the paper's reported effort
    boilerplate_loc: int       # proxy: lines of boilerplate in this repo
    api_surface: int           # proxy: adapted OS API entries


#: Table 3 inputs: the paper's person-day numbers plus this repo's proxies
#: (filled by repro.eval.table3 from live introspection; the paper values
#: are carried as reference constants).
TEMPLATE_INFO = {
    "winsim": TemplateInfo("winsim", person_days_paper=5, boilerplate_loc=0,
                           api_surface=0),
    "linsim": TemplateInfo("linsim", person_days_paper=3, boilerplate_loc=0,
                           api_surface=0),
    "ucsim": TemplateInfo("ucsim", person_days_paper=1, boilerplate_loc=0,
                          api_surface=0),
    "kitos": TemplateInfo("kitos", person_days_paper=0, boilerplate_loc=0,
                          api_surface=0),
}


class NicTemplate:
    """Generic wired-NIC template (no DMA assumptions)."""

    def __init__(self, synthesized_driver, target_os, original_image=None,
                 exec_backend=None, exec_superblocks=None):
        self.driver = synthesized_driver
        self.os = target_os
        self.runtime = SyntheticDriverRuntime(
            synthesized_driver, target_os, exec_backend=exec_backend,
            exec_superblocks=exec_superblocks)
        if original_image is not None:
            self.runtime.seed_data_image(original_image)
        self.context = 0
        self.initialized = False

    # ------------------------------------------------------------------
    # Boilerplate: init flow (the paper's Listing 2)

    def initialize(self):
        """Template init: allocate persistent state, run the synthesized
        init function, service the post-init interrupt, adapt structures."""
        # -- "the template allocates persistent state. A pointer to this
        #    state is passed to each reverse engineered entry point."
        self.context = self.os.alloc(ADAPTER_CONTEXT_SIZE, align=64)
        # -- "Developers paste calls to RevNIC-synthesized hardware-related
        #    functions here."
        status = self.runtime.call("initialize", [self.context])
        if status != NdisStatus.SUCCESS:
            # -- "Error recovery provided by the template (e.g., unload)"
            self.shutdown()
            raise TemplateError("synthesized initialize failed: 0x%08x"
                                % status)
        self.service_interrupts()
        self.initialized = True
        return status

    def shutdown(self):
        """Template unload path; returns the halt entry point's status."""
        status = NdisStatus.SUCCESS
        if "halt" in self.driver.entry_points:
            status = self.runtime.call("halt", [self.context])
        self.initialized = False
        return status

    def reset(self):
        return self.runtime.call("reset", [self.context])

    # ------------------------------------------------------------------
    # Data path

    def send(self, frame_bytes):
        """OS hands a packet down; the template adapts the OS packet
        structure to the (buffer, length) the synthesized send expects --
        the NDIS_PACKET -> sk_buff adaptation of section 4.2."""
        buffer = self.os.alloc(len(frame_bytes))
        self.os.machine.memory.write_bytes(buffer, frame_bytes)
        status = self.runtime.call("send",
                                   [self.context, buffer, len(frame_bytes)])
        self.service_interrupts()
        return status

    def inject_rx(self, frame_bytes):
        """Wire-side frame arrival; returns newly indicated frames."""
        before = len(self.os.received_frames)
        self.os.medium.inject(frame_bytes)
        self.service_interrupts()
        return self.os.received_frames[before:]

    def service_interrupts(self, max_rounds=8):
        """Template ISR dispatch: "an interrupt handler ... first calls a
        hardware routine to check that the device has indeed triggered the
        interrupt, before handling it"."""
        rounds = 0
        while self.os.irq_pending and rounds < max_rounds:
            self.os.irq_pending = False
            if "isr" in self.driver.entry_points:
                self.runtime.call("isr", [self.context])
            rounds += 1
        return rounds

    def fire_timers(self):
        fired = 0
        for timer in self.os.timers.values():
            if timer["due"]:
                timer["due"] = False
                self.runtime.call_address(timer["handler"], [self.context])
                fired += 1
        return fired

    # ------------------------------------------------------------------
    # Control operations (IOCTL adaptation)

    def _set_info(self, oid, payload):
        buffer = self.os.alloc(max(len(payload), 4))
        self.os.machine.memory.write_bytes(buffer, payload)
        return self.runtime.call(
            "set_information",
            [self.context, int(oid), buffer, len(payload)])

    def _query_info(self, oid, length):
        buffer = self.os.alloc(max(length, 4))
        status = self.runtime.call(
            "query_information", [self.context, int(oid), buffer, length])
        return status, self.os.machine.memory.read_bytes(buffer, length)

    def set_packet_filter(self, flags):
        return self._set_info(Oid.GEN_CURRENT_PACKET_FILTER,
                              int(flags).to_bytes(4, "little"))

    def query_mac(self):
        status, data = self._query_info(Oid.E802_3_CURRENT_ADDRESS, 6)
        if status != NdisStatus.SUCCESS:
            raise TemplateError("MAC query failed: 0x%08x" % status)
        return data

    def set_mac(self, mac):
        return self._set_info(Oid.E802_3_STATION_ADDRESS, bytes(mac))

    def set_multicast_list(self, macs):
        return self._set_info(Oid.E802_3_MULTICAST_LIST,
                              b"".join(bytes(m) for m in macs))

    def set_full_duplex(self, enabled):
        return self._set_info(Oid.GEN_FULL_DUPLEX,
                              (1 if enabled else 0).to_bytes(4, "little"))

    def enable_wake_on_lan(self):
        return self._set_info(Oid.PNP_ENABLE_WAKE_UP,
                              (1).to_bytes(4, "little"))

    def set_led(self, mode):
        return self._set_info(Oid.VENDOR_LED_CONTROL,
                              int(mode).to_bytes(4, "little"))

    def query_link_speed(self):
        """Query the link speed OID -- mirrors
        :meth:`repro.guestos.harness.DriverHarness.query_link_speed` so the
        validation matrix can compare the control plane symmetrically."""
        status, data = self._query_info(Oid.GEN_LINK_SPEED, 4)
        return status, int.from_bytes(data, "little")


class DmaNicTemplate(NicTemplate):
    """Derived template adding DMA capability.

    Bus-master devices fetch descriptors/buffers straight from guest
    memory; the derived template ensures the device model has bus access
    and accounts DMA setup in initialization.
    """

    def initialize(self):
        if self.os.device.bus is None:
            self.os.device.bus = self.os.machine.bus
        return super().initialize()
