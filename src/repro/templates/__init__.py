"""Per-OS NIC driver templates.

"The template contains all OS-specific boilerplate for interfacing with
the kernel ... Besides mandatory boilerplate, a template also contains
placeholders for the actual hardware interaction" (section 2).  Templates
form a class hierarchy: the base template targets a generic NIC; the
derived template adds DMA capabilities -- matching the paper's "base
template may target a generic PCI-based, wired NIC, while a derived
template further adds DMA capabilities".
"""

from repro.templates.base import DmaNicTemplate, NicTemplate, TEMPLATE_INFO
from repro.templates.runtime import SyntheticDriverRuntime

__all__ = ["NicTemplate", "DmaNicTemplate", "TEMPLATE_INFO",
           "SyntheticDriverRuntime"]
